// A4 (ablation) — netlist-formulation design choices: how many pi sections
// per segment, and what the mutual-K elements contribute.
//
// DESIGN.md calls out the pi-ladder section count and the PEEC
// (shields-as-branches + mutual K) formulation as the two knobs of the
// netlist builder; this bench shows the delay converging in sections and
// what breaks when the mutuals are dropped.
#include <cstdio>

#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

double delay_of(const geom::Technology& tech, const geom::Block& blk,
                const core::SegmentRlc& seg, int sections,
                bool with_mutual) {
  (void)tech;
  ckt::Netlist nl;
  const ckt::NodeId vin = nl.add_node();
  const ckt::NodeId buf = nl.add_node();
  nl.add_vsource(vin, ckt::kGround, ckt::SourceWaveform::ramp(1.8, 200e-12));
  nl.add_resistor(vin, buf, 25.0);
  core::LadderOptions lopt;
  lopt.sections = sections;
  lopt.include_mutual = with_mutual;
  const auto outs = core::stamp_segment(nl, blk, seg, {buf}, lopt);
  nl.add_capacitor(outs[0], ckt::kGround, 200e-15);
  ckt::TransientOptions topt;
  topt.t_stop = 2e-9;
  topt.dt = 0.5e-12;
  const auto res = ckt::simulate(nl, topt);
  return units::to_ps(
      ckt::delay_50(res.waveform(buf), res.waveform(outs[0]), 1.8));
}

}  // namespace

int main() {
  std::printf("=== A4 / ablation: pi-ladder sections and mutual-K elements "
              "===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block blk =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(200e-12);
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, lmodel);

  std::printf("RLC buffer->sink delay of the Figure-1 net vs section "
              "count:\n");
  std::printf("%10s %16s %20s\n", "sections", "delay (ps)",
              "delay, K dropped (ps)");
  double converged = 0.0;
  for (int s : {1, 2, 4, 8, 16, 32}) {
    const double d = delay_of(tech, blk, seg, s, true);
    const double d_nok = delay_of(tech, blk, seg, s, false);
    std::printf("%10d %16.2f %20.2f\n", s, d, d_nok);
    converged = d;
  }
  std::printf("\nobservations:\n");
  std::printf(" * a handful of sections suffices — the lumped ladder "
              "converges quickly\n   toward the distributed line "
              "(converged delay %.1f ps);\n", converged);
  std::printf(" * dropping the mutual-K elements leaves each branch with "
              "its huge partial\n   self inductance and no return-path "
              "cancellation: the delay is wildly\n   wrong.  The mutuals "
              "ARE the return-path physics in a PEEC netlist —\n   \"SPICE "
              "determines the return path at simulation\" only works with "
              "them.\n");
  return 0;
}
