// A3 — the Figure 4 bus block: the n-trace inductance problem assembled
// from 1-/2-trace table lookups vs the full n-trace field solve.
//
// This is the paper's central reduction ("we are able to reduce the n-trace
// inductance problem into 1-trace subproblems to solve the self Lp, and
// into 2-trace subproblems to solve the mutual Lp.  There is no loss of
// accuracy during the reduction."), demonstrated on the bus-with-shields
// structure of Figure 4.
#include <cstdio>

#include "core/rlc_extractor.h"
#include "core/table_builder.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== A3 / Figure 4: n-trace bus from 1-/2-trace subproblems "
              "===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();

  // Figure 4: T1 and Tn are dedicated AC grounds around signal traces.
  const geom::Block bus = geom::bus_block(
      tech, 6, um(1500),
      {um(6), um(3), um(3), um(3), um(3), um(3), um(6)},
      {um(1.5), um(1.5), um(1.5), um(1.5), um(1.5), um(1.5)});
  const std::size_t n = bus.size();

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);

  // Full n-trace PEEC solve (what the tables replace).
  const solver::PartialResult full = solver::extract_partial(bus, sopt);

  // Table path: build tables, then assemble the same matrix from lookups.
  core::TableGrid grid;
  grid.widths = geomspace(um(1.5), um(12), 5);
  grid.spacings = geomspace(um(1), um(40), 6);
  grid.lengths = geomspace(um(500), um(3000), 4);
  const core::InductanceTables tables = core::build_tables(
      tech, 6, geom::PlaneConfig::kNone, grid, sopt);
  const core::TableInductanceModel model(tables);
  const core::SegmentRlc seg = core::extract_segment_rlc(bus, model);

  std::printf("%zu-trace bus (outer 6 um grounds, 3 um signals, 1.5 um "
              "spacing, 1500 um):\n\n", n);
  std::printf("partial-L matrix, table-assembled vs full %zu-trace solve "
              "(nH, err %%):\n", n);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double lt = seg.inductance(i, j);
      const double lf = full.inductance(i, j);
      const double err = 100.0 * (lt - lf) / lf;
      max_err = std::max(max_err, std::abs(err));
      std::printf(" %6.3f/%+5.1f%%", units::to_nh(lt), err);
    }
    std::printf("\n");
  }
  std::printf("\nmax |error| across all %zu^2 entries: %.2f %%\n", n,
              max_err);
  std::printf("(residual is spline interpolation; the reduction itself is "
              "lossless —\nFoundations 1 and 2)\n");

  // Cost comparison the table method buys.
  std::printf("\nproblem-size arithmetic: one %zu-trace solve vs %zu "
              "2-trace lookups per block;\nsee bench_speed for wall-clock "
              "numbers.\n", n, n * (n - 1) / 2);
  return 0;
}
