// A2 — Section V, second assumption: coupling from other signal wires
// outside the clocktree segment.
//
// Paper: "how do we include the coupling effect from the other signal wires
// outside of a clocktree segment ...?  In our efficient inductance models,
// we can easily construct the RLC netlist for N parallel wires ...
// Therefore the coupling effect — mainly inductive coupling — of other
// signals next to the clocktree can be taken care of by simply adding them
// in the clocktree simulation."
//
// We add an aggressor wire beyond the right shield of the Figure 8
// structure, drive it with its own fast edge, and measure the noise and
// delay shift induced on the quiet/switching clock — with the mutual-K
// elements present (the paper's method) and artificially removed.
#include <cstdio>

#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

struct Outcome {
  double clk_noise_mv;   ///< peak disturbance on a quiet clock sink
  double delay_shift_ps; ///< 50% delay change of a switching clock
};

Outcome run(const geom::Technology& tech, bool with_mutual) {
  // gnd | clk | gnd | aggressor — the aggressor sits outside the shields.
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kGround, um(5), -um(9), "gnd_l"},
      {geom::TraceRole::kSignal, um(10), 0.0, "clk"},
      {geom::TraceRole::kGround, um(5), um(9), "gnd_r"},
      {geom::TraceRole::kSignal, um(4), um(14), "agg"},
  };
  const geom::Block blk(&tech, 6, um(4000), std::move(traces),
                        geom::PlaneConfig::kNone);

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, lmodel);

  auto simulate_case = [&](bool clk_switches) {
    ckt::Netlist nl;
    const ckt::NodeId clk_src = nl.add_node("clk_src");
    const ckt::NodeId clk_in = nl.add_node("clk_in");
    const ckt::NodeId agg_src = nl.add_node("agg_src");
    const ckt::NodeId agg_in = nl.add_node("agg_in");
    if (clk_switches) {
      nl.add_vsource(clk_src, ckt::kGround,
                     ckt::SourceWaveform::ramp(1.8, 200e-12));
    } else {
      nl.add_vsource(clk_src, ckt::kGround, ckt::SourceWaveform::dc(0.0));
    }
    nl.add_resistor(clk_src, clk_in, 25.0);
    nl.add_vsource(agg_src, ckt::kGround,
                   ckt::SourceWaveform::ramp(1.8, 100e-12));
    nl.add_resistor(agg_src, agg_in, 60.0);

    core::LadderOptions lopt;
    lopt.sections = 8;
    lopt.include_mutual = with_mutual;
    const auto outs = core::stamp_segment(nl, blk, seg, {clk_in, agg_in},
                                          lopt);
    nl.add_capacitor(outs[0], ckt::kGround, 200e-15);
    nl.add_capacitor(outs[1], ckt::kGround, 100e-15);

    ckt::TransientOptions topt;
    topt.t_stop = 2e-9;
    topt.dt = 0.5e-12;
    const ckt::TransientResult res = ckt::simulate(nl, topt);
    return std::make_pair(res.waveform(clk_in), res.waveform(outs[0]));
  };

  Outcome out{};
  {
    const auto [buf, sink] = simulate_case(false);
    out.clk_noise_mv =
        1e3 * std::max(std::abs(sink.max()), std::abs(sink.min()));
  }
  {
    const auto [buf, sink] = simulate_case(true);
    out.delay_shift_ps = units::to_ps(ckt::delay_50(buf, sink, 1.8));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== A2 / Section V: aggressor coupling into a shielded "
              "clock segment ===\n\n");
  std::printf("structure: [gnd 5 | clk 10 | gnd 5 | agg 4] um, 4000 um "
              "long; aggressor\nswitches 1.8 V in 100 ps.  Coupling to the "
              "clock is inductive only — the\nshield sits between them, so "
              "there is no adjacent-trace capacitance.\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const Outcome with_m = run(tech, true);
  const Outcome without_m = run(tech, false);

  std::printf("%-38s %14s %14s\n", "", "with mutual K", "K removed");
  std::printf("%-38s %11.1f mV %11.1f mV\n",
              "noise on quiet clock sink", with_m.clk_noise_mv,
              without_m.clk_noise_mv);
  std::printf("%-38s %11.2f ps %11.2f ps\n",
              "switching clock buf->sink delay", with_m.delay_shift_ps,
              without_m.delay_shift_ps);
  std::printf("\nthe paper's prescription — model neighbours by adding "
              "their wires (with all\nmutual Lp terms) to the simulation — "
              "is what the left column does; dropping\nthe mutuals (right) "
              "silences the crosstalk entirely and shifts the delay.\n");
  return 0;
}
