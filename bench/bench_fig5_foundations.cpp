// E2 — Figure 5: loop inductance (in units of 0.1 nH) of a 5-trace array
// over a local ground plane in layer N-2:
//   (a) the full array, (b) trace T1 alone, (c) traces T1 and T5 only.
// The paper uses (b) to show Foundation 1 survives the plane extension and
// (c) to show Foundation 2 does.
#include <cstdio>

#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== E2 / Figure 5: extended Foundations over a ground plane "
              "===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  // 5 equal traces over the plane two layers down (microstrip array).
  const geom::Block arr = geom::uniform_array(
      tech, 6, um(2000), 5, um(4), um(4), geom::PlaneConfig::kBelow);

  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.plane.strips = 21;

  std::printf("array: 5 x 4 um traces, 4 um spacing, 2000 um long, plane in "
              "layer N-2\nsolved at %.2f GHz\n\n",
              units::to_ghz(opt.frequency));

  // (a) full array.
  const solver::LoopResult full = solver::extract_loop(arr, opt);
  std::printf("(a) loop inductance matrix of the full array (x0.1 nH):\n");
  std::printf("      ");
  for (int j = 1; j <= 5; ++j) std::printf("     T%d", j);
  std::printf("\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  T%zu  ", i + 1);
    for (std::size_t j = 0; j < 5; ++j)
      std::printf(" %6.2f", units::to_nh(full.inductance(i, j)) * 10.0);
    std::printf("\n");
  }

  // (b) T1 alone.
  const solver::LoopResult single =
      solver::extract_loop(arr.subproblem({0}), opt);
  const double self_full = units::to_nh(full.inductance(0, 0)) * 10.0;
  const double self_single = units::to_nh(single.inductance(0, 0)) * 10.0;
  std::printf("\n(b) T1 alone: %6.2f   vs %6.2f in the full array "
              "(err %.2f %%)\n",
              self_single, self_full,
              100.0 * (self_single - self_full) / self_full);

  // (c) T1 and T5 only.
  const solver::LoopResult pair =
      solver::extract_loop(arr.subproblem({0, 4}), opt);
  const double mut_full = units::to_nh(full.inductance(0, 4)) * 10.0;
  const double mut_pair = units::to_nh(pair.inductance(0, 1)) * 10.0;
  std::printf("(c) T1-T5 pair mutual: %6.2f   vs %6.2f in the full array "
              "(err %.2f %%)\n",
              mut_pair, mut_full, 100.0 * (mut_pair - mut_full) / mut_full);
  const double s1_pair = units::to_nh(pair.inductance(0, 0)) * 10.0;
  std::printf("    T1 self in the pair: %6.2f (err %.2f %% vs full)\n",
              s1_pair, 100.0 * (s1_pair - self_full) / self_full);

  std::printf("\nFoundation 1 (self from 1-trace subproblem) and Foundation "
              "2 (mutual from\n2-trace subproblem) hold over a plane — the "
              "paper's Section II.B extension.\n");

  // Every pair, as the table-based method would extract the array.
  std::printf("\nall mutuals via 2-trace subproblems vs full array:\n");
  std::printf("%8s %12s %12s %8s\n", "pair", "pair nH", "full nH", "err %");
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      const solver::LoopResult p2 =
          solver::extract_loop(arr.subproblem({i, j}), opt);
      const double m2 = units::to_nh(p2.inductance(0, 1));
      const double mf = units::to_nh(full.inductance(i, j));
      std::printf("  T%zu-T%zu %12.4f %12.4f %8.2f\n", i + 1, j + 1, m2, mf,
                  100.0 * (m2 - mf) / mf);
    }
  }
  return 0;
}
