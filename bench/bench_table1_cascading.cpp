// E3 — Table I: linear cascading comparisons.
//
// Paper: the loop inductance of the interconnect trees of Figure 6,
// extracted for the whole structure at once, against the series/parallel
// combination of independently extracted per-segment loop inductances:
//   Fig 6(a): full vs L_ab + (L_bc + L_ce) || (L_bd + L_df), error 3.57 %
//   Fig 6(b): full vs the analogous combination,            error 1.55 %
// Each segment is a three-wire system (signal guarded by equal-width
// grounds, w = 1.2 um).  The figure's exact branch layout is only sketched
// in the paper; the segment lengths below follow its labels, with branches
// leaving the trunk perpendicularly as drawn.
#include <cstdio>
#include <vector>

#include "core/cascade.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/mesh.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"
#include "solver/network.h"

using namespace rlcx;
using units::um;

namespace {

constexpr double kW = 1.2e-6;      // wire width (paper: w = 1.2 um)
constexpr double kSpace = 1.2e-6;  // signal-shield spacing

struct SegmentSpec {
  peec::Axis axis;
  double a0;        // start along the axis [m]
  double len;       // [m]
  double t_center;  // transverse position of the signal center [m]
  int n_from_sig, n_from_gnd;
  int n_to_sig, n_to_gnd;
};

// Per-segment loop inductance, extracted independently (the table method).
double segment_loop(const geom::Technology& tech, double len, double freq) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech, 6, len, kW, kW, kSpace);
  solver::SolveOptions opt;
  opt.frequency = freq;
  return solver::extract_loop(blk, opt).inductance(0, 0);
}

// Whole-structure loop inductance: all segments in one PEEC system.
double full_loop(const geom::Technology& tech,
                 const std::vector<SegmentSpec>& segs, solver::Network& net,
                 int port_pos, int port_neg, double freq) {
  const geom::Layer& layer = tech.layer(6);
  peec::MeshOptions mesh;
  mesh.nw = 2;
  mesh.nt = 2;
  const double pitch = kW + kSpace;
  for (const SegmentSpec& s : segs) {
    auto bar = [&](double t_off) {
      peec::Bar b;
      b.axis = s.axis;
      b.a_min = s.a0;
      b.length = s.len;
      b.t_min = s.t_center + t_off - 0.5 * kW;
      b.t_width = kW;
      b.z_min = layer.z_bottom;
      b.z_thick = layer.thickness;
      return b;
    };
    net.add_segment(s.n_from_sig, s.n_to_sig, bar(0.0), layer.rho, mesh);
    net.add_segment(s.n_from_gnd, s.n_to_gnd, bar(-pitch), layer.rho, mesh);
    net.add_segment(s.n_from_gnd, s.n_to_gnd, bar(pitch), layer.rho, mesh);
  }
  return net.loop_impedance(port_pos, port_neg, freq).inductance;
}

}  // namespace

int main() {
  std::printf("=== E3 / Table I: linear cascading comparisons ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const double freq = solver::significant_frequency(100e-12);

  // ---- Tree (a): trunk ab = 100 um (+y); the two branches run upward in
  //      parallel, 24 um apart — "significant portions of the systems are
  //      close-by", the situation the paper flags as the error source:
  //      branch 1: bc = 150 -> ce = 250; branch 2: bd = 250 -> df = 100. ----
  double full_a, casc_a;
  {
    solver::Network net;
    const int as = net.add_node(), ag = net.add_node();
    const int bs = net.add_node(), bg = net.add_node();
    const int cs = net.add_node(), cg = net.add_node();
    const int ds = net.add_node(), dg = net.add_node();
    const int e = net.add_node();  // far end of branch 1 (shorted)
    const int f = net.add_node();  // far end of branch 2 (shorted)
    std::vector<SegmentSpec> segs{
        {peec::Axis::kY, 0.0, um(100), 0.0, as, ag, bs, bg},
        {peec::Axis::kY, um(100), um(150), -um(4), bs, bg, cs, cg},
        {peec::Axis::kY, um(250), um(250), -um(4), cs, cg, e, e},
        {peec::Axis::kY, um(100), um(250), um(4), bs, bg, ds, dg},
        {peec::Axis::kY, um(350), um(100), um(4), ds, dg, f, f},
    };
    full_a = full_loop(tech, segs, net, as, ag, freq);

    const double l_ab = segment_loop(tech, um(100), freq);
    const double l_bc = segment_loop(tech, um(150), freq);
    const double l_ce = segment_loop(tech, um(250), freq);
    const double l_bd = segment_loop(tech, um(250), freq);
    const double l_df = segment_loop(tech, um(100), freq);
    core::CascadeNode root{l_ab,
                           {{l_bc, {{l_ce, {}}}}, {l_bd, {{l_df, {}}}}}};
    casc_a = core::cascade_tree(root);
  }

  // ---- Tree (b): trunk ab = 600 um (+y); branch 1: bc = 300 um then a
  //      20 um jog (cd) and de = 600 um, all continuing upward; branch 2:
  //      bf = 600 um running parallel on the other side.  Longer segments,
  //      proportionally less close-by overlap than (a). ----
  double full_b, casc_b;
  {
    solver::Network net;
    const int as = net.add_node(), ag = net.add_node();
    const int bs = net.add_node(), bg = net.add_node();
    const int cs = net.add_node(), cg = net.add_node();
    const int ds = net.add_node(), dg = net.add_node();
    const int e = net.add_node();
    const int f = net.add_node();
    std::vector<SegmentSpec> segs{
        {peec::Axis::kY, 0.0, um(600), 0.0, as, ag, bs, bg},
        {peec::Axis::kY, um(600), um(300), -um(4), bs, bg, cs, cg},
        {peec::Axis::kX, -um(12), um(20), um(910), cs, cg, ds, dg},
        {peec::Axis::kY, um(910), um(600), -um(24), ds, dg, e, e},
        {peec::Axis::kY, um(600), um(600), um(4), bs, bg, f, f},
    };
    full_b = full_loop(tech, segs, net, as, ag, freq);

    const double l_ab = segment_loop(tech, um(600), freq);
    const double l_bc = segment_loop(tech, um(300), freq);
    const double l_cd = segment_loop(tech, um(20), freq);
    const double l_de = segment_loop(tech, um(600), freq);
    const double l_bf = segment_loop(tech, um(600), freq);
    core::CascadeNode root{
        l_ab, {{l_bc, {{l_cd, {{l_de, {}}}}}}, {l_bf, {}}}};
    casc_b = core::cascade_tree(root);
  }

  std::printf("%-10s %16s %22s %8s\n", "tree", "loop L full (nH)",
              "eff. L from S/P (nH)", "err %");
  std::printf("%-10s %16.4f %22.4f %8.2f\n", "Fig 6(a)",
              units::to_nh(full_a), units::to_nh(casc_a),
              100.0 * (casc_a - full_a) / full_a);
  std::printf("%-10s %16.4f %22.4f %8.2f\n", "Fig 6(b)",
              units::to_nh(full_b), units::to_nh(casc_b),
              100.0 * (casc_b - full_b) / full_b);
  std::printf("\npaper Table I: errors 3.57 %% and 1.55 %% — \"the "
              "discrepancy is small ... hence\nthe linearly cascadable "
              "conclusion\".  Our full-structure reference merges junction\n"
              "nodes ideally and keeps shields continuous, which shields "
              "better than the\npaper's testcases; the conclusion is the "
              "same.\n");

  // The error mechanism: residual coupling between close-by systems.
  // Sweep the branch-to-branch gap of tree (a).
  std::printf("\ncascading error vs branch separation (tree (a) layout):\n");
  std::printf("%16s %10s\n", "separation (um)", "err %");
  const double l_ab = segment_loop(tech, um(100), freq);
  const double l_bc = segment_loop(tech, um(150), freq);
  const double l_ce = segment_loop(tech, um(250), freq);
  const double l_bd = segment_loop(tech, um(250), freq);
  const double l_df = segment_loop(tech, um(100), freq);
  core::CascadeNode root{l_ab,
                         {{l_bc, {{l_ce, {}}}}, {l_bd, {{l_df, {}}}}}};
  const double casc = core::cascade_tree(root);
  for (double half_gap_um : {4.0, 8.0, 16.0, 64.0}) {
    solver::Network net;
    const int as = net.add_node(), ag = net.add_node();
    const int bs = net.add_node(), bg = net.add_node();
    const int cs = net.add_node(), cg = net.add_node();
    const int ds = net.add_node(), dg = net.add_node();
    const int e = net.add_node();
    const int f = net.add_node();
    const double x = um(half_gap_um);
    std::vector<SegmentSpec> segs{
        {peec::Axis::kY, 0.0, um(100), 0.0, as, ag, bs, bg},
        {peec::Axis::kY, um(100), um(150), -x, bs, bg, cs, cg},
        {peec::Axis::kY, um(250), um(250), -x, cs, cg, e, e},
        {peec::Axis::kY, um(100), um(250), x, bs, bg, ds, dg},
        {peec::Axis::kY, um(350), um(100), x, ds, dg, f, f},
    };
    const double full = full_loop(tech, segs, net, as, ag, freq);
    std::printf("%16.0f %10.2f\n", 2.0 * half_gap_um,
                100.0 * (casc - full) / full);
  }
  return 0;
}
