// A5 (ablation) — delay metrics vs transient simulation on extracted nets.
//
// Fast moment-based metrics (Elmore, D2M) are the standard alternative to
// simulating every net.  This bench shows they stay accurate on the RC
// netlist but fall apart on the paper's RLC netlists once the response
// rings — the quantitative justification for Section V's choice to run
// full (SPICE-class) transient simulation on the extracted clocktree.
#include <cstdio>

#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "core/screening.h"
#include "ckt/moments.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

struct Row {
  double simulated_ps;
  double elmore_ps;
  double d2m_ps;
  bool d2m_valid;
};

Row run(const geom::Technology& tech, const geom::Block& blk,
        const core::SegmentRlc& seg, bool with_l, double rs) {
  (void)tech;
  ckt::Netlist nl;
  const ckt::NodeId vin = nl.add_node();
  nl.add_vsource(vin, ckt::kGround,
                 ckt::SourceWaveform::ramp(1.8, 1e-12));  // near-step
  const ckt::NodeId buf = nl.add_node();
  nl.add_resistor(vin, buf, rs);
  core::LadderOptions lopt;
  lopt.sections = 8;
  lopt.include_inductance = with_l;
  const auto outs = core::stamp_segment(nl, blk, seg, {buf}, lopt);
  nl.add_capacitor(outs[0], ckt::kGround, 200e-15);

  ckt::TransientOptions topt;
  topt.t_stop = 3e-9;
  topt.dt = 0.25e-12;
  const auto res = ckt::simulate(nl, topt);
  const auto t50 = res.waveform(outs[0]).first_rise_through(0.9);

  Row row{};
  row.simulated_ps = units::to_ps(t50.value());
  row.elmore_ps = units::to_ps(ckt::elmore_delay(nl, outs[0]));
  try {
    row.d2m_ps = units::to_ps(ckt::d2m_delay(nl, outs[0]));
    row.d2m_valid = true;
  } catch (const std::exception&) {
    row.d2m_valid = false;
  }
  return row;
}

void report(const char* label, const Row& r) {
  std::printf("%-22s %12.2f %12.2f ", label, r.simulated_ps, r.elmore_ps);
  if (r.d2m_valid) {
    std::printf("%12.2f %11.1f%%\n", r.d2m_ps,
                100.0 * (r.d2m_ps - r.simulated_ps) / r.simulated_ps);
  } else {
    std::printf("%12s %12s\n", "n/a (m2<0)", "-");
  }
}

}  // namespace

int main() {
  std::printf("=== A5 / ablation: Elmore & D2M vs transient on extracted "
              "nets ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block blk =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, lmodel);

  std::printf("50%% step-response delay of the Figure-1 net (driver 25 "
              "ohm):\n\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "netlist", "transient",
              "Elmore", "D2M", "D2M err");
  report("RC", run(tech, blk, seg, false, 25.0));
  report("RLC (paper)", run(tech, blk, seg, true, 25.0));
  report("RLC, weak driver", run(tech, blk, seg, true, 100.0));

  std::printf("\non the RC netlist the metrics behave (Elmore bounds, D2M "
              "tracks); on the\nringing RLC netlist the moment metrics "
              "mislead or break (negative m2) —\nwhy the paper runs "
              "transient simulation on its extracted clocktrees.\n");

  // And the screen that tells you in advance which regime you are in.
  core::ScreeningInput si;
  si.resistance = seg.resistance[1];
  si.inductance = 1.6e-9;  // loop value; see bench_fig1_delay
  si.capacitance = seg.cap_ground[1] + seg.cap_coupling[0] +
                   seg.cap_coupling[1];
  si.rise_time = 100e-12;
  const core::ScreeningResult sr = core::screen_inductance(si);
  std::printf("\nscreen_inductance: edge ratio %.2f, damping ratio %.2f -> "
              "inductance %s\n",
              sr.edge_ratio, sr.damping_ratio,
              sr.inductance_significant ? "SIGNIFICANT" : "negligible");
  return 0;
}
