// P2 — the PEEC hot path: relative-geometry kernel memoization and the
// blocked complex LU.
//
// Part 1 times the partial-inductance matrix fill on a uniform skin-depth
// style mesh, memo off vs memo on, single-threaded (rt::SerialRegion), and
// checks the two fills agree element-exactly (the translation-only key's
// contract on a uniform mesh).  Part 2 times complex LU factorisation plus
// a multi-RHS solve, blocked LuDecomposition vs the textbook ReferenceLu,
// and checks the solutions agree to 1e-13 relative.  Output is JSON so CI
// and plotting scripts can consume it directly; the committed baseline
// lives in BENCH_peec.json.
//
// Flags / environment:
//   --smoke               tiny sizes, for the CI tier-1 job (seconds, not
//                         minutes; speedup numbers are not meaningful there)
//   RLCX_BENCH_MESH=N     override the cross-section mesh to N x N cells
//   RLCX_BENCH_LU=N       override the LU system size
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "numeric/lu.h"
#include "numeric/lu_reference.h"
#include "numeric/matrix.h"
#include "numeric/simd.h"
#include "peec/assembly.h"
#include "peec/kernel_batch.h"
#include "peec/mesh.h"
#include "peec/partial_inductance.h"
#include "rt/pool.h"

using namespace rlcx;
using C = std::complex<double>;

namespace {

double now_wall(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic LCG in [-1, 1); benches must not depend on libc rand.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  double next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return 2.0 * static_cast<double>(s_ >> 11) / 9007199254740992.0 - 1.0;
  }

 private:
  std::uint64_t s_;
};

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Uniform nw x nt mesh of a clock-wire-like bar: every pair class repeats
/// across the grid, the geometry the memo is built for.
std::vector<peec::Filament> uniform_mesh(std::size_t nw, std::size_t nt) {
  peec::Bar envelope;
  envelope.axis = peec::Axis::kY;
  envelope.a_min = 0.0;
  envelope.length = 64.0;
  envelope.t_min = 0.0;
  envelope.t_width = 1.0;
  envelope.z_min = 0.0;
  envelope.z_thick = 0.5;
  peec::MeshOptions mo;
  mo.nw = nw;
  mo.nt = nt;
  mo.grading = 1.0;
  std::vector<peec::Filament> fils;
  for (const peec::Bar& b : peec::mesh_cross_section(envelope, mo))
    fils.push_back({b, 1.0, 0.0});
  return fils;
}

struct FillResult {
  double wall_off = 0.0;
  double wall_on = 0.0;
  double hit_rate = 0.0;
  std::size_t kernel_evals_off = 0;
  std::size_t kernel_evals_on = 0;
  std::size_t pair_lookups = 0;
  double max_rel_dev = 0.0;
  std::size_t filaments = 0;
};

FillResult run_fill(std::size_t nw, std::size_t nt) {
  const std::vector<peec::Filament> fils = uniform_mesh(nw, nt);
  rt::SerialRegion serial;  // single-threaded: measure the kernel, not the pool

  FillResult r;
  r.filaments = fils.size();
  peec::PartialOptions opt;

  opt.memo = false;
  peec::FillStats off;
  const auto t0 = std::chrono::steady_clock::now();
  const RealMatrix direct =
      peec::partial_inductance_matrix(fils, opt, nullptr, &off);
  r.wall_off = now_wall(t0);
  r.kernel_evals_off = off.kernel_evals;

  opt.memo = true;
  peec::FillStats on;
  const auto t1 = std::chrono::steady_clock::now();
  const RealMatrix memo =
      peec::partial_inductance_matrix(fils, opt, nullptr, &on);
  r.wall_on = now_wall(t1);
  r.kernel_evals_on = on.kernel_evals;
  r.pair_lookups = on.pair_lookups;
  r.hit_rate = on.hit_rate();

  double scale = 0.0;
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      scale = std::max(scale, std::abs(direct(i, j)));
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      r.max_rel_dev = std::max(
          r.max_rel_dev, std::abs(direct(i, j) - memo(i, j)) / scale);
  return r;
}

struct ColdResult {
  double wall_legacy = 0.0;      ///< scalar libm kernels, pair by pair
  double wall_scalar = 0.0;      ///< batch engine, forced RLCX_SIMD=scalar
  double wall_simd = 0.0;        ///< batch engine, auto dispatch
  const char* simd_mode = "";    ///< what auto resolved to
  std::size_t pairs = 0;         ///< upper-triangle bar pairs per fill
  std::size_t kernel_terms = 0;  ///< chunk-pair kernel terms per fill
  double max_rel_dev = 0.0;      ///< engine (simd) vs legacy, scale-relative
  double simd_vs_scalar_dev = 0.0;  ///< engine simd vs engine scalar (bitwise)
  std::size_t filaments = 0;
};

/// Cold fill: memo disabled, so every upper-triangle pair pays its full
/// kernel evaluation.  This isolates raw kernel throughput — the quantity
/// the batch engine vectorizes — from the memo's class collapsing.  The
/// legacy baseline walks the pairs through the scalar libm kernels
/// (self_partial_chunked / mutual_partial_chunked), the PR-4 hot path;
/// the engine fills run the same geometry through the batch evaluator at
/// forced-scalar and auto-dispatched SIMD modes.
ColdResult run_cold(std::size_t nw, std::size_t nt, int reps) {
  const std::vector<peec::Filament> fils = uniform_mesh(nw, nt);
  rt::SerialRegion serial;
  const std::size_t n = fils.size();
  peec::PartialOptions opt;
  opt.memo = false;

  ColdResult r;
  r.filaments = n;
  r.pairs = n * (n + 1) / 2;
  r.simd_mode = peec::batch_simd_name();

  // Precompute chunk lists once; both paths receive identical chunking.
  std::vector<std::vector<peec::Bar>> chunks(n);
  for (std::size_t i = 0; i < n; ++i)
    chunks[i] = peec::chunk_lengthwise(fils[i].bar, opt.max_aspect);

  RealMatrix legacy(n, n);
  r.wall_legacy = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      legacy(i, i) = peec::self_partial_chunked(chunks[i], opt);
      for (std::size_t j = i + 1; j < n; ++j) {
        const double v = peec::mutual_partial_chunked(
            fils[i].bar, fils[j].bar, chunks[i], chunks[j], opt);
        legacy(i, j) = legacy(j, i) = v;
      }
    }
    r.wall_legacy = std::min(r.wall_legacy, now_wall(t0));
  }

  const auto engine_fill = [&](numeric::SimdMode mode, double* wall) {
    numeric::simd_force_mode(mode);
    RealMatrix out(0, 0);
    *wall = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      out = peec::partial_inductance_matrix(fils, opt);
      *wall = std::min(*wall, now_wall(t0));
    }
    return out;
  };

  const peec::BatchStats b0 = peec::batch_stats_total();
  const RealMatrix scalar_fill =
      engine_fill(numeric::SimdMode::kScalar, &r.wall_scalar);
  const peec::BatchStats b1 = peec::batch_stats_total();
  r.kernel_terms = ((b1.volume_terms + b1.filament_terms) -
                    (b0.volume_terms + b0.filament_terms)) /
                   static_cast<std::size_t>(reps);

  // Auto dispatch: the widest mode this machine supports.
  numeric::simd_force_mode(numeric::simd_mode_from_env(nullptr));
  r.simd_mode = peec::batch_simd_name();
  RealMatrix simd_fill(0, 0);
  {
    double wall = 0.0;
    const numeric::SimdMode best = numeric::simd_mode_from_env(nullptr);
    simd_fill = engine_fill(best, &wall);
    r.wall_simd = wall;
  }
  // Restore the environment policy for whatever runs next.
  numeric::simd_force_mode(
      numeric::simd_mode_from_env(std::getenv("RLCX_SIMD")));

  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      scale = std::max(scale, std::abs(legacy(i, j)));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      r.max_rel_dev = std::max(
          r.max_rel_dev, std::abs(simd_fill(i, j) - legacy(i, j)) / scale);
      r.simd_vs_scalar_dev =
          std::max(r.simd_vs_scalar_dev,
                   std::abs(simd_fill(i, j) - scalar_fill(i, j)));
    }
  return r;
}

struct LuResult {
  double wall_ref = 0.0;
  double wall_blocked = 0.0;
  double max_rel_dev = 0.0;
  std::size_t n = 0;
  std::size_t nrhs = 0;
};

LuResult run_lu(std::size_t n, std::size_t nrhs) {
  Rng rng(20250805);
  Matrix<C> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = C(rng.next(), rng.next());
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += C(0.25, static_cast<double>(n));
  Matrix<C> rhs(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j)
      rhs(i, j) = C(rng.next(), rng.next());

  rt::SerialRegion serial;
  LuResult r;
  r.n = n;
  r.nrhs = nrhs;

  const auto t0 = std::chrono::steady_clock::now();
  const ReferenceLu<C> ref(a);
  const Matrix<C> xr = ref.solve(rhs);
  r.wall_ref = now_wall(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const LuDecomposition<C> blocked(a);
  const Matrix<C> xb = blocked.solve(rhs);
  r.wall_blocked = now_wall(t1);

  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j)
      scale = std::max(scale, std::abs(xr(i, j)));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j)
      r.max_rel_dev =
          std::max(r.max_rel_dev, std::abs(xr(i, j) - xb(i, j)) / scale);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t mesh = static_cast<std::size_t>(
      env_int("RLCX_BENCH_MESH", smoke ? 8 : 16));
  std::vector<std::size_t> lu_sizes =
      smoke ? std::vector<std::size_t>{48, 96}
            : std::vector<std::size_t>{128, 256, 512};
  if (const int n = env_int("RLCX_BENCH_LU", 0); n > 0)
    lu_sizes = {static_cast<std::size_t>(n)};
  const std::size_t lu_nrhs = smoke ? 16 : 64;

  std::fprintf(stderr, "bench_peec_fill: %zux%zu mesh, LU nrhs=%zu%s\n", mesh,
               mesh, lu_nrhs, smoke ? " (smoke)" : "");

  const FillResult fill = run_fill(mesh, mesh);
  // Cold-fill kernel throughput on the 8x8 (64-strip) microstrip mesh —
  // the acceptance case for the batch engine; smoke keeps one rep.
  const ColdResult cold = run_cold(8, 8, smoke ? 1 : 5);
  std::vector<LuResult> lus;
  for (const std::size_t n : lu_sizes) lus.push_back(run_lu(n, lu_nrhs));

  std::printf("{\n  \"experiment\": \"peec_fill\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"fill\": {\n");
  std::printf("    \"filaments\": %zu,\n", fill.filaments);
  std::printf("    \"pair_lookups\": %zu,\n", fill.pair_lookups);
  std::printf("    \"kernel_evals_memo_off\": %zu,\n", fill.kernel_evals_off);
  std::printf("    \"kernel_evals_memo_on\": %zu,\n", fill.kernel_evals_on);
  std::printf("    \"hit_rate\": %.4f,\n", fill.hit_rate);
  std::printf("    \"wall_s_memo_off\": %.4f,\n", fill.wall_off);
  std::printf("    \"wall_s_memo_on\": %.4f,\n", fill.wall_on);
  std::printf("    \"speedup\": %.2f,\n", fill.wall_off / fill.wall_on);
  std::printf("    \"max_rel_dev\": %.3e\n", fill.max_rel_dev);
  std::printf("  },\n");
  std::printf("  \"cold_fill\": {\n");
  std::printf("    \"filaments\": %zu,\n", cold.filaments);
  std::printf("    \"pairs\": %zu,\n", cold.pairs);
  std::printf("    \"kernel_terms\": %zu,\n", cold.kernel_terms);
  std::printf("    \"simd_mode\": \"%s\",\n", cold.simd_mode);
  std::printf("    \"wall_s_legacy\": %.4f,\n", cold.wall_legacy);
  std::printf("    \"wall_s_engine_scalar\": %.4f,\n", cold.wall_scalar);
  std::printf("    \"wall_s_engine_simd\": %.4f,\n", cold.wall_simd);
  std::printf("    \"terms_per_s_legacy\": %.3e,\n",
              static_cast<double>(cold.kernel_terms) / cold.wall_legacy);
  std::printf("    \"terms_per_s_engine_simd\": %.3e,\n",
              static_cast<double>(cold.kernel_terms) / cold.wall_simd);
  std::printf("    \"speedup_engine_scalar\": %.2f,\n",
              cold.wall_legacy / cold.wall_scalar);
  std::printf("    \"speedup_engine_simd\": %.2f,\n",
              cold.wall_legacy / cold.wall_simd);
  std::printf("    \"max_rel_dev_vs_legacy\": %.3e,\n", cold.max_rel_dev);
  std::printf("    \"simd_vs_scalar_dev\": %.3e\n", cold.simd_vs_scalar_dev);
  std::printf("  },\n");
  std::printf("  \"lu\": [\n");
  for (std::size_t i = 0; i < lus.size(); ++i) {
    const LuResult& lu = lus[i];
    std::printf("    {\"n\": %zu, \"nrhs\": %zu, "
                "\"wall_s_reference\": %.4f, \"wall_s_blocked\": %.4f, "
                "\"speedup\": %.2f, \"max_rel_dev\": %.3e}%s\n",
                lu.n, lu.nrhs, lu.wall_ref, lu.wall_blocked,
                lu.wall_ref / lu.wall_blocked, lu.max_rel_dev,
                i + 1 < lus.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  // Correctness gates; the speedup numbers are informational (they depend
  // on the machine), the agreement bounds are not.
  if (fill.max_rel_dev != 0.0) {
    std::fprintf(stderr, "FAIL: memo fill deviates from direct fill\n");
    return 1;
  }
  // SIMD modes are bit-identical by construction (docs/performance.md
  // "Batched kernel evaluation"); any deviation at all is a build bug
  // (contraction or reassociation leaked into a kernel TU).
  if (cold.simd_vs_scalar_dev != 0.0) {
    std::fprintf(stderr, "FAIL: SIMD engine fill deviates from scalar mode\n");
    return 1;
  }
  // Engine vs the legacy libm kernels: same math, different transcendental
  // implementations — agreement is bounded by the chunked-sum cancellation
  // noise floor, one decade above the per-bracket ~1e-8.
  if (cold.max_rel_dev > 1e-6) {
    std::fprintf(stderr, "FAIL: batch engine deviates from legacy kernels\n");
    return 1;
  }
  for (const LuResult& lu : lus)
    if (lu.max_rel_dev > 1e-13) {
      std::fprintf(stderr, "FAIL: blocked LU deviates beyond 1e-13 at n=%zu\n",
                   lu.n);
      return 1;
    }
  return 0;
}
