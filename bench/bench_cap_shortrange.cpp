// A6 — Section II's short-range/long-range contrast, verified numerically:
//
// "the capacitive effect is a short-range effect in the sense that for a
// block, only the mutual capacitance between adjacent traces are important
// ... we are able to reduce the n-trace capacitance problem to a number of
// 3-trace subproblems.  The inductive effect, however, is a long-range
// effect."
//
// The FD field solver provides the full n-trace capacitance matrix; the
// PEEC solver the full inductance matrix.  Both are compared against their
// nearest-neighbour / pairwise reductions.
#include <cstdio>

#include "cap/fd2d.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== A6 / Section II: capacitance is short-range, inductance "
              "is long-range ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block arr = geom::uniform_array(tech, 6, um(1000), 5, um(4),
                                              um(2));

  // --- capacitance: full 5-trace FD solve ---
  cap::Fd2dOptions copt;
  copt.cell = 0.5e-6;
  const RealMatrix c = cap::fd_block_capacitance(arr, copt);

  std::printf("5-trace array (4 um wires, 2 um spacing): normalised "
              "couplings from T3\n\n");
  std::printf("%14s %18s %18s\n", "neighbour", "C / C(adjacent)",
              "Lp / Lp(adjacent)");

  solver::SolveOptions lopt;
  lopt.frequency = solver::significant_frequency(100e-12);
  const solver::PartialResult lp = solver::extract_partial(arr, lopt);

  const double c_adj = -c(2, 3);
  const double l_adj = lp.inductance(2, 3);
  for (std::size_t j = 3; j < 5; ++j) {
    std::printf("%11zu-hop %18.4f %18.4f\n", j - 2, -c(2, j) / c_adj,
                lp.inductance(2, j) / l_adj);
  }

  // --- the reduction error this justifies ---
  std::printf("\n3-trace subproblem reduction vs full 5-trace capacitance "
              "solve:\n");
  std::printf("%8s %16s %16s %8s\n", "trace", "cg full (fF/mm)",
              "cg 3-trace", "err %");
  const cap::FdCapResult red = cap::extract_cap_fd(arr, copt);
  for (std::size_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 5; ++j) row += c(i, j);
    std::printf("%8zu %16.3f %16.3f %8.2f\n", i + 1, row * 1e15 * 1e-3,
                red.cg[i] * 1e15 * 1e-3, 100.0 * (red.cg[i] - row) / row);
  }

  std::printf("\ncapacitive coupling collapses ~an order of magnitude per "
              "hop (screening by\nthe intervening metal), so 3-trace "
              "subproblems suffice; inductive coupling\ndecays only "
              "logarithmically, which is why every Lp pair is kept and the\n"
              "mutual table is the big one.\n");
  return 0;
}
