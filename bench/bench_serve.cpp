// Warm daemon vs cold CLI: the latency case for `rlcx serve`.
//
// A one-shot CLI extraction pays process start, table-cache open and
// bundle deserialisation on every invocation; the daemon pays them once
// and answers from its warm table store.  This bench measures both sides
// of that trade for the same request — a cached-table extract lookup —
// and reports p50/p99 latency and throughput at 1/4/16/64 concurrent
// clients.  Output is JSON; the committed reference run lives in
// BENCH_serve.json (acceptance: warm p50 >= 10x below cold CLI p50).
//
// Modes:
//   (default)             self-contained: starts an in-process daemon on
//                         a temp socket, measures, drains.  Cold-CLI
//                         timing spawns the real binary (--rlcx PATH, or
//                         RLCX_BIN, default build/src/cli/rlcx; skipped
//                         with a note when absent).
//   --smoke --socket S    load-check an EXTERNAL daemon: 100 mixed
//                         requests over 4 connections (valid, warm,
//                         disallowed, malformed-empty), verify every
//                         documented status, then send shutdown.  Exit
//                         nonzero on any protocol violation — the CI
//                         serve job runs this under ASan.
//   --hostile --socket S  abuse an EXTERNAL daemon with 100 mixed hostile
//                         clients — mid-frame closes, slow-loris dribbles,
//                         garbage magic, connection floods — then verify
//                         it still answers ping and health.  The daemon is
//                         left running (CI follows with --smoke, which
//                         shuts it down).  Exit nonzero if the daemon
//                         stopped answering.
//   --pressure            self-contained memory-pressure run: baseline
//                         small-request latency, then a tight process
//                         budget with oversized requests mixed in.  Every
//                         oversized request must draw a status-7 refusal
//                         at admission, small requests must keep
//                         succeeding (their p50/p99 under pressure is
//                         reported against the baseline), and one
//                         injected mid-build budget failure must degrade
//                         dense->hmat rather than fail.  The JSON goes
//                         into BENCH_serve.json as the "pressure" object.
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "res/budget.h"
#include "run/fault_injection.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace rlcx;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

std::vector<std::string> extract_argv() {
  // Signals-only bus: a pure cached-table lookup, no screening solves —
  // the headline workload of the warm store.
  return {"extract",  "--structure", "cpw",        "--length-um", "6000",
          "--traces", "s:10,s:5",    "--spacings", "2"};
}

/// One timed cold CLI invocation: fork/exec the real binary, wall-clock
/// the whole process. Returns -1 when the spawn fails.
double cold_cli_ms(const std::string& rlcx_bin,
                   const std::string& cache_dir) {
  std::vector<std::string> argv_s = extract_argv();
  argv_s.insert(argv_s.begin(), rlcx_bin);
  argv_s.push_back("--table-cache");
  argv_s.push_back(cache_dir);
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& a : argv_s) argv.push_back(a.data());
  argv.push_back(nullptr);

  const Clock::time_point t0 = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) return -1.0;
  if (pid == 0) {
    ::freopen("/dev/null", "w", stdout);
    ::freopen("/dev/null", "w", stderr);
    ::execv(rlcx_bin.c_str(), argv.data());
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1.0;
  return ms_since(t0);
}

struct Level {
  int clients = 0;
  std::size_t requests = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
};

Level run_level(const std::string& socket, int clients,
                std::size_t per_client) {
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(socket);
      for (std::size_t i = 0; i < per_client; ++i) {
        const Clock::time_point r0 = Clock::now();
        const serve::Response resp = client.request(extract_argv());
        if (resp.status != 0)
          throw std::runtime_error("request failed: " + resp.err);
        lat[static_cast<std::size_t>(c)].push_back(ms_since(r0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = ms_since(t0) / 1000.0;
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  Level lvl;
  lvl.clients = clients;
  lvl.requests = all.size();
  lvl.p50_ms = percentile(all, 0.50);
  lvl.p99_ms = percentile(all, 0.99);
  lvl.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  return lvl;
}

int run_bench(const std::string& rlcx_bin) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "rlcx_bench_serve")
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const std::string cache_dir = root + "/cache";
  const std::string socket = root + "/serve.sock";

  // Characterise once so both sides measure pure lookup cost.
  {
    std::vector<std::string> argv = extract_argv();
    argv.push_back("--table-cache");
    argv.push_back(cache_dir);
    std::ostringstream out, err;
    if (cli::run(argv, out, err) != 0) {
      std::fprintf(stderr, "precharacterisation failed:\n%s",
                   err.str().c_str());
      return 1;
    }
  }

  serve::ServeConfig cfg;
  cfg.cache_dir = cache_dir;
  cfg.socket_path = socket;
  cfg.max_active = 8;
  cfg.queue_depth = 256;
  std::ostringstream daemon_log;
  serve::Server server(cfg, daemon_log);
  std::thread daemon([&] { server.run_socket(); });
  for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Prime the warm store so measurements see steady state.
  {
    serve::Client client(socket);
    client.request(extract_argv());
  }

  std::vector<Level> levels;
  for (const int clients : {1, 4, 16, 64})
    levels.push_back(
        run_level(socket, clients, clients >= 16 ? 16 : 64));

  // Cold CLI: true process starts against the same cache.
  std::vector<double> cold;
  const bool have_bin = std::filesystem::exists(rlcx_bin);
  if (have_bin) {
    for (int i = 0; i < 7; ++i) {
      const double ms = cold_cli_ms(rlcx_bin, cache_dir);
      if (ms >= 0.0) cold.push_back(ms);
    }
  }

  {
    serve::Client client(socket);
    client.request({"shutdown"});
  }
  daemon.join();
  std::filesystem::remove_all(root);

  const double cold_p50 = percentile(cold, 0.50);
  const double warm_p50 = levels.front().p50_ms;
  std::printf("{\n  \"experiment\": \"serve\",\n  \"smoke\": false,\n");
  if (!cold.empty())
    std::printf("  \"cold_cli\": {\"runs\": %zu, \"p50_ms\": %.3f},\n",
                cold.size(), cold_p50);
  else
    std::printf("  \"cold_cli\": null,\n");
  std::printf("  \"warm_daemon\": [\n");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const Level& l = levels[i];
    std::printf("    {\"clients\": %d, \"requests\": %zu, \"p50_ms\": "
                "%.3f, \"p99_ms\": %.3f, \"throughput_rps\": %.1f}%s\n",
                l.clients, l.requests, l.p50_ms, l.p99_ms,
                l.throughput_rps, i + 1 < levels.size() ? "," : "");
  }
  std::printf("  ],\n");
  if (!cold.empty() && warm_p50 > 0.0)
    std::printf("  \"speedup_p50\": %.1f\n", cold_p50 / warm_p50);
  else
    std::printf("  \"speedup_p50\": null\n");
  std::printf("}\n");
  if (cold.empty())
    std::fprintf(stderr,
                 "note: rlcx binary not found at %s — cold-CLI side "
                 "skipped (set RLCX_BIN or --rlcx)\n",
                 rlcx_bin.c_str());
  return 0;
}

/// --smoke: drive an external daemon with a mixed request load and
/// verify every documented behaviour; used by the CI serve job.
int run_smoke(const std::string& socket, std::size_t total_requests) {
  // The daemon may still be binding its socket.
  for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  constexpr int kThreads = 4;
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        serve::Client client(socket);
        const std::size_t share =
            total_requests / kThreads +
            (static_cast<std::size_t>(t) <
                     total_requests % kThreads
                 ? 1u
                 : 0u);
        for (std::size_t i = 0; i < share; ++i) {
          switch (i % 5) {
            case 0: {
              if (client.request({"ping"}).out != "pong\n") ++failures;
              break;
            }
            case 1: {
              const serve::Response r = client.request(extract_argv());
              if (r.status != 0) ++failures;
              break;
            }
            case 2: {
              if (client.request({"stats"}).status != 0) ++failures;
              break;
            }
            case 3: {  // disallowed command -> status 2 error frame
              const serve::Response r = client.request({"batch"});
              if (r.status != 2 ||
                  client.last_kind() != serve::FrameKind::kError)
                ++failures;
              break;
            }
            default: {  // malformed empty request; connection survives
              const serve::Response r = client.request({});
              if (r.status != 2 ||
                  client.last_kind() != serve::FrameKind::kError)
                ++failures;
              break;
            }
          }
          ++done;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "smoke client %d: %s\n", t, e.what());
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  bool drained = false;
  try {
    serve::Client client(socket);
    drained = client.request({"shutdown"}).out == "draining\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smoke shutdown: %s\n", e.what());
  }
  const std::size_t failed = failures.load();
  std::printf("{\"experiment\": \"serve\", \"smoke\": true, "
              "\"requests\": %zu, \"failures\": %zu, \"drained\": %s}\n",
              done.load(), failed, drained ? "true" : "false");
  return (failed == 0 && drained) ? 0 : 1;
}

/// Raw AF_UNIX connect for clients that deliberately violate the
/// protocol; returns -1 when the daemon (or kernel) refuses.
int raw_connect(const std::string& socket) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, socket.c_str(), socket.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// --hostile: every class of client the daemon must shrug off.  None of
/// these speak the protocol to completion; the only pass criterion is
/// that a well-behaved client still gets answers afterwards.
int run_hostile(const std::string& socket, std::size_t total_clients) {
  for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const std::string ping_frame =
      serve::encode_frame(serve::FrameKind::kRequest, "ping");
  constexpr int kThreads = 4;
  std::atomic<std::size_t> launched{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t share =
          total_clients / kThreads +
          (static_cast<std::size_t>(t) < total_clients % kThreads ? 1u
                                                                  : 0u);
      for (std::size_t i = 0; i < share; ++i) {
        switch (i % 4) {
          case 0: {  // mid-frame close: header promises bytes, then gone
            const int fd = raw_connect(socket);
            if (fd < 0) break;
            (void)!::write(fd, ping_frame.data(), 5);
            ::close(fd);
            break;
          }
          case 1: {  // slow loris: a dribble, a stall, then vanish
            const int fd = raw_connect(socket);
            if (fd < 0) break;
            (void)!::write(fd, ping_frame.data(), 2);
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            ::close(fd);
            break;
          }
          case 2: {  // garbage magic: the daemon replies error and closes
            const int fd = raw_connect(socket);
            if (fd < 0) break;
            (void)!::write(fd, "XXXXXXXX", 8);
            char reply[64];
            (void)!::read(fd, reply, sizeof reply);
            ::close(fd);
            break;
          }
          default: {  // connect flood: a burst of silent connections,
                      // enough to brush the process fd ceiling under the
                      // CI job's lowered ulimit
            int burst[16];
            for (int& fd : burst) fd = raw_connect(socket);
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            for (const int fd : burst)
              if (fd >= 0) ::close(fd);
            break;
          }
        }
        ++launched;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The daemon must still be standing and answering.
  bool ping_ok = false;
  bool health_ok = false;
  try {
    serve::Client client(socket);
    ping_ok = client.request({"ping"}).out == "pong\n";
    const serve::Response health = client.request({"health"});
    health_ok = health.status == 0 &&
                health.out.substr(0, 8) == "healthy\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hostile verify: %s\n", e.what());
  }
  std::printf("{\"experiment\": \"serve\", \"hostile\": true, "
              "\"clients\": %zu, \"ping_ok\": %s, \"health_ok\": %s}\n",
              launched.load(), ping_ok ? "true" : "false",
              health_ok ? "true" : "false");
  return (ping_ok && health_ok) ? 0 : 1;
}

/// --pressure: the resource-governance story under load.  A tight budget
/// must split traffic cleanly — oversized requests refused at admission
/// with status 7, small requests unaffected — and an injected mid-build
/// budget failure must degrade, not fail.
int run_pressure() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "rlcx_bench_pressure")
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const std::string cache_dir = root + "/cache";
  const std::string socket = root + "/serve.sock";

  // Characterise the small request's tables once, unlimited.
  res::Budget::global().set_limit(0);
  {
    std::vector<std::string> argv = extract_argv();
    argv.push_back("--table-cache");
    argv.push_back(cache_dir);
    std::ostringstream out, err;
    if (cli::run(argv, out, err) != 0) {
      std::fprintf(stderr, "precharacterisation failed:\n%s",
                   err.str().c_str());
      return 1;
    }
  }

  serve::ServeConfig cfg;
  cfg.cache_dir = cache_dir;
  cfg.socket_path = socket;
  cfg.max_active = 4;
  cfg.queue_depth = 64;
  std::ostringstream daemon_log;
  serve::Server server(cfg, daemon_log);
  std::thread daemon([&] { server.run_socket(); });
  for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    serve::Client client(socket);
    client.request(extract_argv());  // prime the warm store
  }

  // Phase 1: baseline small-request latency, unlimited budget.
  const Level baseline = run_level(socket, 2, 100);

  // Phase 2: a tight budget.  Small requests (default 4-point grid) fit
  // comfortably; the oversized request's 64-point grid estimate (~270 MB)
  // can never fit, so admission must refuse it with status 7.
  constexpr std::uint64_t kBudgetMib = 64;
  res::Budget::global().set_limit(kBudgetMib * 1024 * 1024);
  std::vector<std::string> oversized = extract_argv();
  oversized.push_back("--points");
  oversized.push_back("64");

  constexpr std::size_t kOversized = 20;
  std::atomic<std::size_t> refused{0};
  std::atomic<std::size_t> small_failures{0};
  std::vector<std::vector<double>> small_lat(2);
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(socket);
      for (std::size_t i = 0; i < 100; ++i) {
        const Clock::time_point r0 = Clock::now();
        if (client.request(extract_argv()).status != 0) ++small_failures;
        small_lat[static_cast<std::size_t>(c)].push_back(ms_since(r0));
      }
    });
  }
  threads.emplace_back([&] {
    serve::Client client(socket);
    for (std::size_t i = 0; i < kOversized; ++i) {
      const serve::Response r = client.request(oversized);
      if (r.status == 7 &&
          r.err.find("resource-exhausted") != std::string::npos)
        ++refused;
    }
  });
  for (std::thread& t : threads) t.join();
  const double pressure_wall_s = ms_since(t0) / 1000.0;
  std::vector<double> all_small;
  for (const auto& v : small_lat)
    all_small.insert(all_small.end(), v.begin(), v.end());
  const double p50 = percentile(all_small, 0.50);
  const double p99 = percentile(all_small, 0.99);

  // Phase 3: a budget failure in the middle of a live characterisation
  // (fresh cache key) must degrade dense->hmat, not fail the request.
  // Per-request alloc_fail order: 1 = admission estimate, 2 = table-grid
  // reservation, 3 = the first grid point's dense-path probe.
  const std::uint64_t degradations_before =
      res::Budget::global().stats().degradations;
  run::FaultInjector::global().set_schedule("alloc_fail:3");
  bool degrade_ok = false;
  {
    serve::Client client(socket);
    std::vector<std::string> fresh = extract_argv();
    // A different characterisation grid => a new content address, so the
    // tables build live under the tight budget.
    fresh.push_back("--points");
    fresh.push_back("5");
    degrade_ok = client.request(fresh).status == 0;
  }
  run::FaultInjector::global().clear();
  const std::uint64_t degradations =
      res::Budget::global().stats().degradations - degradations_before;

  const std::size_t admission_refused = server.admission().stats().refused;
  {
    serve::Client client(socket);
    client.request({"shutdown"});
  }
  daemon.join();
  std::filesystem::remove_all(root);
  res::Budget::global().set_limit(0);

  const double refusal_rate =
      static_cast<double>(refused.load()) / kOversized;
  std::printf(
      "{\n  \"experiment\": \"serve\",\n  \"pressure\": true,\n"
      "  \"budget_mib\": %llu,\n"
      "  \"baseline_small\": {\"requests\": %zu, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f},\n"
      "  \"pressure_small\": {\"requests\": %zu, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"failures\": %zu, \"wall_s\": %.2f},\n"
      "  \"oversized\": {\"requests\": %zu, \"refused\": %zu, "
      "\"refusal_rate\": %.2f},\n"
      "  \"admission_refused\": %zu,\n"
      "  \"degradations\": %llu,\n"
      "  \"degrade_request_ok\": %s\n}\n",
      static_cast<unsigned long long>(kBudgetMib), baseline.requests,
      baseline.p50_ms, baseline.p99_ms, all_small.size(), p50, p99,
      small_failures.load(), pressure_wall_s, kOversized, refused.load(),
      refusal_rate, admission_refused,
      static_cast<unsigned long long>(degradations),
      degrade_ok ? "true" : "false");
  const bool pass = small_failures.load() == 0 &&
                    refused.load() == kOversized && degradations >= 1 &&
                    degrade_ok;
  if (!pass)
    std::fprintf(stderr, "pressure run failed acceptance\n%s",
                 daemon_log.str().c_str());
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool hostile = false;
  bool pressure = false;
  std::string socket;
  std::size_t requests = 100;
  std::string rlcx_bin = "build/src/cli/rlcx";
  if (const char* env = std::getenv("RLCX_BIN")) rlcx_bin = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--hostile") == 0) hostile = true;
    else if (std::strcmp(argv[i], "--pressure") == 0) pressure = true;
    else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc)
      socket = argv[++i];
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--rlcx") == 0 && i + 1 < argc)
      rlcx_bin = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--rlcx PATH] | --pressure | "
                   "(--smoke | --hostile) --socket PATH [--requests N]\n");
      return 2;
    }
  }
  if (pressure) return run_pressure();
  if (smoke || hostile) {
    if (socket.empty()) {
      std::fprintf(stderr, "--smoke/--hostile require --socket PATH\n");
      return 2;
    }
    return hostile ? run_hostile(socket, requests)
                   : run_smoke(socket, requests);
  }
  return run_bench(rlcx_bin);
}
