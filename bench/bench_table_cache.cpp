// Cold vs warm table pre-characterisation through the persistent cache.
//
// Section III's premise is that the field-solver sweep ("a few hours" in
// the paper, against Raphael RI3) is paid once and every later extraction
// is a lookup.  This bench quantifies our version of that premise: build
// the default clock grid cold (every 2-trace PEEC solve runs), then again
// warm through the on-disk cache (zero solves, one binary read), and
// report the gap.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/table_cache.h"
#include "geom/technology.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rlcx_bench_cache")
          .string();
  const geom::Technology tech = geom::Technology::generic_025um();
  const core::TableGrid grid = core::default_clock_grid();
  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(200e-12);

  std::printf("table cache cold/warm, default_clock_grid "
              "(%zu x %zu x %zu), coplanar partial-L, f = %.2f GHz\n\n",
              grid.widths.size(), grid.spacings.size(),
              grid.lengths.size(), units::to_ghz(opt.frequency));

  core::TableCache cache(dir);
  cache.purge();  // a true cold start even across bench re-runs

  core::reset_table_build_solve_count();
  auto t0 = std::chrono::steady_clock::now();
  const core::InductanceTables cold = core::build_tables_cached(
      tech, 6, geom::PlaneConfig::kNone, grid, opt, cache, /*threads=*/0);
  const double cold_ms = ms_since(t0);
  const std::size_t cold_solves = core::table_build_solve_count();

  // Warm: a fresh cache instance on the same directory, as a new process
  // would see it.  Best of five to report steady-state lookup cost.
  double warm_ms = 1e300;
  std::size_t warm_solves = 0;
  for (int rep = 0; rep < 5; ++rep) {
    core::TableCache warm_cache(dir);
    core::reset_table_build_solve_count();
    t0 = std::chrono::steady_clock::now();
    const core::InductanceTables warm = core::build_tables_cached(
        tech, 6, geom::PlaneConfig::kNone, grid, opt, warm_cache);
    warm_ms = std::min(warm_ms, ms_since(t0));
    warm_solves = core::table_build_solve_count();
    if (warm.mutual.values() != cold.mutual.values()) {
      std::printf("ERROR: warm tables differ from cold build\n");
      return 1;
    }
  }

  std::uint64_t entry_bytes = 0;
  for (const core::TableCache::Entry& e : cache.list())
    entry_bytes += e.bytes;

  std::printf("%-28s %12s %12s\n", "", "cold", "warm");
  std::printf("%-28s %12.1f %12.3f\n", "build_tables_cached [ms]", cold_ms,
              warm_ms);
  std::printf("%-28s %12zu %12zu\n", "PEEC field solves", cold_solves,
              warm_solves);
  std::printf("\nwarm/cold speedup: %.0fx  (entry: %llu bytes on disk)\n",
              cold_ms / warm_ms,
              static_cast<unsigned long long>(entry_bytes));
  std::printf("paper analogue: 'a few hours' of RI3 pre-computation, "
              "reusable ever after;\nhere the reusable asset is a "
              "content-addressed cache entry, so any change to\nthe "
              "technology stack, grid or frequency re-characterises "
              "automatically.\n");
  return 0;
}
