// A1 (ablation) — frequency dependence: skin/proximity effect on the
// Figure 1 net and the driving-point impedance the clock buffer sees.
//
// The paper runs its extractor at the significant frequency 0.32/t_r
// because "the inductance depends on the skin depth, which is a function
// of frequency".  This bench shows that dependence explicitly — the
// R(f)/L(f) curves a FastHenry-class solver produces — and how much the
// single-frequency table approximation matters across rise times.
#include <cstdio>
#include <complex>
#include <vector>

#include "ckt/ac.h"
#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/mesh.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== A1 / ablation: frequency-dependent extraction ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block net =
      geom::coplanar_waveguide(tech, 6, um(2000), um(10), um(5), um(1));

  std::printf("loop R and L of a 2000 um Figure-1 section vs frequency:\n");
  std::printf("%12s %12s %12s %14s %16s\n", "f (GHz)", "R (ohm)", "L (nH)",
              "skin depth um", "t_rise equiv ps");
  // The sweep points are independent solves; sweep_loop fans them across
  // the rt pool and returns them in input order, each bit-identical to a
  // standalone extract_loop call.
  const std::vector<double> freqs = {0.05e9, 0.2e9, 0.8e9, 1.6e9, 3.2e9,
                                     6.4e9, 12.8e9, 25.6e9};
  solver::SolveOptions sweep_base;
  sweep_base.max_filaments_per_dim = 5;
  const std::vector<solver::LoopResult> sweep =
      solver::sweep_loop(net, sweep_base, freqs);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double f = freqs[i];
    const solver::LoopResult& r = sweep[i];
    std::printf("%12.2f %12.4f %12.4f %14.3f %16.1f\n", units::to_ghz(f),
                r.resistance(0, 0), units::to_nh(r.inductance(0, 0)),
                units::to_um(peec::skin_depth(tech.layer(6).rho, f)),
                units::to_ps(solver::rise_time_for_frequency(f)));
  }
  std::printf("\nR rises and L falls with frequency as current crowds to "
              "the conductor\nedges — why tables are built at the "
              "significant frequency of the design's\nfastest edge, not at "
              "DC.\n");

  // Error of the single-frequency table when the design's rise time moves.
  std::printf("\nsingle-frequency table error vs actual rise time (table "
              "built at 3.2 GHz):\n");
  std::printf("%14s %14s %14s %10s\n", "t_rise (ps)", "L table nH",
              "L at f_sig nH", "err %");
  solver::SolveOptions tab_opt;
  tab_opt.frequency = 3.2e9;
  const double l_table =
      solver::extract_loop(net, tab_opt).inductance(0, 0);
  for (double tr : {50e-12, 100e-12, 200e-12, 400e-12, 800e-12}) {
    solver::SolveOptions opt;
    opt.frequency = solver::significant_frequency(tr);
    opt.max_filaments_per_dim = 5;
    const double l_true = solver::extract_loop(net, opt).inductance(0, 0);
    std::printf("%14.0f %14.4f %14.4f %10.2f\n", units::to_ps(tr),
                units::to_nh(l_table), units::to_nh(l_true),
                100.0 * (l_table - l_true) / l_true);
  }

  // Driving-point impedance of the full RLC netlist vs the RC netlist.
  std::printf("\n|Z_in(f)| seen by the clock buffer (6000 um net):\n");
  const geom::Block full =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));
  solver::SolveOptions sopt;
  sopt.frequency = 1.6e9;
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(full, lmodel);

  auto build = [&](bool with_l) {
    ckt::Netlist nl;
    const ckt::NodeId in = nl.add_node("in");
    core::LadderOptions lopt;
    lopt.sections = 10;
    lopt.include_inductance = with_l;
    const auto outs = core::stamp_segment(nl, full, seg, {in}, lopt);
    nl.add_capacitor(outs[0], ckt::kGround, 200e-15);
    return nl;
  };
  const ckt::Netlist rlc = build(true);
  const ckt::Netlist rc = build(false);

  std::printf("%12s %14s %14s\n", "f (GHz)", "|Z| RLC (ohm)",
              "|Z| RC (ohm)");
  for (double f = 0.25e9; f <= 16e9; f *= 2.0) {
    const auto z1 = ckt::ac_input_impedance(rlc, f, rlc.node("in"));
    const auto z0 = ckt::ac_input_impedance(rc, f, rc.node("in"));
    std::printf("%12.2f %14.2f %14.2f\n", units::to_ghz(f), std::abs(z1),
                std::abs(z0));
  }
  std::printf("\nthe RLC input impedance flattens toward the line impedance "
              "and resonates;\nthe RC model keeps falling as 1/(wC) — "
              "another face of Figures 2-3.\n");
  return 0;
}
