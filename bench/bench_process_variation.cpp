// E7 — Section V: "Since inductance is not sensitive to process variation
// ... we can combine the nominal inductance with the statistically
// generated RC in the formulation of RLC netlist".
//
// Monte-Carlo over Gaussian width/thickness/height variation, pushing the
// sampled geometry through both the closed-form RC models and the
// inductance field solver, then comparing 3-sigma relative spreads.
#include <cstdio>

#include "cap/statistical.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== E7 / Section V: process-variation sensitivity of R, C, "
              "L ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();

  const double w = um(4), t = um(2), s = um(2);
  const double h = tech.dielectric_gap(5, 6);
  const double rho = tech.layer(6).rho;

  cap::ProcessVariation pv;  // 5% w, 5% t, 8% h (1 sigma)
  const int samples = 60;

  std::printf("geometry: w=4 um, t=2 um, s=2 um;  sigma_w=%.0f%%, "
              "sigma_t=%.0f%%, sigma_h=%.0f%%\n%d Monte-Carlo samples\n\n",
              100 * pv.sigma_w, 100 * pv.sigma_t, 100 * pv.sigma_h, samples);

  const cap::RcDistribution rc = cap::monte_carlo_rc(
      w, t, h, s, rho, tech.eps_r(), pv, samples, 42);

  // Inductance through the solver: the partial inductances the tables store
  // (self and mutual Lp), under the same geometry sample.  Lp depends only
  // logarithmically on the cross-section, which is where the paper's
  // insensitivity claim ([5]) comes from.
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);
  auto sampled_block = [&](const cap::GeometrySample& g) {
    const double ws = w * g.w_scale;
    const double ss = s - (ws - w);
    std::vector<geom::Trace> traces{
        {geom::TraceRole::kSignal, ws, -0.5 * (ws + ss), "a"},
        {geom::TraceRole::kSignal, ws, 0.5 * (ws + ss), "b"},
    };
    // Thickness variation enters through a scaled layer stack.
    geom::Technology scaled(
        {{4, tech.layer(4).thickness, 0.0, rho},
         {6, t * g.t_scale, tech.layer(4).thickness + h * g.h_scale, rho}},
        tech.eps_r());
    return std::make_pair(std::move(scaled), std::move(traces));
  };
  const RunningStats l_stats = cap::monte_carlo_metric(
      pv, samples,
      [&](const cap::GeometrySample& g) {
        auto [scaled, traces] = sampled_block(g);
        const geom::Block blk(&scaled, 6, um(1000), traces,
                              geom::PlaneConfig::kNone);
        return solver::extract_partial(blk, sopt).inductance(0, 0);
      },
      42);
  const RunningStats m_stats = cap::monte_carlo_metric(
      pv, samples,
      [&](const cap::GeometrySample& g) {
        auto [scaled, traces] = sampled_block(g);
        const geom::Block blk(&scaled, 6, um(1000), traces,
                              geom::PlaneConfig::kNone);
        return solver::extract_partial(blk, sopt).inductance(0, 1);
      },
      42);

  std::printf("%-26s %14s %14s %12s\n", "quantity", "mean", "3sig spread",
              "rel 3sigma");
  std::printf("%-26s %11.2f /m %11.2f /m %10.1f %%\n", "resistance (ohm/m)",
              rc.r.mean(), 3.0 * rc.r.stddev(),
              100.0 * rc.r.rel_spread3());
  std::printf("%-26s %11.2f pF/m %8.2f pF/m %10.1f %%\n",
              "capacitance (pF/m)", 1e12 * rc.c.mean(),
              3e12 * rc.c.stddev(), 100.0 * rc.c.rel_spread3());
  std::printf("%-26s %11.4f nH %10.4f nH %10.1f %%\n",
              "self Lp (nH)", units::to_nh(l_stats.mean()),
              3.0 * units::to_nh(l_stats.stddev()),
              100.0 * l_stats.rel_spread3());
  std::printf("%-26s %11.4f nH %10.4f nH %10.1f %%\n",
              "mutual Lp (nH)", units::to_nh(m_stats.mean()),
              3.0 * units::to_nh(m_stats.stddev()),
              100.0 * m_stats.rel_spread3());

  const double ratio_r = rc.r.rel_spread3() / l_stats.rel_spread3();
  const double ratio_c = rc.c.rel_spread3() / l_stats.rel_spread3();
  std::printf("\nL is %.0fx less sensitive than R and %.0fx less sensitive "
              "than C.\n",
              ratio_r, ratio_c);
  std::printf("paper's conclusion holds: use the nominal inductance with "
              "statistically\ngenerated worst-case RC [4] when studying "
              "process impact on skew.\n");

  // Corners, as [4] would emit them.
  const cap::RcCorners corners =
      cap::rc_corners(w, t, h, s, rho, tech.eps_r(), pv);
  std::printf("\n3-sigma RC delay corners (per mm of wire):\n");
  std::printf("%-10s %12s %14s %14s\n", "corner", "R (ohm/mm)", "C (fF/mm)",
              "RC (ps/mm^2)");
  auto row = [](const char* name, const cap::RcPoint& p) {
    std::printf("%-10s %12.2f %14.2f %14.3f\n", name, p.r_pul * 1e-3,
                p.c_pul * 1e15 * 1e-3, p.r_pul * p.c_pul * 1e12 * 1e-6);
  };
  row("best", corners.best);
  row("nominal", corners.nominal);
  row("worst", corners.worst);

  // Temperature behaves the same way: resistance moves, reactances do not.
  std::printf("\ntemperature corners (rho(T) = rho25 (1 + 0.39%%/K dT)):\n");
  std::printf("%-12s %14s %20s %20s\n", "T (C)", "R (ohm/mm)",
              "L (unchanged, nH/mm)", "C (unchanged, fF/mm)");
  for (double celsius : {-40.0, 25.0, 105.0}) {
    const geom::Technology hot = tech.at_temperature(celsius);
    const double r_pul = hot.layer(6).rho / (w * t);
    std::printf("%-12.0f %14.2f %20s %20s\n", celsius, r_pul * 1e-3,
                "=", "=");
  }
  std::printf("(inductance and capacitance depend on geometry and the "
              "dielectric only, so the\nnominal L/C tables serve every "
              "temperature corner — one more reason tables pay off)\n");
  return 0;
}
