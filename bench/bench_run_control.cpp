// R1 — run-controller overhead: what does a checkpoint cost?
//
// The cooperative cancellation contract puts run::checkpoint() at every rt
// chunk claim, SOR sweep, transient step and grid-point solve, so its cost
// bounds how finely the hot paths may checkpoint.  Three cases matter:
//
//   idle      no ScopedRunControl installed (the common library case) —
//             one relaxed atomic load
//   armed     a control installed, nothing requested — load + flag check
//             (+ a steady_clock read when a deadline is set)
//   end2end   a real table build with and without an installed control —
//             the observable overhead on the paper's workload
//
// Output is JSON rows so CI can track regressions.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/table_builder.h"
#include "geom/technology.h"
#include "numeric/units.h"
#include "run/control.h"

using namespace rlcx;
using units::um;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// ns per checkpoint() call over `iters` calls in the current regime.
double checkpoint_ns(std::size_t iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) run::checkpoint("bench");
  return 1e9 * seconds_since(t0) / static_cast<double>(iters);
}

core::TableGrid small_grid() {
  core::TableGrid g;
  g.widths = {um(1), um(2), um(4), um(8)};
  g.spacings = {um(0.5), um(1), um(4)};
  g.lengths = {um(200), um(600), um(1000)};
  return g;
}

/// Best-of-three serial build wall time in the current control regime.
double build_seconds(const geom::Technology& tech, const core::TableGrid& grid,
                     const solver::SolveOptions& opt) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    core::build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 1);
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::size_t kIters = 20'000'000;

  const double idle_ns = checkpoint_ns(kIters);

  run::RunControl rc;
  double armed_ns = 0.0;
  double armed_deadline_ns = 0.0;
  {
    run::ScopedRunControl scope(rc);
    armed_ns = checkpoint_ns(kIters);
  }
  {
    run::RunControl with_deadline;
    with_deadline.deadline = run::Deadline::after(3600.0);
    run::ScopedRunControl scope(with_deadline);
    armed_deadline_ns = checkpoint_ns(kIters / 10);
  }

  // End-to-end: the same small characterisation with and without an
  // installed control (serial, so every checkpoint is on the one thread).
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = 1;
  opt.mesh.nt = 1;
  const core::TableGrid grid = small_grid();

  const double free_s = build_seconds(tech, grid, opt);

  double controlled_s = 0.0;
  {
    run::RunControl rc2;
    run::ScopedRunControl scope(rc2);
    controlled_s = build_seconds(tech, grid, opt);
  }

  std::printf("{\"bench\": \"run_control\", \"rows\": [\n");
  std::printf("  {\"case\": \"checkpoint_idle\", \"ns_per_call\": %.3f},\n",
              idle_ns);
  std::printf("  {\"case\": \"checkpoint_armed\", \"ns_per_call\": %.3f},\n",
              armed_ns);
  std::printf(
      "  {\"case\": \"checkpoint_armed_deadline\", \"ns_per_call\": %.3f},\n",
      armed_deadline_ns);
  std::printf(
      "  {\"case\": \"build_no_control\", \"seconds\": %.6f},\n", free_s);
  std::printf(
      "  {\"case\": \"build_with_control\", \"seconds\": %.6f, "
      "\"overhead_pct\": %.3f}\n",
      controlled_s,
      free_s > 0.0 ? 100.0 * (controlled_s - free_s) / free_s : 0.0);
  std::printf("]}\n");
  return 0;
}
