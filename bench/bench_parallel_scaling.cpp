// P1 — parallel scaling of the table characterisation (the rlcx::rt pool).
//
// Builds the same inductance tables at 1, 2, 4, ... threads and reports
// wall time, speedup over serial and whether the parallel tables are
// bit-identical to the serial ones (the rt determinism contract).  Output
// is JSON so CI and plotting scripts can consume it directly.
//
// Environment overrides for quick local runs:
//   RLCX_BENCH_POINTS=N   shrink each grid axis to at most N points
//   RLCX_BENCH_THREADS=L  comma-separated thread counts (e.g. "1,2,8")
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/table_builder.h"
#include "solver/frequency.h"

using namespace rlcx;

namespace {

std::vector<int> thread_counts() {
  if (const char* env = std::getenv("RLCX_BENCH_THREADS")) {
    std::vector<int> out;
    std::string tok;
    for (const char* p = env;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
        tok.clear();
        if (*p == '\0') break;
      } else {
        tok += *p;
      }
    }
    if (!out.empty()) return out;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int max = hw > 0 ? static_cast<int>(hw) : 1;
  std::vector<int> out = {1};
  for (int t = 2; t < max; t *= 2) out.push_back(t);
  if (max > 1) out.push_back(max);
  return out;
}

core::TableGrid bench_grid() {
  core::TableGrid grid = core::default_clock_grid();
  if (const char* env = std::getenv("RLCX_BENCH_POINTS")) {
    const int n = std::atoi(env);
    if (n >= 2) {
      const auto shrink = [n](std::vector<double>& axis) {
        if (axis.size() > static_cast<std::size_t>(n)) axis.resize(n);
      };
      shrink(grid.widths);
      shrink(grid.spacings);
      shrink(grid.lengths);
    }
  }
  return grid;
}

bool same_tables(const core::InductanceTables& a,
                 const core::InductanceTables& b) {
  const auto same = [](const std::vector<double>& x,
                       const std::vector<double>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i] != y[i]) return false;  // bit comparison, not tolerance
    return true;
  };
  return same(a.self.values(), b.self.values()) &&
         same(a.mutual.values(), b.mutual.values()) &&
         same(a.series_r.values(), b.series_r.values());
}

}  // namespace

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  const core::TableGrid grid = bench_grid();
  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.max_filaments_per_dim = 3;

  const std::size_t points = grid.widths.size() * grid.widths.size() *
                             grid.spacings.size() * grid.lengths.size();
  std::fprintf(stderr,
               "bench_parallel_scaling: %zu grid points "
               "(RLCX_BENCH_POINTS/RLCX_BENCH_THREADS to override)\n",
               points);

  std::printf("{\n  \"experiment\": \"parallel_scaling\",\n");
  std::printf("  \"grid_points\": %zu,\n", points);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");

  core::InductanceTables serial;
  double serial_wall = 0.0;
  const std::vector<int> counts = thread_counts();
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const int threads = counts[c];
    core::BuildStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const core::InductanceTables t = core::build_tables(
        tech, 6, geom::PlaneConfig::kNone, grid, opt, threads, &stats);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    bool identical = true;
    if (c == 0) {
      serial = t;
      serial_wall = wall;
    } else {
      identical = same_tables(serial, t);
    }
    std::printf("    {\"threads\": %d, \"wall_s\": %.4f, "
                "\"speedup\": %.3f, \"solves\": %zu, "
                "\"bit_identical\": %s}%s\n",
                threads, wall, serial_wall / wall, stats.solves,
                identical ? "true" : "false",
                c + 1 < counts.size() ? "," : "");
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: tables at %d threads differ from serial\n",
                   threads);
      return 1;
    }
  }
  std::printf("  ]\n}\n");
  return 0;
}
