// E4 — Section III: table lookup with bi-cubic spline interpolation vs the
// direct field solve ("There is no loss of accuracy during the reduction";
// any residual is interpolation error).
#include <cstdio>
#include <random>

#include "core/table_builder.h"
#include "numeric/stats.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

void sweep(const geom::Technology& tech, geom::PlaneConfig planes,
           const char* label) {
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);

  core::TableGrid grid;
  grid.widths = geomspace(um(1.5), um(16), 5);
  grid.spacings = geomspace(um(0.5), um(8), 4);
  grid.lengths = geomspace(um(200), um(4000), 4);

  const core::InductanceTables tables =
      core::build_tables(tech, 6, planes, grid, sopt);
  const core::TableInductanceModel model(tables);
  const core::DirectInductanceModel direct(&tech, 6, planes, sopt);

  std::printf("---- %s tables (%zu self, %zu mutual entries) ----\n", label,
              tables.self.values().size(), tables.mutual.values().size());
  std::printf("%-36s %10s %10s %8s\n", "off-grid query (um)", "table",
              "direct", "err %");

  std::mt19937_64 rng(12345);
  auto uni = [&](double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(rng);
  };

  RunningStats self_err, mut_err;
  for (int q = 0; q < 8; ++q) {
    const double w1 = uni(um(2), um(14));
    const double w2 = uni(um(2), um(14));
    const double s = uni(um(0.7), um(7));
    const double l = uni(um(300), um(3500));

    const double st = model.self(w1, l);
    const double sd = direct.self(w1, l);
    const double se = 100.0 * (st - sd) / sd;
    self_err.add(std::abs(se));
    std::printf("L(w=%5.2f, l=%7.1f)               %10.4f %10.4f %8.2f\n",
                units::to_um(w1), units::to_um(l), units::to_nh(st),
                units::to_nh(sd), se);

    const double mt = model.mutual(w1, w2, s, l);
    const double md = direct.mutual(w1, w2, s, l);
    const double me = 100.0 * (mt - md) / md;
    mut_err.add(std::abs(me));
    std::printf("M(w1=%5.2f,w2=%5.2f,s=%4.2f,l=%7.1f) %10.4f %10.4f %8.2f\n",
                units::to_um(w1), units::to_um(w2), units::to_um(s),
                units::to_um(l), units::to_nh(mt), units::to_nh(md), me);
  }
  std::printf("|err| self: mean %.2f %%, max %.2f %%;  mutual: mean %.2f "
              "%%, max %.2f %%\n\n",
              self_err.mean(), self_err.max(), mut_err.mean(),
              mut_err.max());
}

}  // namespace

int main() {
  std::printf("=== E4 / Section III: table + spline lookup vs direct field "
              "solve ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  sweep(tech, geom::PlaneConfig::kNone, "coplanar / partial-L");
  sweep(tech, geom::PlaneConfig::kBelow, "microstrip / loop-L");
  std::printf("the reduction to 1-/2-trace subproblems is lossless; the "
              "residual above is\nbi-cubic spline interpolation on the "
              "sparse grid (paper Section III).\n");
  return 0;
}
