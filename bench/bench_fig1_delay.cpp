// E1 — Figures 1-3: the 6000 um coplanar-waveguide clock net, simulated
// without and with inductance.
//
// Paper: "The delays from the output of the clock buffer to the sink node
// are 28.01 ps and 47.6 ps respectively without and with the inclusion of
// inductance", with visible overshoot/undershoot in the RLC waveform.
#include <cstdio>

#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

struct RunResult {
  double delay_ps;
  double overshoot_mv;
  double undershoot_mv;
  ckt::Waveform buf;
  ckt::Waveform sink;
};

// Driver: the paper quotes "about 40 ohm"; our extracted capacitance
// includes the full sidewall coupling to the 1 um-spaced shields, which
// puts the line impedance near 27 ohm.  At exactly 40 ohm the near-end
// plateau sits within millivolts of the 50% threshold and the delay metric
// degenerates; a slightly stronger driver (25 ohm — the paper stresses
// "large driver and therefore smaller source impedance") restores the
// regime the paper's Figures 2-3 show.
constexpr double kRsource = 25.0;
constexpr double kSinkCap = 200e-15;

RunResult run(const geom::Technology& tech, const geom::Block& net,
              const core::SegmentRlc& seg, bool with_l, double t_rise) {
  (void)tech;
  ckt::Netlist nl;
  const ckt::NodeId vin = nl.add_node("vin");
  const ckt::NodeId buf = nl.add_node("buf_out");
  nl.add_vsource(vin, ckt::kGround, ckt::SourceWaveform::ramp(1.8, t_rise));
  nl.add_resistor(vin, buf, kRsource);

  core::LadderOptions lopt;
  lopt.sections = 10;
  lopt.include_inductance = with_l;
  const auto outs = core::stamp_segment(nl, net, seg, {buf}, lopt);
  nl.add_capacitor(outs[0], ckt::kGround, kSinkCap);

  ckt::TransientOptions topt;
  topt.t_stop = 2.0e-9;
  topt.dt = 0.5e-12;
  const ckt::TransientResult res = ckt::simulate(nl, topt);

  RunResult r{0.0, 0.0, 0.0, res.waveform(buf), res.waveform(outs[0])};
  r.delay_ps = units::to_ps(ckt::delay_50(r.buf, r.sink, 1.8));
  const double over = r.sink.max() - 1.8;
  r.overshoot_mv = over > 0.0 ? 1e3 * over : 0.0;
  r.undershoot_mv = 1e3 * r.sink.undershoot();
  return r;
}

}  // namespace

int main() {
  std::printf("=== E1 / Figures 1-3: inductance effect on a 6000 um "
              "coplanar clock net ===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block net =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));

  const double t_rise = 200e-12;
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(t_rise);
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(net, lmodel);

  std::printf("extracted: R_sig = %.2f ohm, Lp_sig = %.3f nH, C_sig = %.3f "
              "pF\n\n",
              seg.resistance[1], units::to_nh(seg.inductance(1, 1)),
              units::to_pf(seg.cap_ground[1] + seg.cap_coupling[0] +
                           seg.cap_coupling[1]));

  const RunResult rc = run(tech, net, seg, false, t_rise);
  const RunResult rlc = run(tech, net, seg, true, t_rise);

  std::printf("%-28s %12s %12s\n", "", "RC netlist", "RLC netlist");
  std::printf("%-28s %9.2f ps %9.2f ps\n", "buffer->sink 50% delay",
              rc.delay_ps, rlc.delay_ps);
  std::printf("%-28s %9.1f mV %9.1f mV\n", "sink overshoot",
              rc.overshoot_mv, rlc.overshoot_mv);
  std::printf("%-28s %9.1f mV %9.1f mV\n", "sink undershoot",
              rc.undershoot_mv, rlc.undershoot_mv);
  std::printf("%-28s %12s %9.2f x\n", "delay ratio RLC/RC", "",
              rlc.delay_ps / rc.delay_ps);
  std::printf("\npaper (their 0.25um process + HSPICE): 28.01 ps vs 47.6 ps "
              "(1.70x), RLC rings\n");

  // Figures 2-3 as data: the two waveform pairs, sampled every 25 ps.
  std::printf("\nwaveforms (V), every 25 ps:\n");
  std::printf("%8s %10s %10s %10s %10s\n", "t (ps)", "buf(RC)", "sink(RC)",
              "buf(RLC)", "sink(RLC)");
  for (double t = 0.0; t <= 800e-12; t += 25e-12) {
    std::printf("%8.0f %10.4f %10.4f %10.4f %10.4f\n", units::to_ps(t),
                rc.buf.value_at(t), rc.sink.value_at(t), rlc.buf.value_at(t),
                rlc.sink.value_at(t));
  }
  return 0;
}
