// E8 — the headline efficiency claim: table lookup replaces a field solve
// per block.  google-benchmark timings for both paths, plus the table
// build cost they amortise and the downstream netlist/simulation stages.
#include <benchmark/benchmark.h>

#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "core/table_builder.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

const geom::Technology& tech() {
  static const geom::Technology t = geom::Technology::generic_025um();
  return t;
}

solver::SolveOptions solve_options() {
  solver::SolveOptions o;
  o.frequency = solver::significant_frequency(100e-12);
  return o;
}

const core::TableInductanceModel& table_model() {
  static const core::TableInductanceModel model = [] {
    core::TableGrid grid;
    grid.widths = geomspace(um(1.5), um(16), 4);
    grid.spacings = geomspace(um(0.5), um(8), 4);
    grid.lengths = geomspace(um(200), um(4000), 4);
    return core::TableInductanceModel(core::build_tables(
        tech(), 6, geom::PlaneConfig::kNone, grid, solve_options()));
  }();
  return model;
}

void BM_TableLookupMutual(benchmark::State& state) {
  const core::TableInductanceModel& m = table_model();
  double w = um(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.mutual(w, um(5), um(1.3), um(1234)));
    w = w < um(14) ? w + um(0.01) : um(3);  // defeat any caching
  }
}
BENCHMARK(BM_TableLookupMutual);

void BM_DirectSolveMutual(benchmark::State& state) {
  const core::DirectInductanceModel m(&tech(), 6, geom::PlaneConfig::kNone,
                                      solve_options());
  double w = um(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.mutual(w, um(5), um(1.3), um(1234)));
    w = w < um(14) ? w + um(0.01) : um(3);
  }
}
BENCHMARK(BM_DirectSolveMutual)->Unit(benchmark::kMillisecond);

void BM_DirectSolveMutualOverPlane(benchmark::State& state) {
  const core::DirectInductanceModel m(&tech(), 6, geom::PlaneConfig::kBelow,
                                      solve_options());
  double w = um(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.mutual(w, um(5), um(1.3), um(1234)));
    w = w < um(14) ? w + um(0.01) : um(3);
  }
}
BENCHMARK(BM_DirectSolveMutualOverPlane)->Unit(benchmark::kMillisecond);

void BM_TableBuild(benchmark::State& state) {
  core::TableGrid grid;
  const auto n = static_cast<std::size_t>(state.range(0));
  grid.widths = geomspace(um(1.5), um(16), n);
  grid.spacings = geomspace(um(0.5), um(8), n);
  grid.lengths = geomspace(um(200), um(4000), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_tables(
        tech(), 6, geom::PlaneConfig::kNone, grid, solve_options()));
  }
  state.counters["entries"] = static_cast<double>(n * n * n * n + n * n);
}
BENCHMARK(BM_TableBuild)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SegmentExtraction(benchmark::State& state) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1500), um(6), um(6), um(1));
  const core::TableInductanceModel& m = table_model();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::extract_segment_rlc(blk, m));
}
BENCHMARK(BM_SegmentExtraction);

void BM_TransientClockNet(benchmark::State& state) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(6000), um(10), um(5), um(1));
  const core::SegmentRlc seg =
      core::extract_segment_rlc(blk, table_model());
  for (auto _ : state) {
    ckt::Netlist nl;
    const ckt::NodeId vin = nl.add_node();
    const ckt::NodeId buf = nl.add_node();
    nl.add_vsource(vin, ckt::kGround,
                   ckt::SourceWaveform::ramp(1.8, 100e-12));
    nl.add_resistor(vin, buf, 40.0);
    core::LadderOptions lopt;
    lopt.sections = 8;
    const auto outs = core::stamp_segment(nl, blk, seg, {buf}, lopt);
    nl.add_capacitor(outs[0], ckt::kGround, 50e-15);
    ckt::TransientOptions topt;
    topt.t_stop = 1e-9;
    topt.dt = 1e-12;
    benchmark::DoNotOptimize(ckt::simulate(nl, topt));
  }
}
BENCHMARK(BM_TransientClockNet)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
