// E6 — Section V: inductance is super-linear in segment length.
//
// Paper: "the inductance (self or mutual) is not scalable with length ...
// if a segment length changes from 1000 um to 2000 um, the self- and
// mutual-inductances increase by about [2.2] times", which is why
// per-segment extraction underestimates unless shorter return paths exist.
#include <cstdio>

#include "numeric/units.h"
#include "peec/partial_inductance.h"

using namespace rlcx;
using units::um;

int main() {
  std::printf("=== E6 / Section V: super-linear length dependence of Lp "
              "===\n\n");
  // The paper's clock wire: 10 um wide, 2 um thick; pair spacing 1 um.
  auto self_of = [](double len) {
    peec::Bar b;
    b.length = len;
    b.t_width = um(10);
    b.z_thick = um(2);
    return peec::self_partial(b);
  };
  auto mutual_of = [](double len) {
    peec::Bar a;
    a.length = len;
    a.t_width = um(10);
    a.z_thick = um(2);
    peec::Bar b = a;
    b.t_min = um(11);
    return peec::mutual_partial(a, b);
  };

  std::printf("%10s %12s %14s %12s %14s\n", "len (um)", "self nH",
              "self nH/mm", "mutual nH", "mutual nH/mm");
  for (double l : {250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    const double ls = self_of(um(l));
    const double lm = mutual_of(um(l));
    std::printf("%10.0f %12.4f %14.4f %12.4f %14.4f\n", l, units::to_nh(ls),
                units::to_nh(ls) / (l / 1000.0), units::to_nh(lm),
                units::to_nh(lm) / (l / 1000.0));
  }

  const double r_self = self_of(um(2000)) / self_of(um(1000));
  const double r_mut = mutual_of(um(2000)) / mutual_of(um(1000));
  std::printf("\n1000 um -> 2000 um: self x%.3f, mutual x%.3f (paper: "
              "\"about 2.2 times\"; linear\nscaling would be exactly "
              "2.000)\n",
              r_self, r_mut);
  std::printf("\nconsequence (Section V): extracting each cascaded segment "
              "separately\nunderestimates L unless shielding provides the "
              "shorter return paths —\nwhich is exactly what the Section IV "
              "guard-wire condition ensures.\n");
  return 0;
}
