// P3 — the hierarchical PEEC solver (src/hmat): dense blocked-LU oracle vs
// ACA-compressed H-matrix + Schwarz-preconditioned GMRES, on the n-trace
// uniform array the table characterisation actually solves (scaled up).
//
// For each size the same extract_partial problem runs once with
// --solver dense and once with --solver hmat; the bench reports wall
// times, the H-matrix compression ratio, GMRES iteration counts, and the
// max relative deviation between the two inductance matrices (gated at
// 1e-8 — the hmat path is only useful if it is interchangeable).  The
// last block prints the measured dense/hmat crossover in filaments; the
// committed baseline lives in BENCH_hmat.json, and
// solver::HmatSolveOptions::auto_crossover mirrors that measurement.
//
// Flags / environment:
//   --smoke             tiny sizes for the CI tier-1 job (correctness gate
//                       only; speedups are not meaningful at smoke sizes)
//   RLCX_BENCH_TRACES=N single size override (runs exactly one case)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "geom/builders.h"
#include "hmat/stats.h"
#include "numeric/units.h"
#include "solver/block_solver.h"

using namespace rlcx;
using units::um;

namespace {

double now_wall(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double max_rel_dev(const RealMatrix& a, const RealMatrix& b) {
  double scale = 0.0, dev = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      scale = std::max(scale, std::abs(a(i, j)));
      dev = std::max(dev, std::abs(a(i, j) - b(i, j)));
    }
  return scale == 0.0 ? dev : dev / scale;
}

struct Case {
  std::size_t traces = 0;
  std::size_t filaments = 0;
  double wall_dense = 0.0;
  double wall_hmat = 0.0;
  double dev = 0.0;
  double compression = 0.0;
  std::size_t rank_max = 0;
  std::size_t gmres_iterations = 0;
};

Case run_case(const geom::Technology& tech, std::size_t traces) {
  const geom::Block blk =
      geom::uniform_array(tech, 6, um(2000), traces, um(1), um(2));
  Case c;
  c.traces = traces;

  solver::SolveOptions opt;
  // Fix the cross-section mesh at 4 x 2 filaments per trace — the shape a
  // skin-depth mesh takes at clock frequencies — so the dense/hmat cost
  // ratio reflects real table builds (nf filaments but only nf/8 conductor
  // columns to solve) rather than the 1-filament-per-trace degenerate case.
  opt.auto_mesh = false;
  opt.mesh.nw = 4;
  opt.mesh.nt = 2;
  opt.solver = solver::SolverKind::kDense;
  auto t0 = std::chrono::steady_clock::now();
  const solver::PartialResult dense = solver::extract_partial(blk, opt);
  c.wall_dense = now_wall(t0);

  opt.solver = solver::SolverKind::kHmat;
  const hmat::SolveStats before = hmat::solve_stats_total();
  t0 = std::chrono::steady_clock::now();
  const solver::PartialResult hm = solver::extract_partial(blk, opt);
  c.wall_hmat = now_wall(t0);
  const hmat::SolveStats after = hmat::solve_stats_total();

  c.dev = max_rel_dev(dense.inductance, hm.inductance);
  const std::size_t full = after.full_entries - before.full_entries;
  const std::size_t stored = after.stored_entries - before.stored_entries;
  c.filaments =
      static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(full))));
  c.compression =
      full == 0 ? 0.0
                : static_cast<double>(stored) / static_cast<double>(full);
  c.rank_max = after.aca_rank_max;
  c.gmres_iterations = after.gmres_iterations - before.gmres_iterations;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const geom::Technology tech = geom::Technology::generic_025um();
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8, 16}
            : std::vector<std::size_t>{16,  32,  64,  128, 192, 256,
                                       320, 384, 448, 512, 640};
  if (const char* env = std::getenv("RLCX_BENCH_TRACES")) {
    const int v = std::atoi(env);
    if (v > 0) sizes = {static_cast<std::size_t>(v)};
  }

  std::vector<Case> cases;
  int status = 0;
  for (const std::size_t n : sizes) {
    const Case c = run_case(tech, n);
    cases.push_back(c);
    std::fprintf(stderr,
                 "traces %4zu (nf %4zu): dense %7.3fs  hmat %7.3fs  "
                 "(x%.2f)  dev %.3e  stored %2.0f%%  rank<=%zu  gmres %zu\n",
                 c.traces, c.filaments, c.wall_dense, c.wall_hmat,
                 c.wall_hmat > 0 ? c.wall_dense / c.wall_hmat : 0.0, c.dev,
                 100.0 * c.compression, c.rank_max, c.gmres_iterations);
    if (!(c.dev <= 1e-8)) {
      std::fprintf(stderr, "FAIL: hmat deviates from the dense oracle\n");
      status = 1;
    }
  }

  // Measured crossover: the smallest size where the hierarchical path wins
  // and keeps winning for every larger measured size.
  std::size_t crossover = 0;
  for (std::size_t i = cases.size(); i-- > 0;) {
    if (cases[i].wall_hmat < cases[i].wall_dense)
      crossover = cases[i].filaments;
    else
      break;
  }

  std::printf("{\n  \"experiment\": \"hmat\",\n  \"smoke\": %s,\n",
              smoke ? "true" : "false");
  std::printf("  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::printf("    {\"traces\": %zu, \"filaments\": %zu, "
                "\"wall_s_dense\": %.4f, \"wall_s_hmat\": %.4f, "
                "\"speedup\": %.2f, \"max_rel_dev\": %.3e, "
                "\"stored_fraction\": %.4f, \"rank_max\": %zu, "
                "\"gmres_iterations\": %zu}%s\n",
                c.traces, c.filaments, c.wall_dense, c.wall_hmat,
                c.wall_hmat > 0 ? c.wall_dense / c.wall_hmat : 0.0, c.dev,
                c.compression, c.rank_max, c.gmres_iterations,
                i + 1 < cases.size() ? "," : "");
  }
  std::printf("  ],\n  \"crossover_filaments\": %zu\n}\n", crossover);
  return status;
}
