// E5 — Section V: clocktree RLC vs RC skew.
//
// Paper: "In general, without consideration of inductance in the clock skew
// calculation, the difference can be more than 10%.  If there is ringing
// due to inductance effect on the clock signal, the result can be even
// devastating."
#include <cstdio>

#include "clocktree/skew.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;

namespace {

void run_tree(const geom::Technology& tech, const clocktree::HTreeSpec& spec,
              const char* label) {
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(spec.driver.t_rise);

  core::InductanceLibrary lib;
  for (std::size_t i = 0; i < spec.levels.size(); ++i) {
    const int layer = spec.level_layer(i);
    if (lib.has(layer, spec.levels[i].planes)) continue;
    lib.add(layer, spec.levels[i].planes,
            std::make_shared<core::DirectInductanceModel>(
                &tech, layer, spec.levels[i].planes, sopt));
  }

  clocktree::AnalysisOptions aopt;
  aopt.ladder.sections = 4;
  const clocktree::RcVsRlc cmp =
      clocktree::compare_rc_rlc(tech, spec, lib, aopt);

  std::printf("---- %s (%zu sinks) ----\n", label, spec.sink_count());
  std::printf("%-24s %12s %12s\n", "", "RLC", "RC-only");
  std::printf("%-24s %9.2f ps %9.2f ps\n", "min sink delay",
              units::to_ps(cmp.rlc.min_delay), units::to_ps(cmp.rc.min_delay));
  std::printf("%-24s %9.2f ps %9.2f ps\n", "max sink delay",
              units::to_ps(cmp.rlc.max_delay), units::to_ps(cmp.rc.max_delay));
  std::printf("%-24s %9.2f ps %9.2f ps\n", "skew", units::to_ps(cmp.rlc.skew),
              units::to_ps(cmp.rc.skew));
  std::printf("%-24s %9.1f mV %9.1f mV\n", "worst overshoot",
              1e3 * cmp.rlc.max_overshoot, 1e3 * cmp.rc.max_overshoot);
  const double skew_diff =
      100.0 * (cmp.rlc.skew - cmp.rc.skew) / cmp.rlc.skew;
  const double delay_diff =
      100.0 * (cmp.rlc.max_delay - cmp.rc.max_delay) / cmp.rlc.max_delay;
  std::printf("ignoring L underestimates: skew by %.1f %%, max delay by "
              "%.1f %%\n\n",
              skew_diff, delay_diff);
}

}  // namespace

int main() {
  std::printf("=== E5 / Section V: clock skew with and without inductance "
              "===\n\n");
  const geom::Technology tech = geom::Technology::generic_025um();
  run_tree(tech, clocktree::example_cpw_tree(),
           "coplanar-waveguide H-tree (Figure 8 levels)");
  run_tree(tech, clocktree::example_microstrip_tree(),
           "microstrip H-tree over local planes (Figure 9 levels)");
  run_tree(tech, clocktree::example_two_layer_tree(),
           "two-layer H-tree (layers 6/5 alternating, vias at turns)");
  std::printf("paper: skew difference can exceed 10 %%; ringing makes the "
              "RC result devastatingly wrong.\n");
  return 0;
}
