// Warnings channel: non-fatal diagnostics that must reach the user.
//
// Deep numerical stages (the SOR field solver, spline table lookups, cache
// recovery) detect conditions that degrade accuracy without invalidating
// the run — a non-converged solve accepted at reduced accuracy, a lookup
// extrapolating beyond the characterised grid, a corrupt cache entry that
// was quarantined and rebuilt.  They report through this channel instead of
// printing or silently proceeding; the front end decides what a warning
// means (the CLI prints them on stderr, and escalates them to errors under
// --strict).
//
// Handlers are process-global and stack-scoped: installing a
// ScopedWarningHandler routes every warning emitted anywhere (including
// worker threads of a parallel table build) to that handler until it is
// destroyed.  With no handler installed, warnings go to stderr.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "diag/error.h"

namespace rlcx::diag {

struct Warning {
  Category category = Category::kNumeric;
  std::string stage;    ///< component that detected it ("fd2d", "table", ...)
  std::string message;  ///< human-readable detail with the offending values
};

/// "warning: [numeric] fd2d: ..." — the canonical display form.
std::string format_warning(const Warning& w);

/// Reports a warning to the innermost installed handler (stderr when none).
void emit_warning(Category category, std::string stage, std::string message);

using WarningHandler = std::function<void(const Warning&)>;

/// RAII: routes warnings to `handler` for this object's lifetime, restoring
/// the previous handler on destruction.  Nesting is allowed; the innermost
/// wins.  Handlers may be invoked from any thread (emission is serialised).
class ScopedWarningHandler {
 public:
  explicit ScopedWarningHandler(WarningHandler handler);
  ~ScopedWarningHandler();

  ScopedWarningHandler(const ScopedWarningHandler&) = delete;
  ScopedWarningHandler& operator=(const ScopedWarningHandler&) = delete;
};

/// RAII: while alive, warnings that render to identical text are delivered
/// once and then suppressed (the duplicate count is queryable).  rt's
/// parallel regions install one around every fan-out, so N workers hitting
/// the same degradation (a non-converged SOR drive solved per grid point,
/// an extrapolating lookup) produce one report instead of a thread-count-
/// dependent flood.  Scopes nest; the *outermost* scope owns the dedup set,
/// so a warning is emitted once per outermost region, from any thread.
class ScopedWarningDedup {
 public:
  ScopedWarningDedup();
  ~ScopedWarningDedup();

  ScopedWarningDedup(const ScopedWarningDedup&) = delete;
  ScopedWarningDedup& operator=(const ScopedWarningDedup&) = delete;

  /// Warnings suppressed as duplicates since the outermost scope opened.
  static std::size_t suppressed_count() noexcept;
};

}  // namespace rlcx::diag
