// Structured error taxonomy for the extraction pipeline.
//
// Every failure the library raises deliberately carries a category (what
// kind of problem), a stage (which pipeline component detected it) and a
// message with the offending values, so an hours-long characterisation run
// that dies — or a service handling arbitrary user technologies — produces
// a diagnosable report instead of a bare `std::runtime_error("singular")`.
//
// Two base classes cover the historical exception contracts:
//   * Error        : std::runtime_error  — runtime failures (numeric
//                    breakdown, I/O, cache corruption)
//   * InvalidInput : std::invalid_argument — rejected inputs (geometry and
//                    netlist validation, API/CLI usage)
// Both implement the Fault interface, so `catch (const Fault&)` handles any
// categorized error uniformly while existing `catch std::invalid_argument`
// and `catch std::runtime_error` sites keep working.
#pragma once

#include <stdexcept>
#include <string>

namespace rlcx::diag {

/// What kind of failure this is.  The CLI exit-code contract keys off the
/// category (docs/robustness.md): usage -> 2, geometry/io/cache -> 3,
/// numeric -> 4, cancelled/deadline -> 5, overloaded -> 6,
/// resource-exhausted -> 7.
enum class Category {
  kGeometry,    ///< invalid physical/structural input (geometry, netlist)
  kNumeric,     ///< numerical breakdown: singular/near-singular systems,
                ///< divergence, NaN, non-convergence
  kIo,          ///< file and stream failures
  kCache,       ///< table-cache corruption or recovery failure
  kUsage,       ///< malformed invocation: bad flags, bad API arguments
  kCancelled,   ///< the run was cancelled cooperatively (SIGINT, caller)
  kDeadline,    ///< the run exceeded its wall-clock deadline
  kOverloaded,  ///< an admission-controlled service rejected the request
                ///< because its queue was full (back off and retry)
  kResourceExhausted,  ///< the work would exceed the process memory budget
                       ///< (res::Budget) and no cheaper path remained; the
                       ///< request will not fit on retry either
};

const char* to_string(Category c);

/// Process exit code for a failure of the given category (the CLI contract;
/// 1 is reserved for uncategorized exceptions).
int exit_code(Category c);

/// Interface carried by every categorized exception, independent of which
/// std exception hierarchy it extends.
class Fault {
 public:
  virtual ~Fault() = default;
  virtual Category category() const noexcept = 0;
  /// The pipeline stage that detected the fault ("lu", "fd2d", "transient",
  /// "table-cache", ...).
  virtual const std::string& stage() const noexcept = 0;
  /// The undecorated message (what() prepends "[category] stage: ").
  virtual const std::string& message() const noexcept = 0;
};

/// Formats the canonical what() text: "[numeric] lu: zero pivot ...".
std::string format_error(Category c, const std::string& stage,
                         const std::string& message);

/// Categorized runtime failure.
class Error : public std::runtime_error, public Fault {
 public:
  Error(Category category, std::string stage, std::string message)
      : std::runtime_error(format_error(category, stage, message)),
        category_(category), stage_(std::move(stage)),
        message_(std::move(message)) {}

  Category category() const noexcept override { return category_; }
  const std::string& stage() const noexcept override { return stage_; }
  const std::string& message() const noexcept override { return message_; }

 private:
  Category category_;
  std::string stage_;
  std::string message_;
};

/// Categorized rejected input (keeps the std::invalid_argument contract of
/// the original validation sites).
class InvalidInput : public std::invalid_argument, public Fault {
 public:
  InvalidInput(Category category, std::string stage, std::string message)
      : std::invalid_argument(format_error(category, stage, message)),
        category_(category), stage_(std::move(stage)),
        message_(std::move(message)) {}

  Category category() const noexcept override { return category_; }
  const std::string& stage() const noexcept override { return stage_; }
  const std::string& message() const noexcept override { return message_; }

 private:
  Category category_;
  std::string stage_;
  std::string message_;
};

/// Invalid geometry, technology stack or netlist element.
class GeometryError : public InvalidInput {
 public:
  GeometryError(std::string stage, std::string message)
      : InvalidInput(Category::kGeometry, std::move(stage),
                     std::move(message)) {}
};

/// Malformed invocation: bad CLI flags or API arguments.
class UsageError : public InvalidInput {
 public:
  UsageError(std::string stage, std::string message)
      : InvalidInput(Category::kUsage, std::move(stage), std::move(message)) {}
};

/// Numerical breakdown at runtime.
class NumericError : public Error {
 public:
  NumericError(std::string stage, std::string message)
      : Error(Category::kNumeric, std::move(stage), std::move(message)) {}
};

/// File or stream failure.
class IoError : public Error {
 public:
  IoError(std::string stage, std::string message)
      : Error(Category::kIo, std::move(stage), std::move(message)) {}
};

/// Table-cache corruption that could not be recovered (strict policy).
class CacheError : public Error {
 public:
  CacheError(std::string stage, std::string message)
      : Error(Category::kCache, std::move(stage), std::move(message)) {}
};

/// The run was cancelled cooperatively (SIGINT, an owning service, a test).
/// Thrown from run::checkpoint() at chunk/iteration boundaries, so the
/// unwind never leaves a partially-written table entry or journal record.
class CancelledError : public Error {
 public:
  CancelledError(std::string stage, std::string message)
      : Error(Category::kCancelled, std::move(stage), std::move(message)) {}
};

/// The run exceeded its wall-clock deadline (run::Deadline).
class DeadlineExceeded : public Error {
 public:
  DeadlineExceeded(std::string stage, std::string message)
      : Error(Category::kDeadline, std::move(stage), std::move(message)) {}
};

/// An admission-controlled service (the `rlcx serve` daemon) rejected the
/// request because both its execution slots and its wait queue were full.
/// The request was never started; clients should back off and retry.
class OverloadedError : public Error {
 public:
  OverloadedError(std::string stage, std::string message)
      : Error(Category::kOverloaded, std::move(stage), std::move(message)) {}
};

/// The work would not fit the process memory budget (res::Budget): every
/// rung of the degradation ladder (docs/robustness.md "Resource
/// governance") was refused.  Unlike kOverloaded this is not transient —
/// an oversized request stays oversized on retry; shrink the request or
/// raise --mem-budget.
class ResourceExhaustedError : public Error {
 public:
  ResourceExhaustedError(std::string stage, std::string message)
      : Error(Category::kResourceExhausted, std::move(stage),
              std::move(message)) {}
};

/// A linear system the factorisation could not (or barely could) solve.
/// Carries the provenance a bare "singular matrix" hides: the pivot column
/// where elimination broke down, the system size and a cheap condition
/// estimate (max/min pivot magnitude; infinity when exactly singular).
class SingularSystem : public NumericError {
 public:
  SingularSystem(std::string stage, std::string message, std::size_t column,
                 std::size_t dimension, double condition_estimate)
      : NumericError(std::move(stage), std::move(message)), column_(column),
        dimension_(dimension), condition_(condition_estimate) {}

  std::size_t column() const noexcept { return column_; }
  std::size_t dimension() const noexcept { return dimension_; }
  double condition_estimate() const noexcept { return condition_; }

 private:
  std::size_t column_;
  std::size_t dimension_;
  double condition_;
};

/// Returns the category of `e` when it is a categorized fault, or
/// `fallback` otherwise.  The CLI exit-code mapping uses this.
Category category_of(const std::exception& e, Category fallback);

}  // namespace rlcx::diag
