#include "diag/error.h"

namespace rlcx::diag {

const char* to_string(Category c) {
  switch (c) {
    case Category::kGeometry: return "geometry";
    case Category::kNumeric: return "numeric";
    case Category::kIo: return "io";
    case Category::kCache: return "cache";
    case Category::kUsage: return "usage";
    case Category::kCancelled: return "cancelled";
    case Category::kDeadline: return "deadline";
    case Category::kOverloaded: return "overloaded";
    case Category::kResourceExhausted: return "resource-exhausted";
  }
  return "?";
}

int exit_code(Category c) {
  switch (c) {
    case Category::kUsage: return 2;
    case Category::kGeometry:
    case Category::kIo:
    case Category::kCache: return 3;
    case Category::kNumeric: return 4;
    case Category::kCancelled:
    case Category::kDeadline: return 5;
    case Category::kOverloaded: return 6;
    case Category::kResourceExhausted: return 7;
  }
  return 1;
}

std::string format_error(Category c, const std::string& stage,
                         const std::string& message) {
  std::string out = "[";
  out += to_string(c);
  out += "] ";
  out += stage;
  out += ": ";
  out += message;
  return out;
}

Category category_of(const std::exception& e, Category fallback) {
  if (const auto* fault = dynamic_cast<const Fault*>(&e))
    return fault->category();
  return fallback;
}

}  // namespace rlcx::diag
