#include "diag/warnings.h"

#include <iostream>
#include <mutex>
#include <vector>

namespace rlcx::diag {

namespace {

std::mutex& handler_mutex() {
  static std::mutex m;
  return m;
}

// Innermost-wins handler stack.  Guarded by handler_mutex(); emission holds
// the lock through the handler call so a handler writing to a CLI stream
// needs no synchronisation of its own.
std::vector<WarningHandler>& handler_stack() {
  static std::vector<WarningHandler> stack;
  return stack;
}

}  // namespace

std::string format_warning(const Warning& w) {
  std::string out = "warning: [";
  out += to_string(w.category);
  out += "] ";
  out += w.stage;
  out += ": ";
  out += w.message;
  return out;
}

void emit_warning(Category category, std::string stage, std::string message) {
  Warning w{category, std::move(stage), std::move(message)};
  std::lock_guard<std::mutex> lock(handler_mutex());
  if (!handler_stack().empty()) {
    handler_stack().back()(w);
    return;
  }
  std::cerr << format_warning(w) << "\n";
}

ScopedWarningHandler::ScopedWarningHandler(WarningHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex());
  handler_stack().push_back(std::move(handler));
}

ScopedWarningHandler::~ScopedWarningHandler() {
  std::lock_guard<std::mutex> lock(handler_mutex());
  handler_stack().pop_back();
}

}  // namespace rlcx::diag
