#include "diag/warnings.h"

#include <iostream>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace rlcx::diag {

namespace {

std::mutex& handler_mutex() {
  static std::mutex m;
  return m;
}

// Innermost-wins handler stack.  Guarded by handler_mutex(); emission holds
// the lock through the handler call so a handler writing to a CLI stream
// needs no synchronisation of its own.
std::vector<WarningHandler>& handler_stack() {
  static std::vector<WarningHandler> stack;
  return stack;
}

// Warn-once dedup state (guarded by handler_mutex()).  The depth counts
// open ScopedWarningDedup scopes process-wide: worker threads emit while a
// scope opened on the *calling* thread is alive, so the state cannot be
// thread-local.  The set and counter reset when the last scope closes.
struct DedupState {
  int depth = 0;
  std::unordered_set<std::string> seen;
  std::size_t suppressed = 0;
};

DedupState& dedup_state() {
  static DedupState s;
  return s;
}

}  // namespace

std::string format_warning(const Warning& w) {
  std::string out = "warning: [";
  out += to_string(w.category);
  out += "] ";
  out += w.stage;
  out += ": ";
  out += w.message;
  return out;
}

void emit_warning(Category category, std::string stage, std::string message) {
  Warning w{category, std::move(stage), std::move(message)};
  std::lock_guard<std::mutex> lock(handler_mutex());
  DedupState& dedup = dedup_state();
  if (dedup.depth > 0 && !dedup.seen.insert(format_warning(w)).second) {
    ++dedup.suppressed;
    return;
  }
  if (!handler_stack().empty()) {
    handler_stack().back()(w);
    return;
  }
  std::cerr << format_warning(w) << "\n";
}

ScopedWarningHandler::ScopedWarningHandler(WarningHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex());
  handler_stack().push_back(std::move(handler));
}

ScopedWarningHandler::~ScopedWarningHandler() {
  std::lock_guard<std::mutex> lock(handler_mutex());
  handler_stack().pop_back();
}

ScopedWarningDedup::ScopedWarningDedup() {
  std::lock_guard<std::mutex> lock(handler_mutex());
  ++dedup_state().depth;
}

ScopedWarningDedup::~ScopedWarningDedup() {
  std::lock_guard<std::mutex> lock(handler_mutex());
  DedupState& dedup = dedup_state();
  if (--dedup.depth == 0) {
    dedup.seen.clear();
    dedup.suppressed = 0;
  }
}

std::size_t ScopedWarningDedup::suppressed_count() noexcept {
  std::lock_guard<std::mutex> lock(handler_mutex());
  return dedup_state().suppressed;
}

}  // namespace rlcx::diag
