// A metal layer in the interconnect stack.
#pragma once

namespace rlcx::geom {

struct Layer {
  int index = 0;          ///< metal level (1 = closest to substrate)
  double thickness = 0.0; ///< vertical extent [m]
  double z_bottom = 0.0;  ///< absolute height of the layer bottom [m]
  double rho = 0.0;       ///< resistivity [ohm*m]

  double z_top() const { return z_bottom + thickness; }
  double z_center() const { return z_bottom + 0.5 * thickness; }
};

}  // namespace rlcx::geom
