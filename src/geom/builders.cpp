#include "geom/builders.h"

#include <stdexcept>

namespace rlcx::geom {

namespace {

std::vector<Trace> gsg_traces(double signal_width, double ground_width,
                              double spacing) {
  const double pitch = 0.5 * signal_width + spacing + 0.5 * ground_width;
  std::vector<Trace> traces;
  traces.push_back({TraceRole::kGround, ground_width, -pitch, "gnd_l"});
  traces.push_back({TraceRole::kSignal, signal_width, 0.0, "sig"});
  traces.push_back({TraceRole::kGround, ground_width, pitch, "gnd_r"});
  return traces;
}

}  // namespace

Block coplanar_waveguide(const Technology& tech, int layer, double length,
                         double signal_width, double ground_width,
                         double spacing) {
  return Block(&tech, layer, length,
               gsg_traces(signal_width, ground_width, spacing),
               PlaneConfig::kNone);
}

Block microstrip(const Technology& tech, int layer, double length,
                 double signal_width, double ground_width, double spacing) {
  return Block(&tech, layer, length,
               gsg_traces(signal_width, ground_width, spacing),
               PlaneConfig::kBelow);
}

Block stripline(const Technology& tech, int layer, double length,
                double signal_width, double ground_width, double spacing) {
  return Block(&tech, layer, length,
               gsg_traces(signal_width, ground_width, spacing),
               PlaneConfig::kBothSides);
}

Block single_trace(const Technology& tech, int layer, double length,
                   double width, PlaneConfig planes) {
  std::vector<Trace> traces{{TraceRole::kSignal, width, 0.0, "sig"}};
  return Block(&tech, layer, length, std::move(traces), planes);
}

Block bus_block(const Technology& tech, int layer, double length,
                const std::vector<double>& widths,
                const std::vector<double>& spacings,
                PlaneConfig planes) {
  if (widths.size() < 2)
    throw std::invalid_argument("bus block needs >= 2 traces");
  if (spacings.size() + 1 != widths.size())
    throw std::invalid_argument("bus block needs n-1 spacings");

  // Lay traces out left to right, then re-center on x = 0.
  std::vector<Trace> traces;
  double x = 0.0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) x += spacings[i - 1];
    const TraceRole role = (i == 0 || i + 1 == widths.size())
                               ? TraceRole::kGround
                               : TraceRole::kSignal;
    const char* base = role == TraceRole::kGround ? "gnd" : "sig";
    traces.push_back(
        {role, widths[i], x + 0.5 * widths[i], base + std::to_string(i)});
    x += widths[i];
  }
  const double mid = 0.5 * x;
  for (Trace& t : traces) t.x_center -= mid;
  return Block(&tech, layer, length, std::move(traces), planes);
}

Block uniform_array(const Technology& tech, int layer, double length,
                    std::size_t n, double width, double spacing,
                    PlaneConfig planes) {
  if (n == 0) throw std::invalid_argument("array needs traces");
  std::vector<Trace> traces;
  const double pitch = width + spacing;
  const double x0 = -0.5 * static_cast<double>(n - 1) * pitch;
  for (std::size_t i = 0; i < n; ++i) {
    traces.push_back({TraceRole::kSignal, width,
                      x0 + static_cast<double>(i) * pitch,
                      "t" + std::to_string(i + 1)});
  }
  return Block(&tech, layer, length, std::move(traces), planes);
}

}  // namespace rlcx::geom
