// A single wire trace within a coplanar block.
#pragma once

#include <string>

namespace rlcx::geom {

enum class TraceRole {
  kSignal,  ///< carries a signal; gets its own netlist branch
  kGround,  ///< dedicated AC-grounded shield/return trace
};

struct Trace {
  TraceRole role = TraceRole::kSignal;
  double width = 0.0;     ///< [m]
  double x_center = 0.0;  ///< lateral position of the trace center [m]
  std::string name;       ///< optional label for netlists and reports

  double x_left() const { return x_center - 0.5 * width; }
  double x_right() const { return x_center + 0.5 * width; }
};

}  // namespace rlcx::geom
