#include "geom/technology.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "diag/error.h"
#include "numeric/units.h"

namespace rlcx::geom {

Technology::Technology(std::vector<Layer> layers, double eps_r)
    : layers_(std::move(layers)), eps_r_(eps_r) {
  std::sort(layers_.begin(), layers_.end(),
            [](const Layer& a, const Layer& b) { return a.index < b.index; });
  validate();
}

void Technology::validate() const {
  if (layers_.empty())
    throw diag::GeometryError("technology",
                              "a technology needs at least one layer");
  if (!(eps_r_ > 0.0) || !std::isfinite(eps_r_))
    throw diag::GeometryError(
        "technology", "relative permittivity must be positive and finite, "
                      "got " + std::to_string(eps_r_));
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    if (layers_[i].index == layers_[i + 1].index)
      throw diag::GeometryError(
          "technology",
          "duplicate layer index " + std::to_string(layers_[i].index));
    if (layers_[i].z_top() > layers_[i + 1].z_bottom + 1e-12) {
      std::ostringstream msg;
      msg << "layers " << layers_[i].index << " and " << layers_[i + 1].index
          << " overlap vertically (layer " << layers_[i].index
          << " top z = " << layers_[i].z_top() << " m, layer "
          << layers_[i + 1].index
          << " bottom z = " << layers_[i + 1].z_bottom << " m)";
      throw diag::GeometryError("technology", msg.str());
    }
  }
  for (const Layer& l : layers_) {
    if (!(l.thickness > 0.0) || !std::isfinite(l.thickness))
      throw diag::GeometryError(
          "technology", "layer " + std::to_string(l.index) +
                            " thickness must be positive and finite, got " +
                            std::to_string(l.thickness) + " m");
    if (!(l.rho > 0.0) || !std::isfinite(l.rho))
      throw diag::GeometryError(
          "technology", "layer " + std::to_string(l.index) +
                            " resistivity must be positive and finite, got " +
                            std::to_string(l.rho) + " ohm*m");
  }
}

Technology Technology::generic_025um() {
  using units::um;
  std::vector<Layer> layers;
  // Thin lower metals, thick upper metals; ~1 um inter-layer dielectric on
  // the clock levels.  Layer 6 is the 2-um-thick clock metal of Figure 1,
  // layer 4 the local-ground-plane level two below it (paper: N-2).
  double z = 0.0;
  const struct {
    double t_um;
    double ild_um;  // dielectric below this layer
  } stack[] = {
      {0.5, 0.8},  // M1
      {0.5, 0.8},  // M2
      {0.9, 0.9},  // M3
      {0.9, 0.9},  // M4  (local ground-plane level for layer-6 microstrip)
      {1.2, 1.0},  // M5  (orthogonal signal level below the clock)
      {2.0, 1.0},  // M6  (clock metal: 2 um thick, as in Figure 1)
      {2.0, 1.2},  // M7
      {2.0, 1.2},  // M8  (plane level above for stripline studies)
  };
  int index = 1;
  for (const auto& s : stack) {
    z += um(s.ild_um);
    layers.push_back(Layer{index, um(s.t_um), z, kRhoCopper});
    z += um(s.t_um);
    ++index;
  }
  return Technology(std::move(layers), kEpsRSiO2);
}

Technology Technology::at_temperature(double celsius,
                                      double alpha_per_kelvin) const {
  const double scale = 1.0 + alpha_per_kelvin * (celsius - 25.0);
  if (scale <= 0.0)
    throw diag::UsageError(
        "technology", "at_temperature(" + std::to_string(celsius) +
                          " C): the linear model's resistivity scale is " +
                          std::to_string(scale) + " (non-physical)");
  std::vector<Layer> scaled = layers_;
  for (Layer& l : scaled) l.rho *= scale;
  return Technology(std::move(scaled), eps_r_);
}

bool Technology::has_layer(int index) const {
  return std::any_of(layers_.begin(), layers_.end(),
                     [index](const Layer& l) { return l.index == index; });
}

const Layer& Technology::layer(int index) const {
  for (const Layer& l : layers_)
    if (l.index == index) return l;
  throw std::out_of_range("no such layer in technology");
}

int Technology::top_layer() const { return layers_.back().index; }

double Technology::dielectric_gap(int lower, int upper) const {
  const Layer& lo = layer(std::min(lower, upper));
  const Layer& hi = layer(std::max(lower, upper));
  return hi.z_bottom - lo.z_top();
}

double Technology::center_separation(int a, int b) const {
  return std::abs(layer(a).z_center() - layer(b).z_center());
}

std::string Technology::fingerprint() const {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "tech eps_r %.17g layers %zu\n", eps_r_,
                layers_.size());
  out += buf;
  for (const Layer& l : layers_) {
    std::snprintf(buf, sizeof buf,
                  "layer %d thickness %.17g z_bottom %.17g rho %.17g\n",
                  l.index, l.thickness, l.z_bottom, l.rho);
    out += buf;
  }
  return out;
}

}  // namespace rlcx::geom
