// Block: the paper's unit of extraction.
//
// A block is n same-length parallel traces in one layer (Figure 4), possibly
// with a local ground plane in layer N-2 (microstrip), N+2, or both
// (stripline).  Traces in adjacent layers are orthogonal and therefore do
// not couple inductively (paper Section II).
#pragma once

#include <optional>
#include <vector>

#include "geom/technology.h"
#include "geom/trace.h"

namespace rlcx::geom {

/// Where local ground planes sit relative to the block's layer.
enum class PlaneConfig {
  kNone,      ///< bare coplanar structure
  kBelow,     ///< microstrip: plane in layer N-2
  kAbove,     ///< inverted microstrip: plane in layer N+2
  kBothSides, ///< stripline: planes in N-2 and N+2
};

const char* to_string(PlaneConfig c);

class Block {
 public:
  /// Traces must be in `layer`, non-overlapping; they are sorted by x.
  Block(const Technology* tech, int layer, double length,
        std::vector<Trace> traces, PlaneConfig planes = PlaneConfig::kNone);

  /// Geometry consistency check, run by the constructor and re-runnable at
  /// API boundaries.  Rejects missing technology/layer, non-positive length,
  /// degenerate traces (zero/negative width), lateral overlaps (reported
  /// with trace names, x ranges and the negative spacing) and plane configs
  /// whose N±2 layer does not exist — each a categorized `geometry` error.
  void validate() const;

  const Technology& tech() const { return *tech_; }
  int layer_index() const { return layer_; }
  const Layer& layer() const { return tech_->layer(layer_); }
  double length() const { return length_; }
  PlaneConfig planes() const { return planes_; }

  std::size_t size() const { return traces_.size(); }
  const Trace& trace(std::size_t i) const { return traces_.at(i); }
  const std::vector<Trace>& traces() const { return traces_; }

  /// Indices of signal / ground traces, in x order.
  std::vector<std::size_t> signal_indices() const;
  std::vector<std::size_t> ground_indices() const;

  /// Edge-to-edge spacing between traces i and j (i != j).
  double spacing(std::size_t i, std::size_t j) const;

  /// Center-to-center pitch between traces i and j.
  double pitch(std::size_t i, std::size_t j) const;

  /// Layer index of the plane below / above (throws if absent).
  int plane_layer_below() const;
  int plane_layer_above() const;

  /// Dielectric gap from the block layer bottom to the plane top (the "h" of
  /// microstrip formulas).
  double height_above_plane() const;

  /// A copy of this block containing only the given trace indices (the
  /// 1-trace and 2-trace subproblems of Section III).
  Block subproblem(const std::vector<std::size_t>& keep) const;

  /// A copy with a different length (tables sweep length).
  Block with_length(double new_length) const;

 private:
  const Technology* tech_;
  int layer_;
  double length_;
  std::vector<Trace> traces_;
  PlaneConfig planes_;
};

}  // namespace rlcx::geom
