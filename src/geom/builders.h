// Convenience constructors for the structures the paper uses:
// coplanar waveguide (Figure 8), microstrip (Figure 9), stripline, and the
// n-trace bus block of Figure 4.
#pragma once

#include <vector>

#include "geom/block.h"

namespace rlcx::geom {

/// Ground-Signal-Ground coplanar waveguide, centered at x = 0.
/// This is Figure 1 / Figure 8 of the paper.
Block coplanar_waveguide(const Technology& tech, int layer, double length,
                         double signal_width, double ground_width,
                         double spacing);

/// GSG structure over a local ground plane in layer N-2 (Figure 9).
Block microstrip(const Technology& tech, int layer, double length,
                 double signal_width, double ground_width, double spacing);

/// GSG structure between planes in N-2 and N+2.
Block stripline(const Technology& tech, int layer, double length,
                double signal_width, double ground_width, double spacing);

/// A single signal trace over a plane (the paper's Figure 5(b) subproblem
/// when the ground traces are removed).
Block single_trace(const Technology& tech, int layer, double length,
                   double width,
                   PlaneConfig planes = PlaneConfig::kNone);

/// Figure 4: n traces of the given widths with the given edge-to-edge
/// spacings (spacings.size() == widths.size()-1); the two outermost traces
/// are dedicated AC grounds, everything else signal.  Centered at x = 0.
Block bus_block(const Technology& tech, int layer, double length,
                const std::vector<double>& widths,
                const std::vector<double>& spacings,
                PlaneConfig planes = PlaneConfig::kNone);

/// Uniform n-trace array (equal widths, equal spacings), all signals —
/// the Figure 5 structure when placed over a plane.
Block uniform_array(const Technology& tech, int layer, double length,
                    std::size_t n, double width, double spacing,
                    PlaneConfig planes = PlaneConfig::kNone);

}  // namespace rlcx::geom
