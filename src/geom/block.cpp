#include "geom/block.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "diag/error.h"

namespace rlcx::geom {

namespace {

/// "trace 2 ('shield_l')" or just "trace 2" when unnamed.
std::string trace_label(std::size_t i, const Trace& t) {
  std::string out = "trace " + std::to_string(i);
  if (!t.name.empty()) out += " ('" + t.name + "')";
  return out;
}

}  // namespace

const char* to_string(PlaneConfig c) {
  switch (c) {
    case PlaneConfig::kNone: return "none";
    case PlaneConfig::kBelow: return "below";
    case PlaneConfig::kAbove: return "above";
    case PlaneConfig::kBothSides: return "both";
  }
  return "?";
}

Block::Block(const Technology* tech, int layer, double length,
             std::vector<Trace> traces, PlaneConfig planes)
    : tech_(tech), layer_(layer), length_(length),
      traces_(std::move(traces)), planes_(planes) {
  if (tech_ == nullptr)
    throw diag::GeometryError("block", "a block needs a technology");
  std::sort(traces_.begin(), traces_.end(),
            [](const Trace& a, const Trace& b) {
              return a.x_center < b.x_center;
            });
  validate();
}

void Block::validate() const {
  if (tech_ == nullptr)
    throw diag::GeometryError("block", "a block needs a technology");
  if (!tech_->has_layer(layer_))
    throw diag::GeometryError(
        "block", "layer " + std::to_string(layer_) +
                     " does not exist in the technology (top layer is " +
                     std::to_string(tech_->top_layer()) + ")");
  if (!(length_ > 0.0) || !std::isfinite(length_))
    throw diag::GeometryError(
        "block", "length must be positive and finite, got " +
                     std::to_string(length_) + " m (zero-length traces have "
                     "no resistance, capacitance or inductance to extract)");
  if (traces_.empty())
    throw diag::GeometryError("block", "a block needs at least one trace");
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const Trace& t = traces_[i];
    if (!(t.width > 0.0) || !std::isfinite(t.width))
      throw diag::GeometryError(
          "block", trace_label(i, t) + " width must be positive and finite, "
                       "got " + std::to_string(t.width) + " m");
    if (!std::isfinite(t.x_center))
      throw diag::GeometryError(
          "block", trace_label(i, t) + " x_center must be finite, got " +
                       std::to_string(t.x_center));
  }
  for (std::size_t i = 0; i + 1 < traces_.size(); ++i) {
    const Trace& a = traces_[i];
    const Trace& b = traces_[i + 1];
    if (a.x_right() > b.x_left() + 1e-15) {
      std::ostringstream msg;
      msg << trace_label(i, a) << " [" << a.x_left() << ", " << a.x_right()
          << "] m and " << trace_label(i + 1, b) << " [" << b.x_left() << ", "
          << b.x_right() << "] m overlap laterally (edge-to-edge spacing "
          << b.x_left() - a.x_right() << " m)";
      throw diag::GeometryError("block", msg.str());
    }
  }

  const bool below = planes_ == PlaneConfig::kBelow ||
                     planes_ == PlaneConfig::kBothSides;
  const bool above = planes_ == PlaneConfig::kAbove ||
                     planes_ == PlaneConfig::kBothSides;
  if (below && !tech_->has_layer(layer_ - 2))
    throw diag::GeometryError(
        "block", "plane config '" + std::string(to_string(planes_)) +
                     "' needs layer N-2 = " + std::to_string(layer_ - 2) +
                     ", which does not exist in the technology");
  if (above && !tech_->has_layer(layer_ + 2))
    throw diag::GeometryError(
        "block", "plane config '" + std::string(to_string(planes_)) +
                     "' needs layer N+2 = " + std::to_string(layer_ + 2) +
                     ", which does not exist in the technology");
}

std::vector<std::size_t> Block::signal_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < traces_.size(); ++i)
    if (traces_[i].role == TraceRole::kSignal) out.push_back(i);
  return out;
}

std::vector<std::size_t> Block::ground_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < traces_.size(); ++i)
    if (traces_[i].role == TraceRole::kGround) out.push_back(i);
  return out;
}

double Block::spacing(std::size_t i, std::size_t j) const {
  if (i == j) throw std::invalid_argument("spacing of a trace with itself");
  const Trace& left = trace(traces_[i].x_center < traces_[j].x_center ? i : j);
  const Trace& right = trace(traces_[i].x_center < traces_[j].x_center ? j : i);
  return right.x_left() - left.x_right();
}

double Block::pitch(std::size_t i, std::size_t j) const {
  return std::abs(trace(i).x_center - trace(j).x_center);
}

int Block::plane_layer_below() const {
  if (planes_ != PlaneConfig::kBelow && planes_ != PlaneConfig::kBothSides)
    throw std::logic_error("block has no plane below");
  return layer_ - 2;
}

int Block::plane_layer_above() const {
  if (planes_ != PlaneConfig::kAbove && planes_ != PlaneConfig::kBothSides)
    throw std::logic_error("block has no plane above");
  return layer_ + 2;
}

double Block::height_above_plane() const {
  return tech_->dielectric_gap(plane_layer_below(), layer_);
}

Block Block::subproblem(const std::vector<std::size_t>& keep) const {
  std::vector<Trace> sub;
  sub.reserve(keep.size());
  for (std::size_t idx : keep) sub.push_back(trace(idx));
  return Block(tech_, layer_, length_, std::move(sub), planes_);
}

Block Block::with_length(double new_length) const {
  return Block(tech_, layer_, new_length, traces_, planes_);
}

}  // namespace rlcx::geom
