#include "geom/block.h"

#include <algorithm>
#include <stdexcept>

namespace rlcx::geom {

const char* to_string(PlaneConfig c) {
  switch (c) {
    case PlaneConfig::kNone: return "none";
    case PlaneConfig::kBelow: return "below";
    case PlaneConfig::kAbove: return "above";
    case PlaneConfig::kBothSides: return "both";
  }
  return "?";
}

Block::Block(const Technology* tech, int layer, double length,
             std::vector<Trace> traces, PlaneConfig planes)
    : tech_(tech), layer_(layer), length_(length),
      traces_(std::move(traces)), planes_(planes) {
  if (tech_ == nullptr) throw std::invalid_argument("block needs technology");
  if (!tech_->has_layer(layer_)) throw std::invalid_argument("bad layer");
  if (length_ <= 0.0) throw std::invalid_argument("block length");
  if (traces_.empty()) throw std::invalid_argument("block needs traces");
  for (const Trace& t : traces_)
    if (t.width <= 0.0) throw std::invalid_argument("trace width");

  std::sort(traces_.begin(), traces_.end(),
            [](const Trace& a, const Trace& b) {
              return a.x_center < b.x_center;
            });
  for (std::size_t i = 0; i + 1 < traces_.size(); ++i) {
    if (traces_[i].x_right() > traces_[i + 1].x_left() + 1e-15)
      throw std::invalid_argument("traces overlap laterally");
  }

  const bool below = planes_ == PlaneConfig::kBelow ||
                     planes_ == PlaneConfig::kBothSides;
  const bool above = planes_ == PlaneConfig::kAbove ||
                     planes_ == PlaneConfig::kBothSides;
  if (below && !tech_->has_layer(layer_ - 2))
    throw std::invalid_argument("no layer N-2 for plane below");
  if (above && !tech_->has_layer(layer_ + 2))
    throw std::invalid_argument("no layer N+2 for plane above");
}

std::vector<std::size_t> Block::signal_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < traces_.size(); ++i)
    if (traces_[i].role == TraceRole::kSignal) out.push_back(i);
  return out;
}

std::vector<std::size_t> Block::ground_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < traces_.size(); ++i)
    if (traces_[i].role == TraceRole::kGround) out.push_back(i);
  return out;
}

double Block::spacing(std::size_t i, std::size_t j) const {
  if (i == j) throw std::invalid_argument("spacing of a trace with itself");
  const Trace& left = trace(traces_[i].x_center < traces_[j].x_center ? i : j);
  const Trace& right = trace(traces_[i].x_center < traces_[j].x_center ? j : i);
  return right.x_left() - left.x_right();
}

double Block::pitch(std::size_t i, std::size_t j) const {
  return std::abs(trace(i).x_center - trace(j).x_center);
}

int Block::plane_layer_below() const {
  if (planes_ != PlaneConfig::kBelow && planes_ != PlaneConfig::kBothSides)
    throw std::logic_error("block has no plane below");
  return layer_ - 2;
}

int Block::plane_layer_above() const {
  if (planes_ != PlaneConfig::kAbove && planes_ != PlaneConfig::kBothSides)
    throw std::logic_error("block has no plane above");
  return layer_ + 2;
}

double Block::height_above_plane() const {
  return tech_->dielectric_gap(plane_layer_below(), layer_);
}

Block Block::subproblem(const std::vector<std::size_t>& keep) const {
  std::vector<Trace> sub;
  sub.reserve(keep.size());
  for (std::size_t idx : keep) sub.push_back(trace(idx));
  return Block(tech_, layer_, length_, std::move(sub), planes_);
}

Block Block::with_length(double new_length) const {
  return Block(tech_, layer_, new_length, traces_, planes_);
}

}  // namespace rlcx::geom
