// Interconnect technology description: the layer stack and dielectric.
//
// The paper's experiments are defined by explicit geometry (widths, spacings,
// thicknesses), not by a foundry deck, so the Technology only needs to supply
// the vertical stack (layer thicknesses and separations), resistivity and
// the oxide permittivity.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "geom/layer.h"

namespace rlcx::geom {

class Technology {
 public:
  Technology(std::vector<Layer> layers, double eps_r);

  /// Stack consistency check, run by the constructor and re-runnable at API
  /// boundaries (e.g. after deserialisation).  Rejects empty stacks,
  /// duplicate layer indices, vertically overlapping layers and non-positive
  /// thickness / resistivity / permittivity with a categorized `geometry`
  /// error naming the offending layer and value.
  void validate() const;

  /// The process used throughout the paper's experiments: a late-1990s
  /// high-performance CPU stack with 2 um thick top-level clock metal
  /// (matching Figure 1's "2 um thick" wires), SiO2 dielectric and
  /// damascene-copper resistivity.
  static Technology generic_025um();

  const Layer& layer(int index) const;
  bool has_layer(int index) const;
  int top_layer() const;
  std::size_t layer_count() const { return layers_.size(); }

  double eps_r() const { return eps_r_; }

  /// A copy of this technology with every layer's resistivity scaled to the
  /// given temperature: rho(T) = rho25 * (1 + alpha (T - 25 C)), the linear
  /// model with the copper coefficient by default.  Inductance and
  /// capacitance are temperature-insensitive; resistance (and so delay and
  /// skew) are not — the same split as the process-variation story.
  Technology at_temperature(double celsius,
                            double alpha_per_kelvin = 0.0039) const;

  /// Vertical gap between the bottom of layer `upper` and the top of layer
  /// `lower` — the "h" that microstrip capacitance formulas want.
  double dielectric_gap(int lower, int upper) const;

  /// Center-to-center vertical distance between two layers.
  double center_separation(int a, int b) const;

  /// Canonical ASCII description of everything that affects extraction
  /// results: eps_r plus every layer's (index, thickness, z_bottom, rho),
  /// doubles printed with 17 significant digits so distinct stacks can
  /// never share a fingerprint.  Feeds the table-cache key (see
  /// docs/table-format.md).
  std::string fingerprint() const;

 private:
  std::vector<Layer> layers_;  // sorted by index
  double eps_r_;
};

}  // namespace rlcx::geom
