#include "peec/assembly.h"

#include <stdexcept>

namespace rlcx::peec {

double bar_resistance(const Bar& bar, double rho) {
  const double area = bar.cross_area();
  if (area <= 0.0) throw std::invalid_argument("bar_resistance: area");
  return rho * bar.length / area;
}

RealMatrix partial_inductance_matrix(const std::vector<Filament>& filaments,
                                     const PartialOptions& opt) {
  const std::size_t n = filaments.size();
  RealMatrix lp(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    lp(i, i) = self_partial(filaments[i].bar, opt);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double m = filaments[i].sign * filaments[j].sign *
                       mutual_partial(filaments[i].bar, filaments[j].bar, opt);
      lp(i, j) = m;
      lp(j, i) = m;
    }
  }
  return lp;
}

}  // namespace rlcx::peec
