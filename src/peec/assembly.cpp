#include "peec/assembly.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "peec/kernel_batch.h"
#include "res/budget.h"
#include "rt/parallel.h"

namespace rlcx::peec {

double bar_resistance(const Bar& bar, double rho) {
  const double area = bar.cross_area();
  if (area <= 0.0) throw std::invalid_argument("bar_resistance: area");
  return rho * bar.length / area;
}

namespace {

std::atomic<std::size_t> g_pair_lookups{0};
std::atomic<std::size_t> g_kernel_evals{0};
std::atomic<std::size_t> g_memo_hits{0};

/// Flat index of (i, j), i <= j, in the row-major upper triangle.
std::size_t tri_index(std::size_t i, std::size_t j, std::size_t n) {
  return i * n - i * (i - 1) / 2 + (j - i);
}

/// Largest coordinate magnitude / dimension in the fill; the PairKey
/// quantum is this scale times memo_rel_tol, so quantization noise is
/// measured against the whole structure rather than any single bar.
double fill_scale(const std::vector<Filament>& filaments) {
  double s = 0.0;
  for (const Filament& f : filaments) {
    const Bar& b = f.bar;
    s = std::max({s, std::abs(b.a_min), std::abs(b.a_max()),
                  std::abs(b.t_min), std::abs(b.t_max()),
                  std::abs(b.z_min), std::abs(b.z_max()),
                  b.length, b.t_width, b.z_thick});
  }
  return s;
}

// Below this many rows the direct fill is a few hundred kernel terms —
// cheaper to run in place than to dispatch row blocks to the pool.
constexpr std::size_t kParallelThreshold = 16;

constexpr std::uint32_t kOrthogonalClass = 0xffffffffu;

// Flush the memo path's batch once this many SoA entries accumulate:
// bounds the evaluator's working memory (13 doubles/entry -> ~7 MB) on
// huge fills without giving up long vector runs.  Values are elementwise
// per entry, so the flush boundary cannot change any result.
constexpr std::size_t kBatchFlushEntries = std::size_t{1} << 16;

}  // namespace

FillStats fill_stats_total() {
  FillStats s;
  s.pair_lookups = g_pair_lookups.load(std::memory_order_relaxed);
  s.kernel_evals = g_kernel_evals.load(std::memory_order_relaxed);
  s.memo_hits = g_memo_hits.load(std::memory_order_relaxed);
  return s;
}

void reset_fill_stats_total() {
  g_pair_lookups.store(0, std::memory_order_relaxed);
  g_kernel_evals.store(0, std::memory_order_relaxed);
  g_memo_hits.store(0, std::memory_order_relaxed);
}

std::size_t estimate_fill_bytes(std::size_t filaments) {
  return std::max<std::size_t>(filaments * filaments * sizeof(double), 1024);
}

RealMatrix partial_inductance_matrix(const std::vector<Filament>& filaments,
                                     const PartialOptions& opt,
                                     rt::Pool* pool, FillStats* stats) {
  const std::size_t n = filaments.size();
  // Standalone fills reserve their result against the memory budget; under
  // a solver-path reservation (which already priced this fill in) the
  // ambient coverage makes this a no-op.
  std::optional<res::ScopedReservation> reservation;
  if (!res::ScopedReservation::covered())
    reservation.emplace("peec-fill", estimate_fill_bytes(n));
  RealMatrix lp(n, n);
  FillStats local;

  // Chunk every bar exactly once; both fill paths evaluate pairs against
  // these lists (chunk_lengthwise depends only on the bar, so this is
  // bit-identical to chunking inside each pair evaluation).
  std::vector<std::vector<Bar>> chunks(n);
  for (std::size_t i = 0; i < n; ++i)
    chunks[i] = chunk_lengthwise(filaments[i].bar, opt.max_aspect);

  const double scale = fill_scale(filaments);
  const double quantum = scale * opt.memo_rel_tol;
  const bool memo = opt.memo && quantum > 0.0;

  if (!memo) {
    // Direct fill: row i covers the diagonal plus every j > i, mirrored
    // into (j, i); rows write disjoint elements and can run in any order.
    // Row cost shrinks with i (n - i kernel evaluations), which is exactly
    // the imbalance the work-stealing grain of one row absorbs.  Each row
    // is flattened into one batch so the SoA kernels get long vector runs
    // even with memoization off; the engine runs inline here (the outer
    // loop already owns the pool's parallelism).
    auto fill_rows = [&](std::size_t lo, std::size_t hi) {
      BatchEvaluator ev;
      std::vector<double> row;
      for (std::size_t i = lo; i < hi; ++i) {
        ev.clear();
        ev.add_self(chunks[i], opt);
        for (std::size_t j = i + 1; j < n; ++j)
          ev.add_pair(filaments[i].bar, filaments[j].bar, chunks[i],
                      chunks[j], opt);
        row.resize(ev.slots());
        ev.run(row.data(), pool);
        lp(i, i) = row[0];
        for (std::size_t j = i + 1; j < n; ++j) {
          const double m =
              filaments[i].sign * filaments[j].sign * row[j - i];
          lp(i, j) = m;
          lp(j, i) = m;
        }
      }
    };
    if (n < kParallelThreshold) {
      fill_rows(0, n);
    } else {
      rt::ParallelOptions popt;
      popt.grain = 1;
      popt.pool = pool;
      rt::parallel_for(0, n, fill_rows, popt);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ++local.pair_lookups;  // the diagonal
      for (std::size_t j = i + 1; j < n; ++j)
        if (filaments[i].bar.axis == filaments[j].bar.axis)
          ++local.pair_lookups;
    }
    local.kernel_evals = local.pair_lookups;
  } else {
    // Pass 1 (serial): group the upper triangle into relative-geometry
    // classes.  The first pair scanned becomes the class representative,
    // so the class list — and therefore every memoized value — is
    // independent of how pass 2 is scheduled.
    struct ClassRec {
      std::uint32_t i, j;
      double value = 0.0;
    };
    std::vector<ClassRec> classes;
    std::unordered_map<PairKey, std::uint32_t, PairKeyHash> self_ids;
    std::unordered_map<PairKey, std::uint32_t, PairKeyHash> pair_ids;
    std::vector<std::uint32_t> cls(n * (n + 1) / 2, kOrthogonalClass);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const Bar& bi = filaments[i].bar;
        const Bar& bj = filaments[j].bar;
        if (i != j && bi.axis != bj.axis) continue;  // exact zero, no kernel
        ++local.pair_lookups;
        // Self classes and pair classes live in separate maps: a pair of
        // *distinct* bars whose key degenerates to a self key is a
        // coincident-bar layout error, and must reach the kernel's
        // disjointness guard instead of silently reusing a self value.
        auto& ids = i == j ? self_ids : pair_ids;
        const PairKey key =
            i == j ? make_self_key(bi, quantum)
                   : make_pair_key(bi, bj, quantum, opt.memo_fold_symmetries);
        const auto [it, inserted] =
            ids.try_emplace(key, static_cast<std::uint32_t>(classes.size()));
        if (inserted) {
          classes.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j), 0.0});
        } else {
          ++local.memo_hits;
        }
        cls[tri_index(i, j, n)] = it->second;
      }
    }

    // Pass 2: one batched kernel evaluation per class.  Classes append in
    // pass-1 order into SoA batches the engine fans out across the pool;
    // every class value is an order-fixed reduction of elementwise entry
    // values, so the result is independent of pool width and of where the
    // memory-bounding flushes land.
    {
      BatchEvaluator ev;
      std::size_t flushed = 0;
      std::vector<double> values(classes.size());
      auto flush = [&] {
        ev.run(values.data() + flushed, pool);
        flushed += ev.slots();
        ev.clear();
      };
      for (const ClassRec& r : classes) {
        if (r.i == r.j) {
          ev.add_self(chunks[r.i], opt);
        } else {
          ev.add_pair(filaments[r.i].bar, filaments[r.j].bar, chunks[r.i],
                      chunks[r.j], opt);
        }
        if (ev.volume_entries() + ev.filament_entries() >= kBatchFlushEntries)
          flush();
      }
      flush();
      for (std::size_t c = 0; c < classes.size(); ++c)
        classes[c].value = values[c];
    }
    local.kernel_evals = classes.size();

    // Pass 3: scatter with the orientation signs folded in.  Orthogonal
    // pairs keep the zero the matrix was initialised with.
    for (std::size_t i = 0; i < n; ++i) {
      lp(i, i) = classes[cls[tri_index(i, i, n)]].value;
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::uint32_t c = cls[tri_index(i, j, n)];
        if (c == kOrthogonalClass) continue;
        const double m =
            filaments[i].sign * filaments[j].sign * classes[c].value;
        lp(i, j) = m;
        lp(j, i) = m;
      }
    }
  }

  g_pair_lookups.fetch_add(local.pair_lookups, std::memory_order_relaxed);
  g_kernel_evals.fetch_add(local.kernel_evals, std::memory_order_relaxed);
  g_memo_hits.fetch_add(local.memo_hits, std::memory_order_relaxed);
  if (stats != nullptr) *stats = local;
  return lp;
}

}  // namespace rlcx::peec
