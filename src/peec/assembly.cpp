#include "peec/assembly.h"

#include <stdexcept>

#include "rt/parallel.h"

namespace rlcx::peec {

double bar_resistance(const Bar& bar, double rho) {
  const double area = bar.cross_area();
  if (area <= 0.0) throw std::invalid_argument("bar_resistance: area");
  return rho * bar.length / area;
}

RealMatrix partial_inductance_matrix(const std::vector<Filament>& filaments,
                                     const PartialOptions& opt,
                                     rt::Pool* pool) {
  const std::size_t n = filaments.size();
  RealMatrix lp(n, n);
  // Row i covers the diagonal plus every j > i, mirrored into (j, i):
  // the mirror slot lies strictly below row j's own span, so rows write
  // disjoint elements and can fill in any order.  Row cost shrinks with i
  // (n - i kernel evaluations), which is exactly the imbalance the
  // work-stealing grain of one row absorbs.
  auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      lp(i, i) = self_partial(filaments[i].bar, opt);
      for (std::size_t j = i + 1; j < n; ++j) {
        const double m =
            filaments[i].sign * filaments[j].sign *
            mutual_partial(filaments[i].bar, filaments[j].bar, opt);
        lp(i, j) = m;
        lp(j, i) = m;
      }
    }
  };
  // Below ~16 filaments the whole fill is a few hundred kernel calls —
  // cheaper than a dispatch round-trip.
  constexpr std::size_t kParallelThreshold = 16;
  if (n < kParallelThreshold) {
    fill_rows(0, n);
    return lp;
  }
  rt::ParallelOptions popt;
  popt.grain = 1;
  popt.pool = pool;
  rt::parallel_for(0, n, fill_rows, popt);
  return lp;
}

}  // namespace rlcx::peec
