#include "peec/partial_inductance.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "diag/error.h"
#include "numeric/units.h"

namespace rlcx::peec {

namespace {

// ln((v + rho) / sqrt(rho^2 - v^2)) evaluated stably for v < 0, where
// rho = sqrt(v^2 + w2) and w2 = rho^2 - v^2 >= 0 is the sum of the squares
// of the other two coordinates.
double log_ratio(double v, double rho, double w2) {
  // (v + rho) = w2 / (rho - v) when v < 0 avoids cancellation.
  const double num = v >= 0.0 ? v + rho : w2 / (rho - v);
  return std::log(num / std::sqrt(w2));
}

// Hoer & Love's f(x,y,z).  Inputs must be pre-scaled to O(1).
double hl_f(double x, double y, double z) {
  const double x2 = x * x, y2 = y * y, z2 = z * z;
  const double rho2 = x2 + y2 + z2;
  if (rho2 == 0.0) return 0.0;
  const double rho = std::sqrt(rho2);

  double acc = 0.0;

  // The three "v * ln((v + rho)/sqrt(...))" terms.  Each prefactor vanishes
  // identically when its two transverse coordinates vanish, which is exactly
  // when the log argument degenerates — so a zero-prefactor guard suffices.
  const double px = y2 * z2 / 4.0 - y2 * y2 / 24.0 - z2 * z2 / 24.0;
  if (px != 0.0 && x != 0.0) acc += px * x * log_ratio(x, rho, y2 + z2);

  const double py = x2 * z2 / 4.0 - x2 * x2 / 24.0 - z2 * z2 / 24.0;
  if (py != 0.0 && y != 0.0) acc += py * y * log_ratio(y, rho, x2 + z2);

  const double pz = x2 * y2 / 4.0 - x2 * x2 / 24.0 - y2 * y2 / 24.0;
  if (pz != 0.0 && z != 0.0) acc += pz * z * log_ratio(z, rho, x2 + y2);

  acc += (x2 * x2 + y2 * y2 + z2 * z2 -
          3.0 * (x2 * y2 + y2 * z2 + z2 * x2)) *
         rho / 60.0;

  // The three arctangent terms vanish whenever any coordinate is zero.
  // Note: the formula needs the principal-value atan of the quotient (odd in
  // every coordinate), not atan2 — the latter picks the wrong branch for
  // negative bracket arguments.
  if (x != 0.0 && y != 0.0 && z != 0.0) {
    acc -= x * y * z * z2 / 6.0 * std::atan(x * y / (z * rho));
    acc -= x * y * y2 * z / 6.0 * std::atan(x * z / (y * rho));
    acc -= x * x2 * y * z / 6.0 * std::atan(y * z / (x * rho));
  }
  return acc;
}

}  // namespace

namespace detail {

void check_hoer_love_dims(double a, double b, double l1, double c, double d,
                          double l2) {
  if (a <= 0.0 || b <= 0.0 || c <= 0.0 || d <= 0.0 || l1 <= 0.0 ||
      l2 <= 0.0) {
    std::ostringstream msg;
    msg << "hoer_love_mutual: every bar dimension must be positive, got "
           "a=" << a << " b=" << b << " l1=" << l1 << " c=" << c << " d=" << d
        << " l2=" << l2 << " [m] (degenerate bar has no volume to integrate)";
    throw diag::GeometryError("peec", msg.str());
  }
}

void check_filament_args(double l1, double l2, double s, double r) {
  if (l1 <= 0.0 || l2 <= 0.0)
    throw diag::GeometryError(
        "peec", "filament_mutual: lengths must be positive, got l1=" +
                    std::to_string(l1) + " l2=" + std::to_string(l2) + " m");
  if (r < 0.0)
    throw diag::GeometryError(
        "peec", "filament_mutual: radial distance must be >= 0, got " +
                    std::to_string(r) + " m");
  if (r == 0.0) {
    // Overlapping collinear filaments have divergent mutual inductance.
    // Tolerate ulp-level overlap so exactly-touching chunks of a subdivided
    // bar do not trip the guard.
    const double eps = 1e-9 * std::max({l1, l2, std::abs(s)});
    if (s + l2 > eps && s < l1 - eps)
      throw diag::GeometryError(
          "peec",
          "filament_mutual: collinear filaments overlap axially (s=" +
              std::to_string(s) + " m, l1=" + std::to_string(l1) +
              " m, l2=" + std::to_string(l2) +
              " m); their mutual inductance diverges");
  }
}

}  // namespace detail

double hoer_love_mutual(double a, double b, double l1, double c, double d,
                        double l2, double E, double P, double l3) {
  detail::check_hoer_love_dims(a, b, l1, c, d, l2);

  // Scale the geometry to O(1); inductance scales linearly with size.
  const double s = std::max({a, b, c, d, l1, l2, std::abs(E) + c,
                             std::abs(P) + d, std::abs(l3) + l2});
  const double inv = 1.0 / s;
  const double as = a * inv, bs = b * inv, cs = c * inv, ds = d * inv;
  const double l1s = l1 * inv, l2s = l2 * inv;
  const double Es = E * inv, Ps = P * inv, l3s = l3 * inv;

  // Four-point limits per dimension; signs follow from the double
  // integration: [+,-,+,-] over [q-a, q+c-a, q+c, q].
  const double qx[4] = {Es - as, Es + cs - as, Es + cs, Es};
  const double qy[4] = {Ps - bs, Ps + ds - bs, Ps + ds, Ps};
  const double qz[4] = {l3s - l1s, l3s + l2s - l1s, l3s + l2s, l3s};

  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double sx = (i % 2 == 0) ? 1.0 : -1.0;
    for (int j = 0; j < 4; ++j) {
      const double sy = (j % 2 == 0) ? 1.0 : -1.0;
      for (int k = 0; k < 4; ++k) {
        const double sz = (k % 2 == 0) ? 1.0 : -1.0;
        sum += sx * sy * sz * hl_f(qx[i], qy[j], qz[k]);
      }
    }
  }
  // f has dimension length^5, the prefactor 1/(abcd) removes length^4,
  // and the scale restores the remaining factor of s.
  return 1e-7 * sum / (as * bs * cs * ds) * s;  // mu0/4pi = 1e-7
}

double filament_mutual(double l1, double l2, double s, double r) {
  detail::check_filament_args(l1, l2, s, r);
  if (r == 0.0) {
    // Collinear case: the r->0 limit of the kernel is |u|(ln|u| - 1) plus
    // |u| ln(2/r), whose coefficients cancel across the bracket because all
    // four arguments share a sign for non-overlapping filaments.
    auto h0 = [](double u) {
      const double au = std::abs(u);
      return au == 0.0 ? 0.0 : au * (std::log(au) - 1.0);
    };
    return 1e-7 * (h0(s + l2) + h0(s - l1) - h0(s + l2 - l1) - h0(s));
  }
  auto h = [r](double u) {
    return u * std::asinh(u / r) - std::sqrt(u * u + r * r);
  };
  return 1e-7 * (h(s + l2) + h(s - l1) - h(s + l2 - l1) - h(s));
}

double ruehli_self(double length, double width, double thickness) {
  const double wt = width + thickness;
  return kMu0 * length / (2.0 * std::numbers::pi) *
         (std::log(2.0 * length / wt) + 0.5 + 0.2235 * wt / length);
}

// Split a bar lengthwise into chunks whose aspect ratio stays reasonable.
std::vector<Bar> chunk_lengthwise(const Bar& b, double max_aspect) {
  const double max_len = max_aspect * std::max(b.t_width, b.z_thick);
  const int n = std::max(1, static_cast<int>(std::ceil(b.length / max_len)));
  std::vector<Bar> out;
  out.reserve(static_cast<std::size_t>(n));
  const double step = b.length / n;
  for (int i = 0; i < n; ++i) {
    Bar c = b;
    c.a_min = b.a_min + i * step;
    c.length = step;
    out.push_back(c);
  }
  return out;
}

namespace {

// Mutual between two same-axis chunks: filament fast path when the bars are
// well separated — transversely or by an axial gap — where the filament
// closed form is both accurate (error ~ (cross/distance)^2) and numerically
// robust; exact volume kernel otherwise.  Near/overlapping axial ranges at
// small transverse distance must use the volume kernel (GMD effects), and
// far-apart pairs must NOT: there the 64-term bracket cancels to a value
// tiny compared with its terms and the round-off accumulates systematically
// across many chunk pairs.
double chunk_mutual(const Bar& p, const Bar& q, const PartialOptions& opt) {
  const double diag = 0.5 * (p.cross_diag() + q.cross_diag());
  const double dt = q.t_center() - p.t_center();
  const double dz = q.z_center() - p.z_center();
  const double r = std::hypot(dt, dz);
  const double axial_gap =
      std::max(0.0, std::max(p.a_min, q.a_min) -
                        std::min(p.a_max(), q.a_max()));
  if (r > opt.far_factor * diag || axial_gap > opt.far_factor * diag) {
    return filament_mutual(p.length, q.length, q.a_min - p.a_min, r);
  }
  return hoer_love_mutual(p.t_width, p.z_thick, p.length, q.t_width,
                          q.z_thick, q.length, q.t_min - p.t_min,
                          q.z_min - p.z_min, q.a_min - p.a_min);
}

}  // namespace

namespace detail {

/// Distinct bars must not share volume: two conductors occupying the same
/// space is a layout error, and the kernel would happily integrate it into
/// a plausible-looking (but meaningless) mutual inductance.
void check_pair_disjoint(const Bar& b1, const Bar& b2) {
  const double oa = std::min(b1.a_max(), b2.a_max()) -
                    std::max(b1.a_min, b2.a_min);
  const double ot = std::min(b1.t_max(), b2.t_max()) -
                    std::max(b1.t_min, b2.t_min);
  const double oz = std::min(b1.z_max(), b2.z_max()) -
                    std::max(b1.z_min, b2.z_min);
  // Tolerate ulp-level contact so exactly-touching bars are fine.
  const double eps = 1e-12 * std::max({b1.length, b2.length, b1.t_width,
                                       b2.t_width, b1.z_thick, b2.z_thick});
  if (oa > eps && ot > eps && oz > eps) {
    std::ostringstream msg;
    msg << "mutual_partial: bars overlap in volume (axial overlap " << oa
        << " m, transverse " << ot << " m, vertical " << oz
        << " m); distinct conductors must be disjoint";
    throw diag::GeometryError("peec", msg.str());
  }
}

/// The kernel's 64-term cancellation can, with pathological inputs, lose
/// every significant digit; never hand a NaN/Inf downstream silently.
double check_finite_value(double value, const char* what) {
  if (!std::isfinite(value))
    throw diag::NumericError(
        "peec", std::string(what) +
                    " evaluated non-finite; the bar geometry is outside the "
                    "kernel's numerically stable range");
  return value;
}

}  // namespace detail

double self_partial_chunked(const std::vector<Bar>& chunks,
                            const PartialOptions& opt) {
  // L = sum over all chunk pairs (including self terms): the exact series
  // decomposition of partial inductance.
  double total = 0.0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    total += chunk_mutual(chunks[i], chunks[i], opt);
    for (std::size_t j = i + 1; j < chunks.size(); ++j)
      total += 2.0 * chunk_mutual(chunks[i], chunks[j], opt);
  }
  return detail::check_finite_value(total, "self partial inductance");
}

double mutual_partial_chunked(const Bar& b1, const Bar& b2,
                              const std::vector<Bar>& c1,
                              const std::vector<Bar>& c2,
                              const PartialOptions& opt) {
  if (b1.axis != b2.axis) return 0.0;  // orthogonal bars do not couple
  detail::check_pair_disjoint(b1, b2);
  double total = 0.0;
  for (const Bar& p : c1)
    for (const Bar& q : c2) total += chunk_mutual(p, q, opt);
  return detail::check_finite_value(total, "mutual partial inductance");
}

double self_partial(const Bar& bar, const PartialOptions& opt) {
  return self_partial_chunked(chunk_lengthwise(bar, opt.max_aspect), opt);
}

double mutual_partial(const Bar& b1, const Bar& b2,
                      const PartialOptions& opt) {
  if (b1.axis != b2.axis) return 0.0;  // orthogonal bars do not couple
  return mutual_partial_chunked(b1, b2, chunk_lengthwise(b1, opt.max_aspect),
                                chunk_lengthwise(b2, opt.max_aspect), opt);
}

namespace {

std::int64_t quantize(double v, double quantum) {
  return static_cast<std::int64_t>(std::llround(v / quantum));
}

}  // namespace

std::size_t PairKeyHash::operator()(const PairKey& k) const noexcept {
  // FNV-1a over the nine quantized fields; cheap and well-mixed enough for
  // the per-fill table.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::int64_t v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  mix(k.w1); mix(k.h1); mix(k.l1);
  mix(k.w2); mix(k.h2); mix(k.l2);
  mix(k.dt); mix(k.dz); mix(k.da);
  return static_cast<std::size_t>(h);
}

PairKey make_self_key(const Bar& bar, double quantum) {
  PairKey k;
  k.w1 = k.w2 = quantize(bar.t_width, quantum);
  k.h1 = k.h2 = quantize(bar.z_thick, quantum);
  k.l1 = k.l2 = quantize(bar.length, quantum);
  return k;
}

PairKey make_pair_key(const Bar& b1, const Bar& b2, double quantum,
                      bool fold_symmetries) {
  PairKey k;
  k.w1 = quantize(b1.t_width, quantum);
  k.h1 = quantize(b1.z_thick, quantum);
  k.l1 = quantize(b1.length, quantum);
  k.w2 = quantize(b2.t_width, quantum);
  k.h2 = quantize(b2.z_thick, quantum);
  k.l2 = quantize(b2.length, quantum);
  k.dt = quantize(b2.t_center() - b1.t_center(), quantum);
  k.dz = quantize(b2.z_center() - b1.z_center(), quantum);
  k.da = quantize(b2.a_center() - b1.a_center(), quantum);
  if (!fold_symmetries) return k;
  // Mirror symmetry about each coordinate plane through bar 1's center
  // negates that center offset and changes nothing else, so the absolute
  // offsets are canonical per axis.  llround is odd, so quantizing before
  // taking the magnitude keeps reflected copies in the same bucket.
  k.dt = std::abs(k.dt);
  k.dz = std::abs(k.dz);
  k.da = std::abs(k.da);
  // Reciprocity: exchanging the bars negates every offset (absorbed by the
  // magnitudes above) and swaps the dimension triples — order them.
  const auto t1 = std::tie(k.w1, k.h1, k.l1);
  const auto t2 = std::tie(k.w2, k.h2, k.l2);
  if (t2 < t1) {
    std::swap(k.w1, k.w2);
    std::swap(k.h1, k.h2);
    std::swap(k.l1, k.l2);
  }
  return k;
}

}  // namespace rlcx::peec
