// SoA kernel bodies for the batch engine — included once per ISA TU.
//
// kernel_batch_{scalar,avx2,avx512}.cpp each define RLCX_KB_NS
// (kb_scalar / kb_avx2 / kb_avx512) and include this header, so every ISA
// compiles the exact same expressions; only the target flags differ
// (-mavx2 / -mavx512f on the wide TUs).  Every operation below is a plain
// IEEE-754 mul/add/div/sqrt or a vecmath rational approximation built
// from the same, the TUs are compiled with -ffp-contract=off (no FMA
// contraction) and -fno-trapping-math (so GCC may if-convert the ternary
// selects and speculate both sides), and there is no
// reassociation-licensing flag — which is what makes the TUs produce
// bit-identical lanes at every vector width.  See docs/performance.md.
//
// The math mirrors partial_inductance.cpp's hl_f / hoer_love_mutual /
// filament_mutual term for term, with every `if` rewritten as a select:
// a guarded term contributes `cond ? term : 0.0` (never `mask * term` —
// the discarded side may be Inf/NaN from a speculated division, and
// 0 * NaN would poison the accumulator; a blend discards it for free).
#ifndef RLCX_KB_NS
#error "define RLCX_KB_NS (kb_scalar/kb_avx2/kb_avx512) before including"
#endif

#include <cstddef>

#include "numeric/vecmath.h"
#include "peec/kernel_batch.h"

namespace rlcx::peec::detail {
namespace RLCX_KB_NS {

namespace {

using numeric::vecmath::asinh_bf;
using numeric::vecmath::atan_bf;
using numeric::vecmath::log_bf;

// Tile width: sized so the whole per-tile working set (corner/reciprocal
// arrays + the 16-combo transverse tables + coef/acc, ~38 KB) stays in
// L1-or-near; measured flat within a few percent over 16/32/64 on both
// AVX2 and AVX-512, so the value is not load-bearing.
constexpr std::size_t kTile = 32;

}  // namespace

// Branch-free tiled Hoer-Love bracket.  Same math as hoer_love_mutual +
// hl_f with two restructurings that cut the per-corner division/sqrt
// count (they, not the transcendentals, bound the vector throughput):
//
//   * log-ratio identity: (v + rho)(rho - v) = rho^2 - v^2 = w2, so
//       v ln((v + rho)/sqrt(w2)) = |v| ln((|v| + rho)/sqrt(w2));
//     |v| + rho only ever adds positives, so this is the stable
//     evaluation for BOTH signs of v — it replaces hl_f's v < 0 rewrite
//     (and its speculated division) with an abs.
//   * hoisting: 1/sqrt(w2) depends only on the 16 transverse corner
//     combos and 1/v only on the 4 per-axis corner values, so both move
//     out of the 64-corner loop into per-tile tables; the corner loop
//     keeps one sqrt (rho) and one division (1/rho) plus the rationals
//     inside log_bf / atan_bf.
//
// Guarded terms select garbage away (w2 == 0 rows of the tables are Inf;
// their prefactor is identically 0), never multiply it by zero.
void eval_volume(const VolumeSoa& in, std::size_t lo, std::size_t hi,
                 double* out) {
  for (std::size_t base = lo; base < hi; base += kTile) {
    const std::size_t n = (hi - base < kTile) ? hi - base : kTile;

    double qx[4][kTile], qy[4][kTile], qz[4][kTile];
    double ivx[4][kTile], ivy[4][kTile], ivz[4][kTile];
    // Transverse-pair tables, indexed [4 * first + second][g] with the
    // first/second index convention of the corner loop below: 1/sqrt(w2)
    // for each log axis, the log prefactors, w2 of the x axis (doubles as
    // the rho^2 partial sum), and the x-free part of the polynomial term.
    double iswx[16][kTile], iswy[16][kTile], iswz[16][kTile];
    double pxt[16][kTile], pyt[16][kTile], pzt[16][kTile];
    double w2xt[16][kTile], p1t[16][kTile];
    double coef[kTile], acc[kTile];

    // Phase 1: scale to O(1) and lay out the four-point corner limits,
    // exactly as hoer_love_mutual does per call; reciprocals alongside.
#pragma omp simd
    for (std::size_t g = 0; g < n; ++g) {
      const double a = in.a[base + g], b = in.b[base + g];
      const double l1 = in.l1[base + g];
      const double c = in.c[base + g], d = in.d[base + g];
      const double l2 = in.l2[base + g];
      const double E = in.E[base + g], P = in.P[base + g];
      const double l3 = in.l3[base + g];

      double s = a;
      s = (b > s) ? b : s;
      s = (c > s) ? c : s;
      s = (d > s) ? d : s;
      s = (l1 > s) ? l1 : s;
      s = (l2 > s) ? l2 : s;
      const double aE = std::abs(E) + c;
      s = (aE > s) ? aE : s;
      const double aP = std::abs(P) + d;
      s = (aP > s) ? aP : s;
      const double aL = std::abs(l3) + l2;
      s = (aL > s) ? aL : s;

      const double inv = 1.0 / s;
      const double as = a * inv, bs = b * inv, cs = c * inv, ds = d * inv;
      const double l1s = l1 * inv, l2s = l2 * inv;
      const double Es = E * inv, Ps = P * inv, l3s = l3 * inv;

      qx[0][g] = Es - as;
      qx[1][g] = Es + cs - as;
      qx[2][g] = Es + cs;
      qx[3][g] = Es;
      qy[0][g] = Ps - bs;
      qy[1][g] = Ps + ds - bs;
      qy[2][g] = Ps + ds;
      qy[3][g] = Ps;
      qz[0][g] = l3s - l1s;
      qz[1][g] = l3s + l2s - l1s;
      qz[2][g] = l3s + l2s;
      qz[3][g] = l3s;

      coef[g] = 1e-7 / (((as * bs) * cs) * ds) * s;  // mu0/4pi = 1e-7
      acc[g] = 0.0;
    }

    for (int i = 0; i < 4; ++i) {
#pragma omp simd
      for (std::size_t g = 0; g < n; ++g) {
        ivx[i][g] = 1.0 / qx[i][g];
        ivy[i][g] = 1.0 / qy[i][g];
        ivz[i][g] = 1.0 / qz[i][g];
      }
    }
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) {
#pragma omp simd
        for (std::size_t g = 0; g < n; ++g) {
          // iswx/pxt/w2xt/p1t combo (j, k) = (y, z) indices; iswy/iswz
          // and pyt/pzt have an x index first, so reuse (j, k) as
          // (first, second).
          const double y2 = qy[j][g] * qy[j][g];
          const double z2 = qz[k][g] * qz[k][g];
          const double x2 = qx[j][g] * qx[j][g];
          const double yk2 = qy[k][g] * qy[k][g];
          const double w2x = y2 + z2;
          iswx[4 * j + k][g] = 1.0 / std::sqrt(w2x);
          iswy[4 * j + k][g] = 1.0 / std::sqrt(x2 + z2);
          iswz[4 * j + k][g] = 1.0 / std::sqrt(x2 + yk2);
          w2xt[4 * j + k][g] = w2x;
          pxt[4 * j + k][g] =
              y2 * z2 / 4.0 - y2 * y2 / 24.0 - z2 * z2 / 24.0;
          pyt[4 * j + k][g] =
              x2 * z2 / 4.0 - x2 * x2 / 24.0 - z2 * z2 / 24.0;
          pzt[4 * j + k][g] =
              x2 * yk2 / 4.0 - x2 * x2 / 24.0 - yk2 * yk2 / 24.0;
          p1t[4 * j + k][g] = y2 * y2 + z2 * z2 - 3.0 * (y2 * z2);
        }
      }
    }

    // Phase 2: the 64-corner bracket, one simd sweep per corner so the
    // per-entry accumulation order is fixed (i, j, k ascending) no matter
    // how the lanes are grouped.
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        for (int k = 0; k < 4; ++k) {
          const double sign = ((i + j + k) % 2 == 0) ? 1.0 : -1.0;
#pragma omp simd
          for (std::size_t g = 0; g < n; ++g) {
            const double x = qx[i][g], y = qy[j][g], z = qz[k][g];
            const double x2 = x * x, y2 = y * y, z2 = z * z;
            const double rho2 = x2 + w2xt[4 * j + k][g];
            const double rho = std::sqrt(rho2);
            const double irho = 1.0 / rho;

            double f = 0.0;

            const double px = pxt[4 * j + k][g];
            const double tx =
                px * std::abs(x) *
                log_bf((std::abs(x) + rho) * iswx[4 * j + k][g]);
            f += ((px != 0.0) & (x != 0.0)) ? tx : 0.0;

            const double py = pyt[4 * i + k][g];
            const double ty =
                py * std::abs(y) *
                log_bf((std::abs(y) + rho) * iswy[4 * i + k][g]);
            f += ((py != 0.0) & (y != 0.0)) ? ty : 0.0;

            const double pz = pzt[4 * i + j][g];
            const double tz =
                pz * std::abs(z) *
                log_bf((std::abs(z) + rho) * iswz[4 * i + j][g]);
            f += ((pz != 0.0) & (z != 0.0)) ? tz : 0.0;

            f += (x2 * x2 - 3.0 * x2 * w2xt[4 * j + k][g] +
                  p1t[4 * j + k][g]) *
                 rho / 60.0;

            const bool corner = (x != 0.0) & (y != 0.0) & (z != 0.0);
            f -= corner
                     ? x * y * z * z2 / 6.0 * atan_bf(x * y * ivz[k][g] * irho)
                     : 0.0;
            f -= corner
                     ? x * y * y2 * z / 6.0 * atan_bf(x * z * ivy[j][g] * irho)
                     : 0.0;
            f -= corner
                     ? x * x2 * y * z / 6.0 * atan_bf(y * z * ivx[i][g] * irho)
                     : 0.0;

            acc[g] += sign * f;
          }
        }
      }
    }

#pragma omp simd
    for (std::size_t g = 0; g < n; ++g) out[base + g] = coef[g] * acc[g];
  }
}

void eval_filament(const FilamentSoa& in, std::size_t lo, std::size_t hi,
                   double* out) {
#pragma omp simd
  for (std::size_t g = lo; g < hi; ++g) {
    const double l1 = in.l1[g], l2 = in.l2[g];
    const double s = in.s[g], r = in.r[g];
    const double u0 = s + l2;
    const double u1 = s - l1;
    const double u2 = s + l2 - l1;
    const double u3 = s;

    // r > 0: h(u) = u asinh(u/r) - sqrt(u^2 + r^2).  Runs unguarded even
    // for r == 0 lanes (finite garbage / NaN); the final select discards.
    const double h0r = u0 * asinh_bf(u0 / r) - std::sqrt(u0 * u0 + r * r);
    const double h1r = u1 * asinh_bf(u1 / r) - std::sqrt(u1 * u1 + r * r);
    const double h2r = u2 * asinh_bf(u2 / r) - std::sqrt(u2 * u2 + r * r);
    const double h3r = u3 * asinh_bf(u3 / r) - std::sqrt(u3 * u3 + r * r);
    const double vr = h0r + h1r - h2r - h3r;

    // r == 0 (collinear): h0(u) = |u| (ln|u| - 1), with the u == 0 limit
    // selected to 0 (log_bf(0) is garbage, discarded by the select).
    const double a0 = std::abs(u0), a1 = std::abs(u1);
    const double a2 = std::abs(u2), a3 = std::abs(u3);
    const double h00 = (a0 == 0.0) ? 0.0 : a0 * (log_bf(a0) - 1.0);
    const double h10 = (a1 == 0.0) ? 0.0 : a1 * (log_bf(a1) - 1.0);
    const double h20 = (a2 == 0.0) ? 0.0 : a2 * (log_bf(a2) - 1.0);
    const double h30 = (a3 == 0.0) ? 0.0 : a3 * (log_bf(a3) - 1.0);
    const double v0 = h00 + h10 - h20 - h30;

    out[g] = 1e-7 * ((r == 0.0) ? v0 : vr);
  }
}

}  // namespace RLCX_KB_NS
}  // namespace rlcx::peec::detail
