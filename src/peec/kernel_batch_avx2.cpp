// AVX2 compilation of the batch kernels — this TU (alone) is built with
// -mavx2, so the `#pragma omp simd` loops in kernel_batch_kernels.h widen
// to 4 doubles per lane.  Only compiled when the toolchain accepts -mavx2
// (RLCX_HAVE_AVX2); runtime dispatch in kernel_batch.cpp keeps it off the
// hot path on CPUs without AVX2.
#if defined(RLCX_HAVE_AVX2)
#define RLCX_KB_NS kb_avx2
#include "peec/kernel_batch_kernels.h"
#endif
