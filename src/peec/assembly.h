// Assembly of the filament-level partial inductance matrix and resistances.
#pragma once

#include <vector>

#include "numeric/matrix.h"
#include "peec/bar.h"
#include "peec/partial_inductance.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::peec {

/// A volume filament: a bar with a branch orientation and a DC resistance.
struct Filament {
  Bar bar;
  double sign = 1.0;        ///< +1 if branch current flows along +axis
  double resistance = 0.0;  ///< [ohm]
};

/// DC resistance of a bar of the given resistivity.
double bar_resistance(const Bar& bar, double rho);

/// Dense symmetric partial-inductance matrix [H] over the filaments,
/// orientation signs folded in (Lp_ij = s_i s_j M_ij).  The O(n^2) fill is
/// the extraction hot spot: rows fan out across `pool` (nullptr = the
/// process-global pool) once the matrix is big enough to pay for the trip;
/// every element is computed independently and written to its own slot, so
/// the result is bit-identical to the serial fill.
RealMatrix partial_inductance_matrix(const std::vector<Filament>& filaments,
                                     const PartialOptions& opt = {},
                                     rt::Pool* pool = nullptr);

}  // namespace rlcx::peec
