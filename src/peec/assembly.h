// Assembly of the filament-level partial inductance matrix and resistances.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.h"
#include "peec/bar.h"
#include "peec/partial_inductance.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::peec {

/// A volume filament: a bar with a branch orientation and a DC resistance.
struct Filament {
  Bar bar;
  double sign = 1.0;        ///< +1 if branch current flows along +axis
  double resistance = 0.0;  ///< [ohm]
};

/// DC resistance of a bar of the given resistivity.
double bar_resistance(const Bar& bar, double rho);

/// What one matrix fill did: how many pair values it needed, and how many
/// kernel evaluations the relative-geometry memo actually paid for.
struct FillStats {
  std::size_t pair_lookups = 0;  ///< upper-triangle pairs incl. the diagonal
  std::size_t kernel_evals = 0;  ///< bar-pair kernel evaluations performed
  std::size_t memo_hits = 0;     ///< lookups served from the memo
  double hit_rate() const {
    return pair_lookups == 0
               ? 0.0
               : static_cast<double>(memo_hits) /
                     static_cast<double>(pair_lookups);
  }
};

/// Process-wide aggregate of every fill's FillStats (relaxed atomics, same
/// contract as core::table_build_solve_count): BuildStats and the CLI
/// snapshot deltas around a build to report the memo hit rate.
FillStats fill_stats_total();
void reset_fill_stats_total();

/// Dense symmetric partial-inductance matrix [H] over the filaments,
/// orientation signs folded in (Lp_ij = s_i s_j M_ij).  The O(n^2) fill is
/// the extraction hot spot; two optimisations apply (see
/// docs/performance.md):
///   * every bar is chunked lengthwise once per fill, not once per pair;
///   * with opt.memo (default on), pairs are grouped into translation/
///     reflection/exchange-invariant relative-geometry classes (PairKey)
///     and the kernel runs once per class — on a regular mesh that is
///     O(n) evaluations for the O(n^2) fill.
/// Class evaluations fan out across `pool` (nullptr = the process-global
/// pool) once the fill is big enough to pay for the trip; the class list
/// and representatives are fixed by a serial scan, so the result is
/// bit-identical for every thread count.  `stats`, when given, receives
/// the lookup/eval/hit counters of this fill.
RealMatrix partial_inductance_matrix(const std::vector<Filament>& filaments,
                                     const PartialOptions& opt = {},
                                     rt::Pool* pool = nullptr,
                                     FillStats* stats = nullptr);

/// Resident bytes of the dense fill's result for n filaments (the n x n
/// RealMatrix above).  Feeds the memory budget's cost model
/// (docs/robustness.md "Resource governance"); the memo and chunk lists
/// are lower-order and not counted.
std::size_t estimate_fill_bytes(std::size_t filaments);

}  // namespace rlcx::peec
