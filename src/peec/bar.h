// Rectangular conductor bar with axis-aligned current direction.
//
// Coordinates: x lateral, y along the (default) routing direction, z
// vertical.  A bar carries uniform current along its axis; the PEEC model
// assigns it a partial self inductance and mutual partial inductances to
// every other bar.  Orthogonal bars have zero mutual inductance, which is
// what lets the paper ignore layers N±1.
#pragma once

#include <algorithm>
#include <cmath>

namespace rlcx::peec {

enum class Axis { kX, kY };

struct Bar {
  Axis axis = Axis::kY;
  double a_min = 0.0;   ///< start coordinate along the axis [m]
  double length = 0.0;  ///< extent along the axis [m]
  double t_min = 0.0;   ///< min of the transverse horizontal coord [m]
  double t_width = 0.0; ///< transverse horizontal extent [m]
  double z_min = 0.0;   ///< bottom [m]
  double z_thick = 0.0; ///< vertical extent [m]

  double a_max() const { return a_min + length; }
  double t_max() const { return t_min + t_width; }
  double z_max() const { return z_min + z_thick; }

  double a_center() const { return a_min + 0.5 * length; }
  double t_center() const { return t_min + 0.5 * t_width; }
  double z_center() const { return z_min + 0.5 * z_thick; }

  /// Diagonal of the cross-section; the scale that decides when two bars
  /// are "far" enough for the filament approximation.
  double cross_diag() const {
    return std::hypot(t_width, z_thick);
  }

  double cross_area() const { return t_width * z_thick; }

  /// 3-D distance between bar centers (same-axis bars only make sense here).
  double center_distance(const Bar& o) const {
    const double da = a_center() - o.a_center();
    const double dt = t_center() - o.t_center();
    const double dz = z_center() - o.z_center();
    return std::sqrt(da * da + dt * dt + dz * dz);
  }
};

}  // namespace rlcx::peec
