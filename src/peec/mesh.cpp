#include "peec/mesh.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/units.h"

namespace rlcx::peec {

double skin_depth(double rho, double frequency) {
  if (rho <= 0.0) throw std::invalid_argument("skin_depth: resistivity");
  if (frequency <= 0.0) throw std::invalid_argument("skin_depth: frequency");
  return std::sqrt(rho / (std::numbers::pi * frequency * kMu0));
}

MeshOptions mesh_for_skin_depth(const Bar& envelope, double depth,
                                int max_per_dim) {
  if (depth <= 0.0) throw std::invalid_argument("mesh_for_skin_depth: depth");
  auto pick = [&](double extent) {
    // Aim for edge cells of roughly one skin depth.
    const double ratio = extent / depth;
    int n = static_cast<int>(std::ceil(ratio));
    if (n < 1) n = 1;
    if (n > max_per_dim) n = max_per_dim;
    return n;
  };
  MeshOptions opt;
  opt.nw = pick(envelope.t_width);
  opt.nt = pick(envelope.z_thick);
  opt.grading = 2.0;
  return opt;
}

std::vector<double> graded_boundaries(int n, double grading) {
  if (n < 1) throw std::invalid_argument("graded_boundaries: n >= 1");
  if (grading <= 0.0) throw std::invalid_argument("graded_boundaries: grading");
  // Cell i gets weight grading^min(i, n-1-i): larger in the middle, so the
  // edge cells are the smallest.
  std::vector<double> weights(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const int d = std::min(i, n - 1 - i);
    weights[static_cast<std::size_t>(i)] = std::pow(grading, d);
    total += weights[static_cast<std::size_t>(i)];
  }
  std::vector<double> bounds(static_cast<std::size_t>(n) + 1);
  bounds[0] = 0.0;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += weights[static_cast<std::size_t>(i)] / total;
    bounds[static_cast<std::size_t>(i) + 1] = acc;
  }
  bounds.back() = 1.0;
  return bounds;
}

std::vector<Bar> mesh_cross_section(const Bar& envelope,
                                    const MeshOptions& opt) {
  if (envelope.t_width <= 0.0 || envelope.z_thick <= 0.0 ||
      envelope.length <= 0.0)
    throw std::invalid_argument("mesh_cross_section: degenerate bar");
  const std::vector<double> bw = graded_boundaries(opt.nw, opt.grading);
  const std::vector<double> bt = graded_boundaries(opt.nt, opt.grading);
  std::vector<Bar> out;
  out.reserve(static_cast<std::size_t>(opt.nw) *
              static_cast<std::size_t>(opt.nt));
  for (int i = 0; i < opt.nw; ++i) {
    for (int j = 0; j < opt.nt; ++j) {
      Bar f = envelope;
      f.t_min = envelope.t_min + bw[i] * envelope.t_width;
      f.t_width = (bw[i + 1] - bw[i]) * envelope.t_width;
      f.z_min = envelope.z_min + bt[j] * envelope.z_thick;
      f.z_thick = (bt[j + 1] - bt[j]) * envelope.z_thick;
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace rlcx::peec
