// Partial self and mutual inductance of rectangular bars.
//
// The exact closed form is Hoer & Love's 1965 triple-bracket formula for
// parallel rectangular conductors — the same kernel FastHenry/Raphael-class
// extractors evaluate.  On top of the raw kernel this header provides:
//   * lengthwise subdivision to keep the kernel numerically healthy for the
//     huge aspect ratios of clock wiring (6000 um long, 1-10 um wide),
//   * an exact thin-filament fast path for well-separated bar pairs,
//   * Ruehli's log approximation as an independent cross-check,
//   * a translation-invariant PairKey so matrix fills evaluate the kernel
//     once per *relative-geometry class* instead of once per pair
//     (paper Foundations 1-2: partial inductance depends only on the bars'
//     own dimensions and their relative offsets),
// and the Bar-level entry points the rest of the library uses.
#pragma once

#include <cstdint>
#include <vector>

#include "peec/bar.h"

namespace rlcx::peec {

struct PartialOptions {
  /// Chunks are cut so length/cross_diag stays below this; keeps the 64-term
  /// Hoer-Love cancellation within double precision.
  double max_aspect = 128.0;
  /// Center distance (in units of mean cross diagonal) beyond which the
  /// exact filament formula replaces the volume kernel (<0.1 % error).
  double far_factor = 12.0;
  /// Memoize kernel evaluations by relative-geometry class during matrix
  /// fills (partial_inductance_matrix).  On a regular mesh this turns the
  /// O(n^2) pair fill into O(unique classes) kernel evaluations.
  bool memo = true;
  /// Additionally fold per-axis mirror reflections and bar exchange into
  /// the pair key (the kernel's remaining symmetries).  Roughly doubles
  /// the reuse on symmetric structures, but a mirrored pair sums the
  /// 64-term bracket's mutually-cancelling terms in a different order, so
  /// the fill then matches the direct fill only to the kernel's
  /// cancellation-noise floor (~1e-9 relative) instead of bit-exactly —
  /// which is why it is opt-in (see docs/performance.md).
  bool memo_fold_symmetries = false;
  /// Relative tolerance of the PairKey quantization, in units of the fill's
  /// largest geometric extent.  1e-12 is ~4 decades above coordinate
  /// round-off (so translated copies of the same pair land in one class)
  /// and far below any intentional mesh perturbation.
  double memo_rel_tol = 1e-12;
};

/// Exact Hoer-Love mutual partial inductance [H] between two parallel
/// rectangular bars in canonical coordinates: bar 1 spans x:[0,a], y:[0,b],
/// z:[0,l1]; bar 2 spans x:[E,E+c], y:[P,P+d], z:[l3,l3+l2]; current along z.
/// Valid for any overlap, including coincident bars (self inductance).
double hoer_love_mutual(double a, double b, double l1, double c, double d,
                        double l2, double E, double P, double l3);

/// Exact mutual partial inductance [H] of two parallel thin filaments of
/// lengths l1 and l2, axial start offset s, radial distance r (r may be 0
/// for collinear non-overlapping filaments).
double filament_mutual(double l1, double l2, double s, double r);

/// Ruehli's approximation for the self partial inductance of a bar,
/// (mu0 l / 2pi) (ln(2l/(w+t)) + 0.5 + 0.2235 (w+t)/l).  Good to ~1 % for
/// l >> w+t; used only as an independent sanity check in tests.
double ruehli_self(double length, double width, double thickness);

/// Self partial inductance [H] of a bar (exact kernel with subdivision).
double self_partial(const Bar& bar, const PartialOptions& opt = {});

/// Mutual partial inductance [H] between two bars.  Returns 0 for
/// orthogonal bars (the paper's layer-N±1 argument).  The sign is geometric
/// (positive for parallel co-directed currents); callers flip it when their
/// branch orientations oppose.
double mutual_partial(const Bar& b1, const Bar& b2,
                      const PartialOptions& opt = {});

// ---------------------------------------------------------------------------
// Hoisted-chunking building blocks.  Matrix fills chunk every bar once and
// evaluate pairs against the precomputed chunk lists; self_partial /
// mutual_partial are thin wrappers, so both paths are bit-identical.

/// Lengthwise subdivision of a bar into chunks of bounded aspect ratio.
std::vector<Bar> chunk_lengthwise(const Bar& b, double max_aspect);

/// self_partial with the chunk list precomputed by chunk_lengthwise.
double self_partial_chunked(const std::vector<Bar>& chunks,
                            const PartialOptions& opt);

/// mutual_partial with both chunk lists precomputed.  b1/b2 are the
/// unchunked bars (needed for the axis and disjointness checks).
double mutual_partial_chunked(const Bar& b1, const Bar& b2,
                              const std::vector<Bar>& c1,
                              const std::vector<Bar>& c2,
                              const PartialOptions& opt);

// ---------------------------------------------------------------------------
// Relative-geometry memoization.
//
// The kernel value for a same-axis bar pair is a function of the two
// cross-sections, the two lengths, and the center-to-center offset vector
// only — never of absolute position (paper Foundations 1-2: translation
// invariance).  It is furthermore unchanged by reflecting any coordinate
// axis (mirror isometry) and by exchanging the bars (reciprocity).
// PairKey always canonicalizes under translation (dimensions and signed
// center offsets quantized to a relative tolerance); with fold_symmetries
// it additionally takes |center offsets| and puts the bar with the
// lexicographically smaller (width, thickness, length) triple first.
// Translation-equal pairs on a regular mesh present bit-identical inputs
// to the kernel, so the translation-only key preserves the direct fill
// bit-for-bit; mirror/exchange-equal pairs are mathematically equal but
// sum the bracket's cancelling terms in a different order, so folding
// them trades bit-reproducibility (down to the kernel's ~1e-9 relative
// cancellation noise) for roughly double the reuse.

struct PairKey {
  // Quantized bar dimensions (bar 1, then bar 2) and center offsets, all
  // in units of the fill-wide quantum.
  std::int64_t w1 = 0, h1 = 0, l1 = 0;
  std::int64_t w2 = 0, h2 = 0, l2 = 0;
  std::int64_t dt = 0, dz = 0, da = 0;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept;
};

/// Canonical key of a same-axis pair; `quantum` is the absolute geometric
/// tolerance (fill scale × PartialOptions::memo_rel_tol).  Any translated
/// copy of the pair maps to the same key; with fold_symmetries, mirrored
/// copies and both orderings do too.
PairKey make_pair_key(const Bar& b1, const Bar& b2, double quantum,
                      bool fold_symmetries = false);

/// Key of a bar's self class: (w, h, l) quantized, offsets zero.
PairKey make_self_key(const Bar& bar, double quantum);

// ---------------------------------------------------------------------------
// Guards shared between the scalar kernels above and the batch engine
// (kernel_batch.h): both paths must reject the same degenerate geometry
// with the same diagnostics, so the checks live in one place.

namespace detail {

/// Throws diag::GeometryError unless every bar dimension of a Hoer-Love
/// pair is positive (the check hoer_love_mutual performs on entry).
void check_hoer_love_dims(double a, double b, double l1, double c, double d,
                          double l2);

/// Throws diag::GeometryError on non-positive lengths / negative radius,
/// and for r == 0 on axially overlapping collinear filaments (divergent
/// mutual) — the checks filament_mutual performs on entry.
void check_filament_args(double l1, double l2, double s, double r);

/// Throws diag::GeometryError when two distinct bars overlap in volume.
void check_pair_disjoint(const Bar& b1, const Bar& b2);

/// Throws diag::NumericError when a kernel result is not finite.
double check_finite_value(double value, const char* what);

}  // namespace detail

}  // namespace rlcx::peec
