// Partial self and mutual inductance of rectangular bars.
//
// The exact closed form is Hoer & Love's 1965 triple-bracket formula for
// parallel rectangular conductors — the same kernel FastHenry/Raphael-class
// extractors evaluate.  On top of the raw kernel this header provides:
//   * lengthwise subdivision to keep the kernel numerically healthy for the
//     huge aspect ratios of clock wiring (6000 um long, 1-10 um wide),
//   * an exact thin-filament fast path for well-separated bar pairs,
//   * Ruehli's log approximation as an independent cross-check,
// and the Bar-level entry points the rest of the library uses.
#pragma once

#include "peec/bar.h"

namespace rlcx::peec {

struct PartialOptions {
  /// Chunks are cut so length/cross_diag stays below this; keeps the 64-term
  /// Hoer-Love cancellation within double precision.
  double max_aspect = 128.0;
  /// Center distance (in units of mean cross diagonal) beyond which the
  /// exact filament formula replaces the volume kernel (<0.1 % error).
  double far_factor = 12.0;
};

/// Exact Hoer-Love mutual partial inductance [H] between two parallel
/// rectangular bars in canonical coordinates: bar 1 spans x:[0,a], y:[0,b],
/// z:[0,l1]; bar 2 spans x:[E,E+c], y:[P,P+d], z:[l3,l3+l2]; current along z.
/// Valid for any overlap, including coincident bars (self inductance).
double hoer_love_mutual(double a, double b, double l1, double c, double d,
                        double l2, double E, double P, double l3);

/// Exact mutual partial inductance [H] of two parallel thin filaments of
/// lengths l1 and l2, axial start offset s, radial distance r (r may be 0
/// for collinear non-overlapping filaments).
double filament_mutual(double l1, double l2, double s, double r);

/// Ruehli's approximation for the self partial inductance of a bar,
/// (mu0 l / 2pi) (ln(2l/(w+t)) + 0.5 + 0.2235 (w+t)/l).  Good to ~1 % for
/// l >> w+t; used only as an independent sanity check in tests.
double ruehli_self(double length, double width, double thickness);

/// Self partial inductance [H] of a bar (exact kernel with subdivision).
double self_partial(const Bar& bar, const PartialOptions& opt = {});

/// Mutual partial inductance [H] between two bars.  Returns 0 for
/// orthogonal bars (the paper's layer-N±1 argument).  The sign is geometric
/// (positive for parallel co-directed currents); callers flip it when their
/// branch orientations oppose.
double mutual_partial(const Bar& b1, const Bar& b2,
                      const PartialOptions& opt = {});

}  // namespace rlcx::peec
