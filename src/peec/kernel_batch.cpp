#include "peec/kernel_batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "numeric/simd.h"
#include "rt/parallel.h"

namespace rlcx::peec {

namespace {

// Process-wide counters (relaxed: they are an aggregate report, not a
// synchronization point) — mirrors assembly.cpp's fill counters.
std::atomic<std::size_t> g_batch_runs{0};
std::atomic<std::size_t> g_volume_terms{0};
std::atomic<std::size_t> g_filament_terms{0};
std::atomic<std::uint64_t> g_eval_nanos{0};

// Scheduling grains: a volume entry costs ~1-3 us (64 corner evaluations),
// a filament entry ~0.1 us, so these keep chunks well above the ~10 us
// scheduler overhead floor.  Values are elementwise per entry, so chunk
// boundaries cannot change results (determinism is layout-borne).
constexpr std::size_t kVolumeGrain = 128;
constexpr std::size_t kFilamentGrain = 1024;

// Batches smaller than a couple of chunks run inline: the hmat sampling
// path evaluates single-entry batches under its shard locks, where even
// an inline-returning parallel_for dispatch is measurable overhead.
constexpr std::size_t kInlineCutoff = 2;

using VolumeFn = void (*)(const detail::VolumeSoa&, std::size_t, std::size_t,
                          double*);
using FilamentFn = void (*)(const detail::FilamentSoa&, std::size_t,
                            std::size_t, double*);

VolumeFn pick_volume() {
  const numeric::SimdMode mode = numeric::simd_mode();
#if defined(RLCX_HAVE_AVX512)
  if (mode == numeric::SimdMode::kAvx512)
    return detail::kb_avx512::eval_volume;
#endif
#if defined(RLCX_HAVE_AVX2)
  if (mode == numeric::SimdMode::kAvx2) return detail::kb_avx2::eval_volume;
#endif
  (void)mode;
  return detail::kb_scalar::eval_volume;
}

FilamentFn pick_filament() {
  const numeric::SimdMode mode = numeric::simd_mode();
#if defined(RLCX_HAVE_AVX512)
  if (mode == numeric::SimdMode::kAvx512)
    return detail::kb_avx512::eval_filament;
#endif
#if defined(RLCX_HAVE_AVX2)
  if (mode == numeric::SimdMode::kAvx2)
    return detail::kb_avx2::eval_filament;
#endif
  (void)mode;
  return detail::kb_scalar::eval_filament;
}

}  // namespace

BatchStats batch_stats_total() {
  BatchStats s;
  s.batch_runs = g_batch_runs.load(std::memory_order_relaxed);
  s.volume_terms = g_volume_terms.load(std::memory_order_relaxed);
  s.filament_terms = g_filament_terms.load(std::memory_order_relaxed);
  s.eval_nanos = g_eval_nanos.load(std::memory_order_relaxed);
  return s;
}

void reset_batch_stats_total() {
  g_batch_runs.store(0, std::memory_order_relaxed);
  g_volume_terms.store(0, std::memory_order_relaxed);
  g_filament_terms.store(0, std::memory_order_relaxed);
  g_eval_nanos.store(0, std::memory_order_relaxed);
}

const char* batch_simd_name() {
  return numeric::simd_mode_name(numeric::simd_mode());
}

std::size_t BatchEvaluator::begin_slot(bool self) {
  const std::size_t slot = slot_begin_.size();
  slot_begin_.push_back(static_cast<std::uint32_t>(terms_.size()));
  slot_self_.push_back(self ? 1 : 0);
  return slot;
}

// The exact near/far routing of partial_inductance.cpp's chunk_mutual,
// evaluated scalar at append time so a batched fill classifies every chunk
// pair identically to the legacy walk (including the std::hypot rounding).
void BatchEvaluator::append_chunk_pair(const Bar& p, const Bar& q,
                                       const PartialOptions& opt,
                                       double weight) {
  const double diag = 0.5 * (p.cross_diag() + q.cross_diag());
  const double dt = q.t_center() - p.t_center();
  const double dz = q.z_center() - p.z_center();
  const double r = std::hypot(dt, dz);
  const double axial_gap =
      std::max(0.0, std::max(p.a_min, q.a_min) -
                        std::min(p.a_max(), q.a_max()));
  if (r > opt.far_factor * diag || axial_gap > opt.far_factor * diag) {
    detail::check_filament_args(p.length, q.length, q.a_min - p.a_min, r);
    const auto idx = static_cast<std::uint32_t>(fl1_.size());
    fl1_.push_back(p.length);
    fl2_.push_back(q.length);
    fs_.push_back(q.a_min - p.a_min);
    fr_.push_back(r);
    terms_.push_back(Term{idx | kFilamentBit, weight});
  } else {
    detail::check_hoer_love_dims(p.t_width, p.z_thick, p.length, q.t_width,
                                 q.z_thick, q.length);
    const auto idx = static_cast<std::uint32_t>(va_.size());
    va_.push_back(p.t_width);
    vb_.push_back(p.z_thick);
    vl1_.push_back(p.length);
    vc_.push_back(q.t_width);
    vd_.push_back(q.z_thick);
    vl2_.push_back(q.length);
    vE_.push_back(q.t_min - p.t_min);
    vP_.push_back(q.z_min - p.z_min);
    vl3_.push_back(q.a_min - p.a_min);
    terms_.push_back(Term{idx, weight});
  }
}

std::size_t BatchEvaluator::add_self(const std::vector<Bar>& chunks,
                                     const PartialOptions& opt) {
  const std::size_t slot = begin_slot(/*self=*/true);
  // Same sweep as self_partial_chunked: diagonal term, then each (i, j > i)
  // pair once with weight 2.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    append_chunk_pair(chunks[i], chunks[i], opt, 1.0);
    for (std::size_t j = i + 1; j < chunks.size(); ++j)
      append_chunk_pair(chunks[i], chunks[j], opt, 2.0);
  }
  return slot;
}

std::size_t BatchEvaluator::add_pair(const Bar& b1, const Bar& b2,
                                     const std::vector<Bar>& c1,
                                     const std::vector<Bar>& c2,
                                     const PartialOptions& opt) {
  const std::size_t slot = begin_slot(/*self=*/false);
  if (b1.axis != b2.axis) return slot;  // empty slot evaluates to exactly 0
  detail::check_pair_disjoint(b1, b2);
  for (const Bar& p : c1)
    for (const Bar& q : c2) append_chunk_pair(p, q, opt, 1.0);
  return slot;
}

void BatchEvaluator::run(double* results, rt::Pool* pool) {
  if (slot_begin_.empty()) return;

  const std::size_t nv = va_.size();
  const std::size_t nf = fl1_.size();
  vvals_.resize(nv);
  fvals_.resize(nf);

  const detail::VolumeSoa vsoa{va_.data(), vb_.data(),  vl1_.data(),
                               vc_.data(), vd_.data(),  vl2_.data(),
                               vE_.data(), vP_.data(),  vl3_.data()};
  const detail::FilamentSoa fsoa{fl1_.data(), fl2_.data(), fs_.data(),
                                 fr_.data()};
  const VolumeFn vol = pick_volume();
  const FilamentFn fil = pick_filament();

  const auto t0 = std::chrono::steady_clock::now();
  if (nv > 0) {
    if (nv < kInlineCutoff * kVolumeGrain) {
      vol(vsoa, 0, nv, vvals_.data());
    } else {
      rt::parallel_for(
          0, nv,
          [&](std::size_t lo, std::size_t hi) {
            vol(vsoa, lo, hi, vvals_.data());
          },
          {.grain = kVolumeGrain, .pool = pool});
    }
  }
  if (nf > 0) {
    if (nf < kInlineCutoff * kFilamentGrain) {
      fil(fsoa, 0, nf, fvals_.data());
    } else {
      rt::parallel_for(
          0, nf,
          [&](std::size_t lo, std::size_t hi) {
            fil(fsoa, lo, hi, fvals_.data());
          },
          {.grain = kFilamentGrain, .pool = pool});
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Serial per-slot reduction in recorded term order: the evaluation tree
  // of each class value is fixed by its chunk decomposition alone, exactly
  // like the scalar chunk sweeps.
  const std::size_t nslots = slot_begin_.size();
  for (std::size_t s = 0; s < nslots; ++s) {
    const std::size_t begin = slot_begin_[s];
    const std::size_t end =
        (s + 1 < nslots) ? slot_begin_[s + 1] : terms_.size();
    double acc = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      const Term& term = terms_[t];
      const double v = (term.idx & kFilamentBit)
                           ? fvals_[term.idx & ~kFilamentBit]
                           : vvals_[term.idx];
      acc += term.weight * v;
    }
    results[s] = detail::check_finite_value(
        acc, slot_self_[s] != 0 ? "self partial inductance"
                                : "mutual partial inductance");
  }

  g_batch_runs.fetch_add(1, std::memory_order_relaxed);
  g_volume_terms.fetch_add(nv, std::memory_order_relaxed);
  g_filament_terms.fetch_add(nf, std::memory_order_relaxed);
  g_eval_nanos.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()),
      std::memory_order_relaxed);
}

void BatchEvaluator::clear() {
  va_.clear();
  vb_.clear();
  vl1_.clear();
  vc_.clear();
  vd_.clear();
  vl2_.clear();
  vE_.clear();
  vP_.clear();
  vl3_.clear();
  fl1_.clear();
  fl2_.clear();
  fs_.clear();
  fr_.clear();
  terms_.clear();
  slot_begin_.clear();
  slot_self_.clear();
}

}  // namespace rlcx::peec
