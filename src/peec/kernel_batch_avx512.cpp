// AVX-512 compilation of the batch kernels — this TU (alone) is built with
// -mavx512f/dq/vl and -mprefer-vector-width=512, so the `#pragma omp simd`
// loops in kernel_batch_kernels.h widen to 8 doubles per lane (and the 32
// mask/vector registers absorb the corner loop's register pressure).  Only
// compiled when the toolchain accepts the flags (RLCX_HAVE_AVX512);
// runtime dispatch in kernel_batch.cpp keeps it off unsupported CPUs.
#if defined(RLCX_HAVE_AVX512)
#define RLCX_KB_NS kb_avx512
#include "peec/kernel_batch_kernels.h"
#endif
