// Cross-section discretisation of conductors into volume filaments.
//
// Skin effect at the significant frequency pushes current toward conductor
// edges; FastHenry captures this by splitting each conductor cross-section
// into filaments and letting the impedance solve redistribute the current.
// We do the same, with an optional edge-graded mesh so a handful of
// filaments resolves a skin depth smaller than the conductor.
#pragma once

#include <vector>

#include "peec/bar.h"

namespace rlcx::peec {

struct MeshOptions {
  int nw = 3;            ///< filaments across the width
  int nt = 3;            ///< filaments across the thickness
  double grading = 2.0;  ///< center-to-edge cell-size ratio (1 = uniform)
};

/// Skin depth sqrt(rho / (pi f mu0)) [m].
double skin_depth(double rho, double frequency);

/// Choose a mesh that resolves the given skin depth in a conductor of this
/// cross-section, capped at max_per_dim filaments per dimension.
MeshOptions mesh_for_skin_depth(const Bar& envelope, double depth,
                                int max_per_dim = 5);

/// Split the envelope bar into nw x nt filament bars covering it exactly.
std::vector<Bar> mesh_cross_section(const Bar& envelope,
                                    const MeshOptions& opt);

/// Cell boundaries in [0,1] for n cells with symmetric grading: cells shrink
/// toward both edges by `grading` per step (grading > 1), matching where the
/// skin-effect current crowds.
std::vector<double> graded_boundaries(int n, double grading);

}  // namespace rlcx::peec
