// Baseline-ISA compilation of the batch kernels (the RLCX_SIMD=scalar path
// and the fallback on CPUs without AVX2).  Same source as the AVX2 TU;
// see kernel_batch_kernels.h for the bit-identity contract.
#define RLCX_KB_NS kb_scalar
#include "peec/kernel_batch_kernels.h"
