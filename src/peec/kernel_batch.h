// Batched (SoA) evaluation of the partial-inductance kernels — the SIMD
// engine behind every matrix-fill path.
//
// The three-pass fill (peec/assembly.cpp) and the hmat sampling oracle
// (hmat/kernel_matrix.cpp) both reduce their work to "evaluate these
// self/mutual bar pairs".  Each such class evaluation decomposes into chunk
// pairs, and each chunk pair is either a Hoer-Love volume integral (64
// corner evaluations of f(x,y,z)) or a filament closed form.  Evaluated one
// scalar pair at a time that walk is dominated by libm transcendentals;
// BatchEvaluator instead flattens every chunk decomposition into two
// structure-of-arrays batches (volume pairs and filament pairs), evaluates
// them with `#pragma omp simd` kernels built on numeric/vecmath.h, and
// reduces each class in its recorded chunk-pair order (H2Pack's blocked
// Coulomb-kernel pattern, see SNIPPETS.md).
//
// Determinism contract:
//   * every batch entry is a pure elementwise function of its own SoA
//     row, so values are independent of batch composition, flush
//     boundaries, and how the evaluation fans out across the pool —
//     pool-width determinism falls out of the data layout;
//   * the scalar TU and the AVX2 TU compile the *same* branch-free code
//     (numeric/simd.h explains the flag discipline), so RLCX_SIMD=scalar
//     and the AVX2 path agree bit for bit;
//   * the engine's values agree with the scalar oracle kernels
//     (hoer_love_mutual / filament_mutual) only to the kernel's
//     cancellation-noise floor (~1e-8 relative): vecmath and libm differ
//     by ulps, which the 64-term bracket amplifies.  All fill paths
//     therefore go through the engine, and the libm kernels remain the
//     independent accuracy oracle in tests.
//
// Geometry validation (degenerate dimensions, overlapping bars, collinear
// filament overlap) happens scalar at append time with the same
// diagnostics as the scalar kernels, so the batched kernels run guard-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "peec/bar.h"
#include "peec/partial_inductance.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::peec {

namespace detail {

/// SoA view of the flattened Hoer-Love volume pairs, argument-for-argument
/// the signature of hoer_love_mutual.
struct VolumeSoa {
  const double *a, *b, *l1, *c, *d, *l2, *E, *P, *l3;
};

/// SoA view of the flattened filament pairs (filament_mutual's arguments;
/// r == 0 rows take the collinear closed form, exactly like the scalar
/// kernel).
struct FilamentSoa {
  const double *l1, *l2, *s, *r;
};

// Per-ISA kernel entry points: out[g] for g in [lo, hi).  One source
// (kernel_batch_kernels.h), compiled once per ISA; numeric/simd.h picks.
namespace kb_scalar {
void eval_volume(const VolumeSoa& in, std::size_t lo, std::size_t hi,
                 double* out);
void eval_filament(const FilamentSoa& in, std::size_t lo, std::size_t hi,
                   double* out);
}  // namespace kb_scalar
#if defined(RLCX_HAVE_AVX2)
namespace kb_avx2 {
void eval_volume(const VolumeSoa& in, std::size_t lo, std::size_t hi,
                 double* out);
void eval_filament(const FilamentSoa& in, std::size_t lo, std::size_t hi,
                   double* out);
}  // namespace kb_avx2
#endif
#if defined(RLCX_HAVE_AVX512)
namespace kb_avx512 {
void eval_volume(const VolumeSoa& in, std::size_t lo, std::size_t hi,
                 double* out);
void eval_filament(const FilamentSoa& in, std::size_t lo, std::size_t hi,
                   double* out);
}  // namespace kb_avx512
#endif

}  // namespace detail

/// Process-wide batch-engine telemetry (same relaxed-atomic aggregate
/// contract as fill_stats_total): how many flattened kernel terms the
/// engine evaluated, in how many batch runs, and how long the SoA kernels
/// themselves ran — BuildStats, `cache stats` and serve `stats` report the
/// eval throughput from deltas of this.
struct BatchStats {
  std::size_t batch_runs = 0;      ///< BatchEvaluator::run() calls
  std::size_t volume_terms = 0;    ///< Hoer-Love chunk pairs evaluated
  std::size_t filament_terms = 0;  ///< filament chunk pairs evaluated
  std::uint64_t eval_nanos = 0;    ///< wall time inside the SoA kernels
  double terms_per_second() const {
    return eval_nanos == 0
               ? 0.0
               : 1e9 * static_cast<double>(volume_terms + filament_terms) /
                     static_cast<double>(eval_nanos);
  }
};

BatchStats batch_stats_total();
void reset_batch_stats_total();

/// The SimdMode (as a name, "scalar"/"avx2"/"avx512") the engine currently
/// dispatches to; convenience for reports.
const char* batch_simd_name();

/// Collects class evaluations (self or mutual bar pairs with their chunk
/// lists precomputed), flattens their chunk decompositions into SoA
/// batches, and evaluates them all in run().  Append order defines slot
/// order; the per-slot reduction runs in the recorded chunk-pair order —
/// the same (i, i), (i, j > i) sweep self_partial_chunked uses and the
/// same row-major sweep mutual_partial_chunked uses.  Not thread-safe;
/// one evaluator per thread (they are cheap, plain vectors).
class BatchEvaluator {
 public:
  /// Appends the self class of a bar with the given chunk list; returns
  /// the slot index its value will occupy in run()'s results.
  std::size_t add_self(const std::vector<Bar>& chunks,
                       const PartialOptions& opt);

  /// Appends the mutual class of two bars (chunk lists precomputed).
  /// Orthogonal bars get an empty slot that evaluates to exactly 0.
  /// Throws diag::GeometryError for overlapping distinct bars.
  std::size_t add_pair(const Bar& b1, const Bar& b2,
                       const std::vector<Bar>& c1, const std::vector<Bar>& c2,
                       const PartialOptions& opt);

  std::size_t slots() const { return slot_begin_.size(); }
  std::size_t volume_entries() const { return va_.size(); }
  std::size_t filament_entries() const { return fl1_.size(); }

  /// Evaluates every appended slot: results[s] = value of slot s [H].
  /// The SoA kernels fan out across `pool` (nullptr = process-global)
  /// when the batch is big enough; the per-slot reduction is serial.
  /// Throws diag::NumericError on a non-finite class value.
  void run(double* results, rt::Pool* pool = nullptr);

  /// Drops every slot and entry (keeps capacity — callers flush in blocks
  /// to bound memory on huge fills).
  void clear();

 private:
  std::size_t begin_slot(bool self);
  void append_chunk_pair(const Bar& p, const Bar& q,
                         const PartialOptions& opt, double weight);

  // One flattened chunk-pair term of a slot: index into the volume batch
  // (kFilamentBit clear) or the filament batch (set), and the +1/+2
  // weight the chunk sweep applies.
  static constexpr std::uint32_t kFilamentBit = 0x80000000u;
  struct Term {
    std::uint32_t idx;
    double weight;
  };

  std::vector<double> va_, vb_, vl1_, vc_, vd_, vl2_, vE_, vP_, vl3_;
  std::vector<double> fl1_, fl2_, fs_, fr_;
  std::vector<Term> terms_;
  std::vector<std::uint32_t> slot_begin_;
  std::vector<std::uint8_t> slot_self_;  ///< for the non-finite diagnostic
  std::vector<double> vvals_, fvals_;    ///< scratch reused across runs
};

}  // namespace rlcx::peec
