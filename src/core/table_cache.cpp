#include "core/table_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/fault_injection.h"

namespace fs = std::filesystem;

namespace rlcx::core {

namespace {

// Bumping this invalidates every existing entry; do so whenever the entry
// layout or anything influencing table values outside the keyed inputs
// changes (docs/table-format.md).
constexpr int kCacheKeyVersion = 1;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_axis(std::string& out, const char* name,
                 const std::vector<double>& axis) {
  char buf[32];
  out += "grid ";
  out += name;
  std::snprintf(buf, sizeof buf, " %zu", axis.size());
  out += buf;
  for (double v : axis) {
    std::snprintf(buf, sizeof buf, " %.17g", v);
    out += buf;
  }
  out += "\n";
}

/// RAII fd so every throw path below closes (and for staging files,
/// unlinks) what it opened.
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
  void close_now() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

}  // namespace

TableCache::TableCache(std::string directory, CacheRecoveryPolicy policy)
    : dir_(std::move(directory)), policy_(policy) {
  if (dir_.empty())
    throw std::invalid_argument("TableCache: empty directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw diag::CacheError("cache", "cannot create directory " + dir_);
  startup_sweep();
}

void TableCache::startup_sweep() {
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    const fs::path& p = de.path();
    const std::string name = p.filename().string();
    // Orphaned staging file from a writer killed mid-store.  Removing a
    // *live* staging file of a concurrent writer is also safe: its rename
    // then fails and store()'s retry loop re-stages from scratch.
    if (name.find(".tmp.") != std::string::npos) {
      std::error_code rec;
      if (fs::remove(p, rec) && !rec) {
        tmp_swept_.fetch_add(1, std::memory_order_relaxed);
        diag::emit_warning(diag::Category::kIo, "cache",
                           "removed orphaned staging file " + p.string() +
                               " (writer crashed mid-store)");
      }
      continue;
    }
    if (p.extension() != ".tbl" || !is_hex16(p.stem().string())) continue;
    // Cheap torn-entry check: a power cut can publish a rename whose data
    // blocks never reached the disk, leaving a short or zeroed file.  The
    // full parse still guards load(); this catches the obvious wrecks
    // before anything can try to serve them.
    std::string reason;
    std::error_code sec;
    const std::uintmax_t size = fs::file_size(p, sec);
    if (sec || size < 12) {
      reason = "entry shorter than any valid bundle header";
    } else {
      char magic[4] = {};
      std::ifstream is(p.string(), std::ios::binary);
      if (!is.read(magic, 4) || std::memcmp(magic, "RLXB", 4) != 0)
        reason = "bad magic bytes (torn or foreign entry)";
    }
    if (reason.empty()) continue;
    // kStrict keeps its contract — bad bytes fail loudly — whether load()
    // or this sweep finds them first.
    if (policy_ == CacheRecoveryPolicy::kStrict)
      throw diag::CacheError("cache", "corrupt entry " + p.string() + ": " +
                                          reason + ", found at startup");
    const std::uint64_t hash =
        std::strtoull(p.stem().string().c_str(), nullptr, 16);
    quarantine(hash, reason + ", found at startup");
    quarantined_at_startup_.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Writes `content` to `path` via a temp file in the same directory that
/// is fully written and fsynced *before* the rename publishes it, followed
/// by an fsync of the containing directory — the classic crash-consistent
/// publish: after a power cut the entry is either absent or complete,
/// never torn.  Readers and killed writers see at most an orphan .tmp (the
/// startup sweep removes those).  The temp name carries the pid
/// (cross-process uniqueness) plus a process-wide counter, so concurrent
/// same-key writers within one process never share a staging file and
/// cannot publish each other's half-written bytes.
void TableCache::atomic_write(const std::string& path,
                              const std::string& content) {
  const bool inject = run::fault_injection_enabled();
  // Injection site `cache_write`: a scheduled transient I/O failure, the
  // deterministic stand-in for EINTR/ENOSPC-class flakes the retry loop in
  // store() is built for.
  if (inject && run::fault_point("cache_write"))
    throw diag::CacheError("cache",
                           "injected transient write failure for " + path);
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  ScopedFd f;
  f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (f.fd < 0)
    throw diag::CacheError(
        "cache", "cannot write " + tmp + ": " + std::strerror(errno));
  // Injection site `io_enospc`: the staging write fails outright (disk
  // full) — nothing was published, the retry loop owns what happens next.
  if (inject && run::fault_point("io_enospc")) {
    f.close_now();
    throw diag::CacheError("cache", "cannot write " + tmp +
                                        ": No space left on device "
                                        "(injected)");
  }
  const auto write_span = [&](const char* data, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(f.fd, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        f.close_now();
        throw diag::CacheError(
            "cache", "short write to " + tmp + ": " + std::strerror(err));
      }
      data += w;
      n -= static_cast<std::size_t>(w);
    }
  };
  // Injection site `io_short_write` sits between two halves of the staging
  // write: when it fires the write stops partway, leaving torn bytes in
  // the staging file (as a crash action `io_short_write:N!` the process
  // dies with them on disk — exactly what the rename discipline must
  // survive).
  const std::size_t half = inject ? content.size() / 2 : content.size();
  write_span(content.data(), half);
  if (inject && run::fault_point("io_short_write")) {
    f.close_now();
    throw diag::CacheError(
        "cache", "short write to " + tmp + " (injected, " +
                     std::to_string(half) + " of " +
                     std::to_string(content.size()) + " bytes)");
  }
  write_span(content.data() + half, content.size() - half);
  // fsync the staged bytes *before* the rename: once the entry name is
  // visible its content must already be on the platter, or a power cut
  // could publish a torn entry through a clean-looking rename.
  if (::fsync(f.fd) != 0) {
    const int err = errno;
    f.close_now();
    throw diag::CacheError("cache",
                           "fsync " + tmp + ": " + std::strerror(err));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  f.close_now();
  // Injection site `cache_staged`: the exact crash boundary between a
  // fully-fsynced staging file and its publishing rename.  A crash here
  // must leave only an orphan .tmp for the startup sweep — never an entry.
  if (inject && run::fault_point("cache_staged")) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw diag::CacheError(
        "cache", "injected failure between staging and publish of " + path);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw diag::CacheError("cache", "cannot rename into " + path);
  }
  // fsync the containing directory so the rename itself (the entry's
  // directory record) survives a power cut.
  ScopedFd d;
  d.fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (d.fd >= 0 && ::fsync(d.fd) == 0)
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
}

std::string TableCache::key_text(const geom::Technology& tech, int layer,
                                 geom::PlaneConfig planes,
                                 const TableGrid& grid,
                                 const solver::SolveOptions& opt) {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof buf, "rlcx-cache-key %d\n", kCacheKeyVersion);
  out += buf;
  out += tech.fingerprint();
  std::snprintf(buf, sizeof buf, "class layer %d planes %s\n", layer,
                geom::to_string(planes));
  out += buf;
  append_axis(out, "widths", grid.widths);
  append_axis(out, "spacings", grid.spacings);
  append_axis(out, "lengths", grid.lengths);
  out += solver::fingerprint(opt);
  return out;
}

std::uint64_t TableCache::key_hash(const std::string& key_text) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (unsigned char c : key_text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

std::string TableCache::key_id(const std::string& key_text) {
  return hex16(key_hash(key_text));
}

std::string TableCache::entry_path(std::uint64_t hash) const {
  return dir_ + "/" + hex16(hash) + ".tbl";
}

std::string TableCache::sidecar_path(std::uint64_t hash) const {
  return dir_ + "/" + hex16(hash) + ".key";
}

std::optional<InductanceTables> TableCache::load(
    const std::string& key_text) {
  const std::uint64_t hash = key_hash(key_text);
  const std::string path = entry_path(hash);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // The sidecar records the full key text; a mismatch means a 64-bit hash
  // collision (or a hand-edited cache) — treat as a miss, never serve the
  // wrong table.
  {
    std::ifstream key_is(sidecar_path(hash), std::ios::binary);
    if (key_is) {
      std::stringstream stored;
      stored << key_is.rdbuf();
      if (stored.str() != key_text) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
  }
  try {
    // Injection site `cache_read`: a scheduled corrupt entry, driving the
    // quarantine -> re-characterise ladder without hand-editing bytes.
    if (run::fault_injection_enabled() && run::fault_point("cache_read"))
      throw diag::CacheError("cache",
                             "injected corrupt cache entry " + path);
    InductanceTables t = InductanceTables::load_file(path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(fs::file_size(path, ec), std::memory_order_relaxed);
    return t;
  } catch (const std::exception& e) {
    if (policy_ == CacheRecoveryPolicy::kStrict)
      throw diag::CacheError(
          "cache", "corrupt entry " + path + ": " + e.what() +
                       " (strict policy; quarantine or purge the cache)");
    quarantine(hash, e.what());
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void TableCache::quarantine(std::uint64_t hash, const std::string& reason) {
  const std::string entry = entry_path(hash);
  const std::string sidecar = sidecar_path(hash);
  std::error_code ec;
  // Keep the bad bytes for post-mortem; the rename also frees the slot so
  // the rebuilt entry cannot race the diagnosis.  A repeat incident on the
  // same entry overwrites the previous evidence (latest corruption wins).
  fs::rename(entry, entry + ".quarantine", ec);
  if (ec) fs::remove(entry, ec);  // rename failed (e.g. EXDEV): drop instead
  fs::rename(sidecar, sidecar + ".quarantine", ec);
  if (ec) fs::remove(sidecar, ec);
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  diag::emit_warning(diag::Category::kCache, "cache",
                     "quarantined corrupt entry " + entry + " (" + reason +
                         "); the table will be re-characterised");
}

bool TableCache::store(const std::string& key_text,
                       const InductanceTables& tables) {
  const std::uint64_t hash = key_hash(key_text);
  std::ostringstream blob(std::ios::binary);
  tables.save_binary(blob);
  // Transient write failures (an interrupted write, a directory briefly
  // unwritable) must not kill an hours-long campaign over one entry: retry
  // with a small bounded backoff, then degrade per the recovery policy —
  // the table is already built, losing the cache copy only costs a
  // re-characterisation next run.
  constexpr int kStoreAttempts = 3;
  constexpr std::chrono::milliseconds kBackoff{1};  // 1 ms, then 2 ms
  for (int attempt = 1;; ++attempt) {
    try {
      // Entry first, sidecar second: load() skips the collision check when
      // the sidecar is absent, so a reader racing between the two renames
      // still serves the (complete) entry rather than failing on a
      // half-published pair.  Both individual writes are atomic renames,
      // and both are idempotent, so a retry may safely redo either.
      atomic_write(entry_path(hash), blob.str());
      atomic_write(sidecar_path(hash), key_text);
      bytes_written_.fetch_add(blob.str().size() + key_text.size(),
                               std::memory_order_relaxed);
      return true;
    } catch (const diag::CacheError& e) {
      if (attempt < kStoreAttempts) {
        write_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(kBackoff * (1 << (attempt - 1)));
        continue;
      }
      stores_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (policy_ == CacheRecoveryPolicy::kStrict) throw;
      diag::emit_warning(
          diag::Category::kCache, "cache",
          "store failed after " + std::to_string(kStoreAttempts) +
              " attempts (" + e.message() +
              "); entry skipped — the table will be re-characterised "
              "next run");
      return false;
    }
  }
}

std::vector<TableCache::Entry> TableCache::list() const {
  std::vector<Entry> out;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    const fs::path& p = de.path();
    if (p.extension() != ".tbl" || !is_hex16(p.stem().string())) continue;
    Entry e;
    e.id = p.stem().string();
    std::error_code ec;
    e.bytes = fs::file_size(p, ec);
    try {
      const InductanceTables t = InductanceTables::load_file(p.string());
      e.layer = t.layer;
      e.planes = t.planes;
      e.frequency = t.frequency;
    } catch (const std::exception&) {
      continue;  // torn/foreign file: not a well-formed entry
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::size_t TableCache::purge() {
  std::size_t removed = 0;
  std::vector<fs::path> victims;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    const fs::path& p = de.path();
    const std::string ext = p.extension().string();
    if ((ext == ".tbl" || ext == ".key") && is_hex16(p.stem().string()))
      victims.push_back(p);
    else if (ext == ".quarantine")
      victims.push_back(p);
  }
  for (const fs::path& p : victims) {
    std::error_code ec;
    if (p.extension() == ".tbl" && fs::remove(p, ec) && !ec) ++removed;
    else fs::remove(p, ec);  // sidecars and quarantined files: not counted
  }
  return removed;
}

InductanceTables build_tables_cached(const geom::Technology& tech, int layer,
                                     geom::PlaneConfig planes,
                                     const TableGrid& grid,
                                     const solver::SolveOptions& opt,
                                     TableCache& cache, int threads,
                                     BuildStats* stats) {
  const std::string key = TableCache::key_text(tech, layer, planes, grid, opt);
  if (std::optional<InductanceTables> hit = cache.load(key)) {
    if (stats) *stats = BuildStats{};
    return *std::move(hit);
  }
  InductanceTables built =
      build_tables(tech, layer, planes, grid, opt, threads, stats);
  cache.store(key, built);
  return built;
}

}  // namespace rlcx::core
