#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/binary_io.h"
#include "diag/error.h"
#include "diag/warnings.h"

namespace rlcx::core {

namespace {

constexpr char kBinaryMagic[4] = {'R', 'L', 'X', 'T'};
constexpr std::uint32_t kBinaryVersion = 1;
constexpr std::size_t kMaxDims = 8;
constexpr std::uint64_t kMaxAxisPoints = 1u << 20;

}  // namespace

const char* to_string(ExtrapolationPolicy p) {
  switch (p) {
    case ExtrapolationPolicy::kWarn: return "warn";
    case ExtrapolationPolicy::kClamp: return "clamp";
    case ExtrapolationPolicy::kThrow: return "throw";
  }
  return "?";
}

NdTable::NdTable(std::vector<std::string> axis_names,
                 std::vector<std::vector<double>> axes,
                 std::vector<double> values)
    : names_(std::move(axis_names)), axes_(std::move(axes)),
      values_(std::move(values)), spline_(axes_, values_) {
  if (names_.size() != axes_.size())
    throw std::invalid_argument("NdTable: axis name count");
  for (double v : values_)
    if (!std::isfinite(v))
      throw diag::NumericError(
          "table", "non-finite value " + std::to_string(v) + " in table '" +
                       name_ + "' data (characterisation produced NaN/Inf?)");
}

double NdTable::lookup(const std::vector<double>& q) const {
  if (axes_.empty()) throw std::logic_error("NdTable: empty table");
  if (in_range(q)) return spline_.eval(q);
  extrapolations_.v.fetch_add(1, std::memory_order_relaxed);

  // Identify the worst offending axis for the diagnostic.
  std::size_t ax = 0;
  for (std::size_t d = 0; d < axes_.size(); ++d)
    if (q[d] < axes_[d].front() || q[d] > axes_[d].back()) { ax = d; break; }
  std::ostringstream where;
  where << "query " << names_[ax] << " = " << q[ax] << " outside table '"
        << name_ << "' grid [" << axes_[ax].front() << ", "
        << axes_[ax].back() << "]";

  switch (policy_) {
    case ExtrapolationPolicy::kThrow:
      throw diag::NumericError(
          "table", where.str() + "; extrapolation disabled by policy "
                                 "(extend the characterisation grid)");
    case ExtrapolationPolicy::kClamp: {
      std::vector<double> clamped = q;
      for (std::size_t d = 0; d < axes_.size(); ++d)
        clamped[d] =
            std::min(std::max(clamped[d], axes_[d].front()), axes_[d].back());
      return spline_.eval(clamped);
    }
    case ExtrapolationPolicy::kWarn:
      break;
  }
  // exchange() elects exactly one warner under concurrent extrapolation.
  if (!extrapolation_warned_.v.exchange(true, std::memory_order_relaxed)) {
    diag::emit_warning(diag::Category::kNumeric, "table",
                       where.str() +
                           "; spline extrapolation degrades away from the "
                           "grid (warning once per table)");
  }
  return spline_.eval(q);
}

bool NdTable::in_range(const std::vector<double>& q) const {
  if (q.size() != axes_.size())
    throw std::invalid_argument("NdTable: query dimension");
  for (std::size_t d = 0; d < axes_.size(); ++d)
    if (q[d] < axes_[d].front() || q[d] > axes_[d].back()) return false;
  return true;
}

double NdTable::at(const std::vector<std::size_t>& idx) const {
  if (idx.size() != axes_.size())
    throw std::invalid_argument("NdTable: index dimension");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    if (idx[d] >= axes_[d].size())
      throw std::out_of_range("NdTable: index out of range");
    flat = flat * axes_[d].size() + idx[d];
  }
  return values_[flat];
}

void NdTable::save(std::ostream& os) const {
  os << "rlcx-table 1\n";
  os << axes_.size() << "\n";
  if (axes_.empty()) {
    os << 0 << "\n";  // empty (un-characterised) table: zero values
    return;
  }
  os << std::setprecision(17);
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    os << names_[d] << " " << axes_[d].size();
    for (double v : axes_[d]) os << " " << v;
    os << "\n";
  }
  os << values_.size();
  for (double v : values_) os << " " << v;
  os << "\n";
}

NdTable NdTable::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "rlcx-table" || version != 1)
    throw diag::IoError("table", "bad file header (not an rlcx-table v1 file)");
  std::size_t dims = 0;
  is >> dims;
  if (!is || dims > 8)
    throw diag::IoError("table", "bad dimension count");
  if (dims == 0) {
    std::size_t zero = 0;
    is >> zero;
    if (!is || zero != 0) throw diag::IoError("table", "bad empty-table record");
    return NdTable();
  }
  std::vector<std::string> names(dims);
  std::vector<std::vector<double>> axes(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::size_t n = 0;
    is >> names[d] >> n;
    if (!is || n < 2) throw diag::IoError("table", "bad axis record (need >= 2 grid points)");
    axes[d].resize(n);
    for (double& v : axes[d]) is >> v;
  }
  std::size_t count = 0;
  is >> count;
  std::vector<double> values(count);
  for (double& v : values) is >> v;
  if (!is) throw diag::IoError("table", "truncated file");
  return NdTable(std::move(names), std::move(axes), std::move(values));
}

void NdTable::save_binary(std::ostream& os) const {
  using namespace detail;
  write_header(os, kBinaryMagic, kBinaryVersion);
  put_u32(os, static_cast<std::uint32_t>(axes_.size()));
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    put_u32(os, static_cast<std::uint32_t>(names_[d].size()));
    put_bytes(os, names_[d].data(), names_[d].size());
    put_u64(os, axes_[d].size());
    for (double v : axes_[d]) put_f64(os, v);
  }
  put_u64(os, values_.size());
  for (double v : values_) put_f64(os, v);
  if (!os) throw diag::IoError("table", "binary write failed");
}

NdTable NdTable::load_binary(std::istream& is) {
  using namespace detail;
  check_header(is, kBinaryMagic, kBinaryVersion, "NdTable");
  const std::uint32_t dims = get_u32(is, "dims");
  if (dims > kMaxDims)
    throw diag::IoError("table", "bad dimension count");
  std::vector<std::string> names(dims);
  std::vector<std::vector<double>> axes(dims);
  std::uint64_t expected = dims == 0 ? 0 : 1;
  for (std::uint32_t d = 0; d < dims; ++d) {
    const std::uint32_t name_len = get_u32(is, "axis name");
    if (name_len > 256)
      throw diag::IoError("table", "axis name too long");
    names[d].resize(name_len);
    get_bytes(is, names[d].data(), name_len, "axis name");
    const std::uint64_t n = get_u64(is, "axis size");
    if (n < 2 || n > kMaxAxisPoints)
      throw diag::IoError("table", "bad axis size");
    axes[d].resize(n);
    for (double& v : axes[d]) v = get_f64(is, "axis value");
    for (std::size_t i = 0; i < axes[d].size(); ++i) {
      if (!std::isfinite(axes[d][i]) ||
          (i > 0 && axes[d][i] <= axes[d][i - 1]))
        throw diag::IoError(
            "table", "axis not finite and strictly increasing");
    }
    expected *= n;
  }
  const std::uint64_t count = get_u64(is, "value count");
  if (count != expected)
    throw diag::IoError("table", "value count does not match axes");
  std::vector<double> values(count);
  for (double& v : values) {
    v = get_f64(is, "value");
    if (!std::isfinite(v))
      throw diag::NumericError(
          "table",
          "non-finite value " + std::to_string(v) +
              " in stored table data (corrupt or mis-characterised file)");
  }
  if (dims == 0) return NdTable();
  return NdTable(std::move(names), std::move(axes), std::move(values));
}

void NdTable::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw diag::IoError("table", "cannot open " + path);
  save(os);
}

void NdTable::save_file_binary(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw diag::IoError("table", "cannot open " + path);
  save_binary(os);
}

NdTable NdTable::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw diag::IoError("table", "cannot open " + path);
  char magic[4] = {};
  is.read(magic, 4);
  is.clear();
  is.seekg(0);
  if (is.gcount() == 4 && std::memcmp(magic, kBinaryMagic, 4) == 0)
    return load_binary(is);
  return load(is);
}

}  // namespace rlcx::core
