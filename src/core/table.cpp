#include "core/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rlcx::core {

NdTable::NdTable(std::vector<std::string> axis_names,
                 std::vector<std::vector<double>> axes,
                 std::vector<double> values)
    : names_(std::move(axis_names)), axes_(std::move(axes)),
      values_(std::move(values)), spline_(axes_, values_) {
  if (names_.size() != axes_.size())
    throw std::invalid_argument("NdTable: axis name count");
}

double NdTable::lookup(const std::vector<double>& q) const {
  if (axes_.empty()) throw std::logic_error("NdTable: empty table");
  if (!in_range(q)) ++extrapolations_;
  return spline_.eval(q);
}

bool NdTable::in_range(const std::vector<double>& q) const {
  if (q.size() != axes_.size())
    throw std::invalid_argument("NdTable: query dimension");
  for (std::size_t d = 0; d < axes_.size(); ++d)
    if (q[d] < axes_[d].front() || q[d] > axes_[d].back()) return false;
  return true;
}

double NdTable::at(const std::vector<std::size_t>& idx) const {
  if (idx.size() != axes_.size())
    throw std::invalid_argument("NdTable: index dimension");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    if (idx[d] >= axes_[d].size())
      throw std::out_of_range("NdTable: index out of range");
    flat = flat * axes_[d].size() + idx[d];
  }
  return values_[flat];
}

void NdTable::save(std::ostream& os) const {
  os << "rlcx-table 1\n";
  os << axes_.size() << "\n";
  if (axes_.empty()) {
    os << 0 << "\n";  // empty (un-characterised) table: zero values
    return;
  }
  os << std::setprecision(17);
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    os << names_[d] << " " << axes_[d].size();
    for (double v : axes_[d]) os << " " << v;
    os << "\n";
  }
  os << values_.size();
  for (double v : values_) os << " " << v;
  os << "\n";
}

NdTable NdTable::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "rlcx-table" || version != 1)
    throw std::runtime_error("NdTable: bad file header");
  std::size_t dims = 0;
  is >> dims;
  if (!is || dims > 8)
    throw std::runtime_error("NdTable: bad dimension count");
  if (dims == 0) {
    std::size_t zero = 0;
    is >> zero;
    if (!is || zero != 0) throw std::runtime_error("NdTable: bad empty table");
    return NdTable();
  }
  std::vector<std::string> names(dims);
  std::vector<std::vector<double>> axes(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::size_t n = 0;
    is >> names[d] >> n;
    if (!is || n < 2) throw std::runtime_error("NdTable: bad axis");
    axes[d].resize(n);
    for (double& v : axes[d]) is >> v;
  }
  std::size_t count = 0;
  is >> count;
  std::vector<double> values(count);
  for (double& v : values) is >> v;
  if (!is) throw std::runtime_error("NdTable: truncated file");
  return NdTable(std::move(names), std::move(axes), std::move(values));
}

void NdTable::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("NdTable: cannot open " + path);
  save(os);
}

NdTable NdTable::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("NdTable: cannot open " + path);
  return load(is);
}

}  // namespace rlcx::core
