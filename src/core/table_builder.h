// Pre-computation of the inductance tables (paper Section III).
//
// "The 3D inductance extraction tool RI3 is invoked to solve a block of two
// traces with or without ground plane(s) in layer N+2/N-2 for different
// combinations of lengths, widths, and spacings. ... Note that only 2-trace
// subproblems need to be solved, because results to 1-trace subproblems are
// parts of results to 2-trace subproblems."  Our RI3 stand-in is the
// rlcx_solver loop/partial extractor.
#pragma once

#include "core/inductance_model.h"
#include "geom/technology.h"
#include "solver/options.h"

namespace rlcx::core {

struct TableGrid {
  std::vector<double> widths;    ///< trace widths [m]
  std::vector<double> spacings;  ///< edge-to-edge spacings [m]
  std::vector<double> lengths;   ///< segment lengths [m]
};

/// A sensible default grid for clock wiring: widths 1-20 um, spacings
/// 0.5-10 um, lengths 100-6000 um (geometric spacing, since L is closer to
/// log-linear in geometry).
TableGrid default_clock_grid();

/// Build the self (width x length) and mutual (w1 x w2 x spacing x length)
/// tables for the given structure class at opt.frequency (callers pass the
/// significant frequency 0.32/t_r).  The grid solves are independent;
/// `threads` > 1 fans them out (0 = hardware concurrency).
InductanceTables build_tables(const geom::Technology& tech, int layer,
                              geom::PlaneConfig planes, const TableGrid& grid,
                              const solver::SolveOptions& opt,
                              int threads = 1);

/// Process-wide count of 2-trace PEEC grid solves performed by
/// build_tables() so far.  The table cache's contract is that a warm hit
/// performs *zero* solves; tests and the CLI counters observe it here.
std::size_t table_build_solve_count();
void reset_table_build_solve_count();

}  // namespace rlcx::core
