// Pre-computation of the inductance tables (paper Section III).
//
// "The 3D inductance extraction tool RI3 is invoked to solve a block of two
// traces with or without ground plane(s) in layer N+2/N-2 for different
// combinations of lengths, widths, and spacings. ... Note that only 2-trace
// subproblems need to be solved, because results to 1-trace subproblems are
// parts of results to 2-trace subproblems."  Our RI3 stand-in is the
// rlcx_solver loop/partial extractor.
//
// Every grid point is an independent 2-trace solve, so a build is a flat
// bag of work-stealing tasks on the rlcx::rt pool; GridSolvePlan exposes
// that decomposition so the batch extractor can fan the points of *many*
// builds across the same pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/inductance_model.h"
#include "geom/technology.h"
#include "res/budget.h"
#include "solver/options.h"

namespace rlcx::core {

struct TableGrid {
  std::vector<double> widths;    ///< trace widths [m]
  std::vector<double> spacings;  ///< edge-to-edge spacings [m]
  std::vector<double> lengths;   ///< segment lengths [m]
};

/// A sensible default grid for clock wiring: widths 1-20 um, spacings
/// 0.5-10 um, lengths 100-6000 um (geometric spacing, since L is closer to
/// log-linear in geometry).
TableGrid default_clock_grid();

/// Resident bytes of one characterisation over `grid`: the three value
/// arrays the plan accumulates, doubled for the transient copies finish()
/// makes while assembling the NdTables.  Feeds the memory budget's cost
/// model (docs/robustness.md "Resource governance"); the per-point solve
/// cost is priced separately by solver::estimate_*_solve_bytes.
std::size_t estimate_grid_bytes(const TableGrid& grid);

/// What one build actually did — the per-build counters that stay
/// meaningful when several characterisations run concurrently (the
/// process-global table_build_solve_count() only aggregates).
struct BuildStats {
  std::size_t solves = 0;       ///< 2-trace PEEC solves this build performed
  std::size_t grid_points = 0;  ///< points in the grid (== solves unless
                                ///< the result came from a cache)
  int threads = 1;              ///< parallel width the build ran with
  double wall_seconds = 0.0;    ///< wall-clock time of the solve phase (in a
                                ///< batch: the shared fan-out phase)
  // Kernel-memo counters of the matrix fills this build ran (deltas of
  // peec::fill_stats_total() around the solve phase, so builds running
  // concurrently with other extraction work see a shared aggregate).
  std::size_t pair_lookups = 0;  ///< filament pairs the fills needed
  std::size_t kernel_evals = 0;  ///< Hoer-Love pair evaluations performed
  std::size_t memo_hits = 0;     ///< pairs served from the geometry memo
  // Impedance-solver path counters (deltas of hmat::solve_stats_total()
  // around the solve phase, same sharing caveat as the memo counters).
  std::size_t dense_solves = 0;      ///< solves taken by the dense LU oracle
  std::size_t hmat_solves = 0;       ///< solves taken by the hierarchical path
  std::size_t gmres_iterations = 0;  ///< GMRES iterations across hmat solves
  std::size_t gmres_fallbacks = 0;   ///< non-convergence -> dense fallbacks
  std::size_t hmat_stored_entries = 0;  ///< H-matrix entries actually stored
  std::size_t hmat_full_entries = 0;    ///< dense n^2 those solves would cost
  // Batch kernel-engine counters (deltas of peec::batch_stats_total()
  // around the solve phase, same sharing caveat as the memo counters).
  std::size_t batch_runs = 0;            ///< BatchEvaluator::run() calls
  std::size_t batch_volume_terms = 0;    ///< Hoer-Love SoA entries evaluated
  std::size_t batch_filament_terms = 0;  ///< filament fast-path SoA entries
  std::uint64_t batch_eval_nanos = 0;    ///< wall time inside the SoA kernels
  // Resource-governance counters (res::Budget::global(), sampled/delta'd
  // around the solve phase; docs/robustness.md "Resource governance").
  std::uint64_t mem_limit_bytes = 0;   ///< budget in force (0 = unlimited)
  std::uint64_t mem_peak_bytes = 0;    ///< tracked+reserved high-water seen
  std::uint64_t mem_degradations = 0;  ///< dense->hmat budget downgrades
  std::uint64_t mem_refusals = 0;      ///< reservations refused outright
  /// Fraction of pair values served without a kernel evaluation.
  double memo_hit_rate() const {
    return pair_lookups == 0
               ? 0.0
               : static_cast<double>(memo_hits) /
                     static_cast<double>(pair_lookups);
  }
  /// Kernel-evaluation throughput of the batch engine over this build
  /// (SoA entries per second of in-kernel wall time; 0 when no batch ran).
  double batch_terms_per_second() const {
    return batch_eval_nanos == 0
               ? 0.0
               : static_cast<double>(batch_volume_terms +
                                     batch_filament_terms) *
                     1e9 / static_cast<double>(batch_eval_nanos);
  }
  /// Stored fraction of the dense entry count over the hmat solves (1.0
  /// would mean no compression; 0 when no hmat solve ran).
  double hmat_compression() const {
    return hmat_full_entries == 0
               ? 0.0
               : static_cast<double>(hmat_stored_entries) /
                     static_cast<double>(hmat_full_entries);
  }
};

/// One table characterisation decomposed into independent grid-point
/// solves.  solve_point() is thread-safe for distinct indices and writes
/// disjoint slots, so any schedule yields bit-identical tables; every
/// index in [0, points()) must be solved exactly once before finish().
/// build_tables() runs a plan on its own; the batch extractor concatenates
/// the points of many plans into one work-stealing range.
class GridSolvePlan {
 public:
  GridSolvePlan(const geom::Technology& tech, int layer,
                geom::PlaneConfig planes, TableGrid grid,
                solver::SolveOptions opt);

  std::size_t points() const { return n_points_; }
  void solve_point(std::size_t index);
  /// Points solved so far (the per-build solve counter).
  std::size_t solves() const {
    return solved_.load(std::memory_order_relaxed);
  }
  /// Assembles the tables; call once, after every point is solved.
  InductanceTables finish();

 private:
  const geom::Technology* tech_;
  int layer_;
  geom::PlaneConfig planes_;
  TableGrid grid_;
  solver::SolveOptions opt_;
  std::size_t n_points_ = 0;
  /// Charges the grid arrays against the memory budget for the plan's
  /// lifetime; acquiring it in the constructor makes an over-budget
  /// characterisation fail before the first field solve.
  res::Reservation grid_reservation_;
  std::vector<double> mutual_vals_;
  std::vector<double> self_vals_;
  std::vector<double> r_vals_;
  std::atomic<std::size_t> solved_{0};
};

/// Build the self (width x length) and mutual (w1 x w2 x spacing x length)
/// tables for the given structure class at opt.frequency (callers pass the
/// significant frequency 0.32/t_r).  `threads` > 1 fans the grid points
/// out as work-stealing tasks (long-trace solves cost far more than short
/// ones, so static sharding load-imbalances); 0 uses the process-global
/// pool (RLCX_THREADS / --threads / hardware), 1 is fully serial.  The
/// result is bit-identical for every thread count.  `stats`, when given,
/// receives the per-build counters.
InductanceTables build_tables(const geom::Technology& tech, int layer,
                              geom::PlaneConfig planes, const TableGrid& grid,
                              const solver::SolveOptions& opt,
                              int threads = 1, BuildStats* stats = nullptr);

/// Process-wide count of 2-trace PEEC grid solves performed by
/// build_tables() so far — a thin aggregate over every build's BuildStats,
/// kept for the table cache's "a warm hit performs *zero* solves" contract
/// (tests and the CLI counters observe it here).
std::size_t table_build_solve_count();
void reset_table_build_solve_count();

}  // namespace rlcx::core
