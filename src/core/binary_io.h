// Internal helpers for the versioned binary table formats ("RLXT" /
// "RLXB", docs/table-format.md).  Fields are fixed-width little-endian;
// a byte-order mark in every header makes a foreign-endian file fail
// loudly instead of decoding garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace rlcx::core::detail {

/// Written as 0x01020304 by the producer; reads back as 0x04030201 when
/// producer and consumer disagree on byte order.
inline constexpr std::uint32_t kByteOrderMark = 0x01020304u;

inline void put_bytes(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

inline void put_u32(std::ostream& os, std::uint32_t v) {
  put_bytes(os, &v, sizeof v);
}

inline void put_i32(std::ostream& os, std::int32_t v) {
  put_bytes(os, &v, sizeof v);
}

inline void put_u64(std::ostream& os, std::uint64_t v) {
  put_bytes(os, &v, sizeof v);
}

inline void put_f64(std::ostream& os, double v) {
  put_bytes(os, &v, sizeof v);
}

inline void get_bytes(std::istream& is, void* p, std::size_t n,
                      const char* what) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!is || is.gcount() != static_cast<std::streamsize>(n))
    throw std::runtime_error(std::string("truncated binary table (") + what +
                             ")");
}

inline std::uint32_t get_u32(std::istream& is, const char* what) {
  std::uint32_t v = 0;
  get_bytes(is, &v, sizeof v, what);
  return v;
}

inline std::int32_t get_i32(std::istream& is, const char* what) {
  std::int32_t v = 0;
  get_bytes(is, &v, sizeof v, what);
  return v;
}

inline std::uint64_t get_u64(std::istream& is, const char* what) {
  std::uint64_t v = 0;
  get_bytes(is, &v, sizeof v, what);
  return v;
}

inline double get_f64(std::istream& is, const char* what) {
  double v = 0.0;
  get_bytes(is, &v, sizeof v, what);
  return v;
}

/// Reads and validates a 4-byte magic + u32 version + u32 byte-order mark.
/// `max_version` is the newest layout this build understands.
inline std::uint32_t check_header(std::istream& is, const char magic[4],
                                  std::uint32_t max_version,
                                  const char* what) {
  char got[4] = {};
  get_bytes(is, got, 4, what);
  if (std::memcmp(got, magic, 4) != 0)
    throw std::runtime_error(std::string(what) + ": bad magic bytes");
  const std::uint32_t version = get_u32(is, what);
  if (version == 0 || version > max_version)
    throw std::runtime_error(std::string(what) + ": unsupported version " +
                             std::to_string(version));
  const std::uint32_t bom = get_u32(is, what);
  if (bom != kByteOrderMark)
    throw std::runtime_error(std::string(what) +
                             ": byte-order mismatch (foreign-endian file)");
  return version;
}

inline void write_header(std::ostream& os, const char magic[4],
                         std::uint32_t version) {
  put_bytes(os, magic, 4);
  put_u32(os, version);
  put_u32(os, kByteOrderMark);
}

}  // namespace rlcx::core::detail
