// Inductance-significance screening.
//
// The paper's introduction argues inductance must be extracted for clock
// nets because of "faster clock frequencies, shorter rise times, and lower
// resistivity metal".  This module encodes the standard screening rules
// that quantify that argument for one net, so a flow can decide per-net
// whether RLC extraction (this library) or plain RC suffices:
//
//   1. edge criterion: the rise time is shorter than twice the time of
//      flight, t_rise < 2 * sqrt(L*C) — otherwise the line never behaves
//      as a transmission line during the edge;
//   2. damping criterion: the total resistance is below twice the line
//      impedance, R < 2 * sqrt(L/C) — otherwise the response is
//      overdamped and RC-like.
//
// Inductance matters when both hold (Ismail/Friedman-style window).
#pragma once

namespace rlcx::core {

struct ScreeningInput {
  double resistance = 0.0;   ///< total series R of the net [ohm]
  double inductance = 0.0;   ///< total loop L of the net [H]
  double capacitance = 0.0;  ///< total C of the net [F]
  double rise_time = 0.0;    ///< driver edge [s]
};

struct ScreeningResult {
  double time_of_flight = 0.0;  ///< sqrt(L*C) [s]
  double line_impedance = 0.0;  ///< sqrt(L/C) [ohm]
  /// t_rise / (2 * time_of_flight); < 1 means the edge is fast enough.
  double edge_ratio = 0.0;
  /// R / (2 * Z0); < 1 means underdamped.
  double damping_ratio = 0.0;
  bool edge_fast_enough = false;
  bool underdamped = false;
  bool inductance_significant = false;  ///< both criteria met
};

ScreeningResult screen_inductance(const ScreeningInput& input);

}  // namespace rlcx::core
