// RLC netlist formulation for extracted segments (paper Section V).
//
// Each segment becomes a pi-ladder of `sections` R-L stages with shunt
// capacitance.  In partial (PEEC) mode the ground shield traces get their
// own branches — shorted loops from circuit ground through their R/L and
// back — and mutual-K elements couple every inductor pair in a section, so
// the simulator "determines the return path at simulation" exactly as the
// paper prescribes.  In loop mode the precomputed loop inductance sits in
// the signal branch and the return is the ideal ground.
//
// Capacitors to ground shields are stamped to the ideal ground node: the
// paper's explicitly-stated (optimistic) assumption, which it argues
// compensates the pessimism of ignoring package return paths.
#pragma once

#include "ckt/netlist.h"
#include "core/rlc_extractor.h"

namespace rlcx::core {

struct LadderOptions {
  int sections = 4;               ///< pi sections per segment
  bool include_inductance = true; ///< false -> RC-only netlist (Figure 2)
  bool include_mutual = true;     ///< mutual-K elements between inductors
};

/// Stamp one segment into the netlist.
/// `inputs` holds the near-end node of every *signal* trace of the block
/// (in block order); the far-end nodes are created and returned in the same
/// order.  Ground-shield branches (partial mode) are tied to circuit ground
/// at both ends internally.
std::vector<ckt::NodeId> stamp_segment(ckt::Netlist& netlist,
                                       const geom::Block& block,
                                       const SegmentRlc& seg,
                                       const std::vector<ckt::NodeId>& inputs,
                                       const LadderOptions& options);

}  // namespace rlcx::core
