#include "core/netlist_builder.h"

#include <cstdint>
#include <stdexcept>

namespace rlcx::core {

std::vector<ckt::NodeId> stamp_segment(ckt::Netlist& nl,
                                       const geom::Block& block,
                                       const SegmentRlc& seg,
                                       const std::vector<ckt::NodeId>& inputs,
                                       const LadderOptions& opt) {
  if (opt.sections < 1)
    throw std::invalid_argument("stamp_segment: sections >= 1");
  const std::vector<std::size_t> signals = block.signal_indices();
  if (inputs.size() != signals.size())
    throw std::invalid_argument("stamp_segment: one input per signal trace");
  const std::size_t nl_rows = seg.l_traces.size();
  const int s = opt.sections;

  // Node chain per inductance-carrying trace.  Signals start at their input
  // node; ground shields (partial mode) start and end at circuit ground.
  std::vector<std::vector<ckt::NodeId>> chain(nl_rows);
  for (std::size_t r = 0; r < nl_rows; ++r) {
    const std::size_t trace = seg.l_traces[r];
    const bool is_signal =
        block.trace(trace).role == geom::TraceRole::kSignal;
    chain[r].resize(static_cast<std::size_t>(s) + 1);
    if (is_signal) {
      // Position of this trace among the signals.
      std::size_t pos = 0;
      while (signals[pos] != trace) ++pos;
      chain[r][0] = inputs[pos];
      for (int k = 1; k <= s; ++k) chain[r][static_cast<std::size_t>(k)] =
          nl.add_node();
    } else {
      // Shield interior nodes exist only for the R+L branch below; in an
      // RC-only netlist that branch is skipped (dead metal), so allocating
      // nodes here would leave them dangling and fail Netlist::validate().
      chain[r][0] = ckt::kGround;
      for (int k = 1; k < s; ++k) chain[r][static_cast<std::size_t>(k)] =
          opt.include_inductance ? nl.add_node() : ckt::kGround;
      chain[r][static_cast<std::size_t>(s)] = ckt::kGround;
    }
  }

  // Series R + L per section; inductor indices kept for mutual stamping.
  std::vector<std::vector<std::size_t>> lidx(
      nl_rows, std::vector<std::size_t>(static_cast<std::size_t>(s)));
  for (std::size_t r = 0; r < nl_rows; ++r) {
    const std::size_t trace = seg.l_traces[r];
    const bool is_signal =
        block.trace(trace).role == geom::TraceRole::kSignal;
    // Shield branches only matter through their inductance (they carry the
    // induced return current); in an RC-only netlist they are dead metal.
    if (!is_signal && !opt.include_inductance) continue;
    const double r_sec =
        seg.resistance[trace] / static_cast<double>(s);
    const double l_sec = seg.inductance(r, r) / static_cast<double>(s);
    for (int k = 0; k < s; ++k) {
      const ckt::NodeId a = chain[r][static_cast<std::size_t>(k)];
      const ckt::NodeId b = chain[r][static_cast<std::size_t>(k) + 1];
      if (opt.include_inductance) {
        const ckt::NodeId mid = nl.add_node();
        nl.add_resistor(a, mid, r_sec);
        lidx[r][static_cast<std::size_t>(k)] =
            nl.add_inductor(mid, b, l_sec);
      } else {
        nl.add_resistor(a, b, r_sec);
      }
    }
  }

  // Mutual coupling between traces, section by section (totals sum to the
  // extracted whole-segment mutuals).
  if (opt.include_inductance && opt.include_mutual) {
    for (std::size_t r = 0; r < nl_rows; ++r) {
      for (std::size_t q = r + 1; q < nl_rows; ++q) {
        const double m_sec = seg.inductance(r, q) / static_cast<double>(s);
        if (m_sec == 0.0) continue;
        for (int k = 0; k < s; ++k)
          nl.add_mutual(lidx[r][static_cast<std::size_t>(k)],
                        lidx[q][static_cast<std::size_t>(k)], m_sec);
      }
    }
  }

  // Shunt capacitance, pi style: C/2 at the chain ends, C at interior
  // nodes — only on signal traces (shield nodes are at AC ground already;
  // their capacitance does not move any voltage).
  auto stamp_shunt = [&](ckt::NodeId node, ckt::NodeId other, double c) {
    if (c <= 0.0 || node == ckt::kGround) return;
    if (other == node) return;
    nl.add_capacitor(node, other, c);
  };
  const std::size_t nblock = block.size();
  for (std::size_t pos = 0; pos < signals.size(); ++pos) {
    const std::size_t trace = signals[pos];
    // Row of this trace in the chain array.
    std::size_t row = SIZE_MAX;
    for (std::size_t r = 0; r < nl_rows; ++r)
      if (seg.l_traces[r] == trace) row = r;
    if (row == SIZE_MAX)
      throw std::logic_error("stamp_segment: signal missing from L rows");

    // Ground capacitance, plus coupling to ground-shield neighbours
    // (treated as perfectly grounded, per the paper).
    double cg = seg.cap_ground[trace];
    double cc_left = 0.0, cc_right = 0.0;
    std::size_t left_row = SIZE_MAX, right_row = SIZE_MAX;
    if (trace > 0) {
      const double c = seg.cap_coupling[trace - 1];
      if (block.trace(trace - 1).role == geom::TraceRole::kGround) {
        cg += c;
      } else {
        cc_left = c;
        for (std::size_t r = 0; r < nl_rows; ++r)
          if (seg.l_traces[r] == trace - 1) left_row = r;
      }
    }
    if (trace + 1 < nblock) {
      const double c = seg.cap_coupling[trace];
      if (block.trace(trace + 1).role == geom::TraceRole::kGround) {
        cg += c;
      } else {
        cc_right = c;
        for (std::size_t r = 0; r < nl_rows; ++r)
          if (seg.l_traces[r] == trace + 1) right_row = r;
      }
    }

    const double ds = static_cast<double>(s);
    for (int k = 0; k <= s; ++k) {
      const double frac = (k == 0 || k == s) ? 0.5 : 1.0;
      const ckt::NodeId node = chain[row][static_cast<std::size_t>(k)];
      stamp_shunt(node, ckt::kGround, frac * cg / ds);
      // Signal-signal coupling caps connect matching ladder nodes; stamp
      // once per pair (from the lower row).
      if (cc_left > 0.0 && left_row != SIZE_MAX && left_row > row)
        stamp_shunt(node, chain[left_row][static_cast<std::size_t>(k)],
                    frac * cc_left / ds);
      if (cc_right > 0.0 && right_row != SIZE_MAX && right_row > row)
        stamp_shunt(node, chain[right_row][static_cast<std::size_t>(k)],
                    frac * cc_right / ds);
    }
  }

  // Collect far-end nodes of the signals, in signal order.
  std::vector<ckt::NodeId> outputs;
  for (std::size_t pos = 0; pos < signals.size(); ++pos) {
    std::size_t row = SIZE_MAX;
    for (std::size_t r = 0; r < nl_rows; ++r)
      if (seg.l_traces[r] == signals[pos]) row = r;
    outputs.push_back(chain[row][static_cast<std::size_t>(s)]);
  }
  return outputs;
}

}  // namespace rlcx::core
