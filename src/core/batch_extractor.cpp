#include "core/batch_extractor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/block.h"
#include "rt/parallel.h"
#include "rt/pool.h"
#include "run/journal.h"

namespace rlcx::core {

namespace {

/// A deduplicated job that missed the cache: its plan plus where its grid
/// points start inside the batch-wide flat range.
struct PendingBuild {
  std::size_t job = 0;  ///< index into the caller's jobs vector
  std::string key;
  std::unique_ptr<GridSolvePlan> plan;  ///< unique_ptr: the plan's atomic
                                        ///< counter pins it in place
  std::size_t offset = 0;
  /// Grid points of this job not yet solved.  The worker that drops it to
  /// zero owns finalisation (tables assembled, cache store, journal
  /// record) — so a cancellation arriving later finds every completed job
  /// already durable.  Heap-held because atomics don't move with the
  /// vector.
  std::unique_ptr<std::atomic<std::size_t>> remaining;
};

}  // namespace

BatchResult characterize_batch(const geom::Technology& tech,
                               const std::vector<BatchJob>& jobs,
                               const solver::SolveOptions& opt,
                               const BatchOptions& options) {
  BatchResult res;
  res.tables.resize(jobs.size());
  res.stats.resize(jobs.size());

  // Fold identical jobs by cache key (the key covers everything that
  // determines the values, so equal keys give equal tables).
  std::vector<std::string> keys(jobs.size());
  std::vector<std::size_t> canonical(jobs.size());
  std::map<std::string, std::size_t> first_of_key;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    keys[i] = TableCache::key_text(tech, jobs[i].layer, jobs[i].planes,
                                   jobs[i].grid, opt);
    canonical[i] = first_of_key.emplace(keys[i], i).first->second;
  }

  // Probe the journal, then the cache, for every canonical job; misses
  // become plans whose points concatenate into one flat range.
  std::vector<PendingBuild> pending;
  std::vector<std::size_t> offsets;  // pending[k].offset, for upper_bound
  std::size_t total_points = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (canonical[i] != i) continue;
    const bool journaled =
        options.journal && options.journal->contains(TableCache::key_id(keys[i]));
    if (options.cache) {
      if (std::optional<InductanceTables> hit = options.cache->load(keys[i])) {
        res.tables[i] = *std::move(hit);
        if (journaled) ++res.jobs_resumed;
        continue;
      }
    }
    if (journaled)
      // The journal only records ids whose store() succeeded, so this means
      // the cache was purged (or never configured) since the journal was
      // written — the resume contract degrades to an ordinary rebuild.
      diag::emit_warning(diag::Category::kCache, "batch",
                         "journal records " + TableCache::key_id(keys[i]) +
                             " complete but the cache has no entry for it; "
                             "re-characterising");
    PendingBuild pb;
    pb.job = i;
    pb.key = keys[i];
    pb.plan = std::make_unique<GridSolvePlan>(tech, jobs[i].layer,
                                              jobs[i].planes, jobs[i].grid,
                                              opt);
    pb.offset = total_points;
    total_points += pb.plan->points();
    pb.remaining =
        std::make_unique<std::atomic<std::size_t>>(pb.plan->points());
    offsets.push_back(pb.offset);
    pending.push_back(std::move(pb));
  }

  rt::Pool& pool = options.pool ? *options.pool : rt::Pool::global();
  const auto t0 = std::chrono::steady_clock::now();

  // Finalises one fully-solved job: assemble its tables into the result
  // slot, store the cache entry, and only then journal it complete.  Runs
  // on whichever worker solves the job's last point — exactly once, since
  // only one thread sees `remaining` hit zero — so a cancellation unwinding
  // the fan-out afterwards cannot lose the job.
  auto finalize = [&](PendingBuild& pb) {
    res.tables[pb.job] = pb.plan->finish();
    const bool stored =
        options.cache && options.cache->store(pb.key, res.tables[pb.job]);
    if (options.journal && (stored || !options.cache))
      options.journal->record(TableCache::key_id(pb.key));
  };

  if (total_points != 0) {
    rt::ParallelOptions popt;
    popt.grain = 1;
    popt.pool = &pool;
    rt::parallel_for(
        0, total_points,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t idx = lo; idx < hi; ++idx) {
            const std::size_t k = static_cast<std::size_t>(
                std::upper_bound(offsets.begin(), offsets.end(), idx) -
                offsets.begin() - 1);
            PendingBuild& pb = pending[k];
            pb.plan->solve_point(idx - pb.offset);
            if (pb.remaining->fetch_sub(1, std::memory_order_acq_rel) == 1)
              finalize(pb);
          }
        },
        popt);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (PendingBuild& pb : pending) {
    BuildStats& st = res.stats[pb.job];
    st.solves = pb.plan->solves();
    st.grid_points = pb.plan->points();
    st.threads = static_cast<int>(pool.size());
    st.wall_seconds = wall;
  }

  // Duplicates copy their canonical's tables; their stats stay zero-solve.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (canonical[i] != i) res.tables[i] = res.tables[canonical[i]];
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (canonical[i] == i) res.library.add_tables(res.tables[i]);
  }
  return res;
}

std::vector<SegmentRlc> extract_segments_batch(
    const std::vector<geom::Block>& blocks,
    const InductanceLibrary& library, const ExtractOptions& options,
    rt::Pool* pool) {
  // Resolve every provider up front: a missing structure class throws the
  // same deterministic error regardless of pool schedule, before any
  // extraction work is spent.
  std::vector<const InductanceProvider*> providers(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i)
    providers[i] =
        &library.provider(blocks[i].layer_index(), blocks[i].planes());

  std::vector<SegmentRlc> out(blocks.size());
  rt::ParallelOptions popt;
  popt.grain = 1;
  popt.pool = pool;
  rt::parallel_for(0, blocks.size(),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i)
                       out[i] = extract_segment_rlc(blocks[i], *providers[i],
                                                    options);
                   },
                   popt);
  return out;
}

}  // namespace rlcx::core
