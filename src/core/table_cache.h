// Persistent on-disk cache of pre-characterised inductance tables.
//
// The paper's efficiency claim rests on paying the field-solver cost once
// (Section III: "a few hours" of 2-trace pre-computation) and answering
// every extraction by table lookup.  This cache makes that cost durable
// across processes: entries are content-addressed by a stable hash of
// everything that determines a table's values — the technology layer
// stack, the structure class (layer, plane config), the characterisation
// grid and the solver options including frequency — so a changed input can
// never serve a stale table.  Entries are the versioned binary bundle of
// InductanceTables (docs/table-format.md); writes go through a temp file
// that is fully written and fsynced before an atomic rename (followed by a
// directory fsync), so concurrent builders, killed runs and power cuts
// never leave a torn entry behind.  Opening a cache sweeps the directory:
// orphaned staging files from crashed writers are removed and entries that
// fail a cheap integrity check (magic bytes, minimum size) are quarantined
// before anything can be served from them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/table_builder.h"

namespace rlcx::core {

/// Hit/miss/traffic counters for one TableCache instance (a snapshot;
/// see TableCache::stats()).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t quarantined = 0;  ///< corrupt entries set aside by kRecover
  std::size_t write_retries = 0;   ///< transient store failures retried
  std::size_t stores_dropped = 0;  ///< stores abandoned after the retry
                                   ///< budget (kRecover: warn and rebuild
                                   ///< next run instead of failing the job)
  std::size_t quarantined_at_startup = 0;  ///< torn entries set aside by the
                                           ///< open-time integrity sweep
  std::size_t tmp_swept = 0;  ///< orphaned staging files removed at open
  std::uint64_t fsyncs = 0;   ///< fsync(2) calls (staged files + directory)
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// What load() does with a present-but-unreadable entry (torn write that
/// dodged the atomic rename, bit rot, version mismatch, foreign file).
enum class CacheRecoveryPolicy {
  kStrict,   ///< throw a categorized `cache` error — bad bytes fail loudly
  kRecover,  ///< quarantine the entry (rename to *.quarantine), warn, and
             ///< report a miss so the caller re-characterises (default)
};

class TableCache {
 public:
  /// Opens (creating if needed) the cache rooted at `directory`, then runs
  /// the crash-recovery sweep: orphaned `*.tmp.*` staging files left by a
  /// killed writer are removed (stats().tmp_swept) and entries failing a
  /// cheap integrity check — wrong magic bytes or an impossible size, the
  /// signature of a torn rename after power loss — are quarantined with an
  /// `io` warning (stats().quarantined_at_startup) so they can never be
  /// served.
  explicit TableCache(std::string directory,
                      CacheRecoveryPolicy policy = CacheRecoveryPolicy::kRecover);

  const std::string& directory() const { return dir_; }
  CacheRecoveryPolicy recovery_policy() const { return policy_; }

  /// The canonical ASCII key text for one table build — the exact recipe
  /// is normative in docs/table-format.md.  Equal inputs give equal text;
  /// any change to the technology stack, structure class, grid or solver
  /// options changes it.
  static std::string key_text(const geom::Technology& tech, int layer,
                              geom::PlaneConfig planes, const TableGrid& grid,
                              const solver::SolveOptions& opt);

  /// FNV-1a 64-bit hash of the key text; entry files are named by its
  /// lower-case hex form.
  static std::uint64_t key_hash(const std::string& key_text);

  /// The 16-hex-digit entry id (lower-case hex of key_hash) — the stable
  /// single-token name for one table build, used as the entry file stem
  /// and as the batch journal's completion id.
  static std::string key_id(const std::string& key_text);

  /// Entry lookup.  Returns the cached tables on a hit; std::nullopt when
  /// absent (or when a hash collision is detected against the stored key
  /// sidecar).  A present-but-corrupt entry is handled per the recovery
  /// policy: kRecover quarantines it (entry and sidecar renamed to
  /// *.quarantine, preserved for post-mortem), emits a `cache` warning and
  /// reports a miss so the caller re-characterises; kStrict throws a
  /// categorized `cache` error.
  std::optional<InductanceTables> load(const std::string& key_text);

  /// Stores (or overwrites) the entry for `key_text` atomically.  Safe to
  /// call concurrently from several threads or processes, even for the
  /// same key: each writer stages into a uniquely-named temp file and
  /// renames it into place, so readers and racing writers never observe a
  /// torn entry (the last complete write wins).
  ///
  /// Transient write failures (EINTR-class short writes, a momentarily
  /// unwritable directory) are retried with a small bounded backoff
  /// (stats().write_retries counts them).  A store still failing after the
  /// budget degrades per the recovery policy: kRecover emits a `cache`
  /// warning and returns without storing — the table is simply
  /// re-characterised next run (stats().stores_dropped) — while kStrict
  /// rethrows the categorized `cache` error.  Returns true when the entry
  /// is durably in place (batch journaling records completion only then).
  bool store(const std::string& key_text, const InductanceTables& tables);

  struct Entry {
    std::string id;         ///< 16-hex-digit key hash (the file stem)
    std::uint64_t bytes = 0;
    int layer = 0;
    geom::PlaneConfig planes = geom::PlaneConfig::kNone;
    double frequency = 0.0;
  };

  /// All well-formed entries currently in the directory.
  std::vector<Entry> list() const;

  /// Removes every cache entry (and key sidecar), plus any quarantined
  /// files; returns live entries removed.
  std::size_t purge();

  /// Value snapshot of the counters.  The counters themselves are atomics
  /// so load()/store() may race freely across threads; the snapshot is not
  /// a consistent cut, only a set of individually-coherent totals.
  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_.load(std::memory_order_relaxed);
    s.write_retries = write_retries_.load(std::memory_order_relaxed);
    s.stores_dropped = stores_dropped_.load(std::memory_order_relaxed);
    s.quarantined_at_startup =
        quarantined_at_startup_.load(std::memory_order_relaxed);
    s.tmp_swept = tmp_swept_.load(std::memory_order_relaxed);
    s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::string entry_path(std::uint64_t hash) const;
  std::string sidecar_path(std::uint64_t hash) const;
  void quarantine(std::uint64_t hash, const std::string& reason);
  void atomic_write(const std::string& path, const std::string& content);
  void startup_sweep();

  std::string dir_;
  CacheRecoveryPolicy policy_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> write_retries_{0};
  std::atomic<std::size_t> stores_dropped_{0};
  std::atomic<std::size_t> quarantined_at_startup_{0};
  std::atomic<std::size_t> tmp_swept_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

/// Cache-first table build: returns the cached tables when the key hits
/// (performing zero PEEC solves), otherwise builds via build_tables() and
/// stores the result before returning it.  `threads` follows the
/// build_tables() convention (1 = serial, 0 = global pool, N = ephemeral
/// pool); on a cache hit `stats` reports zero solves and zero wall time
/// for the build itself.
InductanceTables build_tables_cached(const geom::Technology& tech, int layer,
                                     geom::PlaneConfig planes,
                                     const TableGrid& grid,
                                     const solver::SolveOptions& opt,
                                     TableCache& cache, int threads = 1,
                                     BuildStats* stats = nullptr);

}  // namespace rlcx::core
