// Per-segment RLC extraction (paper Section V).
//
// "Basically we extract the resistance, capacitance, and inductance
// respectively for each segment ... given the geometry parameters via the
// pre-characterised capacitance and inductance table look-up ... Resistance
// is calculated analytically."
#pragma once

#include <vector>

#include "cap/cap_tables.h"
#include "cap/extractor.h"
#include "core/inductance_model.h"
#include "geom/block.h"
#include "numeric/matrix.h"

namespace rlcx::core {

/// Lumped RLC of one wire segment (whole-segment values, not per unit
/// length).
struct SegmentRlc {
  double length = 0.0;
  TableKind kind = TableKind::kPartial;

  /// Analytic series resistance per trace [ohm] (all block traces).
  std::vector<double> resistance;

  /// Inductance matrix [H].  Loop mode: over the signal traces only (the
  /// plane return is folded in).  Partial mode: over all traces — ground
  /// shields get explicit branches and the simulator finds the return path.
  RealMatrix inductance;
  /// Block trace indices the inductance matrix rows refer to.
  std::vector<std::size_t> l_traces;

  /// Whole-segment ground capacitance per trace [F].
  std::vector<double> cap_ground;
  /// Whole-segment coupling capacitance between adjacent traces [F]
  /// (entry i couples block traces i and i+1).
  std::vector<double> cap_coupling;
};

struct ExtractOptions {
  /// When true and the provider characterised resistance tables, use the
  /// frequency-dependent (skin/proximity) series resistance instead of the
  /// paper's analytic DC value.
  bool ac_resistance = false;

  /// Pre-characterised capacitance tables (paper ref. [4] flow).  When set
  /// and matching the block's (layer, plane-config), capacitances come from
  /// the field-solver tables instead of the closed forms.  The tables are
  /// characterised with same-width neighbours, so mixed-width blocks are
  /// approximated with each trace's own width and its nearest spacing.
  const cap::CapTables* cap_tables = nullptr;
};

/// Extract a segment: R analytically (or from the provider's AC-resistance
/// table), C from the closed-form models, L from the provider (tables or
/// direct solver).  The provider must describe the block's
/// (layer, plane-config) structure class.
SegmentRlc extract_segment_rlc(const geom::Block& block,
                               const InductanceProvider& inductance,
                               const ExtractOptions& options = {});

}  // namespace rlcx::core
