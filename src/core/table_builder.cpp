#include "core/table_builder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "geom/builders.h"
#include "hmat/stats.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "peec/kernel_batch.h"
#include "rt/parallel.h"
#include "run/control.h"
#include "solver/block_solver.h"

namespace rlcx::core {

using units::um;

TableGrid default_clock_grid() {
  TableGrid g;
  g.widths = geomspace(um(1), um(20), 5);
  g.spacings = geomspace(um(0.5), um(10), 5);
  g.lengths = geomspace(um(100), um(6000), 5);
  return g;
}

namespace {

std::atomic<std::size_t> g_solve_count{0};

struct PairSolve {
  double self1;
  double mutual;
  double r1;  ///< AC series resistance of the first trace
};

/// One 2-trace solve.
PairSolve solve_pair(const geom::Technology& tech, int layer,
                     geom::PlaneConfig planes, double w1, double w2,
                     double s, double l, const solver::SolveOptions& opt) {
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kSignal, w1, -0.5 * (s + w1), "a"},
      {geom::TraceRole::kSignal, w2, 0.5 * (s + w2), "b"},
  };
  const geom::Block blk(&tech, layer, l, std::move(traces), planes);
  if (table_kind_for(planes) == TableKind::kPartial) {
    const solver::PartialResult r = solver::extract_partial(blk, opt);
    return {r.inductance(0, 0), r.inductance(0, 1), r.resistance[0]};
  }
  const solver::LoopResult r = solver::extract_loop(blk, opt);
  return {r.inductance(0, 0), r.inductance(0, 1), r.resistance(0, 0)};
}

}  // namespace

std::size_t estimate_grid_bytes(const TableGrid& grid) {
  const std::size_t nw = grid.widths.size();
  const std::size_t ns = grid.spacings.size();
  const std::size_t nl = grid.lengths.size();
  const std::size_t values = nw * nw * ns * nl + 2 * nw * nl;
  return std::max<std::size_t>(2 * values * sizeof(double), 1024);
}

std::size_t table_build_solve_count() {
  return g_solve_count.load(std::memory_order_relaxed);
}

void reset_table_build_solve_count() {
  g_solve_count.store(0, std::memory_order_relaxed);
}

GridSolvePlan::GridSolvePlan(const geom::Technology& tech, int layer,
                             geom::PlaneConfig planes, TableGrid grid,
                             solver::SolveOptions opt)
    : tech_(&tech), layer_(layer), planes_(planes), grid_(std::move(grid)),
      opt_(std::move(opt)) {
  if (grid_.widths.size() < 2 || grid_.spacings.size() < 2 ||
      grid_.lengths.size() < 2)
    throw std::invalid_argument("build_tables: each axis needs >= 2 points");
  const std::size_t nw = grid_.widths.size();
  const std::size_t ns = grid_.spacings.size();
  const std::size_t nl = grid_.lengths.size();
  n_points_ = nw * nw * ns * nl;
  // An over-budget grid fails here, before the first field solve, with a
  // typed ResourceExhaustedError (docs/robustness.md "Resource
  // governance").
  grid_reservation_ = res::Reservation("table-grid", estimate_grid_bytes(grid_));
  // Mutual table, last axis fastest: (w1, w2, s, l).
  mutual_vals_.resize(n_points_);
  // The self values (and the AC series resistance) fall out of the same
  // solves (diagonal of the pair), taken at a reference spacing;
  // Foundation 1 says the result must not depend on the companion trace,
  // and the Foundations test suite checks that it doesn't.
  self_vals_.resize(nw * nl);
  r_vals_.resize(nw * nl);
}

void GridSolvePlan::solve_point(std::size_t index) {
  // Point boundary of the characterisation fan-out: a point either solves
  // completely (all its table slots written) or not at all, so a cancelled
  // campaign never leaves a half-written grid point behind.  The rt chunk
  // checkpoints cover the pooled path; this one covers direct callers
  // (build_tables' fully-serial loop, external plan drivers).
  run::checkpoint("table-build");
  const std::size_t nw = grid_.widths.size();
  const std::size_t ns = grid_.spacings.size();
  const std::size_t nl = grid_.lengths.size();
  // Decode the flat (w1, w2, s, l) point, last axis fastest.
  const std::size_t m = index % nl;
  const std::size_t k = (index / nl) % ns;
  const std::size_t j = (index / (nl * ns)) % nw;
  const std::size_t i = index / (nl * ns * nw);

  const PairSolve ps =
      solve_pair(*tech_, layer_, planes_, grid_.widths[i], grid_.widths[j],
                 grid_.spacings[k], grid_.lengths[m], opt_);
  solved_.fetch_add(1, std::memory_order_relaxed);
  g_solve_count.fetch_add(1, std::memory_order_relaxed);
  mutual_vals_[index] = ps.mutual;
  // Harvest self(w_i, l_m) from the widest-spaced solve, where the
  // companion perturbs the loop-mode result least.
  if (j == 0 && k + 1 == ns) {
    self_vals_[i * nl + m] = ps.self1;
    r_vals_[i * nl + m] = ps.r1;
  }
}

InductanceTables GridSolvePlan::finish() {
  InductanceTables out;
  out.layer = layer_;
  out.planes = planes_;
  out.frequency = opt_.frequency;
  out.self = NdTable({"width", "length"}, {grid_.widths, grid_.lengths},
                     std::move(self_vals_));
  out.mutual = NdTable(
      {"w1", "w2", "spacing", "length"},
      {grid_.widths, grid_.widths, grid_.spacings, grid_.lengths},
      std::move(mutual_vals_));
  out.series_r = NdTable({"width", "length"}, {grid_.widths, grid_.lengths},
                         std::move(r_vals_));
  return out;
}

InductanceTables build_tables(const geom::Technology& tech, int layer,
                              geom::PlaneConfig planes, const TableGrid& grid,
                              const solver::SolveOptions& opt, int threads,
                              BuildStats* stats) {
  if (threads < 0) throw std::invalid_argument("build_tables: threads");

  GridSolvePlan plan(tech, layer, planes, grid, opt);
  const peec::FillStats fills0 = peec::fill_stats_total();
  const peec::BatchStats batches0 = peec::batch_stats_total();
  const hmat::SolveStats solves0 = hmat::solve_stats_total();
  const res::Stats res0 = res::Budget::global().stats();
  const auto t0 = std::chrono::steady_clock::now();

  int threads_used = 1;
  if (threads == 1 || rt::in_parallel_region()) {
    // Fully serial — including inner layers (matrix fills, RHS solves),
    // which would otherwise recruit the global pool.
    rt::SerialRegion serial;
    for (std::size_t p = 0; p < plan.points(); ++p) plan.solve_point(p);
  } else {
    // threads == 0: the process-global pool; else a pool of exactly the
    // requested width (ephemeral, like the thread fan-out it replaces).
    std::optional<rt::Pool> local;
    rt::Pool* pool = nullptr;
    if (threads == 0) {
      pool = &rt::Pool::global();
    } else {
      local.emplace(threads);
      pool = &*local;
    }
    threads_used = pool->size();
    rt::ParallelOptions popt;
    popt.grain = 1;  // one 2-trace field solve per task: comfortably coarse
    popt.pool = pool;
    rt::parallel_for(0, plan.points(),
                     [&plan](std::size_t lo, std::size_t hi) {
                       for (std::size_t p = lo; p < hi; ++p)
                         plan.solve_point(p);
                     },
                     popt);
  }

  if (stats != nullptr) {
    stats->solves = plan.solves();
    stats->grid_points = plan.points();
    stats->threads = threads_used;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const peec::FillStats fills1 = peec::fill_stats_total();
    stats->pair_lookups = fills1.pair_lookups - fills0.pair_lookups;
    stats->kernel_evals = fills1.kernel_evals - fills0.kernel_evals;
    stats->memo_hits = fills1.memo_hits - fills0.memo_hits;
    const peec::BatchStats batches1 = peec::batch_stats_total();
    stats->batch_runs = batches1.batch_runs - batches0.batch_runs;
    stats->batch_volume_terms =
        batches1.volume_terms - batches0.volume_terms;
    stats->batch_filament_terms =
        batches1.filament_terms - batches0.filament_terms;
    stats->batch_eval_nanos = batches1.eval_nanos - batches0.eval_nanos;
    const hmat::SolveStats solves1 = hmat::solve_stats_total();
    stats->dense_solves = solves1.dense_solves - solves0.dense_solves;
    stats->hmat_solves = solves1.hmat_solves - solves0.hmat_solves;
    stats->gmres_iterations =
        solves1.gmres_iterations - solves0.gmres_iterations;
    stats->gmres_fallbacks = solves1.gmres_fallbacks - solves0.gmres_fallbacks;
    stats->hmat_stored_entries =
        solves1.stored_entries - solves0.stored_entries;
    stats->hmat_full_entries = solves1.full_entries - solves0.full_entries;
    const res::Stats res1 = res::Budget::global().stats();
    stats->mem_limit_bytes = res1.limit_bytes;
    stats->mem_peak_bytes = res1.peak_bytes;
    stats->mem_degradations = res1.degradations - res0.degradations;
    stats->mem_refusals = res1.refusals - res0.refusals;
  }
  return plan.finish();
}

}  // namespace rlcx::core
