#include "core/table_builder.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"

namespace rlcx::core {

using units::um;

TableGrid default_clock_grid() {
  TableGrid g;
  g.widths = geomspace(um(1), um(20), 5);
  g.spacings = geomspace(um(0.5), um(10), 5);
  g.lengths = geomspace(um(100), um(6000), 5);
  return g;
}

namespace {

std::atomic<std::size_t> g_solve_count{0};

struct PairSolve {
  double self1;
  double mutual;
  double r1;  ///< AC series resistance of the first trace
};

/// One 2-trace solve.
PairSolve solve_pair(const geom::Technology& tech, int layer,
                     geom::PlaneConfig planes, double w1, double w2,
                     double s, double l, const solver::SolveOptions& opt) {
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kSignal, w1, -0.5 * (s + w1), "a"},
      {geom::TraceRole::kSignal, w2, 0.5 * (s + w2), "b"},
  };
  const geom::Block blk(&tech, layer, l, std::move(traces), planes);
  g_solve_count.fetch_add(1, std::memory_order_relaxed);
  if (table_kind_for(planes) == TableKind::kPartial) {
    const solver::PartialResult r = solver::extract_partial(blk, opt);
    return {r.inductance(0, 0), r.inductance(0, 1), r.resistance[0]};
  }
  const solver::LoopResult r = solver::extract_loop(blk, opt);
  return {r.inductance(0, 0), r.inductance(0, 1), r.resistance(0, 0)};
}

}  // namespace

std::size_t table_build_solve_count() {
  return g_solve_count.load(std::memory_order_relaxed);
}

void reset_table_build_solve_count() {
  g_solve_count.store(0, std::memory_order_relaxed);
}

InductanceTables build_tables(const geom::Technology& tech, int layer,
                              geom::PlaneConfig planes, const TableGrid& grid,
                              const solver::SolveOptions& opt, int threads) {
  if (grid.widths.size() < 2 || grid.spacings.size() < 2 ||
      grid.lengths.size() < 2)
    throw std::invalid_argument("build_tables: each axis needs >= 2 points");
  if (threads < 0) throw std::invalid_argument("build_tables: threads");
  if (threads == 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;

  InductanceTables out;
  out.layer = layer;
  out.planes = planes;
  out.frequency = opt.frequency;

  const std::size_t nw = grid.widths.size();
  const std::size_t ns = grid.spacings.size();
  const std::size_t nl = grid.lengths.size();

  // Mutual table, last axis fastest: (w1, w2, s, l).
  std::vector<double> mutual_vals(nw * nw * ns * nl);
  // The self values (and the AC series resistance) fall out of the same
  // solves (diagonal of the pair), taken at a reference spacing;
  // Foundation 1 says the result must not depend on the companion trace,
  // and the Foundations test suite checks that it doesn't.
  std::vector<double> self_vals(nw * nl);
  std::vector<double> r_vals(nw * nl);

  // Every grid point is an independent solve; shard the outer width axis
  // across threads (each thread writes disjoint slices of the tables).
  auto worker = [&](std::size_t i_begin, std::size_t i_step) {
    for (std::size_t i = i_begin; i < nw; i += i_step) {
      for (std::size_t j = 0; j < nw; ++j) {
        for (std::size_t k = 0; k < ns; ++k) {
          for (std::size_t m = 0; m < nl; ++m) {
            const PairSolve ps = solve_pair(
                tech, layer, planes, grid.widths[i], grid.widths[j],
                grid.spacings[k], grid.lengths[m], opt);
            mutual_vals[((i * nw + j) * ns + k) * nl + m] = ps.mutual;
            // Harvest self(w_i, l_m) from the widest-spaced solve, where
            // the companion perturbs the loop-mode result least.
            if (j == 0 && k + 1 == ns) {
              self_vals[i * nl + m] = ps.self1;
              r_vals[i * nl + m] = ps.r1;
            }
          }
        }
      }
    }
  };
  if (threads == 1) {
    worker(0, 1);
  } else {
    std::vector<std::thread> pool;
    const auto nthreads = std::min<std::size_t>(
        static_cast<std::size_t>(threads), nw);
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t)
      pool.emplace_back(worker, t, nthreads);
    for (std::thread& t : pool) t.join();
  }

  out.self = NdTable({"width", "length"}, {grid.widths, grid.lengths},
                     std::move(self_vals));
  out.mutual = NdTable(
      {"w1", "w2", "spacing", "length"},
      {grid.widths, grid.widths, grid.spacings, grid.lengths},
      std::move(mutual_vals));
  out.series_r = NdTable({"width", "length"}, {grid.widths, grid.lengths},
                         std::move(r_vals));
  return out;
}

}  // namespace rlcx::core
