// N-dimensional inductance table with spline lookup and text persistence.
//
// Section III of the paper: "The self inductance table has two dimensions:
// width and length.  The mutual inductance table has [four] dimensions:
// widths for two traces and the spacing between them [and length] ...
// A bi-cubic spline algorithm will be used to interpolate/extrapolate
// inductance that is not given in the table."
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/spline.h"

namespace rlcx::core {

namespace detail {

/// Atomic statistic counter that stays copyable/movable so the tables that
/// carry it keep value semantics.  Copies snapshot the source (relaxed);
/// the counter is bookkeeping, never synchronisation.
template <typename T>
struct RelaxedAtomic {
  std::atomic<T> v{};
  RelaxedAtomic() = default;
  explicit RelaxedAtomic(T init) noexcept : v(init) {}
  RelaxedAtomic(const RelaxedAtomic& o) noexcept
      : v(o.v.load(std::memory_order_relaxed)) {}
  RelaxedAtomic& operator=(const RelaxedAtomic& o) noexcept {
    v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
};

}  // namespace detail

/// What a table does when a lookup falls outside its gridded region.
/// Spline extrapolation degrades fast away from the grid, so every policy
/// makes out-of-range queries visible; they differ in how hard they push.
enum class ExtrapolationPolicy {
  kWarn,   ///< extrapolate, emit one `numeric` warning per table (default)
  kClamp,  ///< clamp the query to the grid edge (conservative, monotone)
  kThrow,  ///< refuse: throw a `numeric` error naming table/axis/value/range
};

const char* to_string(ExtrapolationPolicy p);

class NdTable {
 public:
  NdTable() = default;

  /// `axes[d]` is the strictly increasing grid of axis `d`; `values` is
  /// row-major with the last axis fastest.
  NdTable(std::vector<std::string> axis_names,
          std::vector<std::vector<double>> axes, std::vector<double> values);

  std::size_t dims() const { return axes_.size(); }
  const std::vector<std::string>& axis_names() const { return names_; }
  const std::vector<std::vector<double>>& axes() const { return axes_; }
  const std::vector<double>& values() const { return values_; }

  /// Spline-interpolated lookup (tensor-product natural cubic — bicubic in
  /// two dimensions).  Queries outside the grid bump extrapolation_count()
  /// and are handled per the table's ExtrapolationPolicy: extrapolate with
  /// a one-time warning (default), clamp to the grid edge, or throw.
  double lookup(const std::vector<double>& q) const;

  /// Label used in extrapolation warnings/errors (e.g. "self-L"), so a
  /// diagnostic names which of a model's tables was under-covered.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ExtrapolationPolicy extrapolation_policy() const { return policy_; }
  void set_extrapolation_policy(ExtrapolationPolicy p) { policy_ = p; }

  /// Whether the query lies inside the gridded region on every axis.
  bool in_range(const std::vector<double>& q) const;

  /// How many lookups so far fell outside the grid (per-table statistic;
  /// a healthy characterisation grid keeps this at zero).  The counter is
  /// atomic: lookup() is safe to call concurrently from pool workers.
  std::size_t extrapolation_count() const {
    return extrapolations_.v.load(std::memory_order_relaxed);
  }
  void reset_extrapolation_count() {
    extrapolations_.v.store(0, std::memory_order_relaxed);
  }

  /// Grid value by multi-index (mostly for tests).
  double at(const std::vector<std::size_t>& idx) const;

  /// Approximate resident bytes of this table: the axis grids, the value
  /// array and the spline's coefficient planes (about one more
  /// values-sized array).  The warm store's byte-budgeted LRU and the
  /// memory budget's accounting use this as the entry cost.
  std::size_t resident_bytes() const {
    std::size_t axis_points = 0;
    for (const auto& a : axes_) axis_points += a.size();
    return (axis_points + 2 * values_.size()) * sizeof(double);
  }

  /// Plain-text round-trippable serialisation.
  void save(std::ostream& os) const;
  static NdTable load(std::istream& is);

  /// Compact binary serialisation ("RLXT" magic + version header, raw
  /// little-endian IEEE-754 doubles).  Bit-exact round trip, ~3x smaller
  /// and much faster to parse than the text form; the normative layout is
  /// docs/table-format.md.  Loading rejects bad magic, unsupported
  /// versions, foreign byte order and non-finite entries.
  void save_binary(std::ostream& os) const;
  static NdTable load_binary(std::istream& is);

  void save_file(const std::string& path) const;
  void save_file_binary(const std::string& path) const;
  /// Loads either format: sniffs the magic bytes and dispatches.
  static NdTable load_file(const std::string& path);

 private:
  std::string name_ = "table";
  std::vector<std::string> names_;
  std::vector<std::vector<double>> axes_;
  std::vector<double> values_;
  TensorSpline spline_;
  ExtrapolationPolicy policy_ = ExtrapolationPolicy::kWarn;
  mutable detail::RelaxedAtomic<std::size_t> extrapolations_;
  mutable detail::RelaxedAtomic<bool> extrapolation_warned_;
};

}  // namespace rlcx::core
