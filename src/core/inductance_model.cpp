#include "core/inductance_model.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "geom/builders.h"
#include "solver/block_solver.h"

namespace rlcx::core {

TableKind table_kind_for(geom::PlaneConfig planes) {
  return planes == geom::PlaneConfig::kNone ? TableKind::kPartial
                                            : TableKind::kLoop;
}

void InductanceTables::save(std::ostream& os) const {
  os << "rlcx-tables 1 " << layer << " " << static_cast<int>(planes) << " "
     << frequency << "\n";
  self.save(os);
  mutual.save(os);
  series_r.save(os);
}

InductanceTables InductanceTables::load(std::istream& is) {
  std::string magic;
  int version = 0;
  InductanceTables t;
  int planes_int = 0;
  is >> magic >> version >> t.layer >> planes_int >> t.frequency;
  if (!is || magic != "rlcx-tables" || version != 1)
    throw std::runtime_error("InductanceTables: bad header");
  t.planes = static_cast<geom::PlaneConfig>(planes_int);
  t.self = NdTable::load(is);
  t.mutual = NdTable::load(is);
  t.series_r = NdTable::load(is);
  return t;
}

void InductanceTables::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("InductanceTables: cannot open " + path);
  save(os);
}

InductanceTables InductanceTables::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("InductanceTables: cannot open " + path);
  return load(is);
}

TableInductanceModel::TableInductanceModel(InductanceTables tables)
    : tables_(std::move(tables)) {
  if (tables_.self.dims() != 2)
    throw std::invalid_argument("self table must be 2-D (width, length)");
  if (tables_.mutual.dims() != 4)
    throw std::invalid_argument(
        "mutual table must be 4-D (w1, w2, spacing, length)");
}

double TableInductanceModel::self(double width, double length) const {
  return tables_.self.lookup({width, length});
}

double TableInductanceModel::mutual(double w1, double w2, double spacing,
                                    double length) const {
  // Mutual inductance is symmetric in the pair; average the two orders so
  // lookup noise never breaks the symmetry callers rely on.
  const double a = tables_.mutual.lookup({w1, w2, spacing, length});
  const double b = tables_.mutual.lookup({w2, w1, spacing, length});
  return 0.5 * (a + b);
}

double TableInductanceModel::series_resistance(double width,
                                               double length) const {
  if (tables_.series_r.dims() != 2) return -1.0;  // table not characterised
  return tables_.series_r.lookup({width, length});
}

DirectInductanceModel::DirectInductanceModel(const geom::Technology* tech,
                                             int layer,
                                             geom::PlaneConfig planes,
                                             solver::SolveOptions options)
    : tech_(tech), layer_(layer), planes_(planes),
      options_(std::move(options)) {
  if (tech_ == nullptr)
    throw std::invalid_argument("DirectInductanceModel: technology");
}

double DirectInductanceModel::self(double width, double length) const {
  const geom::Block blk =
      geom::single_trace(*tech_, layer_, length, width, planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).inductance(0, 0);
  return solver::extract_loop(blk, options_).inductance(0, 0);
}

double DirectInductanceModel::series_resistance(double width,
                                                double length) const {
  const geom::Block blk =
      geom::single_trace(*tech_, layer_, length, width, planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).resistance[0];
  return solver::extract_loop(blk, options_).resistance(0, 0);
}

double DirectInductanceModel::mutual(double w1, double w2, double spacing,
                                     double length) const {
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kSignal, w1, -0.5 * (spacing + w1), "a"},
      {geom::TraceRole::kSignal, w2, 0.5 * (spacing + w2), "b"},
  };
  const geom::Block blk(tech_, layer_, length, std::move(traces), planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).inductance(0, 1);
  return solver::extract_loop(blk, options_).inductance(0, 1);
}

void InductanceLibrary::add(
    int layer, geom::PlaneConfig planes,
    std::shared_ptr<const InductanceProvider> provider) {
  if (!provider) throw std::invalid_argument("InductanceLibrary: provider");
  providers_[{layer, static_cast<int>(planes)}] = std::move(provider);
}

bool InductanceLibrary::has(int layer, geom::PlaneConfig planes) const {
  return providers_.count({layer, static_cast<int>(planes)}) != 0;
}

const InductanceProvider& InductanceLibrary::provider(
    int layer, geom::PlaneConfig planes) const {
  const auto it = providers_.find({layer, static_cast<int>(planes)});
  if (it == providers_.end())
    throw std::out_of_range("InductanceLibrary: no provider for structure");
  return *it->second;
}

}  // namespace rlcx::core
