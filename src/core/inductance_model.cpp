#include "core/inductance_model.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/binary_io.h"
#include "diag/error.h"
#include "geom/builders.h"
#include "solver/block_solver.h"

namespace rlcx::core {

namespace {

constexpr char kBundleMagic[4] = {'R', 'L', 'X', 'B'};
constexpr std::uint32_t kBundleVersion = 1;

/// Load one of the bundle's three tables, rewriting any failure so the
/// diagnostic names WHICH table is bad ("mutual-L") — the acceptance test
/// for a NaN-poisoned table keys on this.  The category is preserved.
NdTable load_component(std::istream& is, const char* which, bool binary) {
  try {
    NdTable t = binary ? NdTable::load_binary(is) : NdTable::load(is);
    t.set_name(which);
    return t;
  } catch (const diag::Error& e) {
    const std::string msg =
        "table '" + std::string(which) + "': " + e.message();
    if (e.category() == diag::Category::kNumeric)
      throw diag::NumericError(e.stage(), msg);
    throw diag::IoError(e.stage(), msg);
  } catch (const std::exception& e) {
    throw diag::IoError(
        "tables", "table '" + std::string(which) + "': " + e.what());
  }
}

}  // namespace

TableKind table_kind_for(geom::PlaneConfig planes) {
  return planes == geom::PlaneConfig::kNone ? TableKind::kPartial
                                            : TableKind::kLoop;
}

void InductanceTables::save(std::ostream& os) const {
  os << "rlcx-tables 1 " << layer << " " << static_cast<int>(planes) << " "
     << frequency << "\n";
  self.save(os);
  mutual.save(os);
  series_r.save(os);
}

InductanceTables InductanceTables::load(std::istream& is) {
  std::string magic;
  int version = 0;
  InductanceTables t;
  int planes_int = 0;
  is >> magic >> version >> t.layer >> planes_int >> t.frequency;
  if (!is || magic != "rlcx-tables" || version != 1)
    throw std::runtime_error("InductanceTables: bad header");
  t.planes = static_cast<geom::PlaneConfig>(planes_int);
  t.self = load_component(is, "self-L", false);
  t.mutual = load_component(is, "mutual-L", false);
  t.series_r = load_component(is, "series-R", false);
  return t;
}

void InductanceTables::save_binary(std::ostream& os) const {
  using namespace detail;
  write_header(os, kBundleMagic, kBundleVersion);
  put_i32(os, layer);
  put_i32(os, static_cast<std::int32_t>(planes));
  put_f64(os, frequency);
  self.save_binary(os);
  mutual.save_binary(os);
  series_r.save_binary(os);
}

InductanceTables InductanceTables::load_binary(std::istream& is) {
  using namespace detail;
  check_header(is, kBundleMagic, kBundleVersion, "InductanceTables");
  InductanceTables t;
  t.layer = get_i32(is, "layer");
  const std::int32_t planes_int = get_i32(is, "planes");
  if (planes_int < 0 ||
      planes_int > static_cast<int>(geom::PlaneConfig::kBothSides))
    throw std::runtime_error("InductanceTables: bad plane config");
  t.planes = static_cast<geom::PlaneConfig>(planes_int);
  t.frequency = get_f64(is, "frequency");
  t.self = load_component(is, "self-L", true);
  t.mutual = load_component(is, "mutual-L", true);
  t.series_r = load_component(is, "series-R", true);
  return t;
}

void InductanceTables::name_tables() {
  self.set_name("self-L");
  mutual.set_name("mutual-L");
  series_r.set_name("series-R");
}

void InductanceTables::set_extrapolation_policy(ExtrapolationPolicy p) {
  self.set_extrapolation_policy(p);
  mutual.set_extrapolation_policy(p);
  series_r.set_extrapolation_policy(p);
}

void InductanceTables::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("InductanceTables: cannot open " + path);
  save(os);
}

void InductanceTables::save_file_binary(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("InductanceTables: cannot open " + path);
  save_binary(os);
}

InductanceTables InductanceTables::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("InductanceTables: cannot open " + path);
  char magic[4] = {};
  is.read(magic, 4);
  is.clear();
  is.seekg(0);
  if (is.gcount() == 4 && std::memcmp(magic, kBundleMagic, 4) == 0)
    return load_binary(is);
  return load(is);
}

TableInductanceModel::TableInductanceModel(InductanceTables tables)
    : tables_(std::move(tables)) {
  if (tables_.self.dims() != 2)
    throw std::invalid_argument("self table must be 2-D (width, length)");
  if (tables_.mutual.dims() != 4)
    throw std::invalid_argument(
        "mutual table must be 4-D (w1, w2, spacing, length)");
  tables_.name_tables();
}

void TableInductanceModel::set_extrapolation_policy(ExtrapolationPolicy p) {
  tables_.set_extrapolation_policy(p);
}

double TableInductanceModel::self(double width, double length) const {
  return tables_.self.lookup({width, length});
}

double TableInductanceModel::mutual(double w1, double w2, double spacing,
                                    double length) const {
  // Mutual inductance is symmetric in the pair; average the two orders so
  // lookup noise never breaks the symmetry callers rely on.
  const double a = tables_.mutual.lookup({w1, w2, spacing, length});
  const double b = tables_.mutual.lookup({w2, w1, spacing, length});
  return 0.5 * (a + b);
}

double TableInductanceModel::series_resistance(double width,
                                               double length) const {
  if (tables_.series_r.dims() != 2) return -1.0;  // table not characterised
  return tables_.series_r.lookup({width, length});
}

DirectInductanceModel::DirectInductanceModel(const geom::Technology* tech,
                                             int layer,
                                             geom::PlaneConfig planes,
                                             solver::SolveOptions options)
    : tech_(tech), layer_(layer), planes_(planes),
      options_(std::move(options)) {
  if (tech_ == nullptr)
    throw std::invalid_argument("DirectInductanceModel: technology");
}

double DirectInductanceModel::self(double width, double length) const {
  const geom::Block blk =
      geom::single_trace(*tech_, layer_, length, width, planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).inductance(0, 0);
  return solver::extract_loop(blk, options_).inductance(0, 0);
}

double DirectInductanceModel::series_resistance(double width,
                                                double length) const {
  const geom::Block blk =
      geom::single_trace(*tech_, layer_, length, width, planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).resistance[0];
  return solver::extract_loop(blk, options_).resistance(0, 0);
}

double DirectInductanceModel::mutual(double w1, double w2, double spacing,
                                     double length) const {
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kSignal, w1, -0.5 * (spacing + w1), "a"},
      {geom::TraceRole::kSignal, w2, 0.5 * (spacing + w2), "b"},
  };
  const geom::Block blk(tech_, layer_, length, std::move(traces), planes_);
  if (table_kind_for(planes_) == TableKind::kPartial)
    return solver::extract_partial(blk, options_).inductance(0, 1);
  return solver::extract_loop(blk, options_).inductance(0, 1);
}

void InductanceLibrary::add(
    int layer, geom::PlaneConfig planes,
    std::shared_ptr<const InductanceProvider> provider) {
  if (!provider) throw std::invalid_argument("InductanceLibrary: provider");
  providers_[{layer, static_cast<int>(planes)}] = std::move(provider);
}

void InductanceLibrary::add_tables(InductanceTables tables) {
  const int layer = tables.layer;
  const geom::PlaneConfig planes = tables.planes;
  add(layer, planes,
      std::make_shared<TableInductanceModel>(std::move(tables)));
}

bool InductanceLibrary::has(int layer, geom::PlaneConfig planes) const {
  return providers_.count({layer, static_cast<int>(planes)}) != 0;
}

const InductanceProvider& InductanceLibrary::provider(
    int layer, geom::PlaneConfig planes) const {
  const auto it = providers_.find({layer, static_cast<int>(planes)});
  if (it == providers_.end())
    throw std::out_of_range("InductanceLibrary: no provider for structure");
  return *it->second;
}

}  // namespace rlcx::core
