// Inductance lookup interfaces: the table-based model of the paper and a
// direct field-solver reference with the same API.
//
// A provider answers, for one (layer, plane-config) structure class:
//   self(w, l)            — self inductance of a trace
//   mutual(w1, w2, s, l)  — mutual inductance of a trace pair
// For bare coplanar structures these are *partial* inductances (PEEC; the
// circuit simulator finds the return path).  Over ground planes they are
// *loop* inductances with the plane merged into the far-end sink node —
// the paper's "Extension of Foundations".
#pragma once

#include <map>
#include <memory>

#include "core/table.h"
#include "geom/block.h"
#include "solver/options.h"

namespace rlcx::core {

class InductanceProvider {
 public:
  virtual ~InductanceProvider() = default;
  virtual double self(double width, double length) const = 0;
  virtual double mutual(double w1, double w2, double spacing,
                        double length) const = 0;

  /// Frequency-dependent (skin/proximity-aware) series resistance of a
  /// trace, if the provider can supply it; < 0 when unavailable, in which
  /// case callers fall back to the paper's analytic rho*l/(w*t).
  virtual double series_resistance(double /*width*/,
                                   double /*length*/) const {
    return -1.0;
  }
};

/// Table flavour: partial (no planes) vs loop (planes merged into sink).
enum class TableKind { kPartial, kLoop };

TableKind table_kind_for(geom::PlaneConfig planes);

/// The pre-characterised tables for one (layer, plane-config).
struct InductanceTables {
  int layer = 0;
  geom::PlaneConfig planes = geom::PlaneConfig::kNone;
  double frequency = 0.0;  ///< significant frequency the solver ran at
  NdTable self;            ///< axes: width, length
  NdTable mutual;          ///< axes: w1, w2, spacing, length
  NdTable series_r;        ///< axes: width, length — AC resistance at the
                           ///< table frequency (loop R over planes)

  /// Approximate resident bytes of the bundle — the currency of the warm
  /// store's byte-budgeted LRU and its memory-budget accounting.
  std::size_t resident_bytes() const {
    return self.resident_bytes() + mutual.resident_bytes() +
           series_r.resident_bytes();
  }

  /// Bundle (de)serialisation: header + the three tables.
  void save(std::ostream& os) const;
  static InductanceTables load(std::istream& is);

  /// Binary bundle ("RLXB" magic + version header wrapping three binary
  /// NdTables) — the table-cache on-disk entry format; layout in
  /// docs/table-format.md.  Round trips bit-exactly.
  void save_binary(std::ostream& os) const;
  static InductanceTables load_binary(std::istream& is);

  void save_file(const std::string& path) const;
  void save_file_binary(const std::string& path) const;
  /// Loads either format: sniffs the magic bytes and dispatches.
  static InductanceTables load_file(const std::string& path);

  /// Label the three tables ("self-L", "mutual-L", "series-R") so
  /// extrapolation and corruption diagnostics name which table misbehaved.
  /// Load paths and TableInductanceModel apply this automatically.
  void name_tables();

  /// Apply one extrapolation policy to all three tables.
  void set_extrapolation_policy(ExtrapolationPolicy p);
};

/// Paper Section III: table lookup with spline interpolation.
class TableInductanceModel final : public InductanceProvider {
 public:
  explicit TableInductanceModel(InductanceTables tables);

  double self(double width, double length) const override;
  double mutual(double w1, double w2, double spacing,
                double length) const override;
  double series_resistance(double width, double length) const override;

  const InductanceTables& tables() const { return tables_; }

  /// Per-model out-of-grid policy, applied to all three tables: warn once
  /// (default), clamp queries to the grid edge, or throw a `numeric` error
  /// naming the table and axis.
  void set_extrapolation_policy(ExtrapolationPolicy p);

 private:
  InductanceTables tables_;
};

/// Reference model: runs the field solver for every query (what the tables
/// replace).  Used to validate "no loss of accuracy" and in bench E8 to
/// measure the speedup.
class DirectInductanceModel final : public InductanceProvider {
 public:
  DirectInductanceModel(const geom::Technology* tech, int layer,
                        geom::PlaneConfig planes,
                        solver::SolveOptions options);

  double self(double width, double length) const override;
  double mutual(double w1, double w2, double spacing,
                double length) const override;
  double series_resistance(double width, double length) const override;

 private:
  const geom::Technology* tech_;
  int layer_;
  geom::PlaneConfig planes_;
  solver::SolveOptions options_;
};

/// Registry of providers keyed by (layer, plane-config); the clocktree
/// extractor pulls the right provider per segment.
class InductanceLibrary {
 public:
  void add(int layer, geom::PlaneConfig planes,
           std::shared_ptr<const InductanceProvider> provider);

  /// Registers pre-characterised (e.g. cache-loaded) tables under their own
  /// (layer, plane-config), wrapped in a TableInductanceModel.
  void add_tables(InductanceTables tables);
  const InductanceProvider& provider(int layer,
                                     geom::PlaneConfig planes) const;
  bool has(int layer, geom::PlaneConfig planes) const;

 private:
  std::map<std::pair<int, int>, std::shared_ptr<const InductanceProvider>>
      providers_;
};

}  // namespace rlcx::core
