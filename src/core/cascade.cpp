#include "core/cascade.h"

#include <stdexcept>

namespace rlcx::core {

double series_inductance(const std::vector<double>& l) {
  double sum = 0.0;
  for (double v : l) sum += v;
  return sum;
}

double parallel_inductance(const std::vector<double>& l) {
  if (l.empty()) throw std::invalid_argument("parallel_inductance: empty");
  double inv = 0.0;
  for (double v : l) {
    if (v <= 0.0)
      throw std::invalid_argument("parallel_inductance: non-positive L");
    inv += 1.0 / v;
  }
  return 1.0 / inv;
}

double cascade_tree(const CascadeNode& root) {
  if (root.loop_l < 0.0)
    throw std::invalid_argument("cascade_tree: negative loop L");
  if (root.children.empty()) return root.loop_l;
  std::vector<double> branch;
  branch.reserve(root.children.size());
  for (const CascadeNode& c : root.children) branch.push_back(cascade_tree(c));
  return root.loop_l + parallel_inductance(branch);
}

bool cascade_precondition(double signal_width, double ground_width_left,
                          double ground_width_right) {
  return ground_width_left >= signal_width &&
         ground_width_right >= signal_width;
}

}  // namespace rlcx::core
