// Linear cascading of loop inductances (paper Section IV).
//
// "If a signal wire is guarded by two ground wires of at least equal width
// ... then this kind of multi-conductor system may be linearly cascaded to
// determine the total effective loop inductance.  In other words, the total
// loop inductance is the serial or parallel combination of the loop
// inductances of the cascaded segments determined individually."
#pragma once

#include <vector>

namespace rlcx::core {

/// Series combination: sum.
double series_inductance(const std::vector<double>& l);

/// Parallel combination: 1 / sum(1/L).  Values must be positive.
double parallel_inductance(const std::vector<double>& l);

/// A segment in a cascaded interconnect tree.  Children hang off this
/// segment's far end; siblings are electrically parallel branches.
struct CascadeNode {
  double loop_l = 0.0;  ///< loop inductance of this segment alone [H]
  std::vector<CascadeNode> children;
};

/// Effective loop inductance seen at the root of the tree:
/// eff(node) = L_node + parallel(eff(children)); a leaf contributes just its
/// own loop L.  For Figure 6(a) this evaluates
/// L_ab + (L_bc + L_ce) || (L_bd + L_df).
double cascade_tree(const CascadeNode& root);

/// The paper's shielding precondition for cascading: ground wires at least
/// as wide as the signal wire on both sides.
bool cascade_precondition(double signal_width, double ground_width_left,
                          double ground_width_right);

}  // namespace rlcx::core
