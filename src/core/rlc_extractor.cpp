#include "core/rlc_extractor.h"

#include <algorithm>

#include "cap/models.h"

namespace rlcx::core {

SegmentRlc extract_segment_rlc(const geom::Block& block,
                               const InductanceProvider& inductance,
                               const ExtractOptions& options) {
  SegmentRlc seg;
  seg.length = block.length();
  seg.kind = table_kind_for(block.planes());

  const double rho = block.layer().rho;
  const double t = block.layer().thickness;
  const std::size_t n = block.size();

  for (std::size_t i = 0; i < n; ++i) {
    double r = -1.0;
    if (options.ac_resistance)
      r = inductance.series_resistance(block.trace(i).width, block.length());
    if (r < 0.0)
      r = cap::segment_resistance(block.trace(i).width, t, block.length(),
                                  rho);
    seg.resistance.push_back(r);
  }

  // Inductance rows: all traces in partial mode (PEEC netlist), signals
  // only in loop mode (returns are folded into the loop values).
  if (seg.kind == TableKind::kPartial) {
    seg.l_traces.resize(n);
    for (std::size_t i = 0; i < n; ++i) seg.l_traces[i] = i;
  } else {
    seg.l_traces = block.signal_indices();
  }
  const std::size_t nl = seg.l_traces.size();
  seg.inductance = RealMatrix(nl, nl);
  for (std::size_t a = 0; a < nl; ++a) {
    const geom::Trace& ta = block.trace(seg.l_traces[a]);
    seg.inductance(a, a) = inductance.self(ta.width, block.length());
    for (std::size_t b = a + 1; b < nl; ++b) {
      const geom::Trace& tb = block.trace(seg.l_traces[b]);
      const double m = inductance.mutual(
          ta.width, tb.width, block.spacing(seg.l_traces[a], seg.l_traces[b]),
          block.length());
      seg.inductance(a, b) = m;
      seg.inductance(b, a) = m;
    }
  }

  const bool use_tables = options.cap_tables != nullptr &&
                          !options.cap_tables->empty() &&
                          options.cap_tables->layer() ==
                              block.layer_index() &&
                          options.cap_tables->planes() == block.planes();
  if (use_tables) {
    const cap::CapTables& ct = *options.cap_tables;
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      if (i > 0) s = block.spacing(i - 1, i);
      if (i + 1 < n) {
        const double sr = block.spacing(i, i + 1);
        s = (s == 0.0) ? sr : std::min(s, sr);
      }
      if (s == 0.0) s = 10.0 * block.trace(i).width;  // isolated trace
      seg.cap_ground.push_back(ct.cg(block.trace(i).width, s) *
                               block.length());
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double w_avg =
          0.5 * (block.trace(i).width + block.trace(i + 1).width);
      seg.cap_coupling.push_back(
          ct.cc(w_avg, block.spacing(i, i + 1)) * block.length());
    }
  } else {
    const cap::CapResult c = cap::extract_cap(block);
    for (std::size_t i = 0; i < n; ++i)
      seg.cap_ground.push_back(c.cg[i] * block.length());
    for (std::size_t i = 0; i + 1 < n; ++i)
      seg.cap_coupling.push_back(c.cc[i] * block.length());
  }
  return seg;
}

}  // namespace rlcx::core
