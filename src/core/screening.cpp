#include "core/screening.h"

#include <cmath>
#include <stdexcept>

namespace rlcx::core {

ScreeningResult screen_inductance(const ScreeningInput& in) {
  if (in.resistance <= 0.0 || in.inductance <= 0.0 ||
      in.capacitance <= 0.0 || in.rise_time <= 0.0)
    throw std::invalid_argument("screen_inductance: all inputs must be > 0");

  ScreeningResult out;
  out.time_of_flight = std::sqrt(in.inductance * in.capacitance);
  out.line_impedance = std::sqrt(in.inductance / in.capacitance);
  out.edge_ratio = in.rise_time / (2.0 * out.time_of_flight);
  out.damping_ratio = in.resistance / (2.0 * out.line_impedance);
  out.edge_fast_enough = out.edge_ratio < 1.0;
  out.underdamped = out.damping_ratio < 1.0;
  out.inductance_significant = out.edge_fast_enough && out.underdamped;
  return out;
}

}  // namespace rlcx::core
