// Batched characterisation and extraction (the "pre-computation campaign"
// view of paper Section III).
//
// A real flow characterises many structure classes — several routing
// layers, with and without plane shielding — before extracting a tree.
// Running those builds one after another leaves the pool idle at every
// build's tail; characterize_batch() instead concatenates the grid points
// of every outstanding build into ONE flat work-stealing range, so the
// pool drains a single bag of 2-trace solves.  The cache is consulted
// first (warm classes cost zero solves) and duplicate jobs are folded by
// cache key before any work is scheduled.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rlc_extractor.h"
#include "core/table_builder.h"
#include "core/table_cache.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::core {

/// One characterisation job: a structure class plus its grid.  The solve
/// options (frequency, mesh, ...) are shared across the batch.
struct BatchJob {
  int layer = 6;
  geom::PlaneConfig planes = geom::PlaneConfig::kNone;
  TableGrid grid;
};

struct BatchOptions {
  TableCache* cache = nullptr;  ///< probe/store entries when set
  rt::Pool* pool = nullptr;     ///< nullptr = the process-global pool
};

struct BatchResult {
  /// tables[i] answers jobs[i]; duplicates and cache hits are copies.
  std::vector<InductanceTables> tables;
  /// stats[i] for jobs[i]: zero solves for a cache hit or a job folded
  /// into an earlier identical one; built jobs share the fan-out phase's
  /// wall_seconds (the phase is common, per-job attribution would lie).
  std::vector<BuildStats> stats;
  /// All result tables registered under their (layer, plane-config).
  InductanceLibrary library;
};

/// Characterises every job, deduplicated by cache key and fanned out as
/// one flat range of grid-point solves.  Bit-identical to building each
/// job serially with build_tables(), for any pool size.
BatchResult characterize_batch(const geom::Technology& tech,
                               const std::vector<BatchJob>& jobs,
                               const solver::SolveOptions& opt,
                               const BatchOptions& options = {});

/// Extracts every block's segment RLC concurrently (one task per block;
/// result[i] corresponds to blocks[i], bit-identical to the serial call).
/// The library must hold a provider for every block's structure class —
/// checked up front so a missing provider fails before any work runs.
std::vector<SegmentRlc> extract_segments_batch(
    const std::vector<geom::Block>& blocks, const InductanceLibrary& library,
    const ExtractOptions& options = {}, rt::Pool* pool = nullptr);

}  // namespace rlcx::core
