// Batched characterisation and extraction (the "pre-computation campaign"
// view of paper Section III).
//
// A real flow characterises many structure classes — several routing
// layers, with and without plane shielding — before extracting a tree.
// Running those builds one after another leaves the pool idle at every
// build's tail; characterize_batch() instead concatenates the grid points
// of every outstanding build into ONE flat work-stealing range, so the
// pool drains a single bag of 2-trace solves.  The cache is consulted
// first (warm classes cost zero solves) and duplicate jobs are folded by
// cache key before any work is scheduled.
//
// Interruptibility (docs/robustness.md): each job finalises — tables
// assembled, cache entry stored, journal record appended — the moment its
// *last* grid point solves, on whichever pool thread solved it, not at the
// end of the whole campaign.  A run cancelled via run::checkpoint (SIGINT,
// deadline) therefore keeps every completed job durably, and a relaunch
// with the same journal skips exactly the recorded keys: they are served
// from the cache with zero re-solves, bit-identical to an uninterrupted
// run.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rlc_extractor.h"
#include "core/table_builder.h"
#include "core/table_cache.h"

namespace rlcx::rt {
class Pool;
}
namespace rlcx::run {
class BatchJournal;
}

namespace rlcx::core {

/// One characterisation job: a structure class plus its grid.  The solve
/// options (frequency, mesh, ...) are shared across the batch.
struct BatchJob {
  int layer = 6;
  geom::PlaneConfig planes = geom::PlaneConfig::kNone;
  TableGrid grid;
};

struct BatchOptions {
  TableCache* cache = nullptr;  ///< probe/store entries when set
  rt::Pool* pool = nullptr;     ///< nullptr = the process-global pool
  /// Completion journal for checkpoint/resume (docs/robustness.md).  When
  /// set, every job whose tables are durably in the cache has its key id
  /// (TableCache::key_id) recorded the moment it completes, and jobs whose
  /// ids the journal already holds are served from the cache with zero
  /// solves on a relaunch.  A journaled id whose cache entry has gone
  /// missing degrades to a warning plus an ordinary rebuild.
  run::BatchJournal* journal = nullptr;
};

struct BatchResult {
  /// tables[i] answers jobs[i]; duplicates and cache hits are copies.
  std::vector<InductanceTables> tables;
  /// stats[i] for jobs[i]: zero solves for a cache hit or a job folded
  /// into an earlier identical one; built jobs share the fan-out phase's
  /// wall_seconds (the phase is common, per-job attribution would lie).
  std::vector<BuildStats> stats;
  /// All result tables registered under their (layer, plane-config).
  InductanceLibrary library;
  /// Canonical jobs skipped because the journal recorded them complete
  /// and the cache served their tables (a --resume relaunch's "no work
  /// re-done" evidence; cache hits without a journal entry don't count).
  std::size_t jobs_resumed = 0;
};

/// Characterises every job, deduplicated by cache key and fanned out as
/// one flat range of grid-point solves.  Bit-identical to building each
/// job serially with build_tables(), for any pool size.
BatchResult characterize_batch(const geom::Technology& tech,
                               const std::vector<BatchJob>& jobs,
                               const solver::SolveOptions& opt,
                               const BatchOptions& options = {});

/// Extracts every block's segment RLC concurrently (one task per block;
/// result[i] corresponds to blocks[i], bit-identical to the serial call).
/// The library must hold a provider for every block's structure class —
/// checked up front so a missing provider fails before any work runs.
std::vector<SegmentRlc> extract_segments_batch(
    const std::vector<geom::Block>& blocks, const InductanceLibrary& library,
    const ExtractOptions& options = {}, rt::Pool* pool = nullptr);

}  // namespace rlcx::core
