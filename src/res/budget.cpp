#include "res/budget.h"

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <utility>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/fault_injection.h"

namespace rlcx::res {

namespace {

/// Ambient-coverage depth for ScopedReservation on this thread.
thread_local int t_ambient_depth = 0;

std::uint64_t physical_ram_bytes() noexcept {
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page = ::sysconf(_SC_PAGE_SIZE);
  if (pages <= 0 || page <= 0) return 0;
  return static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
}

constexpr std::uint64_t kMiB = 1024ull * 1024ull;

std::string refusal_message(std::uint64_t bytes, std::uint64_t in_use,
                            std::uint64_t limit) {
  std::string msg = "memory budget refused a ";
  msg += std::to_string(bytes);
  msg += "-byte reservation (in use ";
  msg += std::to_string(in_use);
  msg += " of ";
  msg += std::to_string(limit);
  msg += " bytes); shrink the request or raise --mem-budget";
  return msg;
}

}  // namespace

std::uint64_t default_limit_bytes() noexcept {
  if (const char* env = std::getenv("RLCX_MEM_BUDGET")) {
    char* end = nullptr;
    const unsigned long long mib = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0')
      return static_cast<std::uint64_t>(mib) * kMiB;
    diag::emit_warning(diag::Category::kUsage, "res",
                       std::string("ignoring malformed RLCX_MEM_BUDGET \"") +
                           env + "\" (expected MiB as an integer)");
  }
  return physical_ram_bytes() / 2;
}

Budget::Budget() : limit_(default_limit_bytes()) {}

Budget& Budget::global() {
  static Budget budget;
  return budget;
}

void Budget::set_limit(std::uint64_t bytes) noexcept {
  limit_.store(bytes, std::memory_order_relaxed);
}

std::uint64_t Budget::limit() const noexcept {
  return limit_.load(std::memory_order_relaxed);
}

std::uint64_t Budget::tracked() const noexcept {
  return tracked_.load(std::memory_order_relaxed);
}

std::uint64_t Budget::reserved() const noexcept {
  return reserved_.load(std::memory_order_relaxed);
}

std::uint64_t Budget::in_use() const noexcept { return tracked() + reserved(); }

std::uint64_t Budget::peak() const noexcept {
  return peak_.load(std::memory_order_relaxed);
}

void Budget::reset_peak() noexcept {
  peak_.store(in_use(), std::memory_order_relaxed);
}

void Budget::account(std::uint64_t bytes) noexcept {
  tracked_.fetch_add(bytes, std::memory_order_relaxed);
  bump_peak();
}

void Budget::unaccount(std::uint64_t bytes) noexcept {
  tracked_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool Budget::try_charge(std::uint64_t bytes) noexcept {
  const std::uint64_t limit = limit_.load(std::memory_order_relaxed);
  std::uint64_t cur = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (limit != 0 && tracked() + cur + bytes > limit) return false;
    if (reserved_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_relaxed))
      break;
  }
  bump_peak();
  return true;
}

void Budget::release_charge(std::uint64_t bytes) noexcept {
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Budget::bump_peak() noexcept {
  const std::uint64_t now = in_use();
  std::uint64_t seen = peak_.load(std::memory_order_relaxed);
  while (seen < now && !peak_.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}

Stats Budget::stats() const noexcept {
  Stats s;
  s.limit_bytes = limit();
  s.tracked_bytes = tracked();
  s.reserved_bytes = reserved();
  s.peak_bytes = peak();
  s.degradations = degradations_.load(std::memory_order_relaxed);
  s.refusals = refusals_.load(std::memory_order_relaxed);
  s.contained_bad_allocs =
      contained_bad_allocs_.load(std::memory_order_relaxed);
  return s;
}

void Budget::record_degradation() noexcept {
  degradations_.fetch_add(1, std::memory_order_relaxed);
}

void Budget::record_refusal() noexcept {
  refusals_.fetch_add(1, std::memory_order_relaxed);
}

void Budget::record_contained_bad_alloc() noexcept {
  contained_bad_allocs_.fetch_add(1, std::memory_order_relaxed);
}

bool admission_exhausted(std::uint64_t bytes) noexcept {
  Budget& b = Budget::global();
  if (run::fault_point("alloc_fail")) {
    b.record_refusal();
    return true;
  }
  const std::uint64_t limit = b.limit();
  if (limit != 0 && bytes > limit) {
    b.record_refusal();
    return true;
  }
  return false;
}

Reservation::Reservation(const char* stage, std::uint64_t bytes,
                         OnExhausted policy) {
  Budget& b = Budget::global();
  bool refused = run::fault_point("alloc_fail");
  if (!refused && !b.try_charge(bytes)) refused = true;
  if (!refused) {
    bytes_ = bytes;
    return;
  }
  if (policy == OnExhausted::kDecline) return;  // caller degrades
  b.record_refusal();
  throw diag::ResourceExhaustedError(
      stage, refusal_message(bytes, b.in_use(), b.limit()));
}

Reservation::Reservation(Reservation&& other) noexcept
    : bytes_(std::exchange(other.bytes_, 0)) {}

Reservation& Reservation::operator=(Reservation&& other) noexcept {
  if (this != &other) {
    release();
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

Reservation::~Reservation() { release(); }

void Reservation::release() noexcept {
  if (bytes_ != 0) {
    Budget::global().release_charge(bytes_);
    bytes_ = 0;
  }
}

ScopedReservation::ScopedReservation(const char* stage, std::uint64_t bytes,
                                     OnExhausted policy)
    : reservation_(stage, bytes, policy) {
  if (reservation_.held()) {
    ++t_ambient_depth;
    entered_ = true;
  }
}

ScopedReservation::~ScopedReservation() {
  if (entered_) --t_ambient_depth;
}

bool ScopedReservation::covered() noexcept { return t_ambient_depth > 0; }

}  // namespace rlcx::res
