// Process-wide resource governance: a memory budget with accounting,
// reservations and graceful-degradation hooks.
//
// The stack's failure mode without this subsystem is binary: a request
// either fits in RAM or the process dies (std::bad_alloc at best, the OOM
// killer at worst) — and in the `rlcx serve` daemon that death takes every
// other client down too.  The paper's whole premise is that dense partial
// inductance is intractable at scale; this module makes the intractability
// *observable before the allocation*: analytic cost estimators predict a
// stage's resident bytes, a reservation charges them against one
// process-wide budget, and refusal is a typed, recoverable error
// (diag::ResourceExhaustedError, exit code 7) instead of a crash.
//
// Two mechanisms with different contracts:
//   * accounting  — Budget::account()/unaccount(), driven by the
//     TrackedAllocator hooks on the big containers (numeric::Matrix data,
//     warm-store tables).  Never fails, never throws; it only keeps the
//     live/peak byte counters honest so estimators can be validated and
//     `stats` output means something.
//   * enforcement — Reservation/ScopedReservation, taken at a handful of
//     coarse, *serial* decision points (solver path selection, table-grid
//     construction, serve admission) before any fan-out.  Enforcing only
//     at serial points is what makes the degrade/refuse decision
//     deterministic across pool widths (docs/parallelism.md).
//
// Budget resolution order: --mem-budget MiB > RLCX_MEM_BUDGET (MiB) >
// default (half of physical RAM); 0 means unlimited.
//
// Every reservation attempt is also a fault-injection site
// (`alloc_fail`, run/fault_injection.h), so budget exhaustion at each
// site is testable in CI without real memory pressure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace rlcx::res {

/// Snapshot of the governance telemetry (serve `stats`/`health`,
/// `cache stats`, core::BuildStats deltas).
struct Stats {
  std::uint64_t limit_bytes = 0;     ///< budget in force (0 = unlimited)
  std::uint64_t tracked_bytes = 0;   ///< live bytes seen by allocator hooks
  std::uint64_t reserved_bytes = 0;  ///< outstanding reservation charges
  std::uint64_t peak_bytes = 0;      ///< high-water of tracked + reserved
  std::uint64_t degradations = 0;    ///< dense->hmat budget downgrades
  std::uint64_t refusals = 0;        ///< hard reservation/admission refusals
  std::uint64_t contained_bad_allocs = 0;  ///< bad_allocs converted to 7

  std::uint64_t in_use() const { return tracked_bytes + reserved_bytes; }
};

/// The process-wide byte budget.  All methods are thread-safe; counters
/// use relaxed atomics (telemetry, not synchronization).
class Budget {
 public:
  static Budget& global();

  /// 0 = unlimited.  The CLI maps --mem-budget here before dispatch.
  void set_limit(std::uint64_t bytes) noexcept;
  std::uint64_t limit() const noexcept;

  std::uint64_t tracked() const noexcept;
  std::uint64_t reserved() const noexcept;
  std::uint64_t in_use() const noexcept;
  std::uint64_t peak() const noexcept;
  /// Rebase the high-water mark to the current in-use bytes (tests and
  /// per-build peak deltas).
  void reset_peak() noexcept;

  /// Advisory accounting from allocation hooks.  Never fails: a tracked
  /// allocation over budget still proceeds (enforcement happens at the
  /// coarse reservation points, not per-vector).
  void account(std::uint64_t bytes) noexcept;
  void unaccount(std::uint64_t bytes) noexcept;

  Stats stats() const noexcept;

  void record_degradation() noexcept;
  void record_refusal() noexcept;
  void record_contained_bad_alloc() noexcept;

 private:
  Budget();
  friend class Reservation;
  /// Charges `bytes` against the budget; false when the charge would push
  /// tracked + reserved past the limit.
  bool try_charge(std::uint64_t bytes) noexcept;
  void release_charge(std::uint64_t bytes) noexcept;
  void bump_peak() noexcept;

  std::atomic<std::uint64_t> limit_;
  std::atomic<std::uint64_t> tracked_{0};
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> degradations_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> contained_bad_allocs_{0};
};

/// The budget a fresh process starts with: RLCX_MEM_BUDGET (MiB, 0 =
/// unlimited; malformed values warn and fall through) or half of physical
/// RAM when the environment is silent.
std::uint64_t default_limit_bytes() noexcept;

/// Cost-based admission check (serve::AdmissionQueue): true when a request
/// estimated at `bytes` can *never* fit the budget — estimate > limit — or
/// the `alloc_fail` injection site fires.  A true verdict is permanent for
/// this request (unlike queue overload it will not clear on retry) and is
/// counted as a refusal.
bool admission_exhausted(std::uint64_t bytes) noexcept;

/// What a Reservation does when the budget refuses the charge.
enum class OnExhausted {
  kThrow,    ///< throw diag::ResourceExhaustedError (counted as a refusal)
  kDecline,  ///< construct un-held; the caller degrades to a cheaper path
};

/// A movable charge against the global budget, for reservations whose
/// lifetime outlives a scope (e.g. a member of core::GridSolvePlan).
/// Acquiring fires the `alloc_fail` fault point exactly once.
class Reservation {
 public:
  Reservation() noexcept = default;
  /// Charges `bytes` under the kThrow policy.
  Reservation(const char* stage, std::uint64_t bytes)
      : Reservation(stage, bytes, OnExhausted::kThrow) {}
  Reservation(const char* stage, std::uint64_t bytes, OnExhausted policy);
  Reservation(Reservation&& other) noexcept;
  Reservation& operator=(Reservation&& other) noexcept;
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  ~Reservation();

  void release() noexcept;
  bool held() const noexcept { return bytes_ != 0; }
  std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

/// Scope-bound reservation that also marks the calling thread as covered,
/// the same ambient pattern as run::ScopedRunControl: nested reservation
/// sites (peec fill under the solver's reservation, hmat assembly under
/// the hmat-path reservation) see covered() and skip re-charging, so one
/// logical stage is charged once no matter how deep the call tree.
/// Not movable — it registers with the constructing thread.
class ScopedReservation {
 public:
  ScopedReservation(const char* stage, std::uint64_t bytes,
                    OnExhausted policy = OnExhausted::kThrow);
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ~ScopedReservation();

  bool held() const noexcept { return reservation_.held(); }
  std::uint64_t bytes() const noexcept { return reservation_.bytes(); }

  /// True when the calling thread is inside a held ScopedReservation.
  static bool covered() noexcept;

 private:
  Reservation reservation_;
  bool entered_ = false;
};

/// Minimal allocator that routes byte counts through Budget accounting.
/// Purely advisory: allocation still goes to the default allocator and a
/// real std::bad_alloc still propagates (to be contained at the request
/// boundary, not here).
template <typename T>
class TrackedAllocator {
 public:
  using value_type = T;

  TrackedAllocator() noexcept = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    T* p = std::allocator<T>().allocate(n);
    Budget::global().account(n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>().deallocate(p, n);
    Budget::global().unaccount(n * sizeof(T));
  }

  friend bool operator==(const TrackedAllocator&,
                         const TrackedAllocator&) noexcept {
    return true;
  }
};

}  // namespace rlcx::res
