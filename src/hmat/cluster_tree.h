// Geometric binary cluster tree over filament bars.
//
// Recursive median split of the bar centers along the widest world-space
// axis of their bounding box, down to leaves of at most `leaf_size` bars.
// Node bounding boxes enclose the full bar extents (not just centers), so
// the admissibility test below bounds the true geometric separation.  The
// split sorts by (coordinate, original index), making the tree — and hence
// the whole block structure built on it — deterministic for any input
// order of equal coordinates and any pool width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "peec/assembly.h"

namespace rlcx::hmat {

struct ClusterNode {
  std::size_t begin = 0, end = 0;  ///< range of permutation positions
  double box_min[3] = {0, 0, 0};   ///< world (x, y, z) lower corner
  double box_max[3] = {0, 0, 0};   ///< world (x, y, z) upper corner
  double cbox_min[3] = {0, 0, 0};  ///< bar-center cloud lower corner
  double cbox_max[3] = {0, 0, 0};  ///< bar-center cloud upper corner
  std::int32_t child0 = -1, child1 = -1;
  bool leaf() const { return child0 < 0; }
  std::size_t count() const { return end - begin; }
  double diameter() const;         ///< of the full-extent box
  double center_diameter() const;  ///< of the center cloud
};

/// Euclidean distance between the two nodes' full-extent bounding boxes
/// (0 if they touch or overlap).
double node_distance(const ClusterNode& a, const ClusterNode& b);

/// H-matrix admissibility, measured on the bar-center clouds: the larger
/// center-cloud diameter is at most eta times the center-cloud gap.
/// Center clouds rather than full extents because the bars of one
/// extraction block all span the same along-axis range — full-extent
/// diameters are dominated by the (shared, interaction-irrelevant) length
/// and would classify laterally well-separated clusters as near-field.
/// The choice only affects efficiency, never accuracy: admissible blocks
/// are still compressed to the ACA tolerance against exact entries, and a
/// block that refuses to compress falls back to dense storage.
bool admissible(const ClusterNode& a, const ClusterNode& b, double eta);

class ClusterTree {
 public:
  ClusterTree(const std::vector<peec::Filament>& filaments,
              std::size_t leaf_size);

  const std::vector<ClusterNode>& nodes() const { return nodes_; }
  const ClusterNode& node(std::size_t id) const { return nodes_[id]; }
  std::size_t root() const { return 0; }

  /// permutation()[p] = original filament index at tree position p.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Node ids of the leaves, in ascending range order.
  const std::vector<std::size_t>& leaves() const { return leaves_; }

 private:
  std::vector<ClusterNode> nodes_;
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> leaves_;
};

}  // namespace rlcx::hmat
