#include "hmat/cluster_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rlcx::hmat {

namespace {

// World-space extents of a bar: for a kY bar, x is the transverse
// coordinate and y the along-axis one; for kX they swap.
void world_bounds(const peec::Bar& b, double lo[3], double hi[3]) {
  if (b.axis == peec::Axis::kY) {
    lo[0] = b.t_min;
    hi[0] = b.t_max();
    lo[1] = b.a_min;
    hi[1] = b.a_max();
  } else {
    lo[0] = b.a_min;
    hi[0] = b.a_max();
    lo[1] = b.t_min;
    hi[1] = b.t_max();
  }
  lo[2] = b.z_min;
  hi[2] = b.z_max();
}

double world_center(const peec::Bar& b, int dim) {
  double lo[3], hi[3];
  world_bounds(b, lo, hi);
  return 0.5 * (lo[dim] + hi[dim]);
}

}  // namespace

double ClusterNode::diameter() const {
  double d2 = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const double e = box_max[dim] - box_min[dim];
    d2 += e * e;
  }
  return std::sqrt(d2);
}

double ClusterNode::center_diameter() const {
  double d2 = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const double e = cbox_max[dim] - cbox_min[dim];
    d2 += e * e;
  }
  return std::sqrt(d2);
}

double node_distance(const ClusterNode& a, const ClusterNode& b) {
  double d2 = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const double gap = std::max(
        {0.0, a.box_min[dim] - b.box_max[dim], b.box_min[dim] - a.box_max[dim]});
    d2 += gap * gap;
  }
  return std::sqrt(d2);
}

bool admissible(const ClusterNode& a, const ClusterNode& b, double eta) {
  double d2 = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const double gap =
        std::max({0.0, a.cbox_min[dim] - b.cbox_max[dim],
                  b.cbox_min[dim] - a.cbox_max[dim]});
    d2 += gap * gap;
  }
  const double dist = std::sqrt(d2);
  if (dist <= 0.0) return false;
  return std::max(a.center_diameter(), b.center_diameter()) <= eta * dist;
}

ClusterTree::ClusterTree(const std::vector<peec::Filament>& filaments,
                         std::size_t leaf_size) {
  const std::size_t n = filaments.size();
  if (leaf_size == 0) leaf_size = 1;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  if (n == 0) return;

  auto make_node = [&](std::size_t begin, std::size_t end) {
    ClusterNode node;
    node.begin = begin;
    node.end = end;
    for (int dim = 0; dim < 3; ++dim) {
      node.box_min[dim] = std::numeric_limits<double>::infinity();
      node.box_max[dim] = -std::numeric_limits<double>::infinity();
      node.cbox_min[dim] = std::numeric_limits<double>::infinity();
      node.cbox_max[dim] = -std::numeric_limits<double>::infinity();
    }
    for (std::size_t p = begin; p < end; ++p) {
      double lo[3], hi[3];
      world_bounds(filaments[perm_[p]].bar, lo, hi);
      for (int dim = 0; dim < 3; ++dim) {
        node.box_min[dim] = std::min(node.box_min[dim], lo[dim]);
        node.box_max[dim] = std::max(node.box_max[dim], hi[dim]);
        const double c = 0.5 * (lo[dim] + hi[dim]);
        node.cbox_min[dim] = std::min(node.cbox_min[dim], c);
        node.cbox_max[dim] = std::max(node.cbox_max[dim], c);
      }
    }
    return node;
  };

  nodes_.push_back(make_node(0, n));
  // Iterative worklist; node ids are assigned in breadth-first order, so the
  // leaf list comes out sorted by range start.
  std::vector<std::size_t> work{0};
  while (!work.empty()) {
    const std::size_t id = work.front();
    work.erase(work.begin());
    ClusterNode node = nodes_[id];  // copy: nodes_ may reallocate below
    if (node.count() <= leaf_size) {
      leaves_.push_back(id);
      continue;
    }
    // Widest axis of the *center* cloud decides the split direction; bar
    // extents only pad the boxes.
    double clo[3], chi[3];
    for (int dim = 0; dim < 3; ++dim) {
      clo[dim] = std::numeric_limits<double>::infinity();
      chi[dim] = -std::numeric_limits<double>::infinity();
    }
    for (std::size_t p = node.begin; p < node.end; ++p)
      for (int dim = 0; dim < 3; ++dim) {
        const double c = world_center(filaments[perm_[p]].bar, dim);
        clo[dim] = std::min(clo[dim], c);
        chi[dim] = std::max(chi[dim], c);
      }
    int split_dim = 0;
    for (int dim = 1; dim < 3; ++dim)
      if (chi[dim] - clo[dim] > chi[split_dim] - clo[split_dim])
        split_dim = dim;
    std::sort(perm_.begin() + static_cast<std::ptrdiff_t>(node.begin),
              perm_.begin() + static_cast<std::ptrdiff_t>(node.end),
              [&](std::size_t a, std::size_t b) {
                const double ca = world_center(filaments[a].bar, split_dim);
                const double cb = world_center(filaments[b].bar, split_dim);
                if (ca != cb) return ca < cb;
                return a < b;
              });
    const std::size_t mid = node.begin + node.count() / 2;
    const std::int32_t c0 = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(make_node(node.begin, mid));
    nodes_.push_back(make_node(mid, node.end));
    nodes_[id].child0 = c0;
    nodes_[id].child1 = c0 + 1;
    work.push_back(static_cast<std::size_t>(c0));
    work.push_back(static_cast<std::size_t>(c0) + 1);
  }
  std::sort(leaves_.begin(), leaves_.end(),
            [&](std::size_t a, std::size_t b) {
              return nodes_[a].begin < nodes_[b].begin;
            });
}

}  // namespace rlcx::hmat
