#include "hmat/hmatrix.h"

#include <algorithm>
#include <optional>

#include "hmat/stats.h"
#include "res/budget.h"
#include "rt/parallel.h"
#include "run/control.h"

namespace rlcx::hmat {

void HMatrix::partition(std::size_t a, std::size_t b) {
  const ClusterNode& na = tree_->node(a);
  const ClusterNode& nb = tree_->node(b);
  if (a == b) {
    if (na.leaf()) {
      Block blk;
      blk.row_node = static_cast<std::uint32_t>(a);
      blk.col_node = static_cast<std::uint32_t>(a);
      blocks_.push_back(std::move(blk));
      return;
    }
    const std::size_t c0 = static_cast<std::size_t>(na.child0);
    const std::size_t c1 = static_cast<std::size_t>(na.child1);
    partition(c0, c0);
    partition(c0, c1);
    partition(c1, c1);
    return;
  }
  if (admissible(na, nb, opt_.eta)) {
    Block blk;
    blk.row_node = static_cast<std::uint32_t>(a);
    blk.col_node = static_cast<std::uint32_t>(b);
    blk.low_rank = true;
    blocks_.push_back(std::move(blk));
    return;
  }
  if (na.leaf() && nb.leaf()) {
    Block blk;
    blk.row_node = static_cast<std::uint32_t>(a);
    blk.col_node = static_cast<std::uint32_t>(b);
    blocks_.push_back(std::move(blk));
    return;
  }
  if (na.leaf()) {
    partition(a, static_cast<std::size_t>(nb.child0));
    partition(a, static_cast<std::size_t>(nb.child1));
    return;
  }
  if (nb.leaf()) {
    partition(static_cast<std::size_t>(na.child0), b);
    partition(static_cast<std::size_t>(na.child1), b);
    return;
  }
  partition(static_cast<std::size_t>(na.child0),
            static_cast<std::size_t>(nb.child0));
  partition(static_cast<std::size_t>(na.child0),
            static_cast<std::size_t>(nb.child1));
  partition(static_cast<std::size_t>(na.child1),
            static_cast<std::size_t>(nb.child0));
  partition(static_cast<std::size_t>(na.child1),
            static_cast<std::size_t>(nb.child1));
}

HMatrix::HMatrix(const KernelMatrix& kernel, const ClusterTree& tree,
                 const HmatOptions& opt, rt::Pool* pool)
    : kernel_(&kernel), tree_(&tree), opt_(opt) {
  const std::size_t n = kernel.size();
  if (n == 0) return;
  // Standalone assembly reserves its expected compressed storage against
  // the memory budget; under a solver-path reservation (which priced the
  // whole hmat solve) the ambient coverage skips the charge.
  std::optional<res::ScopedReservation> reservation;
  if (!res::ScopedReservation::covered())
    reservation.emplace("hmat-assembly", estimate_assembly_bytes(n));
  partition(tree.root(), tree.root());

  const std::vector<std::size_t>& perm = tree.permutation();
  rt::ParallelOptions popt;
  popt.pool = pool;
  rt::parallel_for(
      0, blocks_.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t bi = lo; bi < hi; ++bi) {
          run::checkpoint("hmat-assembly");
          Block& blk = blocks_[bi];
          const ClusterNode& ra = tree_->node(blk.row_node);
          const ClusterNode& ca = tree_->node(blk.col_node);
          const std::size_t m = ra.count(), nn = ca.count();
          const std::size_t* rows = perm.data() + ra.begin;
          const std::size_t* cols = perm.data() + ca.begin;
          if (blk.low_rank) {
            AcaOptions aopt;
            aopt.tol = opt_.aca_tol;
            aopt.max_rank = opt_.max_rank;
            AcaInfo info;
            blk.lr = aca_compress(
                m, nn,
                [&](std::size_t i, double* out) {
                  kernel_->row(rows[i], cols, nn, out);
                },
                [&](std::size_t j, double* out) {
                  kernel_->col(cols[j], rows, m, out);
                },
                aopt, &info);
            if (!info.converged) {
              // ACA could not meet tol within max_rank: store the block
              // dense so accuracy never silently degrades.
              blk.low_rank = false;
              blk.lr = LowRank{};
            }
          }
          if (!blk.low_rank) {
            blk.dense = RealMatrix(m, nn);
            for (std::size_t i = 0; i < m; ++i)
              kernel_->row(rows[i], cols, nn, &blk.dense(i, 0));
          }
        }
      },
      popt);

  stats_.full_entries = n * n;
  for (const Block& blk : blocks_) {
    if (blk.low_rank) {
      ++stats_.lowrank_blocks;
      stats_.rank_max = std::max(stats_.rank_max, blk.lr.rank());
      stats_.stored_entries +=
          blk.lr.u.rows() * blk.lr.rank() + blk.lr.rank() * blk.lr.v.cols();
    } else {
      ++stats_.dense_blocks;
      stats_.stored_entries += blk.dense.rows() * blk.dense.cols();
      const ClusterNode& ra = tree_->node(blk.row_node);
      const ClusterNode& ca = tree_->node(blk.col_node);
      if (admissible(ra, ca, opt_.eta)) ++stats_.aca_dense_fallbacks;
    }
  }
}

void HMatrix::matvec(const double* x, double* y) const {
  const std::size_t n = size();
  const std::vector<std::size_t>& perm = tree_->permutation();
  std::vector<double> xp(n), yp(n, 0.0);
  for (std::size_t p = 0; p < n; ++p) xp[p] = x[perm[p]];

  for (const Block& blk : blocks_) {
    const ClusterNode& ra = tree_->node(blk.row_node);
    const ClusterNode& ca = tree_->node(blk.col_node);
    const std::size_t rb = ra.begin, m = ra.count();
    const std::size_t cb = ca.begin, nn = ca.count();
    const bool diagonal = blk.row_node == blk.col_node;
    if (!blk.low_rank) {
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < nn; ++j)
          acc += blk.dense(i, j) * xp[cb + j];
        yp[rb + i] += acc;
      }
      if (!diagonal) {
        for (std::size_t j = 0; j < nn; ++j) {
          double acc = 0.0;
          for (std::size_t i = 0; i < m; ++i)
            acc += blk.dense(i, j) * xp[rb + i];
          yp[cb + j] += acc;
        }
      }
      continue;
    }
    const std::size_t k = blk.lr.rank();
    std::vector<double> t(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (std::size_t j = 0; j < nn; ++j)
        acc += blk.lr.v(c, j) * xp[cb + j];
      t[c] = acc;
    }
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t c = 0; c < k; ++c) acc += blk.lr.u(i, c) * t[c];
      yp[rb + i] += acc;
    }
    // Transpose contribution (off-diagonal blocks represent both
    // triangles; admissible blocks are never diagonal).
    std::vector<double> t2(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += blk.lr.u(i, c) * xp[rb + i];
      t2[c] = acc;
    }
    for (std::size_t j = 0; j < nn; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < k; ++c) acc += blk.lr.v(c, j) * t2[c];
      yp[cb + j] += acc;
    }
  }
  for (std::size_t p = 0; p < n; ++p) y[perm[p]] = yp[p];
}

void HMatrix::matvec(const std::complex<double>* x,
                     std::complex<double>* y) const {
  // Fused complex apply: the kernel is real, so y = (L xr) + i (L xi).
  // One traversal touches every stored block once (the block data is the
  // memory-bound term; splitting into two real passes reads it twice).
  const std::size_t n = size();
  const std::vector<std::size_t>& perm = tree_->permutation();
  std::vector<std::complex<double>> xp(n), yp(n, {0.0, 0.0});
  for (std::size_t p = 0; p < n; ++p) xp[p] = x[perm[p]];

  for (const Block& blk : blocks_) {
    const ClusterNode& ra = tree_->node(blk.row_node);
    const ClusterNode& ca = tree_->node(blk.col_node);
    const std::size_t rb = ra.begin, m = ra.count();
    const std::size_t cb = ca.begin, nn = ca.count();
    const bool diagonal = blk.row_node == blk.col_node;
    if (!blk.low_rank) {
      for (std::size_t i = 0; i < m; ++i) {
        double re = 0.0, im = 0.0;
        for (std::size_t j = 0; j < nn; ++j) {
          const double a = blk.dense(i, j);
          re += a * xp[cb + j].real();
          im += a * xp[cb + j].imag();
        }
        yp[rb + i] += std::complex<double>(re, im);
      }
      if (!diagonal) {
        for (std::size_t j = 0; j < nn; ++j) {
          double re = 0.0, im = 0.0;
          for (std::size_t i = 0; i < m; ++i) {
            const double a = blk.dense(i, j);
            re += a * xp[rb + i].real();
            im += a * xp[rb + i].imag();
          }
          yp[cb + j] += std::complex<double>(re, im);
        }
      }
      continue;
    }
    const std::size_t k = blk.lr.rank();
    std::vector<std::complex<double>> t(k, {0.0, 0.0});
    for (std::size_t c = 0; c < k; ++c) {
      double re = 0.0, im = 0.0;
      for (std::size_t j = 0; j < nn; ++j) {
        const double a = blk.lr.v(c, j);
        re += a * xp[cb + j].real();
        im += a * xp[cb + j].imag();
      }
      t[c] = {re, im};
    }
    for (std::size_t i = 0; i < m; ++i) {
      double re = 0.0, im = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        const double a = blk.lr.u(i, c);
        re += a * t[c].real();
        im += a * t[c].imag();
      }
      yp[rb + i] += std::complex<double>(re, im);
    }
    // Transpose contribution (off-diagonal blocks represent both
    // triangles; admissible blocks are never diagonal).
    std::vector<std::complex<double>> t2(k, {0.0, 0.0});
    for (std::size_t c = 0; c < k; ++c) {
      double re = 0.0, im = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double a = blk.lr.u(i, c);
        re += a * xp[rb + i].real();
        im += a * xp[rb + i].imag();
      }
      t2[c] = {re, im};
    }
    for (std::size_t j = 0; j < nn; ++j) {
      double re = 0.0, im = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        const double a = blk.lr.v(c, j);
        re += a * t2[c].real();
        im += a * t2[c].imag();
      }
      yp[cb + j] += std::complex<double>(re, im);
    }
  }
  for (std::size_t p = 0; p < n; ++p) y[perm[p]] = yp[p];
}

}  // namespace rlcx::hmat
