// Restarted complex GMRES with right preconditioning.
//
// Modified Gram-Schmidt Arnoldi with Givens-rotation least squares — the
// standard Saad formulation.  Right preconditioning (solve A M^-1 u = b,
// x = M^-1 u) keeps the monitored residual the *true* residual of the
// original system, which is what the solver's accuracy gate measures.
// Every operation is serial and in fixed order, so a solve is
// bit-identical for any pool width (the pool parallelizes across
// right-hand sides, never inside one solve).
#pragma once

#include <complex>
#include <cstddef>
#include <functional>

namespace rlcx::hmat {

using Complex = std::complex<double>;

struct GmresOptions {
  double tol = 1e-12;                 ///< relative residual target
  std::size_t restart = 60;           ///< Krylov dimension per cycle
  std::size_t max_iterations = 400;   ///< total matvec budget
};

struct GmresReport {
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final relative residual ||b - Ax|| / ||b||
  bool converged = false;
};

/// matvec(x, y): y = A x.  precondition(v): v = M^-1 v in place (pass an
/// empty function for none).  x (length n) receives the solution; the
/// initial guess is zero.
GmresReport gmres_solve(
    const std::function<void(const Complex*, Complex*)>& matvec,
    std::size_t n, const std::function<void(Complex*)>& precondition,
    const Complex* b, Complex* x, const GmresOptions& opt);

}  // namespace rlcx::hmat
