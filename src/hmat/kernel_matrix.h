// On-demand kernel-matrix oracle for the hierarchical PEEC solver.
//
// Serves single entries, rows and columns of the sign-folded filament
// partial-inductance matrix  Lp(i,j) = s_i s_j M(bar_i, bar_j)  without ever
// materialising the O(n^2) dense matrix — the access pattern ACA needs
// (SNIPPETS.md: H2Pack's blocked kernel interface, fmmtl's Direct::matvec
// oracle).  Sampling reuses the PR-4 relative-geometry PairKey memo classes,
// so on a regular mesh a row costs O(new classes) kernel evaluations, not
// O(n).
//
// Determinism under concurrent sampling: the dense fill fixes one
// representative pair per class with a serial upper-triangle scan, and two
// members of the same translation class evaluate to slightly different
// doubles (their coordinates differ by a few ulps, which the Hoer–Love
// bracket's cancelling terms amplify to ~1e-8 relative).  An on-demand
// oracle that evaluated "whichever pair asked first" would therefore
// wobble with pool width AND disagree with the dense fill at that level.
// Instead the constructor replays the dense fill's class scan — O(n^2)
// hash work, ~20 ns a pair, no kernel calls — recording the identical
// representative (i, j) per class; lazy evaluations then always run on
// the representative's geometry.  Every entry served is bit-equal to the
// dense memo fill's value, for every pool width and sampling order.  (The
// scan is the price of bit-exactness; it is invisible next to the O(n^2)
// *kernel* cost the dense fill pays, let alone its O(n^3) LU.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "peec/assembly.h"
#include "peec/partial_inductance.h"

namespace rlcx::hmat {

class KernelMatrix {
 public:
  /// The options' memo_fold_symmetries is ignored (forced off): folded
  /// classes agree only to ~1e-9, and first-writer-wins memoization is
  /// deterministic only for translation-only (bit-exact) classes.
  KernelMatrix(std::vector<peec::Filament> filaments,
               const peec::PartialOptions& opt);

  std::size_t size() const { return filaments_.size(); }
  const std::vector<peec::Filament>& filaments() const { return filaments_; }
  const peec::Filament& filament(std::size_t i) const { return filaments_[i]; }

  /// Sign-folded matrix entry Lp(i,j) [H].  Thread-safe; memoized.
  double entry(std::size_t i, std::size_t j) const;

  /// out[k] = entry(i, cols[k]).  The matrix is symmetric, so a column is
  /// served the same way: col(j, rows, out) == row(j, rows, out).
  void row(std::size_t i, const std::size_t* cols, std::size_t count,
           double* out) const;
  void col(std::size_t j, const std::size_t* rows, std::size_t count,
           double* out) const {
    row(j, rows, count, out);
  }

  /// Lookup/eval/hit counters of every entry served so far (snapshot).
  peec::FillStats fill_stats() const;

 private:
  double self_value(std::size_t i) const;
  double pair_value(std::size_t i, std::size_t j) const;
  double memo_lookup(bool self, const peec::PairKey& key) const;
  double evaluate(std::size_t i, std::size_t j) const;

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<peec::PairKey, double, peec::PairKeyHash> self_map;
    std::unordered_map<peec::PairKey, double, peec::PairKeyHash> pair_map;
  };
  /// Class representative: the first upper-triangle pair (i <= j) the
  /// serial constructor scan mapped to a key — the same pair the dense
  /// fill's pass 1 picks.  Immutable after construction (lock-free reads).
  struct Rep {
    std::uint32_t i, j;
  };
  using RepMap = std::unordered_map<peec::PairKey, Rep, peec::PairKeyHash>;

  std::vector<peec::Filament> filaments_;
  std::vector<std::vector<peec::Bar>> chunks_;  ///< hoisted per-bar chunking
  peec::PartialOptions opt_;
  double quantum_ = 0.0;  ///< fill scale x memo_rel_tol; 0 disables the memo
  bool memo_ = false;
  RepMap self_reps_, pair_reps_;
  mutable Shard shards_[kShards];
  mutable std::atomic<std::size_t> lookups_{0}, evals_{0}, hits_{0};
};

}  // namespace rlcx::hmat
