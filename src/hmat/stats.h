// Process-wide hierarchical-solver telemetry.
//
// Same contract as peec::fill_stats_total / core::table_build_solve_count:
// relaxed-atomic aggregates that BuildStats, `cache stats` and the serve
// daemon's stats/health snapshot (or delta around a build).
#pragma once

#include <cstddef>

namespace rlcx::hmat {

struct SolveStats {
  std::size_t hmat_solves = 0;   ///< impedance solves taken by the hmat path
  std::size_t dense_solves = 0;  ///< ... taken by the dense LU path
  std::size_t gmres_iterations = 0;  ///< total across all solves
  std::size_t gmres_fallbacks = 0;   ///< non-convergence -> dense fallback
  std::size_t aca_rank_max = 0;      ///< high-water across all blocks
  std::size_t stored_entries = 0;    ///< summed over hmat solves
  std::size_t full_entries = 0;      ///< summed n^2 over hmat solves
  double gmres_worst_residual = 0.0; ///< high-water accepted rel. residual

  double compression() const {
    return full_entries == 0
               ? 0.0
               : static_cast<double>(stored_entries) /
                     static_cast<double>(full_entries);
  }
};

SolveStats solve_stats_total();
void reset_solve_stats_total();

/// Expected resident bytes of an assembled H-matrix over n filaments: the
/// measured process-wide compression ratio applied to the dense entry
/// count, with a conservative default before any hmat solve has reported
/// (real compression lands at a few percent; see BENCH_hmat.json).  Feeds
/// the memory budget's hmat-path cost estimate.
std::size_t estimate_assembly_bytes(std::size_t n);

/// Recorded by solver::conductor_impedance per solve.
void record_dense_solve();
void record_hmat_solve(std::size_t stored_entries, std::size_t full_entries,
                       std::size_t rank_max, std::size_t gmres_iterations,
                       std::size_t fallbacks, double worst_residual);

}  // namespace rlcx::hmat
