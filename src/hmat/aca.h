// Partially-pivoted Adaptive Cross Approximation with recompression.
//
// Builds a rank-k factorization A ~= U V (U m x k, V k x n) of a far-field
// block by sampling whole rows and columns through the KernelMatrix oracle
// — never the full block.  Pivoting is the standard partial scheme: each
// step takes the residual row of the current pivot row, picks the column of
// its largest residual entry, and derives the next pivot row from the
// largest entry of the new column term.  The stopping criterion is
// ||u_k|| * ||v_k|| <= tol * ||A_k||_F with the Frobenius norm of the
// accumulated approximant tracked incrementally.
//
// Recompression re-orthogonalizes both factors (modified Gram-Schmidt QR),
// takes a Jacobi SVD of the small k x k core, and truncates at the same
// relative tolerance — shaving the rank overshoot ACA's greedy pivoting
// leaves behind.
#pragma once

#include <cstddef>
#include <functional>

#include "numeric/matrix.h"

namespace rlcx::hmat {

/// A ~= u * v with u (m x k) and v (k x n).  Rank 0 (empty factors) is a
/// valid result: the zero block.
struct LowRank {
  RealMatrix u;
  RealMatrix v;
  std::size_t rank() const { return u.cols(); }
};

struct AcaOptions {
  double tol = 1e-9;          ///< relative Frobenius tolerance
  std::size_t max_rank = 128; ///< give up (caller stores dense) beyond this
  bool recompress = true;
};

struct AcaInfo {
  std::size_t rank = 0;         ///< final rank after recompression
  std::size_t sampled_rows = 0; ///< row evaluations the build paid for
  std::size_t sampled_cols = 0;
  bool converged = true;        ///< false: max_rank hit before tol
};

/// fill_row(i, out): out[0..n) = A(i, 0..n).  fill_col(j, out): out[0..m)
/// = A(0..m, j).  Indices are block-local.
using RowFiller = std::function<void(std::size_t, double*)>;

LowRank aca_compress(std::size_t m, std::size_t n, const RowFiller& fill_row,
                     const RowFiller& fill_col, const AcaOptions& opt,
                     AcaInfo* info = nullptr);

/// In-place rank truncation of an existing factorization at relative
/// tolerance `tol` (QR of both factors + Jacobi SVD of the core).
void recompress(LowRank& lr, double tol);

}  // namespace rlcx::hmat
