#include "hmat/gmres.h"

#include <cmath>
#include <vector>

namespace rlcx::hmat {

namespace {

double norm(const std::vector<Complex>& v) {
  double s = 0.0;
  for (const Complex& c : v) s += std::norm(c);
  return std::sqrt(s);
}

Complex cdot(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  Complex s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

}  // namespace

GmresReport gmres_solve(
    const std::function<void(const Complex*, Complex*)>& matvec,
    std::size_t n, const std::function<void(Complex*)>& precondition,
    const Complex* b, Complex* x, const GmresOptions& opt) {
  GmresReport rep;
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
  double bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) bnorm += std::norm(b[i]);
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) {
    rep.converged = true;
    return rep;
  }
  const std::size_t m = std::max<std::size_t>(1, opt.restart);

  std::vector<Complex> r(b, b + n);  // initial residual (x = 0)
  std::vector<std::vector<Complex>> v(m + 1, std::vector<Complex>(n));
  std::vector<std::vector<Complex>> h(m + 1, std::vector<Complex>(m, 0.0));
  std::vector<Complex> cs(m), sn(m), g(m + 1);
  std::vector<Complex> w(n), z(n);

  while (true) {
    const double rnorm = norm(r);
    rep.residual = rnorm / bnorm;
    if (rep.residual <= opt.tol) {
      rep.converged = true;
      return rep;
    }
    if (rep.iterations >= opt.max_iterations) return rep;

    for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] / rnorm;
    for (auto& col : h) std::fill(col.begin(), col.end(), Complex(0.0));
    std::fill(g.begin(), g.end(), Complex(0.0));
    g[0] = rnorm;

    std::size_t j = 0;
    for (; j < m && rep.iterations < opt.max_iterations; ++j) {
      z = v[j];
      if (precondition) precondition(z.data());
      matvec(z.data(), w.data());
      ++rep.iterations;
      for (std::size_t i = 0; i <= j; ++i) {
        const Complex hij = cdot(v[i], w);
        h[i][j] = hij;
        for (std::size_t kk = 0; kk < n; ++kk) w[kk] -= hij * v[i][kk];
      }
      const double wn = norm(w);
      h[j + 1][j] = wn;
      if (wn > 0.0)
        for (std::size_t kk = 0; kk < n; ++kk) v[j + 1][kk] = w[kk] / wn;
      // Apply accumulated Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const Complex a = h[i][j], bb = h[i + 1][j];
        h[i][j] = cs[i] * a + sn[i] * bb;
        h[i + 1][j] = -std::conj(sn[i]) * a + cs[i] * bb;
      }
      // New rotation zeroing h[j+1][j].
      const Complex a = h[j][j], bb = h[j + 1][j];
      const double t = std::sqrt(std::norm(a) + std::norm(bb));
      if (t == 0.0) {
        cs[j] = 1.0;
        sn[j] = 0.0;
      } else if (a == Complex(0.0)) {
        cs[j] = 0.0;
        sn[j] = 1.0;
      } else {
        cs[j] = std::abs(a) / t;
        sn[j] = (a / std::abs(a)) * std::conj(bb) / t;
      }
      h[j][j] = cs[j] * a + sn[j] * bb;
      h[j + 1][j] = 0.0;
      const Complex gj = g[j];
      g[j] = cs[j] * gj;
      g[j + 1] = -std::conj(sn[j]) * gj;
      if (std::abs(g[j + 1]) / bnorm <= opt.tol || wn == 0.0) {
        ++j;
        break;
      }
    }
    // Back-substitute the j x j least-squares system and update x.
    std::vector<Complex> y(j, 0.0);
    for (std::size_t i = j; i-- > 0;) {
      Complex acc = g[i];
      for (std::size_t kk = i + 1; kk < j; ++kk) acc -= h[i][kk] * y[kk];
      y[i] = h[i][i] == Complex(0.0) ? Complex(0.0) : acc / h[i][i];
    }
    std::fill(z.begin(), z.end(), Complex(0.0));
    for (std::size_t kk = 0; kk < j; ++kk)
      for (std::size_t i = 0; i < n; ++i) z[i] += y[kk] * v[kk][i];
    if (precondition) precondition(z.data());
    for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
    // True residual decides convergence and seeds the next cycle.
    matvec(x, w.data());
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
  }
}

}  // namespace rlcx::hmat
