#include "hmat/kernel_matrix.h"

#include <algorithm>
#include <cmath>

namespace rlcx::hmat {

namespace {

// Same scale the dense fill quantizes against (peec/assembly.cpp): the
// largest coordinate magnitude or extent in the filament set.
double fill_scale(const std::vector<peec::Filament>& filaments) {
  double s = 0.0;
  for (const peec::Filament& f : filaments) {
    const peec::Bar& b = f.bar;
    s = std::max({s, std::abs(b.a_min), std::abs(b.a_max()),
                  std::abs(b.t_min), std::abs(b.t_max()),
                  std::abs(b.z_min), std::abs(b.z_max()),
                  b.length, b.t_width, b.z_thick});
  }
  return s;
}

}  // namespace

KernelMatrix::KernelMatrix(std::vector<peec::Filament> filaments,
                           const peec::PartialOptions& opt)
    : filaments_(std::move(filaments)), opt_(opt) {
  // Representative-based memoization needs translation-only keys (the
  // header explains why); the fold never changes values beyond ~1e-9.
  opt_.memo_fold_symmetries = false;
  quantum_ = fill_scale(filaments_) * opt_.memo_rel_tol;
  memo_ = opt_.memo && quantum_ > 0.0;
  chunks_.reserve(filaments_.size());
  for (const peec::Filament& f : filaments_)
    chunks_.push_back(peec::chunk_lengthwise(f.bar, opt_.max_aspect));
  if (!memo_) return;
  // Replay the dense fill's serial pass-1 scan so every class gets the
  // identical representative pair (see the header on why this is what
  // makes lazily served entries bit-equal to the dense memo fill).
  const std::size_t n = filaments_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const peec::Bar& bi = filaments_[i].bar;
    self_reps_.try_emplace(
        peec::make_self_key(bi, quantum_),
        Rep{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i)});
    for (std::size_t j = i + 1; j < n; ++j) {
      const peec::Bar& bj = filaments_[j].bar;
      if (bi.axis != bj.axis) continue;  // exact zero, no kernel
      pair_reps_.try_emplace(
          peec::make_pair_key(bi, bj, quantum_, /*fold_symmetries=*/false),
          Rep{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    }
  }
}

double KernelMatrix::entry(std::size_t i, std::size_t j) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (i == j) return self_value(i);
  const peec::Bar& bi = filaments_[i].bar;
  const peec::Bar& bj = filaments_[j].bar;
  if (bi.axis != bj.axis) return 0.0;
  return filaments_[i].sign * filaments_[j].sign * pair_value(i, j);
}

void KernelMatrix::row(std::size_t i, const std::size_t* cols,
                       std::size_t count, double* out) const {
  for (std::size_t k = 0; k < count; ++k) out[k] = entry(i, cols[k]);
}

peec::FillStats KernelMatrix::fill_stats() const {
  peec::FillStats s;
  s.pair_lookups = lookups_.load(std::memory_order_relaxed);
  s.kernel_evals = evals_.load(std::memory_order_relaxed);
  s.memo_hits = hits_.load(std::memory_order_relaxed);
  return s;
}

double KernelMatrix::self_value(std::size_t i) const {
  if (!memo_) {
    evals_.fetch_add(1, std::memory_order_relaxed);
    return peec::self_partial_chunked(chunks_[i], opt_);
  }
  return memo_lookup(true, peec::make_self_key(filaments_[i].bar, quantum_));
}

double KernelMatrix::pair_value(std::size_t i, std::size_t j) const {
  // Canonical orientation: the dense fill only ever evaluates i < j, and
  // mutual_partial_chunked(b, c) differs from (c, b) at the cancellation
  // floor, so serve the lower triangle through the upper one.
  if (j < i) std::swap(i, j);
  if (!memo_) {
    evals_.fetch_add(1, std::memory_order_relaxed);
    return peec::mutual_partial_chunked(filaments_[i].bar, filaments_[j].bar,
                                        chunks_[i], chunks_[j], opt_);
  }
  return memo_lookup(false,
                     peec::make_pair_key(filaments_[i].bar, filaments_[j].bar,
                                         quantum_, /*fold_symmetries=*/false));
}

double KernelMatrix::memo_lookup(bool self, const peec::PairKey& key) const {
  Shard& shard = shards_[peec::PairKeyHash{}(key) % kShards];
  auto& map = self ? shard.self_map : shard.pair_map;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = map.find(key);
    if (it != map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Evaluate the class representative outside the lock; the value is a pure
  // function of the key (via the immutable rep maps), so a racing thread
  // computing the same class inserts the identical double.
  const auto& reps = self ? self_reps_ : pair_reps_;
  const Rep rep = reps.at(key);
  const double value = evaluate(rep.i, rep.j);
  evals_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  return map.try_emplace(key, value).first->second;
}

double KernelMatrix::evaluate(std::size_t i, std::size_t j) const {
  if (i == j) return peec::self_partial_chunked(chunks_[i], opt_);
  return peec::mutual_partial_chunked(filaments_[i].bar, filaments_[j].bar,
                                      chunks_[i], chunks_[j], opt_);
}

}  // namespace rlcx::hmat
