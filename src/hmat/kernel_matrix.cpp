#include "hmat/kernel_matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "peec/kernel_batch.h"

namespace rlcx::hmat {

namespace {

// Same scale the dense fill quantizes against (peec/assembly.cpp): the
// largest coordinate magnitude or extent in the filament set.
double fill_scale(const std::vector<peec::Filament>& filaments) {
  double s = 0.0;
  for (const peec::Filament& f : filaments) {
    const peec::Bar& b = f.bar;
    s = std::max({s, std::abs(b.a_min), std::abs(b.a_max()),
                  std::abs(b.t_min), std::abs(b.t_max()),
                  std::abs(b.z_min), std::abs(b.z_max()),
                  b.length, b.t_width, b.z_thick});
  }
  return s;
}

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

}  // namespace

KernelMatrix::KernelMatrix(std::vector<peec::Filament> filaments,
                           const peec::PartialOptions& opt)
    : filaments_(std::move(filaments)), opt_(opt) {
  // Representative-based memoization needs translation-only keys (the
  // header explains why); the fold never changes values beyond ~1e-9.
  opt_.memo_fold_symmetries = false;
  quantum_ = fill_scale(filaments_) * opt_.memo_rel_tol;
  memo_ = opt_.memo && quantum_ > 0.0;
  chunks_.reserve(filaments_.size());
  for (const peec::Filament& f : filaments_)
    chunks_.push_back(peec::chunk_lengthwise(f.bar, opt_.max_aspect));
  if (!memo_) return;
  // Replay the dense fill's serial pass-1 scan so every class gets the
  // identical representative pair (see the header on why this is what
  // makes lazily served entries bit-equal to the dense memo fill).
  const std::size_t n = filaments_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const peec::Bar& bi = filaments_[i].bar;
    self_reps_.try_emplace(
        peec::make_self_key(bi, quantum_),
        Rep{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i)});
    for (std::size_t j = i + 1; j < n; ++j) {
      const peec::Bar& bj = filaments_[j].bar;
      if (bi.axis != bj.axis) continue;  // exact zero, no kernel
      pair_reps_.try_emplace(
          peec::make_pair_key(bi, bj, quantum_, /*fold_symmetries=*/false),
          Rep{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    }
  }
}

double KernelMatrix::entry(std::size_t i, std::size_t j) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (i == j) return self_value(i);
  const peec::Bar& bi = filaments_[i].bar;
  const peec::Bar& bj = filaments_[j].bar;
  if (bi.axis != bj.axis) return 0.0;
  return filaments_[i].sign * filaments_[j].sign * pair_value(i, j);
}

// A sampled row is one batch: every class the row misses is appended to a
// single BatchEvaluator and evaluated in one SoA sweep, instead of one
// kernel walk per column.  Batch values are elementwise per entry with an
// order-fixed per-slot reduction, so a class evaluated here is bit-equal
// to the same class evaluated alone through entry() — batching changes the
// throughput, never the doubles.
void KernelMatrix::row(std::size_t i, const std::size_t* cols,
                       std::size_t count, double* out) const {
  if (count == 0) return;
  lookups_.fetch_add(count, std::memory_order_relaxed);

  peec::BatchEvaluator ev;
  std::vector<std::uint32_t> slot_of(count, kNoSlot);

  if (!memo_) {
    // Memo off: one slot per non-orthogonal column, evaluated in one run.
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t j = cols[k];
      if (i == j) {
        slot_of[k] = static_cast<std::uint32_t>(ev.add_self(chunks_[i], opt_));
        continue;
      }
      if (filaments_[i].bar.axis != filaments_[j].bar.axis) continue;
      // Canonical orientation (see pair_value): serve the lower triangle
      // through the upper one.
      const std::size_t a = std::min(i, j), b = std::max(i, j);
      slot_of[k] = static_cast<std::uint32_t>(ev.add_pair(
          filaments_[a].bar, filaments_[b].bar, chunks_[a], chunks_[b], opt_));
    }
    std::vector<double> values(ev.slots());
    ev.run(values.data());
    evals_.fetch_add(ev.slots(), std::memory_order_relaxed);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t j = cols[k];
      if (slot_of[k] == kNoSlot) {
        out[k] = 0.0;
      } else if (i == j) {
        out[k] = values[slot_of[k]];
      } else {
        out[k] = filaments_[i].sign * filaments_[j].sign * values[slot_of[k]];
      }
    }
    return;
  }

  // Memo on.  Phase 1: probe the shards column by column; a class the row
  // misses gets one batch slot (on its representative geometry); repeat
  // misses of the same class within the row share the slot and count as
  // hits, exactly like a second sequential entry() call would.
  struct Miss {
    peec::PairKey key;
    bool self;
    std::uint32_t slot;
  };
  constexpr std::uint32_t kCachedSlot = kNoSlot - 1;
  std::vector<Miss> misses;
  std::unordered_map<peec::PairKey, std::uint32_t, peec::PairKeyHash>
      miss_slot;
  std::vector<double> cached(count, 0.0);
  const peec::Bar& bi = filaments_[i].bar;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = cols[k];
    const bool self = i == j;
    if (!self && bi.axis != filaments_[j].bar.axis) continue;  // exact zero
    const std::size_t a = std::min(i, j), b = std::max(i, j);
    const peec::PairKey key =
        self ? peec::make_self_key(bi, quantum_)
             : peec::make_pair_key(filaments_[a].bar, filaments_[b].bar,
                                   quantum_, /*fold_symmetries=*/false);
    Shard& shard = shards_[peec::PairKeyHash{}(key) % kShards];
    auto& map = self ? shard.self_map : shard.pair_map;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = map.find(key);
      if (it != map.end()) {
        found = true;
        cached[k] = it->second;
      }
    }
    if (found) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      slot_of[k] = kCachedSlot;
      continue;
    }
    const auto [it, inserted] =
        miss_slot.try_emplace(key, static_cast<std::uint32_t>(ev.slots()));
    if (inserted) {
      const Rep rep = (self ? self_reps_ : pair_reps_).at(key);
      if (self) {
        ev.add_self(chunks_[rep.i], opt_);
      } else {
        ev.add_pair(filaments_[rep.i].bar, filaments_[rep.j].bar,
                    chunks_[rep.i], chunks_[rep.j], opt_);
      }
      misses.push_back({key, self, it->second});
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    slot_of[k] = it->second;
  }

  // Phase 2: one batched evaluation for every class the row missed, then
  // publish.  A racing thread may have inserted a class meanwhile; the
  // value is a pure function of the key (evaluated on the immutable
  // representative), so first-writer-wins keeps the identical double.
  std::vector<double> values(ev.slots());
  if (!misses.empty()) {
    ev.run(values.data());
    evals_.fetch_add(misses.size(), std::memory_order_relaxed);
    for (const Miss& m : misses) {
      Shard& shard = shards_[peec::PairKeyHash{}(m.key) % kShards];
      auto& map = m.self ? shard.self_map : shard.pair_map;
      std::lock_guard<std::mutex> lock(shard.mu);
      values[m.slot] = map.try_emplace(m.key, values[m.slot]).first->second;
    }
  }

  // Phase 3: scatter with the orientation signs folded in.
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = cols[k];
    if (slot_of[k] == kNoSlot) {
      out[k] = 0.0;
      continue;
    }
    const double v =
        slot_of[k] == kCachedSlot ? cached[k] : values[slot_of[k]];
    out[k] = i == j ? v : filaments_[i].sign * filaments_[j].sign * v;
  }
}

peec::FillStats KernelMatrix::fill_stats() const {
  peec::FillStats s;
  s.pair_lookups = lookups_.load(std::memory_order_relaxed);
  s.kernel_evals = evals_.load(std::memory_order_relaxed);
  s.memo_hits = hits_.load(std::memory_order_relaxed);
  return s;
}

double KernelMatrix::self_value(std::size_t i) const {
  if (!memo_) {
    evals_.fetch_add(1, std::memory_order_relaxed);
    return evaluate(i, i);
  }
  return memo_lookup(true, peec::make_self_key(filaments_[i].bar, quantum_));
}

double KernelMatrix::pair_value(std::size_t i, std::size_t j) const {
  // Canonical orientation: the dense fill only ever evaluates i < j, and
  // the mutual chunk sweep over (b, c) differs from (c, b) at the
  // cancellation floor, so serve the lower triangle through the upper one.
  if (j < i) std::swap(i, j);
  if (!memo_) {
    evals_.fetch_add(1, std::memory_order_relaxed);
    return evaluate(i, j);
  }
  return memo_lookup(false,
                     peec::make_pair_key(filaments_[i].bar, filaments_[j].bar,
                                         quantum_, /*fold_symmetries=*/false));
}

double KernelMatrix::memo_lookup(bool self, const peec::PairKey& key) const {
  Shard& shard = shards_[peec::PairKeyHash{}(key) % kShards];
  auto& map = self ? shard.self_map : shard.pair_map;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = map.find(key);
    if (it != map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Evaluate the class representative outside the lock; the value is a pure
  // function of the key (via the immutable rep maps), so a racing thread
  // computing the same class inserts the identical double.
  const auto& reps = self ? self_reps_ : pair_reps_;
  const Rep rep = reps.at(key);
  const double value = evaluate(rep.i, rep.j);
  evals_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  return map.try_emplace(key, value).first->second;
}

// Single-class evaluation through the same batch engine the dense fill
// uses — one slot, run inline — so a lazily served entry is bit-equal to
// the dense fill's value for that class (the PR-4 contract, now carried by
// the engine rather than the scalar kernel walk).
double KernelMatrix::evaluate(std::size_t i, std::size_t j) const {
  peec::BatchEvaluator ev;
  if (i == j) {
    ev.add_self(chunks_[i], opt_);
  } else {
    ev.add_pair(filaments_[i].bar, filaments_[j].bar, chunks_[i], chunks_[j],
                opt_);
  }
  double value = 0.0;
  ev.run(&value);
  return value;
}

}  // namespace rlcx::hmat
