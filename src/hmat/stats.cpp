#include "hmat/stats.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

namespace rlcx::hmat {

namespace {

std::atomic<std::size_t> g_hmat_solves{0};
std::atomic<std::size_t> g_dense_solves{0};
std::atomic<std::size_t> g_gmres_iterations{0};
std::atomic<std::size_t> g_gmres_fallbacks{0};
std::atomic<std::size_t> g_aca_rank_max{0};
std::atomic<std::size_t> g_stored_entries{0};
std::atomic<std::size_t> g_full_entries{0};
// Non-negative doubles compare like their bit patterns, so the residual
// high-water lives in a uint64 fetch-max loop.
std::atomic<std::uint64_t> g_worst_residual_bits{0};

void fetch_max(std::atomic<std::size_t>& a, std::size_t v) {
  std::size_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t estimate_assembly_bytes(std::size_t n) {
  double ratio = solve_stats_total().compression();
  // Pre-telemetry default: deliberately well above the measured few
  // percent, so a budget decision made before any hmat solve has reported
  // errs toward refusing rather than overcommitting.
  if (ratio <= 0.0) ratio = 0.25;
  if (ratio > 1.0) ratio = 1.0;
  const double bytes =
      ratio * static_cast<double>(n) * static_cast<double>(n) * sizeof(double);
  return std::max<std::size_t>(static_cast<std::size_t>(bytes), 1024);
}

SolveStats solve_stats_total() {
  SolveStats s;
  s.hmat_solves = g_hmat_solves.load(std::memory_order_relaxed);
  s.dense_solves = g_dense_solves.load(std::memory_order_relaxed);
  s.gmres_iterations = g_gmres_iterations.load(std::memory_order_relaxed);
  s.gmres_fallbacks = g_gmres_fallbacks.load(std::memory_order_relaxed);
  s.aca_rank_max = g_aca_rank_max.load(std::memory_order_relaxed);
  s.stored_entries = g_stored_entries.load(std::memory_order_relaxed);
  s.full_entries = g_full_entries.load(std::memory_order_relaxed);
  const std::uint64_t bits =
      g_worst_residual_bits.load(std::memory_order_relaxed);
  double r;
  static_assert(sizeof r == sizeof bits);
  __builtin_memcpy(&r, &bits, sizeof r);
  s.gmres_worst_residual = r;
  return s;
}

void reset_solve_stats_total() {
  g_hmat_solves.store(0, std::memory_order_relaxed);
  g_dense_solves.store(0, std::memory_order_relaxed);
  g_gmres_iterations.store(0, std::memory_order_relaxed);
  g_gmres_fallbacks.store(0, std::memory_order_relaxed);
  g_aca_rank_max.store(0, std::memory_order_relaxed);
  g_stored_entries.store(0, std::memory_order_relaxed);
  g_full_entries.store(0, std::memory_order_relaxed);
  g_worst_residual_bits.store(0, std::memory_order_relaxed);
}

void record_dense_solve() {
  g_dense_solves.fetch_add(1, std::memory_order_relaxed);
}

void record_hmat_solve(std::size_t stored_entries, std::size_t full_entries,
                       std::size_t rank_max, std::size_t gmres_iterations,
                       std::size_t fallbacks, double worst_residual) {
  g_hmat_solves.fetch_add(1, std::memory_order_relaxed);
  g_gmres_iterations.fetch_add(gmres_iterations, std::memory_order_relaxed);
  g_gmres_fallbacks.fetch_add(fallbacks, std::memory_order_relaxed);
  g_stored_entries.fetch_add(stored_entries, std::memory_order_relaxed);
  g_full_entries.fetch_add(full_entries, std::memory_order_relaxed);
  fetch_max(g_aca_rank_max, rank_max);
  if (worst_residual > 0.0) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &worst_residual, sizeof bits);
    std::uint64_t cur = g_worst_residual_bits.load(std::memory_order_relaxed);
    while (cur < bits && !g_worst_residual_bits.compare_exchange_weak(
                             cur, bits, std::memory_order_relaxed)) {
    }
  }
}

}  // namespace rlcx::hmat
