#include "hmat/aca.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rlcx::hmat {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

// One-sided Jacobi SVD of a small k x k matrix: c = w * diag(s) * x^T with
// orthogonal w, x.  Plenty for the ACA core (k <= max_rank).
void jacobi_svd(RealMatrix c, RealMatrix& w, std::vector<double>& s,
                RealMatrix& x) {
  const std::size_t k = c.rows();
  x = RealMatrix::identity(k);
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
          alpha += c(i, p) * c(i, p);
          beta += c(i, q) * c(i, q);
          gamma += c(i, p) * c(i, q);
        }
        off = std::max(off, std::abs(gamma) /
                                std::max(std::sqrt(alpha * beta), 1e-300));
        if (std::abs(gamma) <= 1e-15 * std::sqrt(alpha * beta)) continue;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (std::size_t i = 0; i < k; ++i) {
          const double cp = c(i, p), cq = c(i, q);
          c(i, p) = cs * cp - sn * cq;
          c(i, q) = sn * cp + cs * cq;
          const double xp = x(i, p), xq = x(i, q);
          x(i, p) = cs * xp - sn * xq;
          x(i, q) = sn * xp + cs * xq;
        }
      }
    }
    if (off < 1e-14) break;
  }
  s.assign(k, 0.0);
  w = RealMatrix(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    double nrm = 0.0;
    for (std::size_t i = 0; i < k; ++i) nrm += c(i, j) * c(i, j);
    nrm = std::sqrt(nrm);
    s[j] = nrm;
    if (nrm > 0.0)
      for (std::size_t i = 0; i < k; ++i) w(i, j) = c(i, j) / nrm;
  }
  // Sort singular values descending (selection sort: k is small).
  for (std::size_t a = 0; a < k; ++a) {
    std::size_t best = a;
    for (std::size_t b = a + 1; b < k; ++b)
      if (s[b] > s[best]) best = b;
    if (best == a) continue;
    std::swap(s[a], s[best]);
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(w(i, a), w(i, best));
      std::swap(x(i, a), x(i, best));
    }
  }
}

}  // namespace

LowRank aca_compress(std::size_t m, std::size_t n, const RowFiller& fill_row,
                     const RowFiller& fill_col, const AcaOptions& opt,
                     AcaInfo* info) {
  AcaInfo local;
  std::vector<std::vector<double>> us, vs;
  std::vector<char> row_used(m, 0), col_used(n, 0);
  double fro2 = 0.0;  // ||A_k||_F^2 of the running approximant
  std::size_t next_row = 0;
  std::vector<double> res_row(n), res_col(m);

  while (us.size() < opt.max_rank && us.size() < std::min(m, n)) {
    // Find a pivot row with a nonzero residual, starting from the row the
    // previous step suggested.
    std::size_t pivot_row = m, pivot_col = n;
    std::size_t candidate = next_row;
    for (std::size_t tries = 0; tries < m; ++tries) {
      while (candidate < m && row_used[candidate]) ++candidate;
      if (candidate >= m) {
        candidate = 0;
        while (candidate < m && row_used[candidate]) ++candidate;
        if (candidate >= m) break;  // all rows spanned: exact representation
      }
      fill_row(candidate, res_row.data());
      ++local.sampled_rows;
      for (std::size_t k = 0; k < us.size(); ++k) {
        const double uk = us[k][candidate];
        if (uk == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) res_row[j] -= uk * vs[k][j];
      }
      double best = 0.0;
      std::size_t best_j = n;
      for (std::size_t j = 0; j < n; ++j) {
        if (col_used[j]) continue;
        const double a = std::abs(res_row[j]);
        if (a > best) {
          best = a;
          best_j = j;
        }
      }
      if (best_j < n && best > 0.0) {
        pivot_row = candidate;
        pivot_col = best_j;
        break;
      }
      row_used[candidate] = 1;  // numerically zero residual row
      ++candidate;
    }
    if (pivot_row >= m) break;  // no usable pivot left: block represented

    const double pivot = res_row[pivot_col];
    std::vector<double> v(n);
    for (std::size_t j = 0; j < n; ++j) v[j] = res_row[j] / pivot;
    fill_col(pivot_col, res_col.data());
    ++local.sampled_cols;
    for (std::size_t k = 0; k < us.size(); ++k) {
      const double vk = vs[k][pivot_col];
      if (vk == 0.0) continue;
      for (std::size_t i = 0; i < m; ++i) res_col[i] -= vk * us[k][i];
    }
    std::vector<double> u = res_col;
    row_used[pivot_row] = 1;
    col_used[pivot_col] = 1;

    const double un = norm2(u), vn = norm2(v);
    double cross = 0.0;
    for (std::size_t k = 0; k < us.size(); ++k)
      cross += dot(u, us[k]) * dot(v, vs[k]);
    fro2 = std::max(0.0, fro2 + un * un * vn * vn + 2.0 * cross);
    us.push_back(std::move(u));
    vs.push_back(std::move(v));

    if (un * vn <= opt.tol * std::sqrt(std::max(fro2, 1e-300))) break;

    // Largest entry of the new column term suggests the next pivot row.
    double best = -1.0;
    next_row = m;
    for (std::size_t i = 0; i < m; ++i) {
      if (row_used[i]) continue;
      const double a = std::abs(us.back()[i]);
      if (a > best) {
        best = a;
        next_row = i;
      }
    }
    if (next_row >= m) break;
  }

  local.converged =
      us.size() < opt.max_rank || us.size() >= std::min(m, n);
  LowRank lr;
  const std::size_t k = us.size();
  lr.u = RealMatrix(m, k);
  lr.v = RealMatrix(k, n);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < m; ++i) lr.u(i, c) = us[c][i];
    for (std::size_t j = 0; j < n; ++j) lr.v(c, j) = vs[c][j];
  }
  if (opt.recompress && k > 1) recompress(lr, opt.tol);
  local.rank = lr.rank();
  if (info) *info = local;
  return lr;
}

void recompress(LowRank& lr, double tol) {
  const std::size_t m = lr.u.rows(), n = lr.v.cols(), k = lr.rank();
  if (k == 0) return;
  // MGS QR of U: U = Qu * Ru (Qu m x k orthonormal columns, Ru k x k upper).
  RealMatrix qu = lr.u, ru(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      double h = 0.0;
      for (std::size_t r = 0; r < m; ++r) h += qu(r, i) * qu(r, j);
      ru(i, j) = h;
      for (std::size_t r = 0; r < m; ++r) qu(r, j) -= h * qu(r, i);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < m; ++r) nrm += qu(r, j) * qu(r, j);
    nrm = std::sqrt(nrm);
    ru(j, j) = nrm;
    if (nrm > 0.0)
      for (std::size_t r = 0; r < m; ++r) qu(r, j) /= nrm;
  }
  // MGS QR of V^T: V = Rv^T * Qv (Qv k x n orthonormal rows, Rv k x k upper).
  RealMatrix qv = lr.v, rv(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      double h = 0.0;
      for (std::size_t c = 0; c < n; ++c) h += qv(i, c) * qv(j, c);
      rv(i, j) = h;
      for (std::size_t c = 0; c < n; ++c) qv(j, c) -= h * qv(i, c);
    }
    double nrm = 0.0;
    for (std::size_t c = 0; c < n; ++c) nrm += qv(j, c) * qv(j, c);
    nrm = std::sqrt(nrm);
    rv(j, j) = nrm;
    if (nrm > 0.0)
      for (std::size_t c = 0; c < n; ++c) qv(j, c) /= nrm;
  }
  // Core = Ru * Rv^T, SVD, truncate.
  RealMatrix core(k, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t c = std::max(i, j); c < k; ++c)
        s += ru(i, c) * rv(j, c);
      core(i, j) = s;
    }
  RealMatrix w, x;
  std::vector<double> sv;
  jacobi_svd(std::move(core), w, sv, x);
  std::size_t r = 0;
  const double cutoff = tol * (sv.empty() ? 0.0 : sv[0]);
  while (r < k && sv[r] > cutoff && sv[r] > 0.0) ++r;
  if (r == 0) r = sv.empty() || sv[0] == 0.0 ? 0 : 1;
  // U' = Qu * W_r * diag(S_r);  V' = X_r^T * Qv.
  RealMatrix nu(m, r), nv(r, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t c = 0; c < r; ++c) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += qu(i, p) * w(p, c);
      nu(i, c) = s * sv[c];
    }
  for (std::size_t c = 0; c < r; ++c)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += x(p, c) * qv(p, j);
      nv(c, j) = s;
    }
  lr.u = std::move(nu);
  lr.v = std::move(nv);
}

}  // namespace rlcx::hmat
