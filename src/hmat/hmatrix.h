// Hierarchical matrix over the KernelMatrix oracle.
//
// The cluster tree induces a block partition of the (symmetric) filament
// partial-inductance matrix: diagonal and inadmissible near-field blocks
// are stored dense, admissible far-field blocks are compressed by
// partially-pivoted ACA (aca.h).  Only the upper-triangle blocks are built;
// the matvec applies each off-diagonal block and its transpose, so storage
// is roughly halved on top of the low-rank savings.
//
// Assembly fans the fixed, serially-enumerated block list across the rt
// pool (disjoint writes, one run::checkpoint per block so cancellation
// lands on block boundaries).  The matvec walks the blocks serially in
// list order — together with the KernelMatrix's canonical-key memo this
// makes every product bit-identical for any pool width.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hmat/aca.h"
#include "hmat/cluster_tree.h"
#include "hmat/kernel_matrix.h"
#include "numeric/matrix.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::hmat {

struct HmatOptions {
  std::size_t leaf_size = 64;  ///< cluster-tree leaf bound
  double eta = 2.0;            ///< admissibility: max diam <= eta * dist
  /// ACA relative tolerance.  Kept well below the solver's 1e-8 agreement
  /// gate so operator error never dominates.
  double aca_tol = 1e-11;
  std::size_t max_rank = 128;  ///< ACA bail-out; such blocks go dense
};

struct AssemblyStats {
  std::size_t dense_blocks = 0;
  std::size_t lowrank_blocks = 0;
  std::size_t aca_dense_fallbacks = 0;  ///< admissible blocks ACA gave up on
  std::size_t rank_max = 0;
  std::size_t stored_entries = 0;  ///< doubles actually stored
  std::size_t full_entries = 0;    ///< n^2 of the represented matrix
  double compression() const {
    return full_entries == 0
               ? 0.0
               : static_cast<double>(stored_entries) /
                     static_cast<double>(full_entries);
  }
};

class HMatrix {
 public:
  /// Builds the block structure and fills it in parallel on `pool`
  /// (nullptr = process-global).  `kernel` and `tree` must outlive the
  /// HMatrix.
  HMatrix(const KernelMatrix& kernel, const ClusterTree& tree,
          const HmatOptions& opt, rt::Pool* pool = nullptr);

  std::size_t size() const { return kernel_->size(); }
  const ClusterTree& tree() const { return *tree_; }
  const AssemblyStats& stats() const { return stats_; }

  /// y = Lp * x in the ORIGINAL filament order (permutation applied
  /// internally).  Serial, deterministic, thread-safe (read-only).
  void matvec(const double* x, double* y) const;
  /// Complex convenience: two real products (Lp is real).
  void matvec(const std::complex<double>* x, std::complex<double>* y) const;

 private:
  struct Block {
    std::uint32_t row_node = 0, col_node = 0;
    bool low_rank = false;
    RealMatrix dense;
    LowRank lr;
  };

  void partition(std::size_t a, std::size_t b);

  const KernelMatrix* kernel_;
  const ClusterTree* tree_;
  HmatOptions opt_;
  std::vector<Block> blocks_;
  AssemblyStats stats_;
};

}  // namespace rlcx::hmat
