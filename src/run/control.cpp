#include "run/control.h"

#include <limits>
#include <mutex>
#include <string>

#include "diag/error.h"
#include "run/fault_injection.h"

namespace rlcx::run {

namespace {

/// One installed control scope.  Scoping is *per thread*: each thread
/// keeps its own stack (t_active), so independent drivers — the serve
/// daemon's concurrent request handlers — can each install their own
/// token/deadline without corrupting a shared stack.  Two mechanisms make
/// a driver's control visible beyond its own thread:
///
///   * pool-task adoption: rt::Pool captures the submitting thread's
///     ambient at submit() (detail::ambient_snapshot) and installs it
///     around the task body (detail::ScopedAmbientAdopt), so checkpoints
///     inside fanned-out work observe the driver that spawned it;
///   * the process fallback (g_fallback): the outermost control installed
///     anywhere is visible to threads with no ambient of their own, so
///     e.g. a server-wide shutdown token reaches auxiliary threads.
///
/// Hot-path reads are one thread_local load plus, when that is empty, one
/// atomic load.  All non-atomic Ambient fields are written before the
/// scope is published and never after.
struct Ambient {
  std::shared_ptr<detail::CancelState> cancel;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  RunControl control;  ///< the installer's copy, for control()
  const Ambient* previous = nullptr;  ///< this thread's outer scope
  bool owns_fallback = false;
};

thread_local const Ambient* t_active = nullptr;

std::mutex g_install_mutex;  // guards g_fallback hand-over + control copies
std::atomic<const Ambient*> g_fallback{nullptr};

const Ambient* current_ambient() noexcept {
  const Ambient* a = t_active;
  return a != nullptr ? a : g_fallback.load(std::memory_order_acquire);
}

}  // namespace

Deadline Deadline::after(double seconds) {
  return at(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds)));
}

double Deadline::remaining_seconds() const noexcept {
  if (!active_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ -
                                       std::chrono::steady_clock::now())
      .count();
}

struct ScopedRunControl::Impl {
  Ambient ambient;
};

ScopedRunControl::ScopedRunControl(RunControl control)
    : impl_(std::make_unique<Impl>()) {
  Ambient& a = impl_->ambient;
  a.cancel = control.token.state();
  a.has_deadline = control.deadline.active();
  a.deadline = control.deadline.when();
  a.control = std::move(control);
  a.previous = t_active;
  // The outermost control of the whole process doubles as the fallback
  // for threads with no ambient of their own.  Only the scope that set
  // the fallback clears it, so a concurrent scope on another thread can
  // never install a dangling pointer.
  if (a.previous == nullptr) {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    if (g_fallback.load(std::memory_order_relaxed) == nullptr) {
      a.owns_fallback = true;
      g_fallback.store(&a, std::memory_order_release);
    }
  }
  t_active = &a;
}

ScopedRunControl::~ScopedRunControl() {
  t_active = impl_->ambient.previous;
  if (impl_->ambient.owns_fallback) {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    g_fallback.store(nullptr, std::memory_order_release);
  }
}

const RunControl& ScopedRunControl::control() const noexcept {
  return impl_->ambient.control;
}

bool control_active() noexcept { return current_ambient() != nullptr; }

bool current_control(RunControl* out) noexcept {
  // This thread's own scope cannot be popped concurrently: copy directly.
  if (t_active != nullptr) {
    *out = t_active->control;
    return true;
  }
  // The fallback's owner may pop on another thread; copy under the mutex
  // its clearing path also takes.
  std::lock_guard<std::mutex> lock(g_install_mutex);
  const Ambient* a = g_fallback.load(std::memory_order_relaxed);
  if (a == nullptr) return false;
  *out = a->control;
  return true;
}

namespace detail {

const void* ambient_snapshot() noexcept { return t_active; }

ScopedAmbientAdopt::ScopedAmbientAdopt(const void* ambient) noexcept
    : previous_(t_active) {
  t_active = static_cast<const Ambient*>(ambient);
}

ScopedAmbientAdopt::~ScopedAmbientAdopt() {
  t_active = static_cast<const Ambient*>(previous_);
}

}  // namespace detail

bool stop_requested() noexcept {
  const Ambient* a = current_ambient();
  if (a == nullptr) return false;
  if (a->cancel->cancelled.load(std::memory_order_relaxed)) return true;
  return a->has_deadline && std::chrono::steady_clock::now() >= a->deadline;
}

void checkpoint(const char* where) {
  const Ambient* a = current_ambient();
  if (a == nullptr) return;
  // Deterministic "killed mid-campaign": the scheduled checkpoint requests
  // cancellation exactly as a SIGINT would, then falls through to the
  // normal observation below.
  if (fault_injection_enabled() && fault_point("cancel"))
    a->cancel->cancelled.store(true, std::memory_order_relaxed);
  if (a->cancel->cancelled.load(std::memory_order_relaxed))
    throw diag::CancelledError(
        where, "cancellation requested; unwound at a safe boundary "
               "(completed work is preserved)");
  if (a->has_deadline && std::chrono::steady_clock::now() >= a->deadline) {
    // Late checkpoints keep throwing, so the unwind cannot be re-captured
    // into further work.
    throw diag::DeadlineExceeded(
        where, "wall-clock deadline exceeded; unwound at a safe boundary "
               "(completed work is preserved)");
  }
}

}  // namespace rlcx::run
