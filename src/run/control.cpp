#include "run/control.h"

#include <limits>
#include <mutex>
#include <string>

#include "diag/error.h"
#include "run/fault_injection.h"

namespace rlcx::run {

namespace {

/// The installed control, reference-counted so checkpoints running on pool
/// threads read a coherent snapshot.  Installation order is guarded by a
/// mutex (scopes are rare); the hot read is one relaxed pointer load on
/// g_active_raw to skip all work when no control is installed.
struct Ambient {
  std::shared_ptr<detail::CancelState> cancel;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  RunControl control;  ///< the installer's copy, for control()
  const Ambient* previous = nullptr;
};

std::mutex g_install_mutex;
const Ambient* g_active = nullptr;  // guarded by g_install_mutex
std::atomic<const Ambient*> g_active_raw{nullptr};  // the hot-path view

}  // namespace

Deadline Deadline::after(double seconds) {
  return at(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds)));
}

double Deadline::remaining_seconds() const noexcept {
  if (!active_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ -
                                       std::chrono::steady_clock::now())
      .count();
}

struct ScopedRunControl::Impl {
  Ambient ambient;
};

ScopedRunControl::ScopedRunControl(RunControl control)
    : impl_(std::make_unique<Impl>()) {
  Ambient& a = impl_->ambient;
  a.cancel = control.token.state();
  a.has_deadline = control.deadline.active();
  a.deadline = control.deadline.when();
  a.control = std::move(control);
  std::lock_guard<std::mutex> lock(g_install_mutex);
  a.previous = g_active;
  g_active = &a;
  g_active_raw.store(&a, std::memory_order_release);
}

ScopedRunControl::~ScopedRunControl() {
  std::lock_guard<std::mutex> lock(g_install_mutex);
  g_active = impl_->ambient.previous;
  g_active_raw.store(g_active, std::memory_order_release);
}

const RunControl& ScopedRunControl::control() const noexcept {
  return impl_->ambient.control;
}

bool control_active() noexcept {
  return g_active_raw.load(std::memory_order_relaxed) != nullptr;
}

bool stop_requested() noexcept {
  const Ambient* a = g_active_raw.load(std::memory_order_acquire);
  if (a == nullptr) return false;
  if (a->cancel->cancelled.load(std::memory_order_relaxed)) return true;
  return a->has_deadline && std::chrono::steady_clock::now() >= a->deadline;
}

void checkpoint(const char* where) {
  const Ambient* a = g_active_raw.load(std::memory_order_acquire);
  if (a == nullptr) return;
  // Deterministic "killed mid-campaign": the scheduled checkpoint requests
  // cancellation exactly as a SIGINT would, then falls through to the
  // normal observation below.
  if (fault_injection_enabled() && fault_point("cancel"))
    a->cancel->cancelled.store(true, std::memory_order_relaxed);
  if (a->cancel->cancelled.load(std::memory_order_relaxed))
    throw diag::CancelledError(
        where, "cancellation requested; unwound at a safe boundary "
               "(completed work is preserved)");
  if (a->has_deadline && std::chrono::steady_clock::now() >= a->deadline) {
    // Late checkpoints keep throwing, so the unwind cannot be re-captured
    // into further work.
    throw diag::DeadlineExceeded(
        where, "wall-clock deadline exceeded; unwound at a safe boundary "
               "(completed work is preserved)");
  }
}

}  // namespace rlcx::run
