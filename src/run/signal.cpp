#include "run/signal.h"

#include <atomic>
#include <csignal>

namespace rlcx::run {

namespace {

// The flag the handler targets.  A raw pointer: the owning
// ScopedSigintCancel holds the shared_ptr alive for its lifetime, and the
// handler performs only lock-free atomic operations (the async-signal-safe
// subset).
std::atomic<detail::CancelState*> g_target{nullptr};

void on_sigint(int sig) {
  detail::CancelState* target = g_target.load(std::memory_order_acquire);
  if (target == nullptr ||
      target->cancelled.load(std::memory_order_relaxed)) {
    // No target, or cancellation already pending (a second Ctrl-C on a run
    // that has not reached a checkpoint yet): fall back to the default
    // disposition so the process can still be terminated.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  target->cancelled.store(true, std::memory_order_relaxed);
}

}  // namespace

ScopedSigintCancel::ScopedSigintCancel(CancelToken token)
    : token_(std::move(token)) {
  previous_target_ =
      g_target.exchange(token_.state().get(), std::memory_order_acq_rel);
  previous_handler_ = std::signal(SIGINT, on_sigint);
}

ScopedSigintCancel::~ScopedSigintCancel() {
  std::signal(SIGINT, previous_handler_);
  g_target.store(previous_target_, std::memory_order_release);
}

ScopedSigtermCancel::ScopedSigtermCancel(CancelToken token)
    : token_(std::move(token)) {
  previous_target_ =
      g_target.exchange(token_.state().get(), std::memory_order_acq_rel);
  previous_handler_ = std::signal(SIGTERM, on_sigint);
}

ScopedSigtermCancel::~ScopedSigtermCancel() {
  std::signal(SIGTERM, previous_handler_);
  g_target.store(previous_target_, std::memory_order_release);
}

ScopedSigpipeIgnore::ScopedSigpipeIgnore() {
  previous_handler_ = std::signal(SIGPIPE, SIG_IGN);
}

ScopedSigpipeIgnore::~ScopedSigpipeIgnore() {
  std::signal(SIGPIPE, previous_handler_);
}

}  // namespace rlcx::run
