#include "run/fault_injection.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"

namespace rlcx::run {

namespace {

struct SiteSchedule {
  std::set<std::uint64_t> exact;  ///< fire exactly at these call numbers
  std::uint64_t from = 0;         ///< fire at every call >= from (0 = off)
  std::set<std::uint64_t> crash_exact;  ///< _exit(137) at these calls
  std::uint64_t crash_from = 0;         ///< _exit(137) at every call >= this
  std::uint64_t calls = 0;
  std::uint64_t triggered = 0;

  bool armed() const {
    return !exact.empty() || from != 0 || !crash_exact.empty() ||
           crash_from != 0;
  }
};

/// One parsed `site:N` / `site:N+` / `site:N!` / `site:N+!` entry.
struct Entry {
  std::string site;
  std::uint64_t count = 0;
  bool persistent = false;
  bool crash = false;
};

Entry parse_entry(const std::string& token) {
  const std::size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == token.size())
    throw diag::UsageError("fault-injection",
                           "bad schedule entry '" + token +
                               "' (expected site:N, site:N+, site:N! or "
                               "site:N+!)");
  Entry e;
  e.site = token.substr(0, colon);
  std::string num = token.substr(colon + 1);
  if (!num.empty() && num.back() == '!') {
    e.crash = true;
    num.pop_back();
  }
  if (!num.empty() && num.back() == '+') {
    e.persistent = true;
    num.pop_back();
  }
  if (num.empty())
    throw diag::UsageError("fault-injection",
                           "bad schedule entry '" + token + "': missing count");
  for (char c : num)
    if (c < '0' || c > '9')
      throw diag::UsageError("fault-injection",
                             "bad schedule entry '" + token +
                                 "': count must be a positive integer");
  e.count = std::strtoull(num.c_str(), nullptr, 10);
  if (e.count == 0)
    throw diag::UsageError("fault-injection",
                           "bad schedule entry '" + token +
                               "': call counts are 1-based");
  return e;
}

std::vector<Entry> parse_schedule(const std::string& schedule) {
  std::vector<Entry> entries;
  std::string cur;
  for (std::size_t i = 0; i <= schedule.size(); ++i) {
    if (i < schedule.size() && schedule[i] != ',') {
      if (schedule[i] != ' ' && schedule[i] != '\t') cur += schedule[i];
      continue;
    }
    if (!cur.empty()) entries.push_back(parse_entry(cur));
    cur.clear();
  }
  return entries;
}

std::atomic<bool> g_enabled{false};

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex m;
  std::map<std::string, SiteSchedule> sites;
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  const char* env = std::getenv("RLCX_FAULT_SCHEDULE");
  if (env == nullptr || env[0] == '\0') return;
  try {
    set_schedule(env);
  } catch (const diag::UsageError& e) {
    diag::emit_warning(diag::Category::kUsage, "fault-injection",
                       std::string("ignoring RLCX_FAULT_SCHEDULE: ") +
                           e.message());
  }
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::set_schedule(const std::string& schedule) {
  const std::vector<Entry> entries = parse_schedule(schedule);  // may throw
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->sites.clear();
  for (const Entry& e : entries) {
    SiteSchedule& s = impl_->sites[e.site];
    if (e.crash) {
      if (e.persistent)
        s.crash_from =
            s.crash_from == 0 ? e.count : std::min(s.crash_from, e.count);
      else
        s.crash_exact.insert(e.count);
    } else if (e.persistent) {
      s.from = s.from == 0 ? e.count : std::min(s.from, e.count);
    } else {
      s.exact.insert(e.count);
    }
  }
  g_enabled.store(!impl_->sites.empty(), std::memory_order_release);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->sites.clear();
  g_enabled.store(false, std::memory_order_release);
}

std::uint64_t FaultInjector::calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::triggered(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.triggered;
}

bool FaultInjector::hit(const char* site) noexcept {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sites.find(site);
  if (it == impl_->sites.end() || !it->second.armed()) return false;
  SiteSchedule& s = it->second;
  const std::uint64_t call = ++s.calls;
  // Crash action: die where the armed syscall would have run.  _exit (not
  // exit) so no atexit/static destructors fire — a kill -9 does not flush
  // buffers either, and the crash-recovery harness depends on the torn
  // state being exactly what the interrupted write left behind.  137 is
  // the 128+SIGKILL convention a supervisor would report.
  if (s.crash_exact.count(call) != 0 ||
      (s.crash_from != 0 && call >= s.crash_from))
    ::_exit(137);
  const bool fire =
      s.exact.count(call) != 0 || (s.from != 0 && call >= s.from);
  if (fire) ++s.triggered;
  return fire;
}

namespace {
// Construct the singleton (and parse RLCX_FAULT_SCHEDULE) before main():
// the enabled flag must be armed before the first fault_point() call, which
// deliberately skips the singleton when the flag reads false.
[[maybe_unused]] const bool g_env_parsed =
    (FaultInjector::global(), true);
}  // namespace

bool fault_injection_enabled() noexcept {
  return g_enabled.load(std::memory_order_acquire);
}

bool fault_point(const char* site) noexcept {
  if (!fault_injection_enabled()) return false;
  return FaultInjector::global().hit(site);
}

}  // namespace rlcx::run
