#include "run/journal.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "diag/error.h"

namespace fs = std::filesystem;

namespace rlcx::run {

namespace {

constexpr const char* kHeader = "rlcx-journal 1";

/// Reads the whole file; returns false when it does not exist.
bool slurp(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

/// Parses journal text into completed ids.  Only lines terminated by '\n'
/// count: a torn trailing append (killed writer) is dropped, so the id it
/// was recording is simply re-done.  Unknown line types are skipped for
/// forward compatibility.
std::set<std::string> parse(const std::string& path,
                            const std::string& content) {
  std::set<std::string> done;
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: ignore
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (first) {
      if (line != kHeader)
        throw diag::IoError("journal",
                            path + " is not a batch journal (header '" +
                                line + "', expected '" + kHeader + "')");
      first = false;
      continue;
    }
    if (line.rfind("done ", 0) == 0 && line.size() > 5)
      done.insert(line.substr(5));
  }
  if (first && !content.empty())
    throw diag::IoError("journal",
                        path + " is not a batch journal (no header line)");
  return done;
}

}  // namespace

BatchJournal::BatchJournal(std::string path) : path_(std::move(path)) {
  if (path_.empty())
    throw diag::UsageError("journal", "empty journal path");
  std::string content;
  if (slurp(path_, content) && !content.empty()) {
    done_ = parse(path_, content);
    return;
  }
  // Fresh journal: create parent directory and write the header now, so a
  // campaign that is killed before its first completion still leaves a
  // well-formed (empty) manifest behind.
  const fs::path parent = fs::path(path_).parent_path();
  std::error_code ec;
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  if (!os) throw diag::IoError("journal", "cannot create " + path_);
  os << kHeader << "\n" << std::flush;
  if (!os) throw diag::IoError("journal", "cannot write header to " + path_);
}

std::set<std::string> BatchJournal::completed() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_;
}

bool BatchJournal::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(m_);
  return done_.count(id) != 0;
}

std::size_t BatchJournal::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_.size();
}

void BatchJournal::record(const std::string& id) {
  if (id.empty())
    throw diag::UsageError("journal", "cannot record an empty id");
  for (char c : id)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
      throw diag::UsageError("journal",
                             "journal ids must not contain whitespace: '" +
                                 id + "'");
  std::lock_guard<std::mutex> lock(m_);
  if (!done_.insert(id).second) return;  // idempotent
  // One whole line per append, flushed before returning: the record is
  // durable once record() returns, and a kill mid-write tears at most this
  // line (which the loader then drops).
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  if (!os) throw diag::IoError("journal", "cannot append to " + path_);
  os << "done " << id << "\n" << std::flush;
  if (!os) throw diag::IoError("journal", "short append to " + path_);
}

std::set<std::string> BatchJournal::load(const std::string& path) {
  std::string content;
  if (!slurp(path, content) || content.empty()) return {};
  return parse(path, content);
}

}  // namespace rlcx::run
