#include "run/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/fault_injection.h"

namespace fs = std::filesystem;

namespace rlcx::run {

namespace {

constexpr const char* kHeader = "rlcx-journal 1";

/// Reads the whole file; returns false when it does not exist.
bool slurp(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

struct Parsed {
  std::set<std::string> done;
  /// Byte offset just past the last whole ('\n'-terminated) line: the
  /// clean prefix a repair truncates back to.
  std::size_t clean_bytes = 0;
  /// True when the file ends mid-header: a crash during creation.  The
  /// content is a strict prefix of the header line, so nothing was ever
  /// recorded — the journal recovers as empty.
  bool torn_header = false;
};

/// Parses journal text into completed ids.  Only lines terminated by '\n'
/// count: a torn trailing append (killed writer) is dropped, so the id it
/// was recording is simply re-done.  Unknown line types are skipped for
/// forward compatibility.
Parsed parse(const std::string& path, const std::string& content) {
  Parsed out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: ignore
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    out.clean_bytes = pos;
    if (first) {
      if (line != kHeader)
        throw diag::IoError("journal",
                            path + " is not a batch journal (header '" +
                                line + "', expected '" + kHeader + "')");
      first = false;
      continue;
    }
    if (line.rfind("done ", 0) == 0 && line.size() > 5)
      out.done.insert(line.substr(5));
  }
  if (first && !content.empty()) {
    // No complete header line.  A strict prefix of the header is what a
    // crash during journal creation leaves behind — recoverable (empty).
    // Anything else is a foreign file we must not clobber.
    const std::string header = kHeader;
    if (content.size() <= header.size() &&
        header.compare(0, content.size(), content) == 0) {
      out.torn_header = true;
      out.clean_bytes = 0;
      return out;
    }
    throw diag::IoError("journal",
                        path + " is not a batch journal (no header line)");
  }
  return out;
}

void write_fully(int fd, const char* data, std::size_t n,
                 const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw diag::IoError("journal", "append to " + path + " failed: " +
                                         std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

BatchJournal::BatchJournal(std::string path, Durability durability)
    : path_(std::move(path)), durability_(durability) {
  if (path_.empty())
    throw diag::UsageError("journal", "empty journal path");
  std::string content;
  bool fresh = true;
  if (slurp(path_, content) && !content.empty()) {
    const Parsed parsed = parse(path_, content);  // may throw (foreign file)
    if (parsed.torn_header) {
      diag::emit_warning(
          diag::Category::kIo, "journal",
          path_ + ": header torn at byte " + std::to_string(content.size()) +
              " (crash during creation); recovering as empty journal");
      tail_dropped_bytes_ = content.size();
      // fall through to the fresh-journal path, which rewrites the header
    } else {
      fresh = false;
      done_ = parsed.done;
      if (parsed.clean_bytes < content.size()) {
        // Torn tail: truncate the file back to the last whole line so the
        // damage cannot compound across restarts.  Byte-exact — the clean
        // prefix is preserved verbatim.
        tail_dropped_bytes_ = content.size() - parsed.clean_bytes;
        diag::emit_warning(
            diag::Category::kIo, "journal",
            path_ + ": dropping " + std::to_string(tail_dropped_bytes_) +
                " torn trailing bytes (record interrupted mid-append)");
        if (::truncate(path_.c_str(),
                       static_cast<off_t>(parsed.clean_bytes)) != 0)
          throw diag::IoError("journal", "cannot repair torn tail of " +
                                             path_ + ": " +
                                             std::strerror(errno));
      }
    }
  }
  if (fresh) {
    // Fresh journal: create parent directory and write the header now, so
    // a campaign that is killed before its first completion still leaves a
    // well-formed (empty) manifest behind.
    const fs::path parent = fs::path(path_).parent_path();
    std::error_code ec;
    if (!parent.empty()) fs::create_directories(parent, ec);
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    if (!os) throw diag::IoError("journal", "cannot create " + path_);
    os << kHeader << "\n" << std::flush;
    if (!os)
      throw diag::IoError("journal", "cannot write header to " + path_);
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0)
    throw diag::IoError("journal", "cannot open " + path_ +
                                       " for append: " + std::strerror(errno));
  if (durability_ == Durability::kFsync) {
    // Make the header (or the truncate repair) itself power-safe before
    // the first record lands on top of it.
    if (::fsync(fd_) != 0)
      throw diag::IoError("journal",
                          "fsync " + path_ + ": " + std::strerror(errno));
    ++fsyncs_;
  }
}

BatchJournal::~BatchJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::set<std::string> BatchJournal::completed() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_;
}

bool BatchJournal::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(m_);
  return done_.count(id) != 0;
}

std::size_t BatchJournal::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_.size();
}

std::uint64_t BatchJournal::fsyncs() const {
  std::lock_guard<std::mutex> lock(m_);
  return fsyncs_;
}

void BatchJournal::record(const std::string& id) {
  if (id.empty())
    throw diag::UsageError("journal", "cannot record an empty id");
  for (char c : id)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
      throw diag::UsageError("journal",
                             "journal ids must not contain whitespace: '" +
                                 id + "'");
  std::lock_guard<std::mutex> lock(m_);
  if (done_.count(id) != 0) return;  // idempotent
  // One whole line per append: the record is durable (to the kernel, or to
  // the platter under kFsync) once record() returns, and a kill mid-write
  // tears at most this line (which open() then truncates away).
  const std::string line = "done " + id + "\n";
  if (fault_injection_enabled()) {
    if (fault_point("io_enospc"))
      throw diag::IoError("journal", "append to " + path_ +
                                         " failed: No space left on device "
                                         "(injected)");
    // journal_tear splits the append at an exact byte boundary: as a crash
    // site (`journal_tear:N!`) the process dies with half a record on
    // disk; as a plain fault it leaves the same torn tail behind and
    // throws, so the repair path is testable without forking.
    const std::size_t half = line.size() / 2;
    write_fully(fd_, line.data(), half, path_);
    if (fault_point("journal_tear"))
      throw diag::IoError("journal", "append to " + path_ +
                                         " torn mid-record (injected)");
    write_fully(fd_, line.data() + half, line.size() - half, path_);
  } else {
    write_fully(fd_, line.data(), line.size(), path_);
  }
  if (durability_ == Durability::kFsync) {
    if (fault_injection_enabled() && fault_point("journal_fsync"))
      throw diag::IoError("journal",
                          "fsync " + path_ + " failed (injected)");
    if (::fsync(fd_) != 0)
      throw diag::IoError("journal",
                          "fsync " + path_ + ": " + std::strerror(errno));
    ++fsyncs_;
  }
  done_.insert(id);
}

std::set<std::string> BatchJournal::load(const std::string& path) {
  std::string content;
  if (!slurp(path, content) || content.empty()) return {};
  const Parsed parsed = parse(path, content);
  return parsed.done;
}

}  // namespace rlcx::run
