// rlcx::run — cooperative run control for long extraction campaigns.
//
// A table pre-computation at f_s = 0.32/t_r is thousands of field solves;
// the driver of such a campaign (the CLI, a batch service, a test) needs
// three guarantees the raw pipeline cannot give on its own:
//
//   * it can be *stopped* (SIGINT, an owning service shutting down),
//   * it can be *bounded* in wall-clock time (a deadline), and
//   * stopping never corrupts durable state (cache entries, journals).
//
// The mechanism is cooperative: the driver installs a ScopedRunControl
// carrying a CancelToken and an optional Deadline, and the hot paths call
// run::checkpoint() at their natural safe boundaries — rt chunk claims,
// SOR sweeps, transient steps, grid-point solves.  A triggered checkpoint
// throws a typed diag::Fault (CancelledError / DeadlineExceeded, CLI exit
// code 5) which unwinds through the rt pool with its type preserved, so a
// cancelled run reports *why* it stopped and never observes partial
// writes: work between two checkpoints either completes or never starts.
//
// With no control installed, checkpoint() is one thread_local load plus
// one relaxed atomic load — cheap enough for per-iteration placement.
//
// Scoping is per thread, so independent drivers (the `rlcx serve`
// daemon's concurrent request handlers) can each install their own
// control without interfering.  A driver's control still reaches its
// fanned-out work: rt::Pool snapshots the submitting thread's ambient at
// submit() and adopts it around each task body, and the process's
// *outermost* control additionally acts as a fallback for threads with no
// ambient of their own (so a server-wide shutdown token is observable
// everywhere).
//
// Lifetime protocol: the ScopedRunControl must outlive every parallel
// region it covers (RAII on the driver's stack around the fan-out does
// this naturally); checkpoints observe the control from any pool thread.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace rlcx::run {

namespace detail {

/// Shared cancellation flag.  A lock-free atomic, so request() is safe
/// from any thread *and* from an async signal handler.
struct CancelState {
  std::atomic<bool> cancelled{false};
};

}  // namespace detail

/// Copyable handle to a shared cancellation flag.  Copies observe the same
/// flag; request() is idempotent, thread-safe and async-signal-safe.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<detail::CancelState>()) {}

  void request() const noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
  bool requested() const noexcept {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Internal: the shared flag (the SIGINT handler stores a raw pointer to
  /// it, keeping this shared_ptr alive for the handler's scope).
  const std::shared_ptr<detail::CancelState>& state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// A wall-clock bound on the steady clock.  Default-constructed = none.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now (negative or zero: already expired).
  static Deadline after(double seconds);
  static Deadline at(std::chrono::steady_clock::time_point when) {
    Deadline d;
    d.active_ = true;
    d.when_ = when;
    return d;
  }

  bool active() const noexcept { return active_; }
  bool expired() const noexcept {
    return active_ && std::chrono::steady_clock::now() >= when_;
  }
  /// Seconds until expiry (negative once past; +inf when inactive).
  double remaining_seconds() const noexcept;
  std::chrono::steady_clock::time_point when() const noexcept { return when_; }

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// What a driver installs: a cancellation handle plus an optional deadline.
struct RunControl {
  CancelToken token;
  Deadline deadline;
};

/// RAII: makes `control` the calling thread's ambient run control for
/// this scope (and, when it is the process's outermost control, the
/// fallback every uncovered thread observes).  Scopes nest per thread
/// (the innermost wins; the previous control is restored on destruction).
/// The scope must outlive every parallel region it covers.
class ScopedRunControl {
 public:
  explicit ScopedRunControl(RunControl control);
  ~ScopedRunControl();

  ScopedRunControl(const ScopedRunControl&) = delete;
  ScopedRunControl& operator=(const ScopedRunControl&) = delete;

  const RunControl& control() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True while any ScopedRunControl is installed.
bool control_active() noexcept;

/// Snapshot of the innermost installed control: `*out` receives a copy
/// whose token shares the ambient cancellation flag (so requesting or
/// observing cancellation through the copy is equivalent) and whose
/// deadline is the ambient one.  Returns false — leaving `*out` untouched
/// — when no control is installed.  An embedding driver (the `rlcx serve`
/// daemon wrapping per-request cli::run invocations) uses this to chain a
/// nested control onto the server's token and deadline instead of masking
/// them.
bool current_control(RunControl* out) noexcept;

/// Non-throwing poll: has the ambient control been cancelled or its
/// deadline passed?  For call sites that prefer a clean early return over
/// unwinding (none in-tree yet; checkpoint() is the normal form).
bool stop_requested() noexcept;

/// The cooperative cancellation point.  No-op without an installed
/// control; otherwise throws diag::CancelledError when cancellation has
/// been requested, or diag::DeadlineExceeded when the deadline has passed.
/// `where` names the calling stage ("rt", "fd2d", "transient", ...).
/// Honours the `cancel` fault-injection site: RLCX_FAULT_SCHEDULE=cancel:N
/// requests cancellation at the Nth checkpoint, making "killed
/// mid-campaign" reproducible to the exact chunk boundary.
void checkpoint(const char* where);

namespace detail {

/// Internal (rt::Pool): the calling thread's ambient scope as an opaque
/// pointer, captured at task submission so the task body can observe the
/// submitting driver's control.  Valid only while that driver's
/// ScopedRunControl lives — guaranteed by the documented lifetime
/// protocol (the scope outlives every parallel region it covers).
const void* ambient_snapshot() noexcept;

/// Internal (rt::Pool): RAII that makes a snapshot the calling thread's
/// ambient for the scope's lifetime (restoring the previous one after),
/// installed around each pool task body.
class ScopedAmbientAdopt {
 public:
  explicit ScopedAmbientAdopt(const void* ambient) noexcept;
  ~ScopedAmbientAdopt();
  ScopedAmbientAdopt(const ScopedAmbientAdopt&) = delete;
  ScopedAmbientAdopt& operator=(const ScopedAmbientAdopt&) = delete;

 private:
  const void* previous_;
};

}  // namespace detail

}  // namespace rlcx::run
