// Deterministic fault injection for the degradation ladders.
//
// The robustness machinery (cache quarantine -> rebuild, cache-store retry
// -> skip, SOR escalation ladder, cooperative cancellation) only earns
// trust if it can be *driven* on demand, in-process and reproducibly.
// This injector triggers named faults at scheduled call counts:
//
//   RLCX_FAULT_SCHEDULE=cache_write:3,sor_diverge:1
//
// arms the 3rd call to fault_point("cache_write") and the 1st call to
// fault_point("sor_diverge").  Each entry is `site:N` (fire exactly at the
// Nth call, 1-based) or `site:N+` (fire at the Nth and every later call —
// how a *persistent* failure is modelled, e.g. a full disk).  A trailing
// `!` (`site:N!`, `site:N+!`) upgrades the entry to a *crash* action: the
// armed call does not return — the process dies on the spot via
// `_exit(137)` (the wait-status of a kill -9), simulating a power cut or
// OOM kill at an exact syscall boundary.  The crash-recovery harness arms
// these inside forked children and asserts the parent-side recovery
// invariants.  Entries for the same site accumulate.  Call counts are
// process-wide and advance on every fault_point() call for an armed site,
// from any thread, so a given schedule triggers at the same call
// regardless of pool width.
//
// In-tree sites:
//   cache_write    TableCache::store staging write (transient I/O failure)
//   cache_read     TableCache::load entry parse (corruption -> quarantine)
//   cache_staged   TableCache::store after the tmp file is written and
//                  fsynced, before the rename publishes it (a crash here
//                  must leave only an orphan tmp file, never a torn entry)
//   sor_diverge    cap::fd2d first SOR attempt (forces the escalation
//                  ladder)
//   cancel         run::checkpoint (requests cancellation at the Nth
//                  checkpoint — a reproducible SIGINT)
//   io_short_write TableCache staging / protocol write loops: the write
//                  stops partway (torn bytes on disk / on the wire)
//   io_enospc      TableCache staging + BatchJournal append: ENOSPC-style
//                  hard write failure
//   journal_tear   BatchJournal::record between the two halves of a record
//                  write (crash here = torn journal tail at an exact byte
//                  offset)
//   journal_fsync  BatchJournal fsync (Durability::kFsync) failure
//   alloc_fail     res::Reservation acquire + serve admission estimate
//                  (every memory-budget reservation point: solver path
//                  selection, table-grid construction, peec/hmat fills,
//                  cost-based admission).  Firing makes that reservation
//                  behave as over-budget: the degradation ladder runs
//                  (dense->hmat, then typed refusal / exit 7) without
//                  real memory pressure
//   accept_emfile  serve accept() loop: simulated EMFILE from accept
//   sock_reset_midframe  serve/protocol write_all between header and
//                  payload (peer reset mid-frame)
//
// With no schedule the injector is disabled and fault_point() is a single
// relaxed atomic load returning false.
#pragma once

#include <cstdint>
#include <string>

namespace rlcx::run {

/// True when any schedule is armed (the cheap gate hot paths check before
/// paying for the site lookup).
bool fault_injection_enabled() noexcept;

/// Counts this call against `site`'s schedule and returns true when the
/// schedule arms it.  Unscheduled sites do not count calls (so production
/// sites cost nothing when a schedule targets only other sites).
bool fault_point(const char* site) noexcept;

class FaultInjector {
 public:
  /// The process-wide injector; first use parses RLCX_FAULT_SCHEDULE (a
  /// malformed value emits a `usage` warning and arms nothing).
  static FaultInjector& global();

  /// Replaces the schedule.  Throws diag::UsageError on bad grammar
  /// (entries must be `site:N` or `site:N+`, optionally `!`-suffixed for
  /// the crash action, N >= 1).  Resets call counts.
  void set_schedule(const std::string& schedule);

  /// Disarms everything and resets all counters.
  void clear();

  /// Calls observed / faults triggered at `site` since the last
  /// set_schedule()/clear() (0 for unknown sites).
  std::uint64_t calls(const std::string& site) const;
  std::uint64_t triggered(const std::string& site) const;

 private:
  FaultInjector();
  friend bool fault_point(const char* site) noexcept;
  bool hit(const char* site) noexcept;

  struct Impl;
  Impl* impl_;  ///< intentionally leaked (process-lifetime singleton)
};

}  // namespace rlcx::run
