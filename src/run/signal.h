// SIGINT -> cooperative cancellation.
//
// Ctrl-C on an hours-long campaign must not abort mid-write: the handler
// only sets the CancelToken's lock-free flag (the one async-signal-safe
// thing it may do), and the pipeline unwinds at its next checkpoint —
// after which every completed job is already stored and journaled (journal
// appends flush eagerly, so there is nothing left to save).  A second
// SIGINT while cancellation is pending falls back to the previous
// (default) disposition, so a wedged run can still be killed.
#pragma once

#include "run/control.h"

namespace rlcx::run {

/// RAII: installs a SIGINT handler that requests cancellation on `token`
/// for this object's lifetime, restoring the previous handler (and target
/// token) on destruction.  Scopes nest; the innermost wins.  Only
/// meaningful on the main thread of a process (signal dispositions are
/// process-global).
class ScopedSigintCancel {
 public:
  explicit ScopedSigintCancel(CancelToken token);
  ~ScopedSigintCancel();

  ScopedSigintCancel(const ScopedSigintCancel&) = delete;
  ScopedSigintCancel& operator=(const ScopedSigintCancel&) = delete;

 private:
  CancelToken token_;  ///< keeps the shared flag alive for the handler
  void (*previous_handler_)(int) = nullptr;
  detail::CancelState* previous_target_ = nullptr;
};

/// As ScopedSigintCancel, but for SIGTERM — the polite stop a service
/// manager sends a daemon.  The `rlcx serve` loop installs both, so
/// Ctrl-C in a terminal and `kill <pid>` take the same graceful-drain
/// path (in-flight requests unwind at their next checkpoint, the request
/// journal stays consistent).  Shares the handler target with
/// ScopedSigintCancel; install both with the same token.
class ScopedSigtermCancel {
 public:
  explicit ScopedSigtermCancel(CancelToken token);
  ~ScopedSigtermCancel();

  ScopedSigtermCancel(const ScopedSigtermCancel&) = delete;
  ScopedSigtermCancel& operator=(const ScopedSigtermCancel&) = delete;

 private:
  CancelToken token_;
  void (*previous_handler_)(int) = nullptr;
  detail::CancelState* previous_target_ = nullptr;
};

/// RAII: ignores SIGPIPE for this object's lifetime, restoring the prior
/// disposition on destruction.  A daemon writing to a peer that closed
/// mid-reply must see EPIPE (a typed, per-connection `io` fault), never
/// the process-killing default.  Belt and braces with FdStream's
/// MSG_NOSIGNAL: this also covers non-socket fds and any third-party
/// writes on daemon threads.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore();
  ~ScopedSigpipeIgnore();

  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  void (*previous_handler_)(int) = nullptr;
};

}  // namespace rlcx::run
