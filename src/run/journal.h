// Append-only completion journal for batch campaigns (the --resume
// manifest).
//
// A characterisation campaign is a set of independent jobs, each with a
// stable id (the table cache's 16-hex key hash).  The journal records
// "this id completed durably" — appended *after* the job's results are
// stored — so a relaunch can skip finished work exactly: ids present in
// the journal are served from the cache with zero re-solves.
//
// Format (docs/robustness.md): a text file, first line `rlcx-journal 1`,
// then one `done <id>` line per completed id.  Appends are a single
// write+flush of one full line, and the loader ignores a trailing line
// without its newline, so a run killed mid-append (SIGKILL, power loss)
// loses at most the record being written — never the records before it,
// and a torn record is re-done rather than trusted.
#pragma once

#include <cstddef>
#include <mutex>
#include <set>
#include <string>

namespace rlcx::run {

class BatchJournal {
 public:
  /// Opens `path` for appending, creating it (with its header) when
  /// absent.  An existing file is validated (header line) and its
  /// completed ids loaded; a file that is not a journal throws an `io`
  /// fault rather than being clobbered.
  explicit BatchJournal(std::string path);

  const std::string& path() const noexcept { return path_; }

  /// Ids already recorded (including those recorded by this process).
  std::set<std::string> completed() const;
  bool contains(const std::string& id) const;
  std::size_t size() const;

  /// Records `id` as complete: appends one `done <id>` line and flushes
  /// before returning, so a record observed by record() is durable against
  /// any later kill.  Idempotent and thread-safe (concurrent jobs finish
  /// on pool threads).  Ids must be non-empty and free of whitespace.
  void record(const std::string& id);

  /// Parses a journal without opening it for append (the --resume path
  /// when the manifest is read-only or belongs to another run).  A missing
  /// file yields an empty set.
  static std::set<std::string> load(const std::string& path);

 private:
  std::string path_;
  mutable std::mutex m_;
  std::set<std::string> done_;
};

}  // namespace rlcx::run
