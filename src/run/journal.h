// Append-only completion journal for batch campaigns (the --resume
// manifest).
//
// A characterisation campaign is a set of independent jobs, each with a
// stable id (the table cache's 16-hex key hash).  The journal records
// "this id completed durably" — appended *after* the job's results are
// stored — so a relaunch can skip finished work exactly: ids present in
// the journal are served from the cache with zero re-solves.
//
// Format (docs/robustness.md): a text file, first line `rlcx-journal 1`,
// then one `done <id>` line per completed id.  Appends are a single
// write of one full line, and the loader ignores a trailing line without
// its newline, so a run killed mid-append (SIGKILL, power loss) loses at
// most the record being written — never the records before it, and a torn
// record is re-done rather than trusted.  Opening a journal with a torn
// tail *repairs* it: the file is truncated back to the last whole line
// (byte-exact) with a typed `io` warning, so the damage cannot compound.
//
// Durability: kFlush (default) hands each line to the kernel before
// record() returns — safe against process death, not against power loss.
// kFsync additionally fsyncs the journal fd per append (`batch --fsync`),
// making each record durable against a power cut at ~one disk flush per
// completed job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

namespace rlcx::run {

/// How hard BatchJournal pushes each record toward the platter.
enum class Durability {
  kFlush,  ///< write() per record: survives process kill, not power loss
  kFsync,  ///< write()+fsync() per record: survives power loss
};

class BatchJournal {
 public:
  /// Opens `path` for appending, creating it (with its header) when
  /// absent.  An existing file is validated (header line) and its
  /// completed ids loaded; a torn trailing record — or a header torn by a
  /// crash during creation — is truncated away with an `io` warning; a
  /// file that is not a journal throws an `io` fault rather than being
  /// clobbered.
  explicit BatchJournal(std::string path,
                        Durability durability = Durability::kFlush);
  ~BatchJournal();

  BatchJournal(const BatchJournal&) = delete;
  BatchJournal& operator=(const BatchJournal&) = delete;

  const std::string& path() const noexcept { return path_; }
  Durability durability() const noexcept { return durability_; }

  /// Ids already recorded (including those recorded by this process).
  std::set<std::string> completed() const;
  bool contains(const std::string& id) const;
  std::size_t size() const;

  /// Records `id` as complete: appends one `done <id>` line (write(2),
  /// plus fsync(2) under Durability::kFsync) before returning, so a
  /// record observed by record() is durable against any later kill.
  /// Idempotent and thread-safe (concurrent jobs finish on pool threads).
  /// Ids must be non-empty and free of whitespace.
  void record(const std::string& id);

  /// fsync(2) calls issued so far (0 under Durability::kFlush).
  std::uint64_t fsyncs() const;

  /// Torn trailing bytes truncated away when this journal was opened
  /// (0 for a clean file).
  std::size_t tail_dropped_bytes() const noexcept {
    return tail_dropped_bytes_;
  }

  /// Parses a journal without opening it for append (the --resume path
  /// when the manifest is read-only or belongs to another run).  A missing
  /// file yields an empty set; a torn tail is dropped (but the file is not
  /// repaired).
  static std::set<std::string> load(const std::string& path);

 private:
  std::string path_;
  Durability durability_;
  int fd_ = -1;
  std::size_t tail_dropped_bytes_ = 0;
  mutable std::mutex m_;
  std::set<std::string> done_;
  std::uint64_t fsyncs_ = 0;
};

}  // namespace rlcx::run
