#include "cli/cli.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "ckt/spice_export.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "ckt/transient.h"
#include "core/batch_extractor.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "core/screening.h"
#include "core/table_builder.h"
#include "core/table_cache.h"
#include "geom/builders.h"
#include "hmat/stats.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "peec/kernel_batch.h"
#include "res/budget.h"
#include "rt/pool.h"
#include "run/control.h"
#include "run/journal.h"
#include "run/signal.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

namespace rlcx::cli {

namespace {

using units::um;

geom::PlaneConfig parse_planes(const std::string& s) {
  if (s == "none") return geom::PlaneConfig::kNone;
  if (s == "below") return geom::PlaneConfig::kBelow;
  if (s == "above") return geom::PlaneConfig::kAbove;
  if (s == "both") return geom::PlaneConfig::kBothSides;
  throw diag::UsageError(
      "cli", "unknown plane config: " + s + " (none|below|above|both)");
}

core::ExtrapolationPolicy parse_extrapolation(const std::string& s) {
  if (s == "warn") return core::ExtrapolationPolicy::kWarn;
  if (s == "clamp") return core::ExtrapolationPolicy::kClamp;
  if (s == "throw") return core::ExtrapolationPolicy::kThrow;
  throw diag::UsageError(
      "cli", "unknown --extrapolation policy: " + s + " (warn|clamp|throw)");
}

/// --strict hardens the table cache too: corrupt entries fail loudly
/// instead of being quarantined and rebuilt.
core::CacheRecoveryPolicy cache_policy(const Args& args) {
  return args.has("strict") ? core::CacheRecoveryPolicy::kStrict
                            : core::CacheRecoveryPolicy::kRecover;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Splits on commas, trimming whitespace around each item (so
/// --traces "g:5, s:10" works) and rejecting empty ones.
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(trim(cur));
  for (const std::string& tok : out)
    if (tok.empty())
      throw diag::UsageError(
          "cli", "empty item in comma-separated list: \"" + s + "\"");
  return out;
}

// Custom structure: --traces "g:5,s:10,g:5" --spacings "1,1" (widths in um,
// g = dedicated ground/shield, s = signal).
geom::Block make_custom(const geom::Technology& tech, const Args& args,
                        int layer, double len, geom::PlaneConfig planes) {
  std::vector<geom::Trace> traces;
  std::vector<double> widths;
  for (const std::string& tok : split_commas(args.get("traces", ""))) {
    if (tok.size() < 3 || tok[1] != ':' || (tok[0] != 'g' && tok[0] != 's'))
      throw diag::UsageError("cli", "bad --traces token: " + tok +
                                        " (expected g:W or s:W)");
    geom::Trace t;
    t.role = tok[0] == 'g' ? geom::TraceRole::kGround
                           : geom::TraceRole::kSignal;
    t.width = um(std::stod(tok.substr(2)));
    t.name = std::string(1, tok[0]) + std::to_string(traces.size());
    traces.push_back(t);
    widths.push_back(t.width);
  }
  std::vector<double> spacings;
  if (args.has("spacings"))
    for (const std::string& tok : split_commas(args.get("spacings", "")))
      spacings.push_back(um(std::stod(tok)));
  else
    spacings.assign(traces.size() > 0 ? traces.size() - 1 : 0,
                    um(args.get_num("spacing-um", 1.0)));
  if (spacings.size() + 1 != traces.size())
    throw diag::UsageError("cli", "--spacings needs one fewer entry than "
                                  "--traces");
  double x = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) x += spacings[i - 1];
    traces[i].x_center = x + 0.5 * widths[i];
    x += widths[i];
  }
  return geom::Block(&tech, layer, len, std::move(traces), planes);
}

geom::Block make_structure(const geom::Technology& tech, const Args& args) {
  const std::string kind = args.get("structure", "cpw");
  const int layer = static_cast<int>(args.get_num("layer", 6));
  const double len = um(args.get_num("length-um", 1000.0));
  const double ws = um(args.get_num("signal-um", 10.0));
  const double wg = um(args.get_num("ground-um", 5.0));
  const double sp = um(args.get_num("spacing-um", 1.0));
  if (args.has("traces")) {
    geom::PlaneConfig planes = geom::PlaneConfig::kNone;
    if (kind == "microstrip") planes = geom::PlaneConfig::kBelow;
    if (kind == "stripline") planes = geom::PlaneConfig::kBothSides;
    return make_custom(tech, args, layer, len, planes);
  }
  if (kind == "cpw")
    return geom::coplanar_waveguide(tech, layer, len, ws, wg, sp);
  if (kind == "microstrip")
    return geom::microstrip(tech, layer, len, ws, wg, sp);
  if (kind == "stripline")
    return geom::stripline(tech, layer, len, ws, wg, sp);
  throw diag::UsageError(
      "cli", "unknown structure: " + kind + " (cpw|microstrip|stripline)");
}

solver::SolveOptions solve_options(const Args& args) {
  solver::SolveOptions opt;
  const double tr = args.get_num("trise-ps", 200.0) * 1e-12;
  opt.frequency = solver::significant_frequency(tr);
  const std::string solver = args.get("solver", "auto");
  if (solver == "dense") {
    opt.solver = solver::SolverKind::kDense;
  } else if (solver == "hmat") {
    opt.solver = solver::SolverKind::kHmat;
  } else if (solver == "auto") {
    opt.solver = solver::SolverKind::kAuto;
  } else {
    throw diag::UsageError("cli", "unknown --solver: " + solver +
                                      " (dense|hmat|auto)");
  }
  return opt;
}

// The characterisation grid the `tables` command and the --table-cache
// paths share: --points samples per axis over the clock-wiring ranges.
core::TableGrid grid_from_args(const Args& args) {
  const auto n = static_cast<std::size_t>(args.get_num("points", 4));
  if (n < 2) throw diag::UsageError("cli", "--points must be >= 2");
  core::TableGrid grid;
  grid.widths = geomspace(um(1), um(20), n);
  grid.spacings = geomspace(um(0.5), um(10), n);
  grid.lengths = geomspace(um(100), um(6000), n);
  return grid;
}

/// The shared cache-stats report of every cache-backed command (extract /
/// tables / batch): one line of hit/miss + traffic counters — including
/// the store-retry counters PRs 4-5 added — and, when the build ran any
/// matrix fills, the kernel-memo hit rate.  The `rlcx serve` stats
/// request reports the same shape, so one runbook covers both paths.
void print_cache_stats(const core::TableCache& cache, std::size_t solves,
                       const core::BuildStats* build, std::ostream& out) {
  const core::CacheStats cs = cache.stats();
  out << "table cache " << cache.directory() << ": "
      << (cs.hits > 0 ? "cache hit" : "cache miss") << ", " << solves
      << " field solves, " << cs.bytes_read << " bytes read, "
      << cs.bytes_written << " bytes written";
  if (cs.write_retries > 0) out << ", " << cs.write_retries
                                << " write retries";
  if (cs.stores_dropped > 0) out << ", " << cs.stores_dropped
                                 << " stores dropped";
  if (cs.quarantined_at_startup > 0)
    out << ", " << cs.quarantined_at_startup << " quarantined at startup";
  if (cs.tmp_swept > 0)
    out << ", " << cs.tmp_swept << " staging files swept";
  if (cs.fsyncs > 0) out << ", " << cs.fsyncs << " fsyncs";
  out << "\n";
  if (build != nullptr && build->pair_lookups > 0)
    out << "kernel memo: " << build->memo_hits << "/"
        << build->pair_lookups << " pair lookups served ("
        << static_cast<int>(100.0 * build->memo_hit_rate() + 0.5)
        << "% hit rate, " << build->kernel_evals << " evaluations)\n";
  if (build != nullptr && build->batch_runs > 0)
    out << "batch engine: "
        << build->batch_volume_terms + build->batch_filament_terms
        << " kernel terms (" << build->batch_volume_terms << " volume, "
        << build->batch_filament_terms << " filament) in "
        << build->batch_runs << " batches, "
        << static_cast<std::uint64_t>(build->batch_terms_per_second() + 0.5)
        << " terms/s, simd " << peec::batch_simd_name() << "\n";
  if (build != nullptr && build->hmat_solves > 0) {
    out << "hmat solver: " << build->hmat_solves << " hierarchical / "
        << build->dense_solves << " dense solves, "
        << build->gmres_iterations << " GMRES iterations, "
        << static_cast<int>(100.0 * build->hmat_compression() + 0.5)
        << "% entries stored";
    if (build->gmres_fallbacks > 0)
      out << ", " << build->gmres_fallbacks << " dense fallbacks";
    out << "\n";
  }
  if (build != nullptr &&
      (build->mem_degradations > 0 || build->mem_refusals > 0))
    out << "memory budget: " << build->mem_degradations
        << " dense->hmat degradation"
        << (build->mem_degradations == 1 ? "" : "s") << ", "
        << build->mem_refusals << " refusal"
        << (build->mem_refusals == 1 ? "" : "s") << " (budget "
        << build->mem_limit_bytes << " bytes, peak " << build->mem_peak_bytes
        << ")\n";
  if (cs.quarantined > 0)
    out << "table cache: " << cs.quarantined << " corrupt entr"
        << (cs.quarantined == 1 ? "y" : "ies")
        << " quarantined and re-characterised\n";
}

/// The inductance provider for extract/delay: the direct field solver by
/// default; with --table-cache DIR pre-characterised tables served
/// cache-first, with the hit/miss and solve counters reported on `out`;
/// with a warm ProviderSource (the serve daemon) the source's in-memory
/// store, skipping the per-invocation cache open entirely.
std::shared_ptr<const core::InductanceProvider> make_inductance_model(
    const Args& args, const geom::Technology& tech, const geom::Block& blk,
    const solver::SolveOptions& sopt, std::ostream& out,
    ProviderSource* warm) {
  // Validate the policy flag up front so a typo is a usage error even on
  // the direct-solver path, where it would otherwise never be read.
  const core::ExtrapolationPolicy extrapolation =
      parse_extrapolation(args.get("extrapolation", "warn"));
  if (warm != nullptr) {
    ProviderRequest req;
    req.tech = &tech;
    req.layer = blk.layer_index();
    req.planes = blk.planes();
    req.grid = grid_from_args(args);
    req.options = sopt;
    req.extrapolation = extrapolation;
    return warm->provider(req, out);
  }
  if (!args.has("table-cache"))
    return std::make_shared<core::DirectInductanceModel>(
        &tech, blk.layer_index(), blk.planes(), sopt);
  core::TableCache cache(args.get("table-cache", ""), cache_policy(args));
  const std::size_t solves_before = core::table_build_solve_count();
  core::BuildStats bstats;
  core::InductanceTables tables = core::build_tables_cached(
      blk.tech(), blk.layer_index(), blk.planes(), grid_from_args(args),
      sopt, cache, static_cast<int>(args.get_num("threads", 0)), &bstats);
  print_cache_stats(cache, core::table_build_solve_count() - solves_before,
                    &bstats, out);
  auto model =
      std::make_shared<core::TableInductanceModel>(std::move(tables));
  model->set_extrapolation_policy(extrapolation);
  return model;
}

int cmd_help(std::ostream& out) {
  out << "rlcx — clocktree RLC extraction (DATE 2000 reproduction)\n\n"
         "commands:\n"
         "  extract   extract R, L, C of a shielded wire structure\n"
         "  tables    pre-characterise inductance tables and save them\n"
         "  batch     characterisation campaign over layers x plane\n"
         "            configs, with checkpoint/resume\n"
         "  delay     simulate buffer->sink delay of the structure\n"
         "  cache     inspect or purge an on-disk table cache\n"
         "  serve     long-lived extraction daemon with a warm table\n"
         "            store (docs/serve-protocol.md)\n"
         "  query     send one request to a running daemon\n"
         "  help      this text\n\n"
         "common flags: --structure cpw|microstrip|stripline --layer N\n"
         "  --length-um N --signal-um N --ground-um N --spacing-um N\n"
         "  --trise-ps N (sets the significant frequency 0.32/t_rise)\n"
         "  --table-cache DIR (serve inductance from cached tables;\n"
         "  a changed tech/grid/frequency re-characterises automatically)\n"
         "  --strict (escalate warnings to errors; corrupt cache entries\n"
         "  fail instead of being quarantined)  --lenient (default)\n"
         "  --extrapolation warn|clamp|throw (out-of-grid table queries)\n"
         "  --threads N (size the worker pool; precedence: --threads, then\n"
         "  RLCX_THREADS, then hardware concurrency; results are\n"
         "  bit-identical for any thread count)\n"
         "  --solver dense|hmat|auto (impedance solver: blocked-LU oracle,\n"
         "  hierarchical ACA+GMRES, or pick by problem size; default auto)\n"
         "  --mem-budget MIB (process memory budget; precedence:\n"
         "  --mem-budget, then RLCX_MEM_BUDGET, then half of physical RAM;\n"
         "  0 = unlimited.  Over-budget dense solves degrade to the hmat\n"
         "  path with a warning; work that cannot fit at all exits 7)\n\n"
         "extract: [--spice FILE] [--ac-resistance] [--table-cache DIR]\n"
         "tables:  --out FILE [--planes none|below|above|both] [--points N]\n"
         "         [--threads N] (0 = RLCX_THREADS/all cores) [--binary]\n"
         "         [--table-cache DIR]\n"
         "batch:   --table-cache DIR [--layers 5,6] [--planes-list\n"
         "         none,below,...] [--points N] [--journal FILE]\n"
         "         [--resume [FILE]] (continue an interrupted campaign;\n"
         "         journaled jobs re-solve nothing) [--fsync] (fsync the\n"
         "         journal per job: resume survives power loss)\n"
         "delay:   [--rs OHM] [--sink-ff N] [--vdd V] [--sections N]\n"
         "         [--no-inductance] [--csv FILE] [--table-cache DIR]\n"
         "cache:   --dir DIR [--stat] [--list] [--purge]  (default: stat)\n"
         "serve:   --table-cache DIR (--socket PATH | --stdio)\n"
         "         [--max-tables N] [--max-active N] [--queue-depth N]\n"
         "         [--request-deadline-s S] [--idle-timeout-s S] (drop\n"
         "         connections silent this long) [--log FILE]\n"
         "query:   [--retries N] [--backoff-ms MS] [--connect-timeout-s S]\n"
         "         [--timeout-s S] --socket PATH CMD [flags...]  (retries\n"
         "         only idempotent commands, with jittered backoff)\n\n"
         "run control: --deadline-s N bounds any command's wall clock;\n"
         "  Ctrl-C on `batch` cancels cooperatively — completed jobs stay\n"
         "  cached + journaled, relaunch with --resume to continue\n\n"
         "exit codes: 0 success, 1 internal error, 2 usage error,\n"
         "  3 invalid input (geometry/io/cache), 4 numerical failure,\n"
         "  5 cancelled or deadline exceeded (resumable for batch),\n"
         "  6 overloaded (serve admission queue full — back off, retry),\n"
         "  7 resource-exhausted (over the memory budget even after\n"
         "  degradation — not retryable; shrink the request or raise\n"
         "  --mem-budget); warnings go to stderr (docs/robustness.md)\n";
  return 0;
}

int cmd_extract(const Args& args, std::ostream& out, ProviderSource* warm) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block blk = make_structure(tech, args);
  const solver::SolveOptions sopt = solve_options(args);
  const std::shared_ptr<const core::InductanceProvider> model =
      make_inductance_model(args, tech, blk, sopt, out, warm);
  core::ExtractOptions eopt;
  eopt.ac_resistance = args.has("ac-resistance");
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, *model, eopt);

  out << "structure: " << args.get("structure", "cpw") << ", layer "
      << blk.layer_index() << ", length "
      << units::to_um(blk.length()) << " um, planes "
      << geom::to_string(blk.planes()) << "\n";
  out << "extraction frequency: " << units::to_ghz(sopt.frequency)
      << " GHz\n\n";
  for (std::size_t i = 0; i < blk.size(); ++i) {
    out << "trace " << blk.trace(i).name << " (w="
        << units::to_um(blk.trace(i).width) << " um): R = "
        << seg.resistance[i] << " ohm";
    // Inductance rows may cover a subset of traces (loop mode).
    for (std::size_t r = 0; r < seg.l_traces.size(); ++r) {
      if (seg.l_traces[r] != i) continue;
      out << ", L = " << units::to_nh(seg.inductance(r, r)) << " nH";
    }
    out << ", Cg = " << units::to_ff(seg.cap_ground[i]) << " fF\n";
  }
  for (std::size_t r = 0; r < seg.l_traces.size(); ++r)
    for (std::size_t q = r + 1; q < seg.l_traces.size(); ++q)
      out << "mutual L(" << blk.trace(seg.l_traces[r]).name << ","
          << blk.trace(seg.l_traces[q]).name << ") = "
          << units::to_nh(seg.inductance(r, q)) << " nH\n";
  for (std::size_t i = 0; i + 1 < blk.size(); ++i)
    out << "coupling C(" << blk.trace(i).name << "," << blk.trace(i + 1).name
        << ") = " << units::to_ff(seg.cap_coupling[i]) << " fF\n";

  // Inductance-significance screen for the first signal, when the block
  // offers a return path for a loop-L estimate.
  const auto signals = blk.signal_indices();
  if (!signals.empty() &&
      (blk.planes() != geom::PlaneConfig::kNone ||
       !blk.ground_indices().empty())) {
    const solver::LoopResult loop = solver::extract_loop(blk, sopt);
    core::ScreeningInput si;
    const std::size_t sig = signals.front();
    si.resistance = seg.resistance[sig];
    si.inductance = loop.inductance(0, 0);
    si.capacitance = seg.cap_ground[sig];
    if (sig > 0) si.capacitance += seg.cap_coupling[sig - 1];
    if (sig < seg.cap_coupling.size()) si.capacitance += seg.cap_coupling[sig];
    si.rise_time = args.get_num("trise-ps", 200.0) * 1e-12;
    const core::ScreeningResult sr = core::screen_inductance(si);
    out << "\nscreen: loop L = " << units::to_nh(si.inductance)
        << " nH, Z0 = " << sr.line_impedance << " ohm, edge ratio "
        << sr.edge_ratio << ", damping ratio " << sr.damping_ratio
        << "\n        -> inductance "
        << (sr.inductance_significant ? "SIGNIFICANT: use the RLC netlist"
                                      : "negligible: RC extraction suffices")
        << "\n";
  }

  if (args.has("spice")) {
    ckt::Netlist nl;
    const ckt::NodeId in = nl.add_node("in");
    core::LadderOptions lopt;
    lopt.sections = static_cast<int>(args.get_num("sections", 4));
    core::stamp_segment(nl, blk, seg, {in}, lopt);
    ckt::SpiceExportOptions xopt;
    xopt.title = "rlcx extract deck";
    std::ofstream f(args.get("spice", ""));
    if (!f)
      throw diag::IoError("cli", "cannot open SPICE output file " +
                                     args.get("spice", ""));
    ckt::write_spice(f, nl, xopt);
    out << "\nSPICE deck written to " << args.get("spice", "") << "\n";
  }
  return 0;
}

int cmd_tables(const Args& args, std::ostream& out) {
  if (!args.has("out"))
    throw diag::UsageError("cli", "tables: --out FILE is required");
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::PlaneConfig planes =
      parse_planes(args.get("planes", "none"));
  const int layer = static_cast<int>(args.get_num("layer", 6));
  const core::TableGrid grid = grid_from_args(args);
  const int threads = static_cast<int>(args.get_num("threads", 0));
  const solver::SolveOptions sopt = solve_options(args);

  core::InductanceTables tables;
  if (args.has("table-cache")) {
    core::TableCache cache(args.get("table-cache", ""), cache_policy(args));
    const std::size_t solves_before = core::table_build_solve_count();
    core::BuildStats bstats;
    tables = core::build_tables_cached(tech, layer, planes, grid, sopt,
                                       cache, threads, &bstats);
    print_cache_stats(cache,
                      core::table_build_solve_count() - solves_before,
                      &bstats, out);
  } else {
    tables = core::build_tables(tech, layer, planes, grid, sopt, threads);
  }
  if (args.has("binary"))
    tables.save_file_binary(args.get("out", ""));
  else
    tables.save_file(args.get("out", ""));
  out << "built " << tables.self.values().size() << " self + "
      << tables.mutual.values().size() << " mutual entries at "
      << units::to_ghz(tables.frequency) << " GHz; saved to "
      << args.get("out", "") << (args.has("binary") ? " (binary)" : "")
      << "\n";
  return 0;
}

int cmd_cache(const Args& args, std::ostream& out) {
  if (!args.has("dir"))
    throw diag::UsageError("cli", "cache: --dir DIR is required");
  core::TableCache cache(args.get("dir", ""), cache_policy(args));
  if (args.has("purge")) {
    out << "purged " << cache.purge() << " entries from "
        << cache.directory() << "\n";
    return 0;
  }
  const std::vector<core::TableCache::Entry> entries = cache.list();
  std::uint64_t bytes = 0;
  for (const core::TableCache::Entry& e : entries) bytes += e.bytes;
  std::size_t quarantined = 0;
  for (const std::filesystem::directory_entry& de :
       std::filesystem::directory_iterator(cache.directory()))
    if (de.path().extension() == ".tbl.quarantine" ||
        (de.path().extension() == ".quarantine" &&
         de.path().stem().extension() == ".tbl"))
      ++quarantined;
  const core::CacheStats cs = cache.stats();
  out << "cache " << cache.directory() << ": " << entries.size()
      << " entries, " << bytes << " bytes";
  if (quarantined > 0) out << ", " << quarantined << " quarantined";
  if (cs.quarantined_at_startup > 0)
    out << ", " << cs.quarantined_at_startup
        << " torn entries quarantined at open";
  if (cs.tmp_swept > 0)
    out << ", " << cs.tmp_swept << " orphaned staging files swept";
  out << "\n";
  if (args.has("list"))
    for (const core::TableCache::Entry& e : entries)
      out << "  " << e.id << "  layer " << e.layer << "  planes "
          << geom::to_string(e.planes) << "  "
          << units::to_ghz(e.frequency) << " GHz  " << e.bytes
          << " bytes\n";
  return 0;
}

// batch: a characterisation campaign — the cross product of --layers and
// --planes-list, fanned out as one flat solve range, every completed job
// stored in the cache and journaled so an interrupted campaign resumes
// with zero re-solves for finished work.
int cmd_batch(const Args& args, const run::RunControl& rc,
              std::ostream& out) {
  if (!args.has("table-cache"))
    throw diag::UsageError("cli", "batch: --table-cache DIR is required");
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions sopt = solve_options(args);
  const core::TableGrid grid = grid_from_args(args);

  std::vector<int> layers;
  for (const std::string& tok : split_commas(args.get("layers", "6"))) {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size())
      throw diag::UsageError("cli", "bad --layers entry: " + tok);
    layers.push_back(v);
  }
  std::vector<geom::PlaneConfig> plane_list;
  for (const std::string& tok : split_commas(args.get("planes-list", "none")))
    plane_list.push_back(parse_planes(tok));

  std::vector<core::BatchJob> jobs;
  for (int layer : layers)
    for (geom::PlaneConfig p : plane_list) jobs.push_back({layer, p, grid});

  core::TableCache cache(args.get("table-cache", ""), cache_policy(args));
  std::string journal_path =
      args.get("journal", cache.directory() + "/batch.journal");
  if (args.has("resume") && !args.get("resume", "").empty())
    journal_path = args.get("resume", "");
  // Fresh-run guard: an existing journal with completions belongs to a
  // previous campaign.  Continuing it silently would mask "I forgot this
  // cache dir is in use"; the operator must opt in with --resume.
  if (!args.has("resume") && !run::BatchJournal::load(journal_path).empty())
    throw diag::UsageError(
        "cli", "journal " + journal_path +
                   " already records completed jobs; relaunch with --resume "
                   "to continue the campaign, or delete the journal to "
                   "start over");
  // --fsync: pay one disk flush per completed job so the journal (and
  // therefore --resume) survives a power cut, not just a process kill.
  run::BatchJournal journal(journal_path, args.has("fsync")
                                              ? run::Durability::kFsync
                                              : run::Durability::kFlush);
  const std::size_t journaled_before = journal.size();

  core::BatchOptions bopt;
  bopt.cache = &cache;
  bopt.journal = &journal;

  // Ctrl-C requests cooperative cancellation on the ambient control's
  // token; the fan-out unwinds at the next checkpoint with every finished
  // job already stored and journaled (exit code 5, resumable).
  run::ScopedSigintCancel sigint(rc.token);

  const std::size_t solves_before = core::table_build_solve_count();
  const peec::FillStats fills_before = peec::fill_stats_total();
  const peec::BatchStats batches_before = peec::batch_stats_total();
  const hmat::SolveStats hsolves_before = hmat::solve_stats_total();
  const core::BatchResult res = core::characterize_batch(tech, jobs, sopt,
                                                         bopt);
  const std::size_t solves = core::table_build_solve_count() - solves_before;

  out << "batch: " << jobs.size() << " jobs (" << layers.size()
      << (layers.size() == 1 ? " layer x " : " layers x ")
      << plane_list.size() << " plane config"
      << (plane_list.size() == 1 ? "" : "s") << "), " << res.jobs_resumed
      << " resumed from journal, " << solves << " field solves\n";
  const core::CacheStats cs = cache.stats();
  out << "cache " << cache.directory() << ": " << cs.hits << " hits, "
      << cs.misses << " misses, " << cs.bytes_written << " bytes written";
  if (cs.write_retries > 0) out << ", " << cs.write_retries
                                << " write retries";
  if (cs.stores_dropped > 0) out << ", " << cs.stores_dropped
                                 << " stores dropped";
  if (cs.quarantined_at_startup > 0)
    out << ", " << cs.quarantined_at_startup << " quarantined at startup";
  if (cs.tmp_swept > 0)
    out << ", " << cs.tmp_swept << " staging files swept";
  if (cs.fsyncs > 0) out << ", " << cs.fsyncs << " fsyncs";
  out << "\n";
  // The fan-out phase is shared across jobs, so report the campaign-wide
  // memo rate from the process aggregate delta.
  const peec::FillStats fills_delta{
      peec::fill_stats_total().pair_lookups - fills_before.pair_lookups,
      peec::fill_stats_total().kernel_evals - fills_before.kernel_evals,
      peec::fill_stats_total().memo_hits - fills_before.memo_hits};
  if (fills_delta.pair_lookups > 0)
    out << "kernel memo: " << fills_delta.memo_hits << "/"
        << fills_delta.pair_lookups << " pair lookups served ("
        << static_cast<int>(100.0 * fills_delta.hit_rate() + 0.5)
        << "% hit rate, " << fills_delta.kernel_evals << " evaluations)\n";
  const peec::BatchStats bnow = peec::batch_stats_total();
  const std::size_t bterms =
      (bnow.volume_terms - batches_before.volume_terms) +
      (bnow.filament_terms - batches_before.filament_terms);
  const std::uint64_t bnanos = bnow.eval_nanos - batches_before.eval_nanos;
  if (bnow.batch_runs > batches_before.batch_runs)
    out << "batch engine: " << bterms << " kernel terms in "
        << bnow.batch_runs - batches_before.batch_runs << " batches, "
        << static_cast<std::uint64_t>(
               bnanos == 0 ? 0.0
                           : static_cast<double>(bterms) * 1e9 /
                                     static_cast<double>(bnanos) +
                                 0.5)
        << " terms/s, simd " << peec::batch_simd_name() << "\n";
  const hmat::SolveStats hs = hmat::solve_stats_total();
  if (hs.hmat_solves > hsolves_before.hmat_solves) {
    const std::size_t stored = hs.stored_entries - hsolves_before.stored_entries;
    const std::size_t full = hs.full_entries - hsolves_before.full_entries;
    out << "hmat solver: " << hs.hmat_solves - hsolves_before.hmat_solves
        << " hierarchical / " << hs.dense_solves - hsolves_before.dense_solves
        << " dense solves, "
        << hs.gmres_iterations - hsolves_before.gmres_iterations
        << " GMRES iterations, "
        << static_cast<int>(full == 0 ? 0.0
                                      : 100.0 * static_cast<double>(stored) /
                                                static_cast<double>(full) +
                                            0.5)
        << "% entries stored\n";
  }
  out << "journal " << journal.path() << ": " << journal.size()
      << " completed ids (" << journal.size() - journaled_before
      << " new";
  if (journal.durability() == run::Durability::kFsync)
    out << ", " << journal.fsyncs() << " fsyncs";
  out << ")\n";
  return 0;
}

int cmd_delay(const Args& args, std::ostream& out, ProviderSource* warm) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block blk = make_structure(tech, args);
  const solver::SolveOptions sopt = solve_options(args);
  const std::shared_ptr<const core::InductanceProvider> model =
      make_inductance_model(args, tech, blk, sopt, out, warm);
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, *model);

  const double vdd = args.get_num("vdd", 1.8);
  const double tr = args.get_num("trise-ps", 200.0) * 1e-12;

  ckt::Netlist nl;
  const ckt::NodeId vin = nl.add_node("vin");
  const ckt::NodeId buf = nl.add_node("buf");
  nl.add_vsource(vin, ckt::kGround, ckt::SourceWaveform::ramp(vdd, tr));
  nl.add_resistor(vin, buf, args.get_num("rs", 25.0));
  core::LadderOptions lopt;
  lopt.sections = static_cast<int>(args.get_num("sections", 8));
  lopt.include_inductance = !args.has("no-inductance");
  const auto outs = core::stamp_segment(nl, blk, seg, {buf}, lopt);
  nl.add_capacitor(outs[0], ckt::kGround,
                   args.get_num("sink-ff", 200.0) * 1e-15);

  ckt::TransientOptions topt;
  topt.t_stop = 10.0 * tr + 1e-9;
  topt.dt = tr / 200.0;
  const ckt::TransientResult res = ckt::simulate(nl, topt);
  const ckt::Waveform wbuf = res.waveform(buf);
  const ckt::Waveform wsink = res.waveform(outs[0]);

  out << "netlist: " << (lopt.include_inductance ? "RLC" : "RC-only")
      << ", " << lopt.sections << " sections\n";
  out << "buffer->sink 50% delay: "
      << units::to_ps(ckt::delay_50(wbuf, wsink, vdd)) << " ps\n";
  out << "sink overshoot: "
      << 1e3 * std::max(0.0, wsink.max() - vdd) << " mV, undershoot: "
      << 1e3 * wsink.undershoot() << " mV\n";

  if (args.has("csv")) {
    std::ofstream f(args.get("csv", ""));
    if (!f)
      throw diag::IoError("cli", "cannot open CSV output file " +
                                     args.get("csv", ""));
    ckt::write_csv(f, {{"buf", wbuf}, {"sink", wsink}});
    out << "waveforms written to " << args.get("csv", "") << "\n";
  }
  return 0;
}

}  // namespace

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

double Args::get_num(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw diag::UsageError("cli", "bad numeric value for --" + key + ": " +
                                      it->second);
  return v;
}

std::size_t estimate_request_bytes(const std::vector<std::string>& argv) {
  try {
    const Args args = parse_args(argv);
    if (args.command != "extract" && args.command != "delay") return 0;
    const geom::Technology tech = geom::Technology::generic_025um();
    const geom::Block blk = make_structure(tech, args);
    const solver::SolveOptions sopt = solve_options(args);
    // The grid term covers the table path (serve's warm store and
    // --table-cache both characterise at --points samples per axis); for
    // a direct-solver request it is a small overestimate, which only errs
    // the admission decision toward safety.
    return solver::estimate_extract_bytes(blk, sopt) +
           core::estimate_grid_bytes(grid_from_args(args));
  } catch (...) {
    // Malformed requests cost nothing to refuse properly later.
    return 0;
  }
}

Args parse_args(const std::vector<std::string>& argv) {
  Args args;
  if (argv.empty()) {
    args.command = "help";
    return args;
  }
  args.command = argv[0];
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.rfind("--", 0) != 0)
      throw diag::UsageError("cli", "expected --flag, got: " + tok);
    const std::string key = tok.substr(2);
    if (key.empty()) throw diag::UsageError("cli", "empty flag");
    // Boolean flags: next token missing or looks like another flag.
    if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
      args.options[key] = argv[i + 1];
      ++i;
    } else {
      args.options[key] = "";
    }
  }
  return args;
}

int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err, ProviderSource* warm) {
  // Route the library's warnings channel to this invocation's error stream
  // and remember the worst category so --strict can escalate it.
  std::size_t warning_count = 0;
  diag::Category worst_warning = diag::Category::kUsage;
  const diag::ScopedWarningHandler warnings([&](const diag::Warning& w) {
    if (warning_count == 0 ||
        diag::exit_code(w.category) > diag::exit_code(worst_warning))
      worst_warning = w.category;
    ++warning_count;
    err << diag::format_warning(w) << "\n";
  });

  try {
    const Args args = parse_args(argv);
    if (args.has("strict") && args.has("lenient"))
      throw diag::UsageError("cli",
                             "--strict and --lenient are mutually exclusive");
    // A CLI --threads outranks RLCX_THREADS: size the process-global pool
    // before any command touches it.
    if (args.has("threads"))
      rt::Pool::set_global_threads(
          static_cast<int>(args.get_num("threads", 0)));
    // --mem-budget MiB outranks RLCX_MEM_BUDGET the same way: resize the
    // process budget before any command reserves against it (0 =
    // unlimited, docs/robustness.md "Resource governance").
    if (args.has("mem-budget")) {
      const double mib = args.get_num("mem-budget", 0.0);
      if (mib < 0.0)
        throw diag::UsageError("cli", "--mem-budget must be >= 0 MiB");
      res::Budget::global().set_limit(
          static_cast<std::uint64_t>(mib * 1024.0 * 1024.0));
    }
    // Every command runs under an ambient run control: --deadline-s bounds
    // the whole invocation, and the `cancel` fault-injection site plus the
    // batch command's SIGINT handler act on its token.  A triggered
    // checkpoint unwinds as a typed fault -> exit code 5.  When an outer
    // control is already installed (the serve daemon wrapping a request),
    // chain onto it: share its cancellation token and inherit its deadline
    // — the nested scope must tighten the embedder's bounds, not mask them.
    run::RunControl rc;
    run::RunControl ambient;
    if (run::current_control(&ambient)) {
      rc.token = ambient.token;
      rc.deadline = ambient.deadline;
    }
    if (args.has("deadline-s")) {
      const run::Deadline d =
          run::Deadline::after(args.get_num("deadline-s", 0.0));
      if (!rc.deadline.active() || d.when() < rc.deadline.when())
        rc.deadline = d;
    }
    run::ScopedRunControl control(rc);
    int code = 0;
    if (args.command == "help" || args.command == "--help")
      return cmd_help(out);
    else if (args.command == "extract") code = cmd_extract(args, out, warm);
    else if (args.command == "tables") code = cmd_tables(args, out);
    else if (args.command == "delay") code = cmd_delay(args, out, warm);
    else if (args.command == "cache") code = cmd_cache(args, out);
    else if (args.command == "batch") code = cmd_batch(args, rc, out);
    else {
      err << "unknown command: " << args.command << " (try 'rlcx help')\n";
      return 2;
    }
    if (code == 0 && args.has("strict") && warning_count > 0) {
      err << "strict mode: " << warning_count << " warning"
          << (warning_count == 1 ? "" : "s")
          << " escalated to an error (worst category: "
          << diag::to_string(worst_warning) << ")\n";
      return diag::exit_code(worst_warning);
    }
    return code;
  } catch (const std::bad_alloc&) {
    // A real allocation failure the budget's estimators did not predict.
    // Contained here so the serve daemon converts it into a typed status-7
    // response instead of dying and taking every other client with it.
    res::Budget::global().record_contained_bad_alloc();
    err << "error: [resource-exhausted] cli: allocation failed "
           "(std::bad_alloc); the request exceeds available memory — "
           "shrink it or raise --mem-budget\n";
    return 7;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    if (dynamic_cast<const diag::Fault*>(&e) != nullptr)
      return diag::exit_code(diag::category_of(e, diag::Category::kUsage));
    if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
      return 2;  // uncategorized bad input (e.g. std::stod) = usage
    return 1;
  }
}

}  // namespace rlcx::cli
