// Command-line front end: extract / tables / delay as one-shot commands.
//
// The logic lives in run() so tests can drive it with argument vectors and
// captured streams; src/cli/main.cpp is a thin shell around it.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rlcx::cli {

/// Parsed command line: a command word plus --key value pairs.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_num(const std::string& key, double fallback) const;
};

/// Parse ["extract", "--length-um", "6000", ...]; throws
/// std::invalid_argument on malformed input (flag without value, unknown
/// shape).
Args parse_args(const std::vector<std::string>& argv);

/// Execute.  Returns a process exit code; normal output goes to `out`,
/// diagnostics (errors and the library's warnings channel) to `err`.
///
/// Exit-code contract (stable; scripts may rely on it):
///   0  success
///   1  internal/uncategorized error
///   2  usage error (bad flags, unknown command/structure)
///   3  invalid input (geometry, file I/O, cache corruption under --strict)
///   4  numerical failure (singular system, diverging transient,
///      out-of-grid lookup under --extrapolation throw)
///   5  cancelled (SIGINT) or --deadline-s exceeded — the run unwound at a
///      safe boundary; `batch` campaigns resume with --resume
/// --strict escalates any warning to the exit code of its category;
/// --lenient (the default) reports warnings on `err` and exits 0.
///
/// Commands:
///   help
///   extract --structure cpw|microstrip|stripline --length-um N
///           [--signal-um N --ground-um N --spacing-um N --layer N
///            --trise-ps N --spice FILE --ac-resistance]
///           [--traces g:W,s:W,... --spacings S,S,...]  (custom bus, um)
///   tables  --planes none|below|above|both --out FILE
///           [--layer N --trise-ps N --points N]
///   batch   --table-cache DIR [--layers 5,6 --planes-list none,below
///            --points N --journal FILE --resume [FILE] --deadline-s N]
///   delay   (extract flags) [--rs N --sink-ff N --vdd N --sections N
///            --no-inductance --csv FILE]
int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err);

}  // namespace rlcx::cli
