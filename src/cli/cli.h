// Command-line front end: extract / tables / delay as one-shot commands.
//
// The logic lives in run() so tests can drive it with argument vectors and
// captured streams; src/cli/main.cpp is a thin shell around it.  The same
// entry point backs the `rlcx serve` daemon: the server turns each framed
// request into an argument vector and drives run() with a ProviderSource
// that serves inductance tables from its warm in-memory store, so daemon
// responses are formatted by exactly the code path the one-shot CLI uses.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/inductance_model.h"
#include "core/table_builder.h"
#include "geom/block.h"
#include "solver/options.h"

namespace rlcx::cli {

/// Parsed command line: a command word plus --key value pairs.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_num(const std::string& key, double fallback) const;
};

/// Parse ["extract", "--length-um", "6000", ...]; throws
/// std::invalid_argument on malformed input (flag without value, unknown
/// shape).
Args parse_args(const std::vector<std::string>& argv);

/// Estimated resident bytes of executing `argv`: for extract/delay, the
/// impedance-solver estimate of the request's block
/// (solver::estimate_extract_bytes) plus the characterisation grid the
/// table path would build (core::estimate_grid_bytes); 0 for other
/// commands and for argv that fails to parse (the request is admitted and
/// run() reports the error through the normal typed path).  Feeds the
/// serve daemon's cost-based admission (docs/robustness.md "Resource
/// governance"): a request whose estimate exceeds the memory budget gets
/// a typed status-7 refusal before a slot is granted.
std::size_t estimate_request_bytes(const std::vector<std::string>& argv);

/// Everything that determines which inductance tables a command needs —
/// the same tuple that content-addresses a table-cache entry
/// (core::TableCache::key_text).
struct ProviderRequest {
  const geom::Technology* tech = nullptr;
  int layer = 0;
  geom::PlaneConfig planes = geom::PlaneConfig::kNone;
  core::TableGrid grid;
  solver::SolveOptions options;
  core::ExtrapolationPolicy extrapolation = core::ExtrapolationPolicy::kWarn;
};

/// Hook for an embedding service: supplies ready inductance providers so
/// per-invocation cache opens and table deserialisation are skipped.  The
/// `rlcx serve` daemon implements this over its LRU-bounded warm table
/// store; when run() receives a source, extract/delay resolve their
/// tables through it instead of the --table-cache/direct-solver path.
/// provider() may write a one-line provenance note to `out` (the warm
/// analogue of the cold path's "table cache ..." line).
class ProviderSource {
 public:
  virtual ~ProviderSource() = default;
  virtual std::shared_ptr<const core::InductanceProvider> provider(
      const ProviderRequest& request, std::ostream& out) = 0;
};

/// Execute.  Returns a process exit code; normal output goes to `out`,
/// diagnostics (errors and the library's warnings channel) to `err`.
///
/// Exit-code contract (stable; scripts may rely on it):
///   0  success
///   1  internal/uncategorized error
///   2  usage error (bad flags, unknown command/structure)
///   3  invalid input (geometry, file I/O, cache corruption under --strict)
///   4  numerical failure (singular system, diverging transient,
///      out-of-grid lookup under --extrapolation throw)
///   5  cancelled (SIGINT) or --deadline-s exceeded — the run unwound at a
///      safe boundary; `batch` campaigns resume with --resume
///   6  overloaded — an admission-controlled service (`rlcx serve`)
///      rejected the request because its queue was full; back off & retry
/// --strict escalates any warning to the exit code of its category;
/// --lenient (the default) reports warnings on `err` and exits 0.
///
/// Commands:
///   help
///   extract --structure cpw|microstrip|stripline --length-um N
///           [--signal-um N --ground-um N --spacing-um N --layer N
///            --trise-ps N --spice FILE --ac-resistance]
///           [--traces g:W,s:W,... --spacings S,S,...]  (custom bus, um)
///   tables  --planes none|below|above|both --out FILE
///           [--layer N --trise-ps N --points N]
///   batch   --table-cache DIR [--layers 5,6 --planes-list none,below
///            --points N --journal FILE --resume [FILE] --deadline-s N]
///   delay   (extract flags) [--rs N --sink-ff N --vdd N --sections N
///            --no-inductance --csv FILE]
/// (`serve` and `query` are dispatched by main.cpp to the rlcx_serve
/// library before run() is reached; see docs/serve-protocol.md.)
///
/// `warm`, when non-null, supplies inductance providers for extract/delay
/// from an embedding service's warm store (see ProviderSource).  When an
/// ambient run::ScopedRunControl is already installed, run() chains onto
/// it: the nested control shares its cancellation token and inherits its
/// deadline (tightened further by --deadline-s), so a server's shutdown
/// signal reaches in-flight requests.
int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err, ProviderSource* warm = nullptr);

}  // namespace rlcx::cli
