#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "serve/client.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  // The daemon commands live in rlcx_serve (which itself embeds
  // cli::run for request execution), so they dispatch here rather than
  // inside cli::run — that keeps rlcx_cli free of a dependency cycle.
  if (!args.empty() && args[0] == "serve")
    return rlcx::serve::serve_main(args, std::cout, std::cerr);
  if (!args.empty() && args[0] == "query")
    return rlcx::serve::query_main(args, std::cout, std::cerr);
  return rlcx::cli::run(args, std::cout, std::cerr);
}
