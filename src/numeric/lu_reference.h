// Textbook scalar LU with partial pivoting — the pre-blocking implementation,
// kept verbatim as the accuracy/performance oracle for the cache-blocked
// LuDecomposition in lu.h.  Tests factor the same system through both and
// compare to 1e-13 relative; bench_peec_fill times them against each other.
// Production code should always use LuDecomposition.
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/error.h"
#include "numeric/matrix.h"

namespace rlcx {

template <typename T>
class ReferenceLu {
 public:
  explicit ReferenceLu(Matrix<T> a) : lu_(std::move(a)) {
    const std::size_t n = lu_.rows();
    if (n != lu_.cols())
      throw diag::UsageError("lu", "needs a square matrix, got " +
                                       std::to_string(n) + "x" +
                                       std::to_string(lu_.cols()));
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
      std::size_t piv = k;
      double best = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double mag = std::abs(lu_(i, k));
        if (mag > best) {
          best = mag;
          piv = i;
        }
      }
      if (best == 0.0 || !std::isfinite(best))
        throw diag::SingularSystem(
            "lu",
            std::string(best == 0.0 ? "zero" : "non-finite") +
                " pivot at column " + std::to_string(k) + " of a " +
                std::to_string(n) + "x" + std::to_string(n) + " system",
            k, n, std::numeric_limits<double>::infinity());
      if (piv != k) {
        for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
        std::swap(perm_[k], perm_[piv]);
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        if (m == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
      }
    }
  }

  std::size_t size() const { return lu_.rows(); }

  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n)
      throw diag::UsageError("lu", "rhs size " + std::to_string(b.size()) +
                                       " != system size " +
                                       std::to_string(n));
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    return x;
  }

  /// Column-by-column matrix solve (the pre-change multi-RHS path, with its
  /// per-column temporary vector — kept as the timing baseline).
  Matrix<T> solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.rows() != n)
      throw diag::UsageError("lu", "rhs rows " + std::to_string(b.rows()) +
                                       " != system size " +
                                       std::to_string(n));
    Matrix<T> x(n, b.cols());
    std::vector<T> col(n);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
      const std::vector<T> xc = solve(col);
      for (std::size_t i = 0; i < n; ++i) x(i, j) = xc[i];
    }
    return x;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace rlcx
