// Dense row-major matrix, for both double and std::complex<double>.
//
// The extraction problems in this library are small and dense (hundreds to a
// few thousand unknowns), where a cache-friendly dense store plus an O(n^3)
// LU beats any sparse machinery.  Bounds are checked with assert in debug
// builds only.
//
// The element store goes through res::TrackedAllocator: matrices are the
// dominant resident allocation of every solve (n^2 entries), so their bytes
// feed the process memory budget's accounting (docs/robustness.md "Resource
// governance").  Accounting is advisory — allocation never fails here;
// enforcement lives at the solver's reservation points.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "res/budget.h"

namespace rlcx {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Construct from nested initializer list: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      if (r.size() != cols_) throw std::invalid_argument("ragged matrix init");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  Matrix& operator+=(const Matrix& o) {
    check_same_shape(o);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    check_same_shape(o);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_) throw std::invalid_argument("matmul shape");
    Matrix c(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
      }
    }
    return c;
  }

  friend std::vector<T> operator*(const Matrix& a, const std::vector<T>& x) {
    if (a.cols_ != x.size()) throw std::invalid_argument("matvec shape");
    std::vector<T> y(a.rows_, T{});
    for (std::size_t i = 0; i < a.rows_; ++i) {
      T acc{};
      for (std::size_t j = 0; j < a.cols_; ++j) acc += a(i, j) * x[j];
      y[i] = acc;
    }
    return y;
  }

 private:
  void check_same_shape(const Matrix& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_)
      throw std::invalid_argument("matrix shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T, res::TrackedAllocator<T>> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace rlcx
