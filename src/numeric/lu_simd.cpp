#include "numeric/lu_simd.h"

#include "numeric/simd.h"

namespace rlcx::numeric {

namespace lu_scalar {

// Rank-4 register-blocked axpy: one read-modify-write pass over dst per
// four panel columns, scalar tail for m-counts not divisible by 4.  These
// are the original lu.h bodies, kept verbatim as the dispatch fallback and
// the tests' oracle.
void rank_update(double* dst, const double* const* src, const double* coef,
                 std::size_t m_count, std::size_t cbeg, std::size_t cend) {
  std::size_t q = 0;
  for (; q + 4 <= m_count; q += 4) {
    const double a0 = coef[q], a1 = coef[q + 1];
    const double a2 = coef[q + 2], a3 = coef[q + 3];
    const double* s0 = src[q];
    const double* s1 = src[q + 1];
    const double* s2 = src[q + 2];
    const double* s3 = src[q + 3];
    for (std::size_t c = cbeg; c < cend; ++c)
      dst[c] -= a0 * s0[c] + a1 * s1[c] + a2 * s2[c] + a3 * s3[c];
  }
  for (; q < m_count; ++q) {
    const double a = coef[q];
    if (a == 0.0) continue;
    const double* s = src[q];
    for (std::size_t c = cbeg; c < cend; ++c) dst[c] -= a * s[c];
  }
}

// Explicit (re, im) arithmetic: the library complex multiply guards
// against NaN overflow semantics; spelling out ac-bd / ad+bc fixes the
// expression tree the AVX2 body reproduces lane for lane.
void rank_update(std::complex<double>* dst,
                 const std::complex<double>* const* src,
                 const std::complex<double>* coef, std::size_t m_count,
                 std::size_t cbeg, std::size_t cend) {
  double* d = reinterpret_cast<double*>(dst);
  std::size_t q = 0;
  for (; q + 4 <= m_count; q += 4) {
    const double a0r = coef[q].real(), a0i = coef[q].imag();
    const double a1r = coef[q + 1].real(), a1i = coef[q + 1].imag();
    const double a2r = coef[q + 2].real(), a2i = coef[q + 2].imag();
    const double a3r = coef[q + 3].real(), a3i = coef[q + 3].imag();
    const double* s0 = reinterpret_cast<const double*>(src[q]);
    const double* s1 = reinterpret_cast<const double*>(src[q + 1]);
    const double* s2 = reinterpret_cast<const double*>(src[q + 2]);
    const double* s3 = reinterpret_cast<const double*>(src[q + 3]);
    for (std::size_t c = cbeg; c < cend; ++c) {
      const double re = a0r * s0[2 * c] - a0i * s0[2 * c + 1] +
                        (a1r * s1[2 * c] - a1i * s1[2 * c + 1]) +
                        (a2r * s2[2 * c] - a2i * s2[2 * c + 1]) +
                        (a3r * s3[2 * c] - a3i * s3[2 * c + 1]);
      const double im = a0r * s0[2 * c + 1] + a0i * s0[2 * c] +
                        (a1r * s1[2 * c + 1] + a1i * s1[2 * c]) +
                        (a2r * s2[2 * c + 1] + a2i * s2[2 * c]) +
                        (a3r * s3[2 * c + 1] + a3i * s3[2 * c]);
      d[2 * c] -= re;
      d[2 * c + 1] -= im;
    }
  }
  for (; q < m_count; ++q) {
    const double ar = coef[q].real(), ai = coef[q].imag();
    if (ar == 0.0 && ai == 0.0) continue;
    const double* s = reinterpret_cast<const double*>(src[q]);
    for (std::size_t c = cbeg; c < cend; ++c) {
      d[2 * c] -= ar * s[2 * c] - ai * s[2 * c + 1];
      d[2 * c + 1] -= ar * s[2 * c + 1] + ai * s[2 * c];
    }
  }
}

}  // namespace lu_scalar

namespace {

inline bool use_avx2() {
#if defined(RLCX_HAVE_AVX2)
  // kAvx512 implies AVX2 support; the LU kernel gains nothing from wider
  // lanes (it is bound by the dst read-modify-write stream), so both wide
  // modes share the 256-bit body.
  return simd_mode() != SimdMode::kScalar;
#else
  return false;
#endif
}

}  // namespace

void lu_rank_update(double* dst, const double* const* src, const double* coef,
                    std::size_t m_count, std::size_t cbeg, std::size_t cend) {
#if defined(RLCX_HAVE_AVX2)
  if (use_avx2())
    return lu_avx2::rank_update(dst, src, coef, m_count, cbeg, cend);
#endif
  lu_scalar::rank_update(dst, src, coef, m_count, cbeg, cend);
}

void lu_rank_update(std::complex<double>* dst,
                    const std::complex<double>* const* src,
                    const std::complex<double>* coef, std::size_t m_count,
                    std::size_t cbeg, std::size_t cend) {
#if defined(RLCX_HAVE_AVX2)
  if (use_avx2())
    return lu_avx2::rank_update(dst, src, coef, m_count, cbeg, cend);
#endif
  lu_scalar::rank_update(dst, src, coef, m_count, cbeg, cend);
}

}  // namespace rlcx::numeric
