#include "numeric/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rlcx::numeric {

namespace {

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // F alone would do for the compiler flags we pass, but DQ+VL is the
  // practical server baseline (Skylake-SP onward) and what GCC's cost
  // model assumes; refuse the exotic Phi-era subset.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

// -1 = not yet resolved; otherwise a SimdMode value.
std::atomic<int> g_mode{-1};

SimdMode best_supported() {
  if (simd_avx512_supported()) return SimdMode::kAvx512;
  if (simd_avx2_supported()) return SimdMode::kAvx2;
  return SimdMode::kScalar;
}

}  // namespace

bool simd_avx2_compiled() {
#if defined(RLCX_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool simd_avx2_supported() { return simd_avx2_compiled() && cpu_has_avx2(); }

bool simd_avx512_compiled() {
#if defined(RLCX_HAVE_AVX512)
  return true;
#else
  return false;
#endif
}

bool simd_avx512_supported() {
  return simd_avx512_compiled() && cpu_has_avx512();
}

SimdMode simd_mode_from_env(const char* value) {
  if (value != nullptr && std::strcmp(value, "scalar") == 0)
    return SimdMode::kScalar;
  if (value != nullptr && std::strcmp(value, "avx2") == 0)
    return simd_avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar;
  return best_supported();
}

SimdMode simd_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    const SimdMode resolved = simd_mode_from_env(std::getenv("RLCX_SIMD"));
    // First resolver wins; a concurrent resolver computes the same value
    // (environment and cpuid are process-constant).
    int expected = -1;
    g_mode.compare_exchange_strong(expected, static_cast<int>(resolved),
                                   std::memory_order_relaxed);
    m = g_mode.load(std::memory_order_relaxed);
  }
  return static_cast<SimdMode>(m);
}

const char* simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAvx512: return "avx512";
    case SimdMode::kAvx2: return "avx2";
    default: return "scalar";
  }
}

void simd_force_mode(SimdMode mode) {
  if (mode == SimdMode::kAvx512 && !simd_avx512_supported())
    mode = SimdMode::kAvx2;
  if (mode == SimdMode::kAvx2 && !simd_avx2_supported())
    mode = SimdMode::kScalar;
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

}  // namespace rlcx::numeric
