// AVX2 bodies of the LU rank-4 micro-kernel.  This TU alone is compiled
// with -mavx2 (src/numeric/CMakeLists.txt); callers reach it only through
// lu_rank_update()'s runtime dispatch, so the rest of the library stays
// portable baseline.
//
// Every vector op below is the plain IEEE mul/add/sub the scalar body
// performs on the same elements in the same order — vmulpd + vaddsubpd
// computes exactly {ar*sr - ai*si, ar*si + ai*sr}, the accumulator chains
// left-associated, and there is no FMA — which is what makes the two
// bodies bit-identical rather than merely close (see lu_simd.h).
#include "numeric/lu_simd.h"

#if defined(RLCX_HAVE_AVX2)

#include <immintrin.h>

namespace rlcx::numeric::lu_avx2 {

namespace {

// {ar*sr - ai*si, ar*si + ai*sr} for two interleaved complex lanes:
// multiply by the broadcast real part, multiply the (im, re)-swapped lanes
// by the broadcast imaginary part, then vaddsubpd fuses the -/+ pattern.
inline __m256d cmul2(__m256d ar, __m256d ai, __m256d s) {
  const __m256d t1 = _mm256_mul_pd(ar, s);
  const __m256d sw = _mm256_permute_pd(s, 0b0101);
  const __m256d t2 = _mm256_mul_pd(ai, sw);
  return _mm256_addsub_pd(t1, t2);
}

inline __m128d cmul1(__m128d ar, __m128d ai, __m128d s) {
  const __m128d t1 = _mm_mul_pd(ar, s);
  const __m128d sw = _mm_permute_pd(s, 0b01);
  const __m128d t2 = _mm_mul_pd(ai, sw);
  return _mm_addsub_pd(t1, t2);
}

}  // namespace

void rank_update(double* dst, const double* const* src, const double* coef,
                 std::size_t m_count, std::size_t cbeg, std::size_t cend) {
  std::size_t q = 0;
  for (; q + 4 <= m_count; q += 4) {
    const double a0 = coef[q], a1 = coef[q + 1];
    const double a2 = coef[q + 2], a3 = coef[q + 3];
    const __m256d v0 = _mm256_set1_pd(a0), v1 = _mm256_set1_pd(a1);
    const __m256d v2 = _mm256_set1_pd(a2), v3 = _mm256_set1_pd(a3);
    const double* s0 = src[q];
    const double* s1 = src[q + 1];
    const double* s2 = src[q + 2];
    const double* s3 = src[q + 3];
    std::size_t c = cbeg;
    for (; c + 4 <= cend; c += 4) {
      __m256d acc = _mm256_mul_pd(v0, _mm256_loadu_pd(s0 + c));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v1, _mm256_loadu_pd(s1 + c)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v2, _mm256_loadu_pd(s2 + c)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v3, _mm256_loadu_pd(s3 + c)));
      _mm256_storeu_pd(dst + c,
                       _mm256_sub_pd(_mm256_loadu_pd(dst + c), acc));
    }
    for (; c < cend; ++c)
      dst[c] -= a0 * s0[c] + a1 * s1[c] + a2 * s2[c] + a3 * s3[c];
  }
  for (; q < m_count; ++q) {
    const double a = coef[q];
    if (a == 0.0) continue;
    const __m256d va = _mm256_set1_pd(a);
    const double* s = src[q];
    std::size_t c = cbeg;
    for (; c + 4 <= cend; c += 4) {
      const __m256d t = _mm256_mul_pd(va, _mm256_loadu_pd(s + c));
      _mm256_storeu_pd(dst + c, _mm256_sub_pd(_mm256_loadu_pd(dst + c), t));
    }
    for (; c < cend; ++c) dst[c] -= a * s[c];
  }
}

void rank_update(std::complex<double>* dst,
                 const std::complex<double>* const* src,
                 const std::complex<double>* coef, std::size_t m_count,
                 std::size_t cbeg, std::size_t cend) {
  double* d = reinterpret_cast<double*>(dst);
  std::size_t q = 0;
  for (; q + 4 <= m_count; q += 4) {
    const __m256d a0r = _mm256_set1_pd(coef[q].real());
    const __m256d a0i = _mm256_set1_pd(coef[q].imag());
    const __m256d a1r = _mm256_set1_pd(coef[q + 1].real());
    const __m256d a1i = _mm256_set1_pd(coef[q + 1].imag());
    const __m256d a2r = _mm256_set1_pd(coef[q + 2].real());
    const __m256d a2i = _mm256_set1_pd(coef[q + 2].imag());
    const __m256d a3r = _mm256_set1_pd(coef[q + 3].real());
    const __m256d a3i = _mm256_set1_pd(coef[q + 3].imag());
    const double* s0 = reinterpret_cast<const double*>(src[q]);
    const double* s1 = reinterpret_cast<const double*>(src[q + 1]);
    const double* s2 = reinterpret_cast<const double*>(src[q + 2]);
    const double* s3 = reinterpret_cast<const double*>(src[q + 3]);
    std::size_t c = cbeg;
    // Two complex elements (four doubles) per iteration.
    for (; c + 2 <= cend; c += 2) {
      __m256d acc = cmul2(a0r, a0i, _mm256_loadu_pd(s0 + 2 * c));
      acc = _mm256_add_pd(acc, cmul2(a1r, a1i, _mm256_loadu_pd(s1 + 2 * c)));
      acc = _mm256_add_pd(acc, cmul2(a2r, a2i, _mm256_loadu_pd(s2 + 2 * c)));
      acc = _mm256_add_pd(acc, cmul2(a3r, a3i, _mm256_loadu_pd(s3 + 2 * c)));
      _mm256_storeu_pd(
          d + 2 * c, _mm256_sub_pd(_mm256_loadu_pd(d + 2 * c), acc));
    }
    if (c < cend) {
      __m128d acc = cmul1(_mm256_castpd256_pd128(a0r),
                          _mm256_castpd256_pd128(a0i),
                          _mm_loadu_pd(s0 + 2 * c));
      acc = _mm_add_pd(acc, cmul1(_mm256_castpd256_pd128(a1r),
                                  _mm256_castpd256_pd128(a1i),
                                  _mm_loadu_pd(s1 + 2 * c)));
      acc = _mm_add_pd(acc, cmul1(_mm256_castpd256_pd128(a2r),
                                  _mm256_castpd256_pd128(a2i),
                                  _mm_loadu_pd(s2 + 2 * c)));
      acc = _mm_add_pd(acc, cmul1(_mm256_castpd256_pd128(a3r),
                                  _mm256_castpd256_pd128(a3i),
                                  _mm_loadu_pd(s3 + 2 * c)));
      _mm_storeu_pd(d + 2 * c, _mm_sub_pd(_mm_loadu_pd(d + 2 * c), acc));
    }
  }
  for (; q < m_count; ++q) {
    const double ar = coef[q].real(), ai = coef[q].imag();
    if (ar == 0.0 && ai == 0.0) continue;
    const __m256d var = _mm256_set1_pd(ar), vai = _mm256_set1_pd(ai);
    const double* s = reinterpret_cast<const double*>(src[q]);
    std::size_t c = cbeg;
    for (; c + 2 <= cend; c += 2) {
      const __m256d t = cmul2(var, vai, _mm256_loadu_pd(s + 2 * c));
      _mm256_storeu_pd(d + 2 * c,
                       _mm256_sub_pd(_mm256_loadu_pd(d + 2 * c), t));
    }
    if (c < cend) {
      const __m128d t =
          cmul1(_mm256_castpd256_pd128(var), _mm256_castpd256_pd128(vai),
                _mm_loadu_pd(s + 2 * c));
      _mm_storeu_pd(d + 2 * c, _mm_sub_pd(_mm_loadu_pd(d + 2 * c), t));
    }
  }
}

}  // namespace rlcx::numeric::lu_avx2

#endif  // RLCX_HAVE_AVX2
