// Runtime SIMD dispatch policy for the explicitly vectorized kernels (the
// peec batch kernel engine and the LU rank-update micro-kernel).
//
// The library ships up to three compilations of each engine kernel: a
// portable baseline TU and (when the compiler supports them) a -mavx2 TU
// and a -mavx512f TU.  Which one runs is a *runtime* decision made once
// per process from two inputs:
//   * RLCX_SIMD=scalar forces the baseline path, RLCX_SIMD=avx2 caps the
//     engine at AVX2; RLCX_SIMD=auto (or unset) picks the widest path the
//     CPU supports;
//   * cpuid — a wider TU is only eligible on hardware that has the ISA,
//     so a binary built on a -march=x86-64-v3 CI runner still starts
//     correctly on a baseline machine.
// All compilations are built from branch-free elementwise code (plain
// mul/add/div/sqrt, no FMA, -ffp-contract=off), so they produce
// bit-identical results and the choice is pure performance — which is what
// makes RLCX_SIMD=scalar a bit-exact reference for the wide paths instead
// of a merely "close" one (docs/performance.md, "Batched kernel
// evaluation").
#pragma once

namespace rlcx::numeric {

enum class SimdMode {
  kScalar,  ///< portable baseline TU (the compiler may still use SSE2)
  kAvx2,    ///< the -mavx2 TU; requires cpuid AVX2 and a capable build
  kAvx512,  ///< the -mavx512f TU; requires cpuid AVX-512 F/DQ/VL
};

/// The mode the engine kernels dispatch on.  Resolved once (environment +
/// cpuid) on first use and cached; an atomic read afterwards.
SimdMode simd_mode();

/// "scalar", "avx2" or "avx512".
const char* simd_mode_name(SimdMode mode);

/// True when the AVX2 kernel TUs were compiled into this binary.
bool simd_avx2_compiled();

/// True when simd_avx2_compiled() and the CPU reports AVX2.
bool simd_avx2_supported();

/// True when the AVX-512 kernel TUs were compiled into this binary.
bool simd_avx512_compiled();

/// True when simd_avx512_compiled() and the CPU reports AVX-512 F/DQ/VL.
bool simd_avx512_supported();

/// Pure resolution of an RLCX_SIMD value ("scalar" forces scalar, "avx2"
/// caps at AVX2; "auto", empty or nullptr pick the best supported mode;
/// anything else is treated as "auto" — a typo must not silently change
/// numerics, and all modes are bit-identical).  Exposed for tests.
SimdMode simd_mode_from_env(const char* value);

/// Test/bench hook: override the cached mode (an unsupported mode
/// silently degrades to the widest supported one below it).  Lets one
/// process time and bit-compare the paths; production code never calls
/// this.
void simd_force_mode(SimdMode mode);

}  // namespace rlcx::numeric
