#include "numeric/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcx {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::rel_spread3() const {
  if (mean_ == 0.0) return 0.0;
  return 3.0 * stddev() / std::abs(mean_);
}

double GaussianSampler::sample_truncated(double mean, double sigma,
                                         double nsigma) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = sample(mean, sigma);
    if (std::abs(x - mean) <= nsigma * sigma) return x;
  }
  return mean;  // astronomically unlikely; fall back to the nominal
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::sort(samples.begin(), samples.end());
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace rlcx
