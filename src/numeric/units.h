// Physical constants and unit helpers.
//
// Everything inside the library is SI: meters, seconds, ohms, henries,
// farads, hertz.  These helpers make call sites read like the paper
// ("10 um wide, 6000 um long, 40 ohm driver") without unit mistakes.
#pragma once

#include <numbers>

namespace rlcx {

/// Vacuum permeability [H/m].
inline constexpr double kMu0 = 4.0e-7 * std::numbers::pi;

/// Vacuum permittivity [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;

/// Resistivity of on-chip copper including barrier/liner effects [ohm*m].
/// (Bulk Cu is 1.68e-8; damascene Cu of the paper's era is closer to 2e-8.)
inline constexpr double kRhoCopper = 2.0e-8;

/// Resistivity of aluminum interconnect [ohm*m].
inline constexpr double kRhoAluminum = 2.8e-8;

/// Relative permittivity of SiO2.
inline constexpr double kEpsRSiO2 = 3.9;

namespace units {

constexpr double um(double v) { return v * 1e-6; }
constexpr double nm(double v) { return v * 1e-9; }
constexpr double mm(double v) { return v * 1e-3; }

constexpr double ps(double v) { return v * 1e-12; }
constexpr double ns(double v) { return v * 1e-9; }

constexpr double ghz(double v) { return v * 1e9; }
constexpr double mhz(double v) { return v * 1e6; }

constexpr double ff(double v) { return v * 1e-15; }
constexpr double pf(double v) { return v * 1e-12; }

constexpr double nh(double v) { return v * 1e-9; }
constexpr double ph(double v) { return v * 1e-12; }

/// Convert back for reporting.
constexpr double to_um(double v) { return v * 1e6; }
constexpr double to_ps(double v) { return v * 1e12; }
constexpr double to_ff(double v) { return v * 1e15; }
constexpr double to_pf(double v) { return v * 1e12; }
constexpr double to_nh(double v) { return v * 1e9; }
constexpr double to_ph(double v) { return v * 1e12; }
constexpr double to_ghz(double v) { return v * 1e-9; }

}  // namespace units
}  // namespace rlcx
