// Runtime-dispatched rank-4 micro-kernels for the blocked LU (numeric/lu.h).
//
// lu.h's detail::rank_update is the O(n^3) inner loop of both the trailing
// update and the blocked multi-RHS substitutions.  The double and
// complex<double> instantiations route through lu_rank_update() below,
// which picks an AVX2 intrinsics body (lu_simd_avx2.cpp) when the CPU and
// build support it and the portable scalar body otherwise — same
// RLCX_SIMD / numeric::simd_mode() policy as the peec batch engine.
//
// Bit-identity contract (tested in tests/test_numeric_lu.cpp): the AVX2
// bodies evaluate the exact scalar expressions —
//   re = ar*sr - ai*si,  im = ar*si + ai*sr,
//   acc = ((t0 + t1) + t2) + t3,  dst -= acc
// — with plain IEEE mul/add/sub (vmulpd/vaddsubpd/vaddpd, no FMA; the
// whole tree builds with -ffp-contract=off), so scalar and AVX2 produce
// bit-identical results, not merely close ones.  A factorisation therefore
// does not depend on which ISA served it.
#pragma once

#include <complex>
#include <cstddef>

namespace rlcx::numeric {

// Portable bodies (always compiled; the oracle the tests compare against).
namespace lu_scalar {
void rank_update(double* dst, const double* const* src, const double* coef,
                 std::size_t m_count, std::size_t cbeg, std::size_t cend);
void rank_update(std::complex<double>* dst,
                 const std::complex<double>* const* src,
                 const std::complex<double>* coef, std::size_t m_count,
                 std::size_t cbeg, std::size_t cend);
}  // namespace lu_scalar

#if defined(RLCX_HAVE_AVX2)
// Intrinsics bodies (compiled with -mavx2; call only if simd_avx2_supported).
namespace lu_avx2 {
void rank_update(double* dst, const double* const* src, const double* coef,
                 std::size_t m_count, std::size_t cbeg, std::size_t cend);
void rank_update(std::complex<double>* dst,
                 const std::complex<double>* const* src,
                 const std::complex<double>* coef, std::size_t m_count,
                 std::size_t cbeg, std::size_t cend);
}  // namespace lu_avx2
#endif

/// dst[c] -= sum_q coef[q] * src[q][c] over [cbeg, cend), dispatched on
/// numeric::simd_mode().  (AVX-512 mode also takes the AVX2 body: the
/// kernel is load/mul/add-bound and 256-bit lanes already saturate it.)
void lu_rank_update(double* dst, const double* const* src, const double* coef,
                    std::size_t m_count, std::size_t cbeg, std::size_t cend);
void lu_rank_update(std::complex<double>* dst,
                    const std::complex<double>* const* src,
                    const std::complex<double>* coef, std::size_t m_count,
                    std::size_t cbeg, std::size_t cend);

}  // namespace rlcx::numeric
