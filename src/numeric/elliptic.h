// Complete elliptic integrals, used by the conformal-mapping coplanar
// waveguide capacitance model.
#pragma once

namespace rlcx {

/// Complete elliptic integral of the first kind K(k), modulus convention
/// K(k) = \int_0^{pi/2} dt / sqrt(1 - k^2 sin^2 t), 0 <= k < 1.
/// Computed with the arithmetic-geometric mean (converges quadratically).
double elliptic_k(double k);

/// The ratio K(k)/K(k') with k' = sqrt(1-k^2), the quantity CPW formulas
/// actually need; evaluated stably for k near 0 and near 1 using the
/// Hilberg approximation to avoid catastrophic cancellation in k'.
double elliptic_k_ratio(double k);

}  // namespace rlcx
