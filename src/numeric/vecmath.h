// Branch-free log / atan / asinh for the SIMD batch kernel engine.
//
// Why not libm: ~75 % of a Hoer-Love corner evaluation is std::log /
// std::atan / std::asinh, and glibc's scalar routines neither vectorize
// under `#pragma omp simd` (they branch internally) nor promise the same
// bits when a vector math library is substituted.  These are Cephes-style
// rational approximations rebuilt under three constraints:
//
//   1. No branches.  All range reduction is expressed as ternary selects
//      on double comparisons, which GCC if-converts into vblendvpd inside
//      `omp simd` loops (the TUs are compiled with -fno-trapping-math so
//      speculating both sides is legal).
//   2. No FMA, no reassociation.  Plain mul/add/div/sqrt in a fixed
//      expression order, compiled with -ffp-contract=off: every operation
//      is an IEEE-754 double operation, so a baseline compilation and a
//      -mavx2 compilation of this same header produce bit-identical
//      results lane for lane.  That is the engine's scalar/SIMD bit-
//      identity contract (docs/performance.md).
//   3. Integer work uses logical shifts only — AVX2 has no 64-bit
//      arithmetic shift (vpsraq is AVX-512) and no unsigned 64-bit to
//      double conversion, so the exponent extraction is phrased around
//      both gaps.
//
// Accuracy versus libm is <= ~2 ulp over the engine's domain (positive
// normal arguments for log_bf; all finite arguments for atan_bf /
// asinh_bf).  Non-finite or denormal inputs return unspecified finite
// garbage rather than trapping — callers guard degenerate operands with
// selects, exactly as the Hoer-Love kernel guards its vanishing terms
// (never by multiplying by zero: 0 * NaN would poison the accumulator).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace rlcx::numeric::vecmath {

/// ln(x) for positive normal x.  Cephes log.c rational approximation on
/// the mantissa reduced to [sqrt(1/2), sqrt(2)), exponent recombined with
/// a hi/lo split of ln 2.
inline double log_bf(double x) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Offset the exponent split point to sqrt(1/2) so the reduced mantissa
  // m lands in [sqrt(1/2), sqrt(2)) and r = m - 1 stays small.
  const std::uint64_t tmp = bits - 0x3fe6a09e667f3bcdULL;
  // Arithmetic >>52 built from logical shifts (no vpsraq on AVX2), then
  // converted through int (vcvtdq2pd; the exponent fits 32 bits).
  const std::int64_t k64 =
      static_cast<std::int64_t>(tmp >> 52) -
      (static_cast<std::int64_t>(tmp >> 63) << 12);
  const double k = static_cast<double>(static_cast<int>(k64));
  const double m = std::bit_cast<double>(bits - (tmp & 0xfff0000000000000ULL));
  const double r = m - 1.0;
  const double z = r * r;
  const double p =
      ((((1.01875663804580931796e-4 * r + 4.97494994976747001425e-1) * r +
         4.70579119878881725854e0) * r + 1.44989225341610930846e1) * r +
       1.79368678507819816313e1) * r + 7.70838733755885391666e0;
  const double q =
      ((((r + 1.12873587189167450590e1) * r + 4.52279145837532221105e1) * r +
        8.29875266912776603211e1) * r + 7.11544750618563894466e1) * r +
      2.31251620126765340583e1;
  double y = r * z * p / q;
  y = y + k * -2.121944400546905827679e-4;  // k * ln2_lo
  y = y - 0.5 * z;
  return (r + y) + k * 0.693359375;  // + k * ln2_hi
}

/// atan(t) for finite t.  Cephes atan.c: three-way range reduction with a
/// single division, expressed as if-convertible selects.
inline double atan_bf(double t) {
  const double w = std::abs(t);
  const double kT3P8 = 2.41421356237309504880;  // tan(3 pi / 8)
  // big (w > tan(3pi/8)): atan(w) = pi/2 - atan(1/w)
  // mid (w > 0.66):       atan(w) = pi/4 + atan((w-1)/(w+1))
  const double num = (w > kT3P8) ? -1.0 : ((w > 0.66) ? w - 1.0 : w);
  const double den = (w > kT3P8) ? w : ((w > 0.66) ? w + 1.0 : 1.0);
  const double u = num / den;
  const double z = u * u;
  const double p =
      (((-8.750608600031904122785e-1 * z + -1.615753718733365076637e1) * z +
        -7.500855792314704667340e1) * z + -1.228866684490136173410e2) * z +
      -6.485021904942025371773e1;
  const double q =
      ((((z + 2.485846490142306297962e1) * z + 1.650270098316988542046e2) * z +
        4.328810604912902668951e2) * z + 4.853903996359136964868e2) * z +
      1.945506571482613964425e2;
  double y = u * z * p / q + u;
  const double kMoreBits = 6.123233995736765886130e-17;
  y = y + ((w > kT3P8) ? kMoreBits : ((w > 0.66) ? 0.5 * kMoreBits : 0.0));
  y = y + ((w > kT3P8) ? 1.57079632679489661923
                       : ((w > 0.66) ? 0.78539816339744830962 : 0.0));
  // y = atan(|t|) >= 0: transfer t's sign with bit arithmetic (an
  // if-convertible select would also work; the OR is branch-free by
  // construction).
  return std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(y) |
      (std::bit_cast<std::uint64_t>(t) & 0x8000000000000000ULL));
}

/// asinh(t) for finite t.  |t| < 0.5 uses the Cephes asinh.c rational
/// polynomial; larger magnitudes go through log_bf(w + sqrt(w^2 + 1)),
/// switching to log_bf(2 w) past 1e8 where the sqrt would add nothing but
/// its own overflow hazard.
inline double asinh_bf(double t) {
  const double w = std::abs(t);
  const double z = w * w;
  const double p =
      ((((-4.33231683752342103572e-3 * z + -5.91750212056387121207e-1) * z +
         -4.37390226194356683570e0) * z + -9.09030533308377316566e0) * z +
       -5.56682227230859640450e0);
  const double q =
      ((((z + 1.28757002067426453537e1) * z + 4.86042483805291788324e1) * z +
        6.95722521337257608734e1) * z + 3.34009336338516356383e1);
  const double small = w + w * z * p / q;
  const double arg = (w > 1e8) ? w + w : w + std::sqrt(z + 1.0);
  const double y = (w > 0.5) ? log_bf(arg) : small;
  return std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(y) |
      (std::bit_cast<std::uint64_t>(t) & 0x8000000000000000ULL));
}

}  // namespace rlcx::numeric::vecmath
