// Small statistics helpers and a deterministic Gaussian sampler for the
// statistical-RC process-variation model (paper reference [4]).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rlcx {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Relative 3-sigma spread, (3*sigma)/|mean| — the paper's notion of
  /// "sensitivity to process variation".
  double rel_spread3() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Deterministic Gaussian sampler: fixed seed unless told otherwise so tests
/// and benches are reproducible run to run.
class GaussianSampler {
 public:
  explicit GaussianSampler(std::uint64_t seed = 0x5eed5eedULL)
      : rng_(seed) {}

  double sample(double mean, double sigma) {
    std::normal_distribution<double> d(mean, sigma);
    return d(rng_);
  }

  /// Sample truncated at +-nsigma (geometry can't go negative).
  double sample_truncated(double mean, double sigma, double nsigma = 4.0);

 private:
  std::mt19937_64 rng_;
};

/// Percentile of a sample set (linear interpolation between order stats).
double percentile(std::vector<double> samples, double p);

}  // namespace rlcx
