// Natural cubic spline interpolation, 1-D and tensor-product N-D.
//
// The paper (Section III) interpolates its inductance tables with the
// bi-cubic spline algorithm of Numerical Recipes [10].  We implement the
// same scheme: a natural cubic spline per axis, applied recursively for
// higher-dimensional tables (bicubic for the 2-D self-L table, tensor
// product for the 4-D mutual-L table).
#pragma once

#include <cstddef>
#include <vector>

namespace rlcx {

/// Natural cubic spline through (x_i, y_i), x strictly increasing.
/// Outside the knot range the spline is continued linearly with the boundary
/// slope — extrapolating a cubic explodes; the paper's tables are meant to
/// cover the useful range, so extrapolation should be mild.
class CubicSpline {
 public:
  CubicSpline() = default;
  CubicSpline(std::vector<double> x, std::vector<double> y);

  double operator()(double x) const { return eval(x); }
  double eval(double x) const;
  double derivative(double x) const;

  std::size_t size() const { return x_.size(); }
  const std::vector<double>& knots() const { return x_; }
  const std::vector<double>& values() const { return y_; }

 private:
  std::size_t interval(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> y2_;  // second derivatives at the knots
};

/// Tensor-product natural-cubic interpolation of an N-D gridded table.
///
/// `axes[d]` holds the strictly-increasing grid for dimension d; `values` is
/// stored row-major with the *last* axis fastest.  Evaluation fixes the query
/// coordinate one axis at a time: spline along the last axis for every
/// combination of the remaining indices, collapsing the table until a scalar
/// remains.  For two axes this is exactly Numerical Recipes' bicubic
/// "spline of splines".
class TensorSpline {
 public:
  TensorSpline() = default;
  TensorSpline(std::vector<std::vector<double>> axes,
               std::vector<double> values);

  double eval(const std::vector<double>& q) const;

  std::size_t dims() const { return axes_.size(); }
  const std::vector<std::vector<double>>& axes() const { return axes_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<std::vector<double>> axes_;
  std::vector<double> values_;
};

/// Evenly spaced grid of n points in [lo, hi].
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Geometrically spaced grid of n points in [lo, hi] (lo, hi > 0).
std::vector<double> geomspace(double lo, double hi, std::size_t n);

}  // namespace rlcx
