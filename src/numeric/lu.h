// LU decomposition with partial pivoting, templated over the scalar type so
// the same code factors the real MNA matrices of the circuit simulator and
// the complex filament impedance matrices of the loop solver.
//
// The factorisation is cache-blocked (right-looking with a panel of
// kPanelWidth columns and a column-tiled trailing update): the O(n^3) bulk
// runs as rank-kPanelWidth updates that stream each trailing row once per
// panel instead of once per column, which is what makes the dense complex
// solves of the PEEC hot path memory-bandwidth-friendly.  For systems no
// larger than one panel the arithmetic degenerates to exactly the textbook
// scalar elimination (see numeric/lu_reference.h, kept as the oracle);
// larger systems agree with it to last-ulp reordering (docs/performance.md).
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/error.h"
#include "numeric/lu_simd.h"
#include "numeric/matrix.h"

namespace rlcx {

namespace detail {
inline double abs_of(double v) { return std::abs(v); }
inline double abs_of(const std::complex<double>& v) { return std::abs(v); }

/// Panel width of the blocked factorisation and row-block size of the
/// blocked substitutions.  48 columns of complex<double> are 768 bytes per
/// row — a panel's L21 tile and the streamed U12 rows stay L2-resident.
inline constexpr std::size_t kLuPanel = 48;
/// Column tile of the trailing update / multi-RHS substitution; bounds the
/// per-row working set to kLuTile elements so it lives in L1.
inline constexpr std::size_t kLuTile = 256;

/// Rank-4 register-blocked axpy: dst[c] -= sum_q coef[q] * src[q][c] over
/// [cbeg, cend), with a scalar tail for m-counts not divisible by 4.  One
/// read-modify-write pass over dst per four panel columns instead of one
/// per column — the micro-kernel of both the trailing update and the
/// blocked substitutions.
template <typename T>
inline void rank_update(T* dst, const T* const* src, const T* coef,
                        std::size_t m_count, std::size_t cbeg,
                        std::size_t cend) {
  std::size_t q = 0;
  for (; q + 4 <= m_count; q += 4) {
    const T a0 = coef[q], a1 = coef[q + 1], a2 = coef[q + 2], a3 = coef[q + 3];
    const T* s0 = src[q];
    const T* s1 = src[q + 1];
    const T* s2 = src[q + 2];
    const T* s3 = src[q + 3];
    for (std::size_t c = cbeg; c < cend; ++c)
      dst[c] -= a0 * s0[c] + a1 * s1[c] + a2 * s2[c] + a3 * s3[c];
  }
  for (; q < m_count; ++q) {
    const T a = coef[q];
    if (a == T{}) continue;
    const T* s = src[q];
    for (std::size_t c = cbeg; c < cend; ++c) dst[c] -= a * s[c];
  }
}

/// Real overload: runtime-dispatched to the AVX2 micro-kernel when the CPU
/// has it (numeric/lu_simd.h) — the scalar and vector bodies are
/// bit-identical, so which one served a factorisation is unobservable.
inline void rank_update(double* dst, const double* const* src,
                        const double* coef, std::size_t m_count,
                        std::size_t cbeg, std::size_t cend) {
  numeric::lu_rank_update(dst, src, coef, m_count, cbeg, cend);
}

/// Complex overload, same dispatch.  The out-of-line bodies spell out the
/// (re, im) arithmetic — ac-bd / ad+bc — because the library complex
/// multiply guards against NaN overflow semantics and defeats
/// vectorisation; summation order per destination element matches the
/// generic kernel's 4-wide chunks.
inline void rank_update(std::complex<double>* dst,
                        const std::complex<double>* const* src,
                        const std::complex<double>* coef, std::size_t m_count,
                        std::size_t cbeg, std::size_t cend) {
  numeric::lu_rank_update(dst, src, coef, m_count, cbeg, cend);
}
}  // namespace detail

/// In-place LU factorisation of a square matrix with row pivoting.
/// Factor once, then solve() any number of right-hand sides — the transient
/// simulator relies on this (one factorisation per timestep size).
template <typename T>
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix<T> a) : lu_(std::move(a)) {
    const std::size_t n = lu_.rows();
    if (n != lu_.cols())
      throw diag::UsageError("lu", "needs a square matrix, got " +
                                       std::to_string(n) + "x" +
                                       std::to_string(lu_.cols()));
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    constexpr std::size_t nb = detail::kLuPanel;
    for (std::size_t k = 0; k < n; k += nb) {
      const std::size_t kend = std::min(n, k + nb);

      // Panel factorisation: scalar elimination restricted to columns
      // [k, kend), full-height.  Row swaps apply to the whole matrix, so
      // the already-computed L (left of the panel) and the not-yet-updated
      // A12/A22 (right of it) stay consistent.
      for (std::size_t j = k; j < kend; ++j) {
        // Partial pivot: pick the largest magnitude in column j.
        std::size_t piv = j;
        double best = detail::abs_of(lu_(j, j));
        for (std::size_t i = j + 1; i < n; ++i) {
          const double mag = detail::abs_of(lu_(i, j));
          if (mag > best) {
            best = mag;
            piv = i;
          }
        }
        if (best == 0.0 || !std::isfinite(best)) {
          pivot_min_ = 0.0;
          throw diag::SingularSystem(
              "lu",
              std::string(best == 0.0 ? "zero" : "non-finite") +
                  " pivot at column " + std::to_string(j) + " of a " +
                  std::to_string(n) + "x" + std::to_string(n) +
                  " system (pivot ratio so far " +
                  std::to_string(condition_estimate()) + ")",
              j, n, std::numeric_limits<double>::infinity());
        }
        pivot_max_ = std::max(pivot_max_, best);
        pivot_min_ = std::min(pivot_min_, best);
        if (piv != j) {
          for (std::size_t c = 0; c < n; ++c) std::swap(lu_(j, c), lu_(piv, c));
          std::swap(perm_[j], perm_[piv]);
        }
        const T pivot = lu_(j, j);
        const T* rowj = row(j);
        for (std::size_t i = j + 1; i < n; ++i) {
          T* rowi = row(i);
          const T m = rowi[j] / pivot;
          rowi[j] = m;
          if (m == T{}) continue;
          for (std::size_t c = j + 1; c < kend; ++c) rowi[c] -= m * rowj[c];
        }
      }
      if (kend == n) break;

      // Block row: U12 = L11^{-1} A12 (unit lower triangular, in place).
      for (std::size_t j = k + 1; j < kend; ++j) {
        T* rowj = row(j);
        for (std::size_t m = k; m < j; ++m) {
          const T ljm = rowj[m];
          if (ljm == T{}) continue;
          const T* rowm = row(m);
          for (std::size_t c = kend; c < n; ++c) rowj[c] -= ljm * rowm[c];
        }
      }

      // Trailing update: A22 -= L21 * U12, tiled over columns so each row's
      // active slice and the panel's U12 tile stay in cache.  The L21
      // coefficients of row i sit contiguously at rowi[k..kend), so the
      // rank-4 micro-kernel consumes them in place.
      const T* usrc[detail::kLuPanel];
      for (std::size_t m = k; m < kend; ++m) usrc[m - k] = row(m);
      for (std::size_t ct = kend; ct < n; ct += detail::kLuTile) {
        const std::size_t cend = std::min(n, ct + detail::kLuTile);
        for (std::size_t i = kend; i < n; ++i) {
          T* rowi = row(i);
          detail::rank_update(rowi, usrc, rowi + k, kend - k, ct, cend);
        }
      }
    }
  }

  std::size_t size() const { return lu_.rows(); }

  /// Cheap conditioning proxy: the ratio of the largest to the smallest
  /// pivot magnitude seen during elimination.  It lower-bounds the true
  /// condition number; values near 1/eps (~1e16) flag a system solved at
  /// essentially no significant digits.  Costs nothing beyond two compares
  /// per column — this is the FastHenry-style front-end sanity check, not a
  /// rigorous estimate.
  double condition_estimate() const {
    if (lu_.rows() == 0) return 1.0;
    if (pivot_min_ <= 0.0 || pivot_max_ <= 0.0)
      return std::numeric_limits<double>::infinity();
    return pivot_max_ / pivot_min_;
  }

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n)
      throw diag::UsageError("lu", "rhs size " + std::to_string(b.size()) +
                                       " != system size " +
                                       std::to_string(n));
    std::vector<T> x(n);
    // Forward substitution with permutation applied.
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      const T* rowi = row(i);
      for (std::size_t j = 0; j < i; ++j) acc -= rowi[j] * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      const T* rowi = row(ii);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= rowi[j] * x[j];
      x[ii] = acc / rowi[ii];
    }
    return x;
  }

  /// Solve A X = B for all right-hand-side columns at once.  Blocked
  /// substitution: the RHS block is permuted in place once, then L and U
  /// sweep it in kLuPanel row blocks with the off-diagonal updates tiled
  /// over RHS columns — every matrix row streams through cache once per
  /// sweep instead of once per column, and nothing is allocated per column.
  Matrix<T> solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.rows() != n)
      throw diag::UsageError("lu", "rhs rows " + std::to_string(b.rows()) +
                                       " != system size " +
                                       std::to_string(n));
    const std::size_t nrhs = b.cols();
    Matrix<T> x(n, nrhs);
    for (std::size_t i = 0; i < n; ++i) {
      const T* src = b.data() + perm_[i] * nrhs;
      T* dst = x.data() + i * nrhs;
      for (std::size_t c = 0; c < nrhs; ++c) dst[c] = src[c];
    }
    if (n == 0 || nrhs == 0) return x;

    constexpr std::size_t nb = detail::kLuPanel;
    // Forward: L (unit lower) X = P B.
    for (std::size_t k = 0; k < n; k += nb) {
      const std::size_t kend = std::min(n, k + nb);
      for (std::size_t i = k; i < kend; ++i) {
        const T* li = row(i);
        T* xi = x.data() + i * nrhs;
        for (std::size_t m = k; m < i; ++m) {
          const T lim = li[m];
          if (lim == T{}) continue;
          const T* xm = x.data() + m * nrhs;
          for (std::size_t c = 0; c < nrhs; ++c) xi[c] -= lim * xm[c];
        }
      }
      const T* xsrc[detail::kLuPanel];
      for (std::size_t m = k; m < kend; ++m) xsrc[m - k] = x.data() + m * nrhs;
      for (std::size_t ct = 0; ct < nrhs; ct += detail::kLuTile) {
        const std::size_t cend = std::min(nrhs, ct + detail::kLuTile);
        for (std::size_t i = kend; i < n; ++i)
          detail::rank_update(x.data() + i * nrhs, xsrc, row(i) + k, kend - k,
                              ct, cend);
      }
    }
    // Backward: U X' = X, row blocks from the bottom; after a block is
    // solved its contribution is subtracted from every row above it.
    const std::size_t nblocks = (n + nb - 1) / nb;
    for (std::size_t blk = nblocks; blk-- > 0;) {
      const std::size_t ks = blk * nb;
      const std::size_t kend = std::min(n, ks + nb);
      for (std::size_t ii = kend; ii-- > ks;) {
        const T* ui = row(ii);
        T* xi = x.data() + ii * nrhs;
        for (std::size_t m = ii + 1; m < kend; ++m) {
          const T uim = ui[m];
          if (uim == T{}) continue;
          const T* xm = x.data() + m * nrhs;
          for (std::size_t c = 0; c < nrhs; ++c) xi[c] -= uim * xm[c];
        }
        const T d = ui[ii];
        for (std::size_t c = 0; c < nrhs; ++c) xi[c] = xi[c] / d;
      }
      const T* xsrc[detail::kLuPanel];
      for (std::size_t m = ks; m < kend; ++m) xsrc[m - ks] = x.data() + m * nrhs;
      for (std::size_t ct = 0; ct < nrhs; ct += detail::kLuTile) {
        const std::size_t cend = std::min(nrhs, ct + detail::kLuTile);
        for (std::size_t i = 0; i < ks; ++i)
          detail::rank_update(x.data() + i * nrhs, xsrc, row(i) + ks, kend - ks,
                              ct, cend);
      }
    }
    return x;
  }

 private:
  T* row(std::size_t i) { return lu_.data() + i * lu_.cols(); }
  const T* row(std::size_t i) const { return lu_.data() + i * lu_.cols(); }

  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  double pivot_max_ = 0.0;
  double pivot_min_ = std::numeric_limits<double>::infinity();
};

/// Convenience: invert a square matrix (used for the small conductor-level
/// reductions; prefer LuDecomposition::solve for anything large).
template <typename T>
Matrix<T> inverse(const Matrix<T>& a) {
  LuDecomposition<T> lu(a);
  return lu.solve(Matrix<T>::identity(a.rows()));
}

}  // namespace rlcx
