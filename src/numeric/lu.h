// LU decomposition with partial pivoting, templated over the scalar type so
// the same code factors the real MNA matrices of the circuit simulator and
// the complex filament impedance matrices of the loop solver.
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/error.h"
#include "numeric/matrix.h"

namespace rlcx {

namespace detail {
inline double abs_of(double v) { return std::abs(v); }
inline double abs_of(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

/// In-place LU factorisation of a square matrix with row pivoting.
/// Factor once, then solve() any number of right-hand sides — the transient
/// simulator relies on this (one factorisation per timestep size).
template <typename T>
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix<T> a) : lu_(std::move(a)) {
    const std::size_t n = lu_.rows();
    if (n != lu_.cols())
      throw diag::UsageError("lu", "needs a square matrix, got " +
                                       std::to_string(n) + "x" +
                                       std::to_string(lu_.cols()));
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivot: pick the largest magnitude in column k.
      std::size_t piv = k;
      double best = detail::abs_of(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double mag = detail::abs_of(lu_(i, k));
        if (mag > best) {
          best = mag;
          piv = i;
        }
      }
      if (best == 0.0 || !std::isfinite(best)) {
        pivot_min_ = 0.0;
        throw diag::SingularSystem(
            "lu",
            std::string(best == 0.0 ? "zero" : "non-finite") +
                " pivot at column " + std::to_string(k) + " of a " +
                std::to_string(n) + "x" + std::to_string(n) +
                " system (pivot ratio so far " +
                std::to_string(condition_estimate()) + ")",
            k, n, std::numeric_limits<double>::infinity());
      }
      pivot_max_ = std::max(pivot_max_, best);
      pivot_min_ = std::min(pivot_min_, best);
      if (piv != k) {
        for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
        std::swap(perm_[k], perm_[piv]);
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        if (m == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
      }
    }
  }

  std::size_t size() const { return lu_.rows(); }

  /// Cheap conditioning proxy: the ratio of the largest to the smallest
  /// pivot magnitude seen during elimination.  It lower-bounds the true
  /// condition number; values near 1/eps (~1e16) flag a system solved at
  /// essentially no significant digits.  Costs nothing beyond two compares
  /// per column — this is the FastHenry-style front-end sanity check, not a
  /// rigorous estimate.
  double condition_estimate() const {
    if (lu_.rows() == 0) return 1.0;
    if (pivot_min_ <= 0.0 || pivot_max_ <= 0.0)
      return std::numeric_limits<double>::infinity();
    return pivot_max_ / pivot_min_;
  }

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n)
      throw diag::UsageError("lu", "rhs size " + std::to_string(b.size()) +
                                       " != system size " +
                                       std::to_string(n));
    std::vector<T> x(n);
    // Forward substitution with permutation applied.
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    return x;
  }

  /// Solve A X = B column-by-column.
  Matrix<T> solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.rows() != n)
      throw diag::UsageError("lu", "rhs rows " + std::to_string(b.rows()) +
                                       " != system size " +
                                       std::to_string(n));
    Matrix<T> x(n, b.cols());
    std::vector<T> col(n);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
      const std::vector<T> xc = solve(col);
      for (std::size_t i = 0; i < n; ++i) x(i, j) = xc[i];
    }
    return x;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  double pivot_max_ = 0.0;
  double pivot_min_ = std::numeric_limits<double>::infinity();
};

/// Convenience: invert a square matrix (used for the small conductor-level
/// reductions; prefer LuDecomposition::solve for anything large).
template <typename T>
Matrix<T> inverse(const Matrix<T>& a) {
  LuDecomposition<T> lu(a);
  return lu.solve(Matrix<T>::identity(a.rows()));
}

}  // namespace rlcx
