#include "numeric/spline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcx {

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  const std::size_t n = x_.size();
  if (n != y_.size()) throw std::invalid_argument("spline size mismatch");
  if (n < 2) throw std::invalid_argument("spline needs >= 2 points");
  for (std::size_t i = 1; i < n; ++i)
    if (!(x_[i] > x_[i - 1]))
      throw std::invalid_argument("spline knots must increase");

  // Tridiagonal solve for natural boundary conditions (y'' = 0 at the ends).
  y2_.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double sig = (x_[i] - x_[i - 1]) / (x_[i + 1] - x_[i - 1]);
    const double p = sig * y2_[i - 1] + 2.0;
    y2_[i] = (sig - 1.0) / p;
    const double d1 = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]) -
                      (y_[i] - y_[i - 1]) / (x_[i] - x_[i - 1]);
    u[i] = (6.0 * d1 / (x_[i + 1] - x_[i - 1]) - sig * u[i - 1]) / p;
  }
  for (std::size_t k = n - 1; k-- > 0;) y2_[k] = y2_[k] * y2_[k + 1] + u[k];
}

std::size_t CubicSpline::interval(double x) const {
  // Binary search for the knot interval containing x, clamped to the range.
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  if (hi == 0) hi = 1;
  if (hi >= x_.size()) hi = x_.size() - 1;
  return hi - 1;
}

double CubicSpline::eval(double x) const {
  const std::size_t n = x_.size();
  if (x < x_.front()) {
    // Linear continuation with the boundary slope.
    return y_.front() + derivative(x_.front()) * (x - x_.front());
  }
  if (x > x_.back()) {
    return y_.back() + derivative(x_.back()) * (x - x_.back());
  }
  const std::size_t lo = interval(x);
  const double h = x_[lo + 1] - x_[lo];
  const double a = (x_[lo + 1] - x) / h;
  const double b = (x - x_[lo]) / h;
  return a * y_[lo] + b * y_[lo + 1] +
         ((a * a * a - a) * y2_[lo] + (b * b * b - b) * y2_[lo + 1]) *
             (h * h) / 6.0;
  (void)n;
}

double CubicSpline::derivative(double x) const {
  double xc = std::clamp(x, x_.front(), x_.back());
  const std::size_t lo = interval(xc);
  const double h = x_[lo + 1] - x_[lo];
  const double a = (x_[lo + 1] - xc) / h;
  const double b = (xc - x_[lo]) / h;
  return (y_[lo + 1] - y_[lo]) / h -
         (3.0 * a * a - 1.0) / 6.0 * h * y2_[lo] +
         (3.0 * b * b - 1.0) / 6.0 * h * y2_[lo + 1];
}

TensorSpline::TensorSpline(std::vector<std::vector<double>> axes,
                           std::vector<double> values)
    : axes_(std::move(axes)), values_(std::move(values)) {
  std::size_t expected = 1;
  for (const auto& ax : axes_) {
    if (ax.size() < 2) throw std::invalid_argument("axis needs >= 2 points");
    expected *= ax.size();
  }
  if (expected != values_.size())
    throw std::invalid_argument("tensor spline value count mismatch");
}

double TensorSpline::eval(const std::vector<double>& q) const {
  if (q.size() != axes_.size())
    throw std::invalid_argument("tensor spline query dimension");

  // Collapse the last axis repeatedly.  `work` holds the current table;
  // after collapsing axis d it has product(sizes[0..d-1]) entries.
  std::vector<double> work = values_;
  for (std::size_t d = axes_.size(); d-- > 0;) {
    const std::vector<double>& ax = axes_[d];
    const std::size_t nd = ax.size();
    const std::size_t outer = work.size() / nd;
    std::vector<double> next(outer);
    std::vector<double> slice(nd);
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t k = 0; k < nd; ++k) slice[k] = work[o * nd + k];
      next[o] = CubicSpline(ax, slice).eval(q[d]);
    }
    work.swap(next);
  }
  return work[0];
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace needs >= 2 points");
  std::vector<double> v(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;
  return v;
}

std::vector<double> geomspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("geomspace needs >= 2 points");
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("geomspace needs positive bounds");
  std::vector<double> v(n);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double cur = lo;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = cur;
    cur *= ratio;
  }
  v.back() = hi;
  return v;
}

}  // namespace rlcx
