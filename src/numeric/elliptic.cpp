#include "numeric/elliptic.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rlcx {

double elliptic_k(double k) {
  if (k < 0.0 || k >= 1.0)
    throw std::invalid_argument("elliptic_k: modulus must be in [0,1)");
  // AGM iteration: K(k) = pi / (2 * agm(1, k')).
  double a = 1.0;
  double b = std::sqrt(1.0 - k * k);
  while (std::abs(a - b) > 1e-15 * a) {
    const double an = 0.5 * (a + b);
    b = std::sqrt(a * b);
    a = an;
  }
  return std::numbers::pi / (2.0 * a);
}

double elliptic_k_ratio(double k) {
  if (k <= 0.0 || k >= 1.0)
    throw std::invalid_argument("elliptic_k_ratio: modulus must be in (0,1)");
  // Hilberg's closed form, accurate to ~3 ppm over the full range and free of
  // the k' cancellation that the direct ratio suffers for k -> 1.
  const double kp = std::sqrt((1.0 - k) * (1.0 + k));
  if (k <= std::numbers::sqrt2 / 2.0) {
    const double num = std::numbers::pi;
    const double den = std::log(2.0 * (1.0 + std::sqrt(kp)) /
                                (1.0 - std::sqrt(kp)));
    return num / den;
  }
  return std::log(2.0 * (1.0 + std::sqrt(k)) / (1.0 - std::sqrt(k))) /
         std::numbers::pi;
}

}  // namespace rlcx
