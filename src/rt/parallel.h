// Blocked parallel loops and deterministic reduction on rlcx::rt::Pool.
//
// Determinism contract: parallel_for / parallel_for_2d guarantee nothing
// about execution order, so bodies must write disjoint output slots (the
// natural shape of grid solves and matrix fills) — then the result is
// bit-identical to serial for any worker count.  parallel_reduce_ordered
// makes reductions deterministic by construction: the range is cut into
// fixed chunks of `grain` indices and the per-chunk partial results are
// folded left-to-right in chunk order, so the floating-point evaluation
// tree depends only on the grain, never on the thread count.
//
// Grain guidance: the scheduler costs ~1 lock/notify pair per chunk, so
// size chunks to >= ~10 us of work.  A 2-trace field solve or a PEEC
// matrix row is comfortably coarse at grain 1; light bodies (per-element
// arithmetic) want grains in the thousands.
//
// When a body throws for several chunks, the exception of the *lowest*
// chunk index is re-thrown (original type preserved) — the same failure a
// serial loop would hit first, so error reporting is deterministic too.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "rt/pool.h"

namespace rlcx::rt {

struct ParallelOptions {
  std::size_t grain = 1;  ///< indices per scheduled chunk (>= 1)
  Pool* pool = nullptr;   ///< nullptr = Pool::global()
};

/// Runs body(lo, hi) over disjoint sub-ranges covering [begin, end).
/// Runs inline when the range fits one chunk, the pool has one worker, or
/// the caller is already inside a parallel region.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  const ParallelOptions& options = {});

struct ParallelOptions2d {
  std::size_t grain_rows = 1;  ///< rows per block
  std::size_t grain_cols = 1;  ///< columns per block
  Pool* pool = nullptr;        ///< nullptr = Pool::global()
};

/// Runs body(row_lo, row_hi, col_lo, col_hi) over a blocked decomposition
/// of the [0, rows) x [0, cols) index space.
void parallel_for_2d(
    std::size_t rows, std::size_t cols,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body,
    const ParallelOptions2d& options = {});

namespace detail {
/// parallel_for, but the serial fallback still iterates chunk-by-chunk so
/// chunk boundaries are identical to the parallel path (the reduction
/// determinism hinges on this).
void parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t grain, Pool* pool,
    const std::function<void(std::size_t, std::size_t)>& body);
}  // namespace detail

/// Deterministic map-reduce: partial = map(chunk_lo, chunk_hi) per fixed
/// chunk of `grain` indices, folded as combine(acc, partial) in ascending
/// chunk order.  Bit-identical for any thread count (including serial)
/// given the same grain.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce_ordered(std::size_t begin, std::size_t end,
                          std::size_t grain, T init, MapFn map,
                          CombineFn combine, Pool* pool = nullptr) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(chunks);
  detail::parallel_for_chunked(
      begin, end, grain, pool,
      [&](std::size_t lo, std::size_t hi) {
        partial[(lo - begin) / grain] = map(lo, hi);
      });
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace rlcx::rt
