// rlcx::rt — the process-wide parallel runtime.
//
// One lazily-created work-stealing pool serves every parallel construct in
// the library (table characterisation, PEEC matrix assembly, frequency
// sweeps, batch extraction).  Sizing precedence: an explicit
// Pool::set_global_threads() call (the CLI's --threads flag) beats the
// RLCX_THREADS environment variable, which beats the hardware concurrency.
//
// Scheduling model: each worker owns a deque; it pops its own tasks from the
// front and steals from the back of the longest other queue when it runs
// dry.  Waiting callers help execute queued tasks instead of blocking, so a
// wait can never deadlock the pool.  Tasks executing on the pool are marked
// as "inside a parallel region": any parallel construct they invoke runs
// inline (serial), which keeps nested parallelism deadlock-free and the
// task granularity under the caller's control — fan out the *outermost*
// independent unit of work and let inner layers stay serial.
//
// Determinism: every construct in parallel.h either writes disjoint
// output slots or combines partial results in a fixed order, so parallel
// results are bit-identical to the serial ones for any worker count.
//
// Exceptions thrown inside tasks are captured and re-thrown to the waiter
// by std::exception_ptr, which preserves the concrete exception type — a
// diag::Fault thrown on a worker keeps its category/stage/message across
// the pool boundary.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

namespace rlcx::rt {

class TaskGroup;

class Pool {
 public:
  /// Creates a pool with `threads` workers (0 = default_threads()).
  /// Throws a `usage` fault for a negative count.
  explicit Pool(int threads = 0);
  ~Pool();  ///< drains nothing: callers must wait() their groups first
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Worker count (>= 1).
  int size() const noexcept;

  /// The process-wide pool, created on first use.
  static Pool& global();

  /// Overrides the global pool size (0 = back to RLCX_THREADS/hardware).
  /// Rebuilds the global pool if it already exists with a different size;
  /// must not be called while parallel work is in flight.
  static void set_global_threads(int threads);

  /// RLCX_THREADS when set to a valid positive integer (a malformed value
  /// emits a `usage` warning and is ignored), else the hardware
  /// concurrency, else 1.
  static int default_threads();

 private:
  friend class TaskGroup;

  void submit(TaskGroup* group, std::function<void()> fn);
  /// Runs one queued task on the calling thread if any is runnable.
  bool try_run_one();

  struct Impl;
  struct Task;
  static void run_task(Task& task);
  static void worker_main(Impl* impl, std::size_t index);

  std::unique_ptr<Impl> impl_;
};

/// Irregular fan-out: run() any number of tasks, then wait() for them all.
/// wait() helps execute queued tasks, then re-throws the first captured
/// task exception (original type preserved).  run() from inside a pool task
/// executes the task inline — nested groups degenerate to serial instead of
/// risking a self-deadlock.  The group must be waited before destruction
/// and must not outlive its pool.
class TaskGroup {
 public:
  explicit TaskGroup(Pool& pool = Pool::global());
  ~TaskGroup();  ///< waits for stragglers; discards any unre-thrown error
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  friend class Pool;
  void task_done(std::exception_ptr error);
  void wait_no_throw() noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True while the calling thread is executing a pool task or is inside a
/// SerialRegion; parallel constructs then run inline.
bool in_parallel_region() noexcept;

/// RAII: forces every parallel construct on this thread to run inline for
/// the scope's lifetime (used e.g. by build_tables(threads=1) so that a
/// nominally serial build does not recruit the pool in inner layers).
class SerialRegion {
 public:
  SerialRegion() noexcept;
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;
};

}  // namespace rlcx::rt
