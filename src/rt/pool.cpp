#include "rt/pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/control.h"

namespace rlcx::rt {

namespace {

// Depth of pool-task execution / SerialRegion nesting on this thread.
thread_local int t_region_depth = 0;

struct RegionGuard {
  RegionGuard() noexcept { ++t_region_depth; }
  ~RegionGuard() { --t_region_depth; }
};

}  // namespace

bool in_parallel_region() noexcept { return t_region_depth > 0; }

SerialRegion::SerialRegion() noexcept { ++t_region_depth; }
SerialRegion::~SerialRegion() { --t_region_depth; }

struct Pool::Task {
  std::function<void()> fn;
  TaskGroup* group = nullptr;
  // The submitting thread's ambient run control, adopted for the task
  // body so checkpoints inside fanned-out work observe the driver that
  // spawned it (valid for the task's lifetime: the driver's scope must
  // outlive the parallel region — see run/control.h).
  const void* ambient = nullptr;
};

// All queues share one mutex: the pool schedules coarse tasks (a 2-trace
// field solve, a matrix row, one frequency point), so queue traffic is
// orders of magnitude rarer than the work it dispatches and a single lock
// is both contention-free in practice and trivially race-free.  The
// per-worker deques still give work-stealing semantics: owners consume
// from the front of their own queue, thieves take from the back of the
// fullest other queue.
struct Pool::Impl {
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::deque<Task>> queues;  // one per worker
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next_queue{0};
  bool stop = false;

  // Pops a task for `self` (own queue first, then steal); SIZE_MAX means
  // any queue (external helper).  Caller holds `m`.
  bool pop_locked(std::size_t self, Task& out) {
    if (self < queues.size() && !queues[self].empty()) {
      out = std::move(queues[self].front());
      queues[self].pop_front();
      return true;
    }
    std::size_t victim = queues.size();
    std::size_t best = 0;
    for (std::size_t q = 0; q < queues.size(); ++q) {
      if (q != self && queues[q].size() > best) {
        best = queues[q].size();
        victim = q;
      }
    }
    if (victim == queues.size()) return false;
    out = std::move(queues[victim].back());
    queues[victim].pop_back();
    return true;
  }
};

void Pool::run_task(Task& task) {
  RegionGuard in_region;
  run::detail::ScopedAmbientAdopt adopt(task.ambient);
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  if (task.group != nullptr) task.group->task_done(std::move(error));
}

void Pool::worker_main(Impl* impl, std::size_t index) {
  std::unique_lock<std::mutex> lock(impl->m);
  while (true) {
    Task task;
    if (impl->pop_locked(index, task)) {
      lock.unlock();
      run_task(task);
      lock.lock();
      continue;
    }
    if (impl->stop) return;
    impl->cv.wait(lock);
  }
}

Pool::Pool(int threads) : impl_(std::make_unique<Impl>()) {
  if (threads < 0)
    throw diag::UsageError(
        "rt", "Pool: thread count must be >= 0, got " +
                  std::to_string(threads) + " (0 = RLCX_THREADS/hardware)");
  if (threads == 0) threads = default_threads();
  impl_->queues.resize(static_cast<std::size_t>(threads));
  impl_->workers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    impl_->workers.emplace_back(worker_main, impl_.get(),
                                static_cast<std::size_t>(i));
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

int Pool::size() const noexcept {
  return static_cast<int>(impl_->workers.size());
}

void Pool::submit(TaskGroup* group, std::function<void()> fn) {
  const std::size_t q = impl_->next_queue.fetch_add(
                            1, std::memory_order_relaxed) %
                        impl_->queues.size();
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->queues[q].push_back(
        Task{std::move(fn), group, run::detail::ambient_snapshot()});
  }
  impl_->cv.notify_one();
}

bool Pool::try_run_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    if (!impl_->pop_locked(impl_->queues.size(), task)) return false;
  }
  run_task(task);
  return true;
}

int Pool::default_threads() {
  if (const char* env = std::getenv("RLCX_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<int>(v);
    diag::emit_warning(diag::Category::kUsage, "rt",
                       "ignoring malformed RLCX_THREADS=\"" +
                           std::string(env) +
                           "\" (expected an integer in [1, 4096]); using "
                           "hardware concurrency");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

struct GlobalPool {
  std::mutex m;
  std::unique_ptr<Pool> pool;  // joined at static destruction
  int override_threads = 0;

  static GlobalPool& instance() {
    static GlobalPool g;
    return g;
  }
};

}  // namespace

Pool& Pool::global() {
  GlobalPool& g = GlobalPool::instance();
  std::lock_guard<std::mutex> lock(g.m);
  if (!g.pool) g.pool = std::make_unique<Pool>(g.override_threads);
  return *g.pool;
}

void Pool::set_global_threads(int threads) {
  if (threads < 0)
    throw diag::UsageError(
        "rt", "set_global_threads: thread count must be >= 0, got " +
                  std::to_string(threads));
  GlobalPool& g = GlobalPool::instance();
  std::lock_guard<std::mutex> lock(g.m);
  g.override_threads = threads;
  const int want = threads > 0 ? threads : default_threads();
  if (g.pool && g.pool->size() != want) g.pool.reset();
  if (!g.pool) g.pool = std::make_unique<Pool>(want);
}

struct TaskGroup::Impl {
  Pool& pool;
  std::atomic<std::size_t> pending{0};
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr first_error;  // guarded by m

  explicit Impl(Pool& p) : pool(p) {}
};

TaskGroup::TaskGroup(Pool& pool) : impl_(std::make_unique<Impl>(pool)) {}

TaskGroup::~TaskGroup() { wait_no_throw(); }

void TaskGroup::run(std::function<void()> fn) {
  if (in_parallel_region()) {
    // Called from inside a pool task: enqueueing could deadlock a
    // fully-busy pool waiting on itself, so nested groups run inline.
    fn();
    return;
  }
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  impl_->pool.submit(this, std::move(fn));
}

void TaskGroup::task_done(std::exception_ptr error) {
  if (error) {
    std::lock_guard<std::mutex> lock(impl_->m);
    if (!impl_->first_error) impl_->first_error = std::move(error);
  }
  if (impl_->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under the lock so a waiter cannot miss the final decrement
    // between its predicate check and its sleep.
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->cv.notify_all();
  }
}

void TaskGroup::wait() {
  while (impl_->pending.load(std::memory_order_acquire) != 0) {
    // Help: execute queued tasks (ours or anyone's) instead of idling.
    if (impl_->pool.try_run_one()) continue;
    // Queues are empty; our remaining tasks are running on workers.
    std::unique_lock<std::mutex> lock(impl_->m);
    impl_->cv.wait(lock, [this] {
      return impl_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    error = std::move(impl_->first_error);
    impl_->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::wait_no_throw() noexcept {
  try {
    wait();
  } catch (...) {
    // Destructor path: the error was never observed; drop it.
  }
}

}  // namespace rlcx::rt
