#include "rt/parallel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "diag/warnings.h"
#include "run/control.h"

namespace rlcx::rt {

namespace {

/// Shared chunk-claiming loop: workers and the calling thread race on an
/// atomic cursor, so a long chunk on one thread never idles the others
/// (the load-balance failure of static sharding).  Exceptions keep the
/// lowest-index one.
struct ChunkRun {
  std::size_t begin, end, grain, chunks;
  const std::function<void(std::size_t, std::size_t)>& body;
  std::atomic<std::size_t> next{0};
  std::mutex m;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  ChunkRun(std::size_t b, std::size_t e, std::size_t g, std::size_t c,
           const std::function<void(std::size_t, std::size_t)>& fn)
      : begin(b), end(e), grain(g), chunks(c), body(fn) {}

  void operator()() {
    while (true) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        // Cooperative cancellation/deadline point: between chunks, so a
        // triggered stop never interrupts a body mid-write — every chunk
        // either completes or never starts.  The thrown fault is captured
        // like any body exception (lowest chunk index wins) and re-thrown
        // with its type intact.
        run::checkpoint("rt");
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(m);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
    }
  }
};

void run_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                Pool& pool, bool force_chunked_serial,
                const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  if (chunks <= 1 || pool.size() <= 1 || in_parallel_region()) {
    if (!force_chunked_serial) {
      run::checkpoint("rt");
      body(begin, end);
      return;
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      // Same cancellation granularity as the parallel path: one
      // checkpoint per chunk, so serial and parallel runs stop at
      // identical boundaries.
      run::checkpoint("rt");
      const std::size_t lo = begin + c * grain;
      body(lo, std::min(end, lo + grain));
    }
    return;
  }
  ChunkRun run(begin, end, grain, chunks, body);
  {
    // Warn-once per parallel region: identical warnings raised by several
    // workers (the same degradation hit once per grid point) collapse to
    // one report instead of a thread-count-dependent flood.
    diag::ScopedWarningDedup dedup_region;
    TaskGroup group(pool);
    const std::size_t helpers = std::min<std::size_t>(
        static_cast<std::size_t>(pool.size()), chunks);
    for (std::size_t i = 0; i < helpers; ++i) group.run([&run] { run(); });
    {
      // The caller claims chunks too; mark it in-region so nested
      // constructs inside body() run inline here as on the workers.
      SerialRegion caller_in_region;
      run();
    }
    group.wait();
  }
  if (run.error) std::rethrow_exception(run.error);
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  const ParallelOptions& options) {
  Pool& pool = options.pool != nullptr ? *options.pool : Pool::global();
  run_chunks(begin, end, options.grain, pool, /*force_chunked_serial=*/false,
             body);
}

void detail::parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t grain, Pool* pool,
    const std::function<void(std::size_t, std::size_t)>& body) {
  Pool& p = pool != nullptr ? *pool : Pool::global();
  run_chunks(begin, end, grain, p, /*force_chunked_serial=*/true, body);
}

void parallel_for_2d(
    std::size_t rows, std::size_t cols,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body,
    const ParallelOptions2d& options) {
  if (rows == 0 || cols == 0) return;
  const std::size_t gr = options.grain_rows > 0 ? options.grain_rows : 1;
  const std::size_t gc = options.grain_cols > 0 ? options.grain_cols : 1;
  const std::size_t row_blocks = (rows + gr - 1) / gr;
  const std::size_t col_blocks = (cols + gc - 1) / gc;
  ParallelOptions flat;
  flat.grain = 1;  // one (row-block, col-block) tile per scheduled chunk
  flat.pool = options.pool;
  parallel_for(
      0, row_blocks * col_blocks,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const std::size_t rb = t / col_blocks;
          const std::size_t cb = t % col_blocks;
          const std::size_t r0 = rb * gr;
          const std::size_t c0 = cb * gc;
          body(r0, std::min(rows, r0 + gr), c0, std::min(cols, c0 + gc));
        }
      },
      flat);
}

}  // namespace rlcx::rt
