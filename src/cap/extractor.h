// Block-level capacitance extraction via the paper's short-range argument:
// "for a block, only the mutual capacitance between adjacent traces are
// important, and the rest of the mutual capacitance can be ignored", so the
// n-trace problem reduces to 3-trace subproblems (Section II).
#pragma once

#include <vector>

#include "geom/block.h"

namespace rlcx::cap {

/// Per-unit-length capacitances of every trace in a block.
struct CapResult {
  /// Ground capacitance per trace [F/m]: to the plane below (microstrip) or
  /// to the orthogonal routing layer below treated as AC ground (Figure 1's
  /// "orthogonal signal layer is assumed to be below").
  std::vector<double> cg;
  /// Coupling capacitance to the right-hand neighbour [F/m]; entry i couples
  /// trace i and i+1 (size n-1).  Longer-range couplings are dropped.
  std::vector<double> cc;

  /// Total capacitance of trace i (ground + both neighbours) [F/m].
  double total(std::size_t i) const;
};

/// Extract per-unit-length capacitance for the block.
CapResult extract_cap(const geom::Block& block);

/// The effective "ground below" distance used for the ground capacitance:
/// plane gap when the block is a microstrip/stripline, otherwise the gap to
/// the orthogonal layer N-1.
double ground_height(const geom::Block& block);

}  // namespace rlcx::cap
