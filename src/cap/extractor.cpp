#include "cap/extractor.h"

#include <stdexcept>

#include "cap/models.h"

namespace rlcx::cap {

double CapResult::total(std::size_t i) const {
  double c = cg.at(i);
  if (i > 0) c += cc.at(i - 1);
  if (i < cc.size()) c += cc.at(i);
  return c;
}

double ground_height(const geom::Block& block) {
  const geom::PlaneConfig pc = block.planes();
  if (pc == geom::PlaneConfig::kBelow || pc == geom::PlaneConfig::kBothSides)
    return block.height_above_plane();
  // No plane: the orthogonal routing layer below (N-1) is dense enough to
  // act as an AC ground for capacitance (it cannot for inductance — that is
  // the whole point of the paper's Section II).
  const int below = block.layer_index() - 1;
  if (block.tech().has_layer(below))
    return block.tech().dielectric_gap(below, block.layer_index());
  // Bottom layer: fall back to the full stack height to the substrate.
  return block.layer().z_bottom;
}

CapResult extract_cap(const geom::Block& block) {
  const double h_down = ground_height(block);
  if (h_down <= 0.0) throw std::logic_error("extract_cap: no dielectric below");
  const double t = block.layer().thickness;
  const double eps_r = block.tech().eps_r();
  const std::size_t n = block.size();
  const bool has_plane_above =
      block.planes() == geom::PlaneConfig::kAbove ||
      block.planes() == geom::PlaneConfig::kBothSides;

  CapResult res;
  res.cg.resize(n);
  res.cc.resize(n > 0 ? n - 1 : 0);

  // Area + fringe toward a ground at distance h, with each side's fringe
  // shielded by a close neighbour: the neighbour intercepts field lines
  // that would have reached the ground, scaling that side's fringe by
  // s/(s+h).
  auto ground_cap = [&](std::size_t i, double h) {
    const double w = block.trace(i).width;
    const double area = 1.15 * parallel_plate_cul(w, h, eps_r);
    const double fringe_half =
        0.5 * (sakurai_total_cul(w, t, h, eps_r) - area);
    double fringe = 0.0;
    if (i == 0) {
      fringe += fringe_half;
    } else {
      const double s = block.spacing(i - 1, i);
      fringe += fringe_half * s / (s + h);
    }
    if (i + 1 == n) {
      fringe += fringe_half;
    } else {
      const double s = block.spacing(i, i + 1);
      fringe += fringe_half * s / (s + h);
    }
    return area + fringe;
  };

  for (std::size_t i = 0; i < n; ++i) {
    res.cg[i] = ground_cap(i, h_down);
    if (has_plane_above) {
      const double h_up = block.tech().dielectric_gap(
          block.layer_index(), block.plane_layer_above());
      res.cg[i] += ground_cap(i, h_up);
    }
  }

  const bool over_plane =
      block.planes() == geom::PlaneConfig::kBelow ||
      block.planes() == geom::PlaneConfig::kBothSides;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double s = block.spacing(i, i + 1);
    const double w_avg =
        0.5 * (block.trace(i).width + block.trace(i + 1).width);
    res.cc[i] = over_plane
                    ? sakurai_coupling_cul(w_avg, t, h_down, s, eps_r)
                    : coplanar_coupling_cul(t, s, eps_r);
  }
  return res;
}

}  // namespace rlcx::cap
