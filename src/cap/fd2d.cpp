#include "cap/fd2d.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "cap/extractor.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "numeric/units.h"
#include "run/control.h"
#include "run/fault_injection.h"

namespace rlcx::cap {

namespace {

constexpr double kNoPlane = -1e18;

struct Grid {
  int nx = 0, nz = 0;
  double x0 = 0.0, z0 = 0.0, h = 0.0;
  bool plane_bottom = false;
  std::vector<int> owner;       // conductor index per node, -1 = free
  std::vector<double> phi;

  int idx(int ix, int iz) const { return iz * nx + ix; }
};

Grid build_grid(const std::vector<FdConductor>& conductors, double plane_z,
                const Fd2dOptions& opt) {
  if (conductors.empty())
    throw diag::GeometryError("fd2d", "no conductors in cross-section");
  if (opt.cell <= 0.0)
    throw diag::UsageError("fd2d", "cell size must be positive, got " +
                                       std::to_string(opt.cell));
  if (opt.margin < opt.cell)
    throw diag::UsageError("fd2d", "margin must be >= cell size");

  double x_lo = conductors[0].x_min, x_hi = conductors[0].x_max;
  double z_lo = conductors[0].z_min, z_hi = conductors[0].z_max;
  for (std::size_t c = 0; c < conductors.size(); ++c) {
    const FdConductor& k = conductors[c];
    if (k.x_max <= k.x_min || k.z_max <= k.z_min) {
      std::ostringstream msg;
      msg << "degenerate conductor " << c << ": x [" << k.x_min << ", "
          << k.x_max << "], z [" << k.z_min << ", " << k.z_max << "]";
      throw diag::GeometryError("fd2d", msg.str());
    }
    x_lo = std::min(x_lo, k.x_min);
    x_hi = std::max(x_hi, k.x_max);
    z_lo = std::min(z_lo, k.z_min);
    z_hi = std::max(z_hi, k.z_max);
  }

  Grid g;
  g.h = opt.cell;
  g.plane_bottom = plane_z > kNoPlane;
  if (g.plane_bottom && plane_z > z_lo)
    throw diag::GeometryError(
        "fd2d", "ground plane at z=" + std::to_string(plane_z) +
                    " lies above the lowest conductor (z=" +
                    std::to_string(z_lo) + ")");
  g.x0 = x_lo - opt.margin;
  g.z0 = g.plane_bottom ? plane_z : z_lo - opt.margin;
  g.nx = static_cast<int>(std::ceil((x_hi + opt.margin - g.x0) / g.h)) + 1;
  g.nz = static_cast<int>(std::ceil((z_hi + opt.margin - g.z0) / g.h)) + 1;
  if (static_cast<long long>(g.nx) * g.nz > 4'000'000)
    throw diag::UsageError("fd2d", "grid " + std::to_string(g.nx) + "x" +
                                       std::to_string(g.nz) +
                                       " too large; coarsen the cell");

  g.owner.assign(static_cast<std::size_t>(g.nx) * g.nz, -1);
  g.phi.assign(g.owner.size(), 0.0);
  for (std::size_t c = 0; c < conductors.size(); ++c) {
    const FdConductor& k = conductors[c];
    int ix0 = static_cast<int>(std::lround((k.x_min - g.x0) / g.h));
    int ix1 = static_cast<int>(std::lround((k.x_max - g.x0) / g.h));
    int iz0 = static_cast<int>(std::lround((k.z_min - g.z0) / g.h));
    int iz1 = static_cast<int>(std::lround((k.z_max - g.z0) / g.h));
    if (ix1 <= ix0) ix1 = ix0 + 1;  // at least one cell across
    if (iz1 <= iz0) iz1 = iz0 + 1;
    for (int iz = iz0; iz <= iz1; ++iz)
      for (int ix = ix0; ix <= ix1; ++ix) {
        if (ix < 0 || ix >= g.nx || iz < 0 || iz >= g.nz)
          throw std::logic_error("fd2d: conductor outside grid");
        if (g.owner[static_cast<std::size_t>(g.idx(ix, iz))] >= 0) {
          std::ostringstream msg;
          msg << "conductors " << g.owner[static_cast<std::size_t>(
                     g.idx(ix, iz))] << " and " << c
              << " overlap on the grid near x=" << g.x0 + ix * g.h
              << ", z=" << g.z0 + iz * g.h;
          throw diag::GeometryError("fd2d", msg.str());
        }
        g.owner[static_cast<std::size_t>(g.idx(ix, iz))] =
            static_cast<int>(c);
      }
  }
  return g;
}

/// Convergence record of one SOR attempt.
struct SorAttempt {
  bool converged = false;
  int iterations = 0;     ///< sweeps actually performed
  double residual = 0.0;  ///< max update of the final sweep [V]
};

/// One SOR sweep sequence with conductor `drive` at 1 V and relaxation
/// factor `omega`, up to `max_iterations` sweeps.
SorAttempt solve_once(Grid& g, int drive, const Fd2dOptions& opt,
                      double omega, int max_iterations) {
  // Initialise potentials: conductors fixed, free space 0.
  for (int iz = 0; iz < g.nz; ++iz)
    for (int ix = 0; ix < g.nx; ++ix) {
      const int o = g.owner[static_cast<std::size_t>(g.idx(ix, iz))];
      g.phi[static_cast<std::size_t>(g.idx(ix, iz))] =
          (o == drive) ? 1.0 : 0.0;
    }

  // Boundary handling: bottom row is Dirichlet 0 when a plane is present,
  // otherwise all four box edges are the far ground (Dirichlet 0).  With a
  // plane, sides and top are Neumann (mirror).
  const bool neumann_sides = g.plane_bottom;

  SorAttempt result;
  for (int it = 0; it < max_iterations; ++it) {
    // Sweep boundary: the grid state is consistent here, so a cancelled or
    // deadline-bound run unwinds without leaving a half-relaxed field that
    // anything downstream could read.
    run::checkpoint("fd2d");
    double max_delta = 0.0;
    for (int iz = 0; iz < g.nz; ++iz) {
      const bool bottom = iz == 0;
      const bool top = iz == g.nz - 1;
      if (bottom) continue;  // Dirichlet 0 (plane or far box)
      if (top && !neumann_sides) continue;
      for (int ix = 0; ix < g.nx; ++ix) {
        const bool left = ix == 0;
        const bool right = ix == g.nx - 1;
        if ((left || right) && !neumann_sides) continue;
        const std::size_t at = static_cast<std::size_t>(g.idx(ix, iz));
        if (g.owner[at] >= 0) continue;
        // Mirror out-of-range neighbours (Neumann) where applicable.
        const double pw = g.phi[static_cast<std::size_t>(
            g.idx(left ? ix + 1 : ix - 1, iz))];
        const double pe = g.phi[static_cast<std::size_t>(
            g.idx(right ? ix - 1 : ix + 1, iz))];
        const double ps =
            g.phi[static_cast<std::size_t>(g.idx(ix, iz - 1))];
        const double pn = g.phi[static_cast<std::size_t>(
            g.idx(ix, top ? iz - 1 : iz + 1))];
        const double target = 0.25 * (pw + pe + ps + pn);
        const double next = (1.0 - omega) * g.phi[at] + omega * target;
        max_delta = std::max(max_delta, std::abs(next - g.phi[at]));
        g.phi[at] = next;
      }
    }
    result.iterations = it + 1;
    result.residual = max_delta;
    if (max_delta < opt.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

/// Solve with escalation: the configured omega first; on non-convergence
/// retry with a more conservative relaxation and a larger sweep budget
/// (over-relaxed SOR can limit-cycle near omega=2, while omega=1 is plain
/// Gauss-Seidel — slow but unconditionally convergent for this Laplacian).
/// A drive that exhausts the ladder is accepted with a `numeric` warning:
/// degraded accuracy, never a silent lie.
SorAttempt solve(Grid& g, int drive, const Fd2dOptions& opt,
                 SorReport& report) {
  SorAttempt attempt = solve_once(g, drive, opt, opt.omega,
                                  opt.max_iterations);
  // Injection site `sor_diverge`: discard the first attempt's convergence
  // verdict so the escalation ladder below runs — the deterministic drill
  // for the omega-1.5/omega-1.0 degradation path (docs/robustness.md).
  if (run::fault_injection_enabled() && run::fault_point("sor_diverge"))
    attempt.converged = false;
  if (!attempt.converged && opt.escalate_on_nonconvergence) {
    const struct {
      double omega;
      int budget_factor;
    } ladder[] = {{1.5, 2}, {1.0, 4}};
    for (const auto& rung : ladder) {
      ++report.retries;
      attempt = solve_once(g, drive, opt, rung.omega,
                           opt.max_iterations * rung.budget_factor);
      if (attempt.converged) break;
    }
  }
  if (!attempt.converged) {
    std::ostringstream msg;
    msg << "SOR drive " << drive << " not converged after "
        << attempt.iterations << " sweeps (residual " << attempt.residual
        << " V, tolerance " << opt.tolerance
        << " V); capacitances from this solve carry reduced accuracy";
    diag::emit_warning(diag::Category::kNumeric, "fd2d", msg.str());
  }
  report.converged = report.converged && attempt.converged;
  report.iterations = std::max(report.iterations, attempt.iterations);
  report.residual = std::max(report.residual, attempt.residual);
  return attempt;
}

/// Boundary charge of every conductor for the current potential field.
std::vector<double> charges(const Grid& g, std::size_t n, double eps_r) {
  std::vector<double> q(n, 0.0);
  const double eps = kEps0 * eps_r;
  auto phi_at = [&](int ix, int iz) {
    return g.phi[static_cast<std::size_t>(g.idx(ix, iz))];
  };
  for (int iz = 0; iz < g.nz; ++iz)
    for (int ix = 0; ix < g.nx; ++ix) {
      const int o = g.owner[static_cast<std::size_t>(g.idx(ix, iz))];
      if (o < 0) continue;
      const double pc = phi_at(ix, iz);
      const int nb[4][2] = {
          {ix - 1, iz}, {ix + 1, iz}, {ix, iz - 1}, {ix, iz + 1}};
      for (const auto& [jx, jz] : nb) {
        if (jx < 0 || jx >= g.nx || jz < 0 || jz >= g.nz) continue;
        if (g.owner[static_cast<std::size_t>(g.idx(jx, jz))] >= 0) continue;
        // Flux through the face toward the free node: eps * (phi_nb - phi_c)
        // (face length h over node distance h cancels).
        q[static_cast<std::size_t>(o)] += eps * (phi_at(jx, jz) - pc);
      }
    }
  for (double& v : q) v = -v;  // charge = -eps * dphi/dn outward
  return q;
}

}  // namespace

RealMatrix fd_capacitance_matrix(const std::vector<FdConductor>& conductors,
                                 double eps_r, double ground_plane_z,
                                 const Fd2dOptions& opt, SorReport* report) {
  if (eps_r <= 0.0)
    throw diag::UsageError("fd2d", "eps_r must be positive, got " +
                                       std::to_string(eps_r));
  Grid g = build_grid(conductors, ground_plane_z, opt);
  const std::size_t n = conductors.size();
  SorReport local;
  RealMatrix c(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    solve(g, static_cast<int>(j), opt, local);
    const std::vector<double> q = charges(g, n, eps_r);
    for (std::size_t i = 0; i < n; ++i) c(i, j) = q[i];
  }
  if (report != nullptr) *report = local;
  // Symmetrise (discretisation leaves ~1e-3 asymmetry).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double m = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = m;
      c(j, i) = m;
    }
  return c;
}

namespace {

std::vector<FdConductor> block_conductors(const geom::Block& block) {
  std::vector<FdConductor> out;
  const geom::Layer& layer = block.layer();
  for (std::size_t i = 0; i < block.size(); ++i) {
    const geom::Trace& t = block.trace(i);
    out.push_back({t.x_left(), t.x_right(), layer.z_bottom, layer.z_top()});
  }
  return out;
}

}  // namespace

RealMatrix fd_block_capacitance(const geom::Block& block,
                                const Fd2dOptions& opt, SorReport* report) {
  const double h = ground_height(block);
  const double plane_z = block.layer().z_bottom - h;
  return fd_capacitance_matrix(block_conductors(block),
                               block.tech().eps_r(), plane_z, opt, report);
}

namespace {

/// Folds a subproblem's convergence record into the aggregate.
void merge_report(SorReport& total, const SorReport& sub) {
  total.converged = total.converged && sub.converged;
  total.iterations = std::max(total.iterations, sub.iterations);
  total.residual = std::max(total.residual, sub.residual);
  total.retries += sub.retries;
}

}  // namespace

FdCapResult extract_cap_fd(const geom::Block& block,
                           const Fd2dOptions& opt) {
  const std::size_t n = block.size();
  FdCapResult res;
  res.cg.assign(n, 0.0);
  res.cc.assign(n > 0 ? n - 1 : 0, 0.0);

  // The paper's short-range reduction: each trace with its two adjacent
  // neighbours forms a 3-trace subproblem.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> keep;
    if (i > 0) keep.push_back(i - 1);
    keep.push_back(i);
    if (i + 1 < n) keep.push_back(i + 1);
    const geom::Block sub = block.subproblem(keep);
    SorReport sub_report;
    const RealMatrix c = fd_block_capacitance(sub, opt, &sub_report);
    merge_report(res.sor, sub_report);
    // Position of trace i within the subproblem.
    std::size_t mid = 0;
    while (keep[mid] != i) ++mid;
    double row_sum = 0.0;
    for (std::size_t j = 0; j < keep.size(); ++j) row_sum += c(mid, j);
    res.cg[i] = row_sum;
    // Coupling to the right-hand neighbour, from this subproblem.
    if (i + 1 < n) {
      const std::size_t right = mid + 1;
      res.cc[i] = -c(mid, right);
    }
  }
  return res;
}

}  // namespace rlcx::cap
