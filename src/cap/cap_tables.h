// Pre-characterised capacitance tables (the [4] side of the paper's flow).
//
// Section V: "we extract the resistance, capacitance, and inductance ...
// given the geometry parameters via the pre-characterised capacitance and
// inductance table look-up".  The inductance tables live in rlcx_core; this
// is their capacitance counterpart: 3-trace subproblems solved with the FD
// field solver over a (width, spacing) grid, interpolated with the same
// tensor-spline machinery.
//
// Table shapes (per layer / plane configuration, at fixed metal thickness
// and ground height — both process constants):
//   cg(w, s)  — ground capacitance of a trace of width w with neighbours of
//               the same width at spacing s on both sides  [F/m]
//   cc(w, s)  — coupling to one such neighbour              [F/m]
#pragma once

#include <iosfwd>
#include <string>

#include "cap/fd2d.h"
#include "geom/block.h"
#include "numeric/spline.h"

namespace rlcx::cap {

struct CapTableGrid {
  std::vector<double> widths;    ///< [m]
  std::vector<double> spacings;  ///< [m]
};

class CapTables {
 public:
  CapTables() = default;

  /// Characterise for the given layer / plane configuration.
  static CapTables build(const geom::Technology& tech, int layer,
                         geom::PlaneConfig planes, const CapTableGrid& grid,
                         const Fd2dOptions& fd = {});

  /// Ground capacitance per unit length [F/m] for width w, neighbours at
  /// spacing s (bi-cubic spline lookup).
  double cg(double width, double spacing) const;
  /// Coupling to one adjacent neighbour [F/m].
  double cc(double width, double spacing) const;

  int layer() const { return layer_; }
  geom::PlaneConfig planes() const { return planes_; }
  bool empty() const { return cg_values_.empty(); }

  /// Aggregated convergence record of the FD solves behind build():
  /// worst residual and largest sweep count across every grid point.  A
  /// loaded table has a default (converged, zero-iteration) report — the
  /// record describes this process's solves, not the file's provenance.
  const SorReport& solver_report() const { return sor_; }

  void save(std::ostream& os) const;
  static CapTables load(std::istream& is);
  void save_file(const std::string& path) const;
  static CapTables load_file(const std::string& path);

 private:
  double lookup(const std::vector<double>& values, double w, double s) const;

  int layer_ = 0;
  geom::PlaneConfig planes_ = geom::PlaneConfig::kNone;
  std::vector<double> widths_;
  std::vector<double> spacings_;
  std::vector<double> cg_values_;  ///< row-major (width, spacing)
  std::vector<double> cc_values_;
  SorReport sor_;
};

}  // namespace rlcx::cap
