#include "cap/models.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "numeric/elliptic.h"
#include "numeric/units.h"

namespace rlcx::cap {

namespace {
void require_positive(double v, const char* what) {
  if (v <= 0.0) throw std::invalid_argument(std::string("cap model: ") + what);
}
}  // namespace

double parallel_plate_cul(double width, double height, double eps_r) {
  require_positive(width, "width");
  require_positive(height, "height");
  require_positive(eps_r, "eps_r");
  return kEps0 * eps_r * width / height;
}

double sakurai_total_cul(double width, double thickness, double height,
                         double eps_r) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  require_positive(height, "height");
  require_positive(eps_r, "eps_r");
  const double wh = width / height;
  const double th = thickness / height;
  return kEps0 * eps_r * (1.15 * wh + 2.80 * std::pow(th, 0.222));
}

double sakurai_coupling_cul(double width, double thickness, double height,
                            double spacing, double eps_r) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  require_positive(height, "height");
  require_positive(spacing, "spacing");
  require_positive(eps_r, "eps_r");
  const double wh = width / height;
  const double th = thickness / height;
  const double base =
      0.03 * wh + 0.83 * th - 0.07 * std::pow(th, 0.222);
  return kEps0 * eps_r * base * std::pow(spacing / height, -1.34);
}

double cpw_total_cul(double signal_width, double spacing, double eps_r) {
  require_positive(signal_width, "width");
  require_positive(spacing, "spacing");
  require_positive(eps_r, "eps_r");
  const double k = signal_width / (signal_width + 2.0 * spacing);
  const double eps_eff = 0.5 * (eps_r + 1.0);
  return 4.0 * kEps0 * eps_eff * elliptic_k_ratio(k);
}

double coplanar_coupling_cul(double thickness, double spacing, double eps_r) {
  require_positive(thickness, "thickness");
  require_positive(spacing, "spacing");
  require_positive(eps_r, "eps_r");
  // Sidewall plate term plus a near-constant fringing allowance per edge
  // pair (~1.2 eps), the standard first-order coplanar coupling estimate.
  return kEps0 * eps_r * (thickness / spacing) + 1.2 * kEps0 * eps_r;
}

double resistance_pul(double width, double thickness, double rho) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  require_positive(rho, "rho");
  return rho / (width * thickness);
}

double segment_resistance(double width, double thickness, double length,
                          double rho) {
  require_positive(length, "length");
  return resistance_pul(width, thickness, rho) * length;
}

}  // namespace rlcx::cap
