#include "cap/cap_tables.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "geom/builders.h"

namespace rlcx::cap {

CapTables CapTables::build(const geom::Technology& tech, int layer,
                           geom::PlaneConfig planes,
                           const CapTableGrid& grid, const Fd2dOptions& fd) {
  if (grid.widths.size() < 2 || grid.spacings.size() < 2)
    throw std::invalid_argument("CapTables: each axis needs >= 2 points");

  CapTables t;
  t.layer_ = layer;
  t.planes_ = planes;
  t.widths_ = grid.widths;
  t.spacings_ = grid.spacings;
  t.cg_values_.reserve(grid.widths.size() * grid.spacings.size());
  t.cc_values_.reserve(t.cg_values_.capacity());

  // Characterisation length is immaterial: the FD solve is per unit length.
  const double len = 1e-4;
  for (double w : grid.widths) {
    for (double s : grid.spacings) {
      // The 3-trace subproblem: the trace with same-width neighbours.
      const geom::Block sub = geom::uniform_array(tech, layer, len, 3, w, s,
                                                  planes);
      SorReport point;
      const RealMatrix c = fd_block_capacitance(sub, fd, &point);
      t.sor_.converged = t.sor_.converged && point.converged;
      t.sor_.iterations = std::max(t.sor_.iterations, point.iterations);
      t.sor_.residual = std::max(t.sor_.residual, point.residual);
      t.sor_.retries += point.retries;
      double row = 0.0;
      for (std::size_t j = 0; j < 3; ++j) row += c(1, j);
      t.cg_values_.push_back(row);
      t.cc_values_.push_back(-c(1, 2));
    }
  }
  return t;
}

double CapTables::lookup(const std::vector<double>& values, double w,
                         double s) const {
  if (values.empty()) throw std::logic_error("CapTables: empty table");
  return TensorSpline({widths_, spacings_}, values).eval({w, s});
}

double CapTables::cg(double width, double spacing) const {
  return lookup(cg_values_, width, spacing);
}

double CapTables::cc(double width, double spacing) const {
  return lookup(cc_values_, width, spacing);
}

void CapTables::save(std::ostream& os) const {
  os << "rlcx-cap-tables 1 " << layer_ << " " << static_cast<int>(planes_)
     << "\n";
  os << std::setprecision(17);
  os << widths_.size();
  for (double v : widths_) os << " " << v;
  os << "\n" << spacings_.size();
  for (double v : spacings_) os << " " << v;
  os << "\n";
  for (double v : cg_values_) os << v << " ";
  os << "\n";
  for (double v : cc_values_) os << v << " ";
  os << "\n";
}

CapTables CapTables::load(std::istream& is) {
  std::string magic;
  int version = 0;
  CapTables t;
  int planes_int = 0;
  is >> magic >> version >> t.layer_ >> planes_int;
  if (!is || magic != "rlcx-cap-tables" || version != 1)
    throw std::runtime_error("CapTables: bad header");
  t.planes_ = static_cast<geom::PlaneConfig>(planes_int);
  std::size_t nw = 0, ns = 0;
  is >> nw;
  if (!is || nw < 2) throw std::runtime_error("CapTables: bad width axis");
  t.widths_.resize(nw);
  for (double& v : t.widths_) is >> v;
  is >> ns;
  if (!is || ns < 2) throw std::runtime_error("CapTables: bad spacing axis");
  t.spacings_.resize(ns);
  for (double& v : t.spacings_) is >> v;
  t.cg_values_.resize(nw * ns);
  for (double& v : t.cg_values_) is >> v;
  t.cc_values_.resize(nw * ns);
  for (double& v : t.cc_values_) is >> v;
  if (!is) throw std::runtime_error("CapTables: truncated file");
  return t;
}

void CapTables::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CapTables: cannot open " + path);
  save(os);
}

CapTables CapTables::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("CapTables: cannot open " + path);
  return load(is);
}

}  // namespace rlcx::cap
