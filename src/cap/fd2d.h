// 2-D finite-difference capacitance solver — the numerical reference the
// closed-form models approximate, standing in for the Raphael capacitance
// solves behind the paper's pre-characterised tables [4].
//
// Cross-sections are x-z rectangles of conductors in a uniform dielectric.
// The Laplace equation is solved by SOR on a regular grid; conductor k is
// driven to 1 V with the rest grounded, and the Maxwell capacitance matrix
// follows from the boundary charge of every conductor.  Per-unit-length
// values [F/m], like everything else in rlcx_cap.
#pragma once

#include <vector>

#include "geom/block.h"
#include "numeric/matrix.h"

namespace rlcx::cap {

/// A conductor rectangle in the cross-section plane.
struct FdConductor {
  double x_min = 0.0, x_max = 0.0;  ///< [m]
  double z_min = 0.0, z_max = 0.0;  ///< [m]
};

struct Fd2dOptions {
  /// Grid cell size [m].  Must be several times smaller than the narrowest
  /// conductor gap, or the sidewall field between close traces is
  /// unresolved and the coupling comes out badly low.
  double cell = 0.25e-6;
  double margin = 8e-6;      ///< simulation margin around the conductors [m]
  int max_iterations = 40000;
  double tolerance = 1e-7;   ///< max potential update per sweep [V]
  double omega = 1.92;       ///< SOR relaxation factor
  /// When a drive fails to converge within max_iterations, retry with a
  /// safer relaxation factor and a larger iteration budget (escalation
  /// ladder: omega 1.5 at 2x, then 1.0 at 4x) before accepting the result
  /// with a warning.  Disable to reproduce a single fixed-budget solve.
  bool escalate_on_nonconvergence = true;
};

/// Convergence record of the SOR solves behind one capacitance extraction.
/// Aggregated over all drives (and, in extract_cap_fd, all subproblems):
/// worst residual, largest iteration count, total escalation retries.
struct SorReport {
  bool converged = true;     ///< every drive met the tolerance
  int iterations = 0;        ///< largest per-drive iteration count used
  double residual = 0.0;     ///< worst final max-update per sweep [V]
  int retries = 0;           ///< escalation retries performed
};

/// Maxwell capacitance matrix [F/m] of the conductor set.
/// `ground_plane_z`: if finite (>= -1e17), a grounded plane forms the
/// bottom boundary at that height; otherwise the far box is the ground.
/// A drive that fails to converge escalates per Fd2dOptions and, if still
/// unconverged, is accepted with a `numeric` warning on the diag channel;
/// pass `report` to observe iterations/residual programmatically.
RealMatrix fd_capacitance_matrix(const std::vector<FdConductor>& conductors,
                                 double eps_r, double ground_plane_z,
                                 const Fd2dOptions& options = {},
                                 SorReport* report = nullptr);

/// Convenience: run the solver on a geometry Block (all traces), with the
/// ground plane at the block's capacitive ground height (plane below or the
/// orthogonal layer N-1, as in extract_cap).
RealMatrix fd_block_capacitance(const geom::Block& block,
                                const Fd2dOptions& options = {},
                                SorReport* report = nullptr);

/// Signal-oriented summary like extract_cap's CapResult: ground capacitance
/// per trace and adjacent coupling, derived from the Maxwell matrix of the
/// 3-trace subproblems (the paper's short-range reduction).
struct FdCapResult {
  std::vector<double> cg;  ///< [F/m]
  std::vector<double> cc;  ///< adjacent couplings, size n-1 [F/m]
  SorReport sor;           ///< aggregated convergence record
};

FdCapResult extract_cap_fd(const geom::Block& block,
                           const Fd2dOptions& options = {});

}  // namespace rlcx::cap
