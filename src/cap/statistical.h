// Statistically-based RC modeling under process variation (paper ref. [4],
// "Fast Generation of Statistically-based Worst-Case Modeling of On-Chip
// Interconnect").
//
// Geometry parameters (width bias, metal thickness, dielectric height) vary
// as independent Gaussians.  The module generates worst/best-case corners
// and Monte-Carlo distributions of per-unit-length R and C.  Section V of
// the paper combines the *nominal* inductance with this statistical RC,
// because L is insensitive to these variations — bench E7 quantifies that.
#pragma once

#include <cstdint>
#include <functional>

#include "geom/block.h"
#include "numeric/stats.h"

namespace rlcx::cap {

/// 1-sigma process variation, as fractions of the nominal values.
struct ProcessVariation {
  double sigma_w = 0.05;  ///< line-width bias
  double sigma_t = 0.05;  ///< metal thickness
  double sigma_h = 0.08;  ///< dielectric height below
};

/// One sampled/cornered geometry, as multipliers on the nominal.
struct GeometrySample {
  double w_scale = 1.0;
  double t_scale = 1.0;
  double h_scale = 1.0;
};

/// RC of a trace geometry under a sample, per unit length.
struct RcPoint {
  double r_pul = 0.0;  ///< [ohm/m]
  double c_pul = 0.0;  ///< [F/m]
};

/// Evaluate per-unit-length R and total C of a signal trace (width w,
/// thickness t, ground height h, neighbour spacing s) under a geometry
/// sample.  Width grows at the expense of spacing (constant pitch), as in
/// real lithographic bias.
RcPoint evaluate_rc(double w, double t, double h, double s, double rho,
                    double eps_r, const GeometrySample& g);

/// +/- n-sigma delay corners: worst = max R*C, best = min R*C.
struct RcCorners {
  RcPoint nominal;
  RcPoint worst;
  RcPoint best;
};

RcCorners rc_corners(double w, double t, double h, double s, double rho,
                     double eps_r, const ProcessVariation& pv,
                     double nsigma = 3.0);

/// Monte-Carlo distribution of R and C (and anything else via the callback).
struct RcDistribution {
  RunningStats r;
  RunningStats c;
};

RcDistribution monte_carlo_rc(double w, double t, double h, double s,
                              double rho, double eps_r,
                              const ProcessVariation& pv, int samples,
                              std::uint64_t seed = 1);

/// Run a user metric over Monte-Carlo geometry samples — the hook bench E7
/// uses to push sampled geometry through the *inductance* solver and show
/// the paper's "L is insensitive to process variation" claim.
RunningStats monte_carlo_metric(const ProcessVariation& pv, int samples,
                                const std::function<double(
                                    const GeometrySample&)>& metric,
                                std::uint64_t seed = 1);

}  // namespace rlcx::cap
