// Closed-form per-unit-length capacitance and resistance models.
//
// The paper extracts capacitance with a numerical solver (Raphael) through
// pre-characterised tables [4]; the substitution here uses published
// closed forms that reproduce the same magnitudes and sensitivities:
//   * Sakurai-Tamaru for a line over a ground plane (area + fringe),
//   * an empirical (s/h)^-1.34 coupling law for parallel lines over a plane,
//   * conformal mapping (elliptic integrals) for the coplanar waveguide,
//   * rho*l/(w*t) for resistance, as the paper itself does analytically.
// All results are per unit length [F/m], [ohm/m]; multiply by segment length.
#pragma once

namespace rlcx::cap {

/// Plain parallel-plate capacitance per unit length: eps * w / h.
double parallel_plate_cul(double width, double height, double eps_r);

/// Sakurai-Tamaru single line over a plane: area term plus edge fringe,
/// C = eps (1.15 w/h + 2.80 (t/h)^0.222).  Accurate to ~6 % for
/// 0.3 < w/h < 30 and 0.3 < t/h < 10.
double sakurai_total_cul(double width, double thickness, double height,
                         double eps_r);

/// Coupling capacitance between two parallel lines over a plane, spacing s:
/// C = eps (0.03 w/h + 0.83 t/h - 0.07 (t/h)^0.222) (s/h)^-1.34.
double sakurai_coupling_cul(double width, double thickness, double height,
                            double spacing, double eps_r);

/// Coplanar waveguide (G-S-G, no plane): total signal capacitance to the
/// two grounds via conformal mapping, C = 4 eps0 eps_eff K(k)/K(k') with
/// k = w/(w+2s) and eps_eff = (eps_r+1)/2 for a thick substrate.
double cpw_total_cul(double signal_width, double spacing, double eps_r);

/// Edge-to-edge coupling of two coplanar traces without a plane:
/// parallel-plate sidewall term t/s plus a constant fringe allowance.
double coplanar_coupling_cul(double thickness, double spacing, double eps_r);

/// Series resistance per unit length, rho / (w t).
double resistance_pul(double width, double thickness, double rho);

/// Sheet-style lumped resistance of a segment, rho l / (w t).
double segment_resistance(double width, double thickness, double length,
                          double rho);

}  // namespace rlcx::cap
