#include "cap/statistical.h"

#include <stdexcept>

#include "cap/models.h"

namespace rlcx::cap {

RcPoint evaluate_rc(double w, double t, double h, double s, double rho,
                    double eps_r, const GeometrySample& g) {
  const double ws = w * g.w_scale;
  const double ts = t * g.t_scale;
  const double hs = h * g.h_scale;
  // Constant pitch: what width gains, spacing loses.
  const double ss = s - (ws - w);
  if (ss <= 0.0)
    throw std::invalid_argument("evaluate_rc: width bias closes the gap");
  RcPoint p;
  p.r_pul = resistance_pul(ws, ts, rho);
  p.c_pul = sakurai_total_cul(ws, ts, hs, eps_r) +
            2.0 * sakurai_coupling_cul(ws, ts, hs, ss, eps_r);
  return p;
}

RcCorners rc_corners(double w, double t, double h, double s, double rho,
                     double eps_r, const ProcessVariation& pv,
                     double nsigma) {
  RcCorners c;
  c.nominal = evaluate_rc(w, t, h, s, rho, eps_r, {});

  // Delay ~ R*C.  R falls with w and t; C rises with w and t and falls
  // with h.  The worst R*C corner is not a single monotone direction, so
  // probe all 2^3 sign corners and keep the extremes — cheap and robust,
  // exactly what [4]'s corner generation converges to.
  double worst = -1.0, best = -1.0;
  for (int sw : {-1, +1}) {
    for (int st : {-1, +1}) {
      for (int sh : {-1, +1}) {
        GeometrySample g;
        g.w_scale = 1.0 + sw * nsigma * pv.sigma_w;
        g.t_scale = 1.0 + st * nsigma * pv.sigma_t;
        g.h_scale = 1.0 + sh * nsigma * pv.sigma_h;
        const RcPoint p = evaluate_rc(w, t, h, s, rho, eps_r, g);
        const double rc = p.r_pul * p.c_pul;
        if (worst < 0.0 || rc > worst) {
          worst = rc;
          c.worst = p;
        }
        if (best < 0.0 || rc < best) {
          best = rc;
          c.best = p;
        }
      }
    }
  }
  return c;
}

RcDistribution monte_carlo_rc(double w, double t, double h, double s,
                              double rho, double eps_r,
                              const ProcessVariation& pv, int samples,
                              std::uint64_t seed) {
  if (samples < 1) throw std::invalid_argument("monte_carlo_rc: samples");
  GaussianSampler rng(seed);
  RcDistribution d;
  for (int i = 0; i < samples; ++i) {
    GeometrySample g;
    g.w_scale = rng.sample_truncated(1.0, pv.sigma_w);
    g.t_scale = rng.sample_truncated(1.0, pv.sigma_t);
    g.h_scale = rng.sample_truncated(1.0, pv.sigma_h);
    const RcPoint p = evaluate_rc(w, t, h, s, rho, eps_r, g);
    d.r.add(p.r_pul);
    d.c.add(p.c_pul);
  }
  return d;
}

RunningStats monte_carlo_metric(const ProcessVariation& pv, int samples,
                                const std::function<double(
                                    const GeometrySample&)>& metric,
                                std::uint64_t seed) {
  if (samples < 1) throw std::invalid_argument("monte_carlo_metric: samples");
  if (!metric) throw std::invalid_argument("monte_carlo_metric: metric");
  GaussianSampler rng(seed);
  RunningStats stats;
  for (int i = 0; i < samples; ++i) {
    GeometrySample g;
    g.w_scale = rng.sample_truncated(1.0, pv.sigma_w);
    g.t_scale = rng.sample_truncated(1.0, pv.sigma_t);
    g.h_scale = rng.sample_truncated(1.0, pv.sigma_h);
    stats.add(metric(g));
  }
  return stats;
}

}  // namespace rlcx::cap
