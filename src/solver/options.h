// Options controlling the field-solver substitute.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>

#include "peec/mesh.h"
#include "peec/partial_inductance.h"

namespace rlcx::solver {

/// How a local ground plane (layer N±2) is discretised.  FastHenry models
/// planes as arrays of parallel strips; the return current distributes
/// across them in the impedance solve.
struct PlaneOptions {
  int strips = 15;           ///< strips across the plane extent
  double margin_factor = 8.0;///< lateral margin beyond the block, in units
                             ///< of the dielectric height to the plane
  double min_margin = 10e-6; ///< [m] floor on the margin
};

/// Which impedance solver conductor_impedance runs.  kDense is the blocked
/// LU oracle; kHmat is the hierarchical ACA + GMRES path (src/hmat); kAuto
/// picks by filament count against HmatSolveOptions::auto_crossover.
enum class SolverKind { kAuto, kDense, kHmat };

inline const char* to_string(SolverKind k) {
  switch (k) {
    case SolverKind::kDense: return "dense";
    case SolverKind::kHmat: return "hmat";
    default: return "auto";
  }
}

/// Hierarchical-path knobs (see docs/performance.md "Hierarchical PEEC").
struct HmatSolveOptions {
  std::size_t leaf_size = 32;   ///< cluster-tree leaf bound
  double eta = 2.0;             ///< admissibility parameter
  double aca_tol = 1e-11;       ///< ACA relative Frobenius tolerance
  std::size_t max_rank = 128;   ///< per-block ACA cap (beyond: dense block)
  /// Schwarz preconditioner granularity: the cluster tree is cut at nodes
  /// of at most this many filaments (never below a leaf), each block
  /// widened by a quarter-block overlap on both sides.  Decoupled from
  /// leaf_size — block size and overlap set the GMRES convergence rate,
  /// leaf size sets the compression; 32 measured fastest end-to-end
  /// (bigger blocks save iterations but cost more per application).
  std::size_t precond_block = 32;
  /// GMRES relative residual target.  1e-9 keeps the final inductances
  /// within ~1e-9 of the dense oracle (an order under the 1e-8
  /// interchangeability gate) without paying for decades of residual the
  /// downstream tables cannot observe.
  double gmres_tol = 1e-9;
  std::size_t gmres_restart = 60;
  std::size_t gmres_max_iterations = 400;
  /// Filament count at which `auto` switches to the hierarchical path.
  /// The SIMD batch engine + LU micro-kernel sped the dense oracle ~2x,
  /// pushing the measured wall-clock crossover past the bench range
  /// (BENCH_hmat.json: dense still wins at 5120, ratio improving ~0.1 per
  /// size doubling from 0.67); this is the extrapolated ~1.7-doublings
  /// estimate.  Memory crosses over far earlier (hmat stores 4% of the
  /// dense entries at 5120), so callers tight on memory should lower it.
  std::size_t auto_crossover = 16384;
  /// Non-convergence ladder: retry with a doubled budget, then fall back
  /// to the dense oracle with a warning (mirrors the SOR escalation in
  /// cap/fd2d).  When false, non-convergence throws a NumericError naming
  /// the hmat path.
  bool escalate_on_nonconvergence = true;
};

struct SolveOptions {
  double frequency = 1e9;  ///< [Hz] evaluate at the significant frequency

  /// When true the cross-section mesh is chosen from the skin depth at
  /// `frequency`; otherwise `mesh` is used as given.
  bool auto_mesh = true;
  int max_filaments_per_dim = 4;
  peec::MeshOptions mesh{};

  peec::PartialOptions partial{};
  PlaneOptions plane{};

  SolverKind solver = SolverKind::kAuto;
  HmatSolveOptions hmat{};
};

/// Canonical ASCII description of every option that can change a solve
/// result (frequency, meshing, kernel and plane parameters), doubles with
/// 17 significant digits.  Two SolveOptions with equal fingerprints produce
/// identical tables; feeds the table-cache key (docs/table-format.md).
inline std::string fingerprint(const SolveOptions& o) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "opt frequency %.17g auto_mesh %d max_filaments_per_dim %d\n",
                o.frequency, o.auto_mesh ? 1 : 0, o.max_filaments_per_dim);
  out += buf;
  std::snprintf(buf, sizeof buf, "mesh nw %d nt %d grading %.17g\n",
                o.mesh.nw, o.mesh.nt, o.mesh.grading);
  out += buf;
  std::snprintf(buf, sizeof buf, "partial max_aspect %.17g far_factor %.17g\n",
                o.partial.max_aspect, o.partial.far_factor);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "plane strips %d margin_factor %.17g min_margin %.17g\n",
                o.plane.strips, o.plane.margin_factor, o.plane.min_margin);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "solver kind %s leaf %zu eta %.17g aca_tol %.17g max_rank "
                "%zu pc_block %zu gmres_tol %.17g restart %zu maxit %zu "
                "crossover %zu\n",
                to_string(o.solver), o.hmat.leaf_size, o.hmat.eta,
                o.hmat.aca_tol, o.hmat.max_rank, o.hmat.precond_block,
                o.hmat.gmres_tol, o.hmat.gmres_restart,
                o.hmat.gmres_max_iterations, o.hmat.auto_crossover);
  out += buf;
  return out;
}

}  // namespace rlcx::solver
