// Options controlling the field-solver substitute.
#pragma once

#include <cstdio>
#include <string>

#include "peec/mesh.h"
#include "peec/partial_inductance.h"

namespace rlcx::solver {

/// How a local ground plane (layer N±2) is discretised.  FastHenry models
/// planes as arrays of parallel strips; the return current distributes
/// across them in the impedance solve.
struct PlaneOptions {
  int strips = 15;           ///< strips across the plane extent
  double margin_factor = 8.0;///< lateral margin beyond the block, in units
                             ///< of the dielectric height to the plane
  double min_margin = 10e-6; ///< [m] floor on the margin
};

struct SolveOptions {
  double frequency = 1e9;  ///< [Hz] evaluate at the significant frequency

  /// When true the cross-section mesh is chosen from the skin depth at
  /// `frequency`; otherwise `mesh` is used as given.
  bool auto_mesh = true;
  int max_filaments_per_dim = 4;
  peec::MeshOptions mesh{};

  peec::PartialOptions partial{};
  PlaneOptions plane{};
};

/// Canonical ASCII description of every option that can change a solve
/// result (frequency, meshing, kernel and plane parameters), doubles with
/// 17 significant digits.  Two SolveOptions with equal fingerprints produce
/// identical tables; feeds the table-cache key (docs/table-format.md).
inline std::string fingerprint(const SolveOptions& o) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "opt frequency %.17g auto_mesh %d max_filaments_per_dim %d\n",
                o.frequency, o.auto_mesh ? 1 : 0, o.max_filaments_per_dim);
  out += buf;
  std::snprintf(buf, sizeof buf, "mesh nw %d nt %d grading %.17g\n",
                o.mesh.nw, o.mesh.nt, o.mesh.grading);
  out += buf;
  std::snprintf(buf, sizeof buf, "partial max_aspect %.17g far_factor %.17g\n",
                o.partial.max_aspect, o.partial.far_factor);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "plane strips %d margin_factor %.17g min_margin %.17g\n",
                o.plane.strips, o.plane.margin_factor, o.plane.min_margin);
  out += buf;
  return out;
}

}  // namespace rlcx::solver
