// Options controlling the field-solver substitute.
#pragma once

#include "peec/mesh.h"
#include "peec/partial_inductance.h"

namespace rlcx::solver {

/// How a local ground plane (layer N±2) is discretised.  FastHenry models
/// planes as arrays of parallel strips; the return current distributes
/// across them in the impedance solve.
struct PlaneOptions {
  int strips = 15;           ///< strips across the plane extent
  double margin_factor = 8.0;///< lateral margin beyond the block, in units
                             ///< of the dielectric height to the plane
  double min_margin = 10e-6; ///< [m] floor on the margin
};

struct SolveOptions {
  double frequency = 1e9;  ///< [Hz] evaluate at the significant frequency

  /// When true the cross-section mesh is chosen from the skin depth at
  /// `frequency`; otherwise `mesh` is used as given.
  bool auto_mesh = true;
  int max_filaments_per_dim = 4;
  peec::MeshOptions mesh{};

  peec::PartialOptions partial{};
  PlaneOptions plane{};
};

}  // namespace rlcx::solver
