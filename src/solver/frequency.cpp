#include "solver/frequency.h"

#include <stdexcept>

namespace rlcx::solver {

double significant_frequency(double rise_time) {
  if (rise_time <= 0.0)
    throw std::invalid_argument("significant_frequency: rise time");
  return 0.32 / rise_time;
}

double rise_time_for_frequency(double frequency) {
  if (frequency <= 0.0)
    throw std::invalid_argument("rise_time_for_frequency: frequency");
  return 0.32 / frequency;
}

}  // namespace rlcx::solver
