#include "solver/frequency.h"

#include <stdexcept>

#include "rt/parallel.h"

namespace rlcx::solver {

double significant_frequency(double rise_time) {
  if (rise_time <= 0.0)
    throw std::invalid_argument("significant_frequency: rise time");
  return 0.32 / rise_time;
}

double rise_time_for_frequency(double frequency) {
  if (frequency <= 0.0)
    throw std::invalid_argument("rise_time_for_frequency: frequency");
  return 0.32 / frequency;
}

namespace {

/// Shared sweep driver: one extraction per frequency point, fanned out
/// with one point per task (a full block solve dwarfs the dispatch cost).
/// Inside a worker the extraction's inner layers run serial, so the
/// per-point numbers match a standalone serial call bit for bit.
template <typename Result, typename Extract>
std::vector<Result> sweep(const geom::Block& block, const SolveOptions& base,
                          const std::vector<double>& frequencies,
                          rt::Pool* pool, Extract extract) {
  std::vector<Result> out(frequencies.size());
  rt::ParallelOptions opt;
  opt.grain = 1;
  opt.pool = pool;
  rt::parallel_for(0, frequencies.size(),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) {
                       SolveOptions o = base;
                       o.frequency = frequencies[i];
                       out[i] = extract(block, o);
                     }
                   },
                   opt);
  return out;
}

}  // namespace

std::vector<LoopResult> sweep_loop(const geom::Block& block,
                                   const SolveOptions& base,
                                   const std::vector<double>& frequencies,
                                   rt::Pool* pool) {
  return sweep<LoopResult>(block, base, frequencies, pool, extract_loop);
}

std::vector<PartialResult> sweep_partial(
    const geom::Block& block, const SolveOptions& base,
    const std::vector<double>& frequencies, rt::Pool* pool) {
  return sweep<PartialResult>(block, base, frequencies, pool,
                              extract_partial);
}

}  // namespace rlcx::solver
