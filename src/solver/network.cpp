#include "solver/network.h"

#include <numbers>
#include <stdexcept>

#include "numeric/lu.h"

namespace rlcx::solver {

using Complex = std::complex<double>;

int Network::add_node() {
  merged_into_.push_back(node_count_);
  return node_count_++;
}

int Network::canonical(int node) const {
  if (node < 0 || node >= node_count_)
    throw std::out_of_range("network: bad node id");
  while (merged_into_[static_cast<std::size_t>(node)] != node)
    node = merged_into_[static_cast<std::size_t>(node)];
  return node;
}

void Network::tie(int a, int b) {
  const int ca = canonical(a);
  const int cb = canonical(b);
  if (ca != cb) merged_into_[static_cast<std::size_t>(std::max(ca, cb))] =
      std::min(ca, cb);
}

void Network::add_segment(int from, int to, const peec::Bar& bar, double rho,
                          const peec::MeshOptions& mesh, bool from_is_min) {
  canonical(from);  // validate ids
  canonical(to);
  if (from == to) throw std::invalid_argument("network: segment self-loop");
  Segment seg;
  seg.from = from;
  seg.to = to;
  const double sign = from_is_min ? 1.0 : -1.0;
  for (const peec::Bar& f : peec::mesh_cross_section(bar, mesh))
    seg.filaments.push_back({f, sign, peec::bar_resistance(f, rho)});
  segments_.push_back(std::move(seg));
}

std::size_t Network::filament_count() const {
  std::size_t n = 0;
  for (const Segment& s : segments_) n += s.filaments.size();
  return n;
}

ComplexMatrix Network::port_impedance(
    const std::vector<std::pair<int, int>>& ports, double frequency,
    const peec::PartialOptions& popt) const {
  if (ports.empty()) throw std::invalid_argument("network: no ports");
  if (frequency <= 0.0) throw std::invalid_argument("network: frequency");
  for (const auto& p : ports) {
    canonical(p.first);  // validates node ids
    canonical(p.second);
  }
  if (segments_.empty()) throw std::logic_error("network: no segments");

  // Flatten filaments; record each one's (from, to) canonical nodes.
  std::vector<peec::Filament> fils;
  std::vector<std::pair<int, int>> fnodes;
  for (const Segment& s : segments_) {
    const int cf = canonical(s.from);
    const int ct = canonical(s.to);
    if (cf == ct)
      throw std::logic_error("network: segment endpoints were tied together");
    for (const peec::Filament& f : s.filaments) {
      fils.push_back(f);
      fnodes.emplace_back(cf, ct);
    }
  }
  const std::size_t nf = fils.size();

  // Reference node: the first port's negative terminal.
  const int ref = canonical(ports[0].second);

  // Map canonical node -> MNA row (reference excluded).
  std::vector<int> row(static_cast<std::size_t>(node_count_), -1);
  int nv = 0;
  for (int n = 0; n < node_count_; ++n) {
    if (canonical(n) != n || n == ref) continue;
    row[static_cast<std::size_t>(n)] = nv++;
  }

  const double omega = 2.0 * std::numbers::pi * frequency;
  const RealMatrix lp = peec::partial_inductance_matrix(fils, popt);

  // MNA:  [ 0   A ] [v]   [J]
  //       [ A^T -Z ] [i] = [0]
  const std::size_t dim = static_cast<std::size_t>(nv) + nf;
  ComplexMatrix m(dim, dim);
  for (std::size_t f = 0; f < nf; ++f) {
    const int rf = row[static_cast<std::size_t>(fnodes[f].first)];
    const int rt = row[static_cast<std::size_t>(fnodes[f].second)];
    if (rf >= 0) {
      m(static_cast<std::size_t>(rf), static_cast<std::size_t>(nv) + f) += 1.0;
      m(static_cast<std::size_t>(nv) + f, static_cast<std::size_t>(rf)) += 1.0;
    }
    if (rt >= 0) {
      m(static_cast<std::size_t>(rt), static_cast<std::size_t>(nv) + f) -= 1.0;
      m(static_cast<std::size_t>(nv) + f, static_cast<std::size_t>(rt)) -= 1.0;
    }
    for (std::size_t g = 0; g < nf; ++g)
      m(static_cast<std::size_t>(nv) + f, static_cast<std::size_t>(nv) + g) -=
          Complex(0.0, omega * lp(f, g));
    m(static_cast<std::size_t>(nv) + f, static_cast<std::size_t>(nv) + f) -=
        fils[f].resistance;
  }

  LuDecomposition<Complex> lu(std::move(m));

  const std::size_t np = ports.size();
  ComplexMatrix z(np, np);
  for (std::size_t pj = 0; pj < np; ++pj) {
    const int pos = canonical(ports[pj].first);
    const int neg = canonical(ports[pj].second);
    if (pos == neg) throw std::invalid_argument("network: degenerate port");
    std::vector<Complex> rhs(dim, Complex(0.0, 0.0));
    if (row[static_cast<std::size_t>(pos)] >= 0)
      rhs[static_cast<std::size_t>(row[static_cast<std::size_t>(pos)])] += 1.0;
    if (row[static_cast<std::size_t>(neg)] >= 0)
      rhs[static_cast<std::size_t>(row[static_cast<std::size_t>(neg)])] -= 1.0;
    const std::vector<Complex> x = lu.solve(rhs);
    for (std::size_t pi = 0; pi < np; ++pi) {
      const int qpos = canonical(ports[pi].first);
      const int qneg = canonical(ports[pi].second);
      Complex v = 0.0;
      if (row[static_cast<std::size_t>(qpos)] >= 0)
        v += x[static_cast<std::size_t>(row[static_cast<std::size_t>(qpos)])];
      if (row[static_cast<std::size_t>(qneg)] >= 0)
        v -= x[static_cast<std::size_t>(row[static_cast<std::size_t>(qneg)])];
      z(pi, pj) = v;
    }
  }
  return z;
}

Network::LoopZ Network::loop_impedance(int positive, int negative,
                                       double frequency,
                                       const peec::PartialOptions& popt) const {
  const ComplexMatrix z = port_impedance({{positive, negative}}, frequency,
                                         popt);
  const double omega = 2.0 * std::numbers::pi * frequency;
  return {z(0, 0).imag() / omega, z(0, 0).real()};
}

}  // namespace rlcx::solver
