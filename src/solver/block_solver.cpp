#include "solver/block_solver.h"

#include "diag/error.h"

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <numbers>
#include <optional>
#include <stdexcept>
#include <string>

#include "diag/warnings.h"
#include "res/budget.h"
#include "hmat/cluster_tree.h"
#include "hmat/gmres.h"
#include "hmat/hmatrix.h"
#include "hmat/kernel_matrix.h"
#include "hmat/stats.h"
#include "numeric/lu.h"
#include "peec/assembly.h"
#include "peec/mesh.h"
#include "rt/parallel.h"

namespace rlcx::solver {

namespace {

using Complex = std::complex<double>;

/// One extraction conductor: a set of parallel filaments sharing terminals.
struct Conductor {
  std::vector<peec::Filament> filaments;
  bool is_ground = false;
  std::size_t block_trace = SIZE_MAX;  ///< index into block (signals/grounds)
};

peec::Bar trace_bar(const geom::Block& block, std::size_t i) {
  const geom::Trace& t = block.trace(i);
  const geom::Layer& layer = block.layer();
  peec::Bar bar;
  bar.axis = peec::Axis::kY;
  bar.a_min = 0.0;
  bar.length = block.length();
  bar.t_min = t.x_left();
  bar.t_width = t.width;
  bar.z_min = layer.z_bottom;
  bar.z_thick = layer.thickness;
  return bar;
}

peec::MeshOptions mesh_for(const peec::Bar& bar, double rho,
                           const SolveOptions& opt) {
  if (!opt.auto_mesh) return opt.mesh;
  const double depth = peec::skin_depth(rho, opt.frequency);
  return peec::mesh_for_skin_depth(bar, depth, opt.max_filaments_per_dim);
}

std::vector<peec::Filament> mesh_conductor(const peec::Bar& envelope,
                                           double rho,
                                           const SolveOptions& opt) {
  const peec::MeshOptions mopt = mesh_for(envelope, rho, opt);
  std::vector<peec::Filament> out;
  for (const peec::Bar& b : peec::mesh_cross_section(envelope, mopt)) {
    out.push_back({b, 1.0, peec::bar_resistance(b, rho)});
  }
  return out;
}

/// Y = P^T (Z^-1 P) reduced to conductor level, then inverted.  zinv_p is
/// Z^-1 P with column c the response to conductor c's 0/1 indicator.  Row a
/// of Y accumulates the zinv_p rows of conductor a's filaments, in
/// ascending filament order (the same order the dense triple loop this
/// replaces summed its nonzero terms in).
ComplexMatrix reduce_to_conductors(const ComplexMatrix& zinv_p,
                                   const std::vector<std::size_t>& owner,
                                   std::size_t nc) {
  const std::size_t nf = owner.size();
  ComplexMatrix y(nc, nc);
  for (std::size_t i = 0; i < nf; ++i) {
    const std::size_t a = owner[i];
    for (std::size_t b = 0; b < nc; ++b) y(a, b) += zinv_p(i, b);
  }
  return inverse(y);
}

/// Dense oracle: full fill + blocked LU (numeric/lu.h).
ComplexMatrix conductor_impedance_dense(const std::vector<peec::Filament>& all,
                                        const std::vector<std::size_t>& owner,
                                        std::size_t nc,
                                        const SolveOptions& opt) {
  const std::size_t nf = all.size();
  const RealMatrix lp = peec::partial_inductance_matrix(all, opt.partial);
  const double omega = 2.0 * std::numbers::pi * opt.frequency;

  ComplexMatrix z(nf, nf);
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = 0; j < nf; ++j)
      z(i, j) = Complex(0.0, omega * lp(i, j));
    z(i, i) += all[i].resistance;
  }

  // Z^{-1} P goes through the blocked multi-RHS substitution; column blocks
  // are independent (the substitution never mixes RHS columns), so they fan
  // out across the pool with each task writing its own columns.
  std::unique_ptr<LuDecomposition<Complex>> lu;
  try {
    lu = std::make_unique<LuDecomposition<Complex>>(std::move(z));
  } catch (const diag::SingularSystem& e) {
    throw diag::SingularSystem(
        "solver", "dense solver path: " + e.message(), e.column(),
        e.dimension(), e.condition_estimate());
  }
  ComplexMatrix zinv_p(nf, nc);
  rt::parallel_for(0, nc, [&](std::size_t lo, std::size_t hi) {
    ComplexMatrix rhs(nf, hi - lo);
    for (std::size_t i = 0; i < nf; ++i)
      if (owner[i] >= lo && owner[i] < hi) rhs(i, owner[i] - lo) = 1.0;
    const ComplexMatrix x = lu->solve(rhs);
    for (std::size_t i = 0; i < nf; ++i)
      for (std::size_t b = lo; b < hi; ++b) zinv_p(i, b) = x(i, b - lo);
  });
  hmat::record_dense_solve();
  return reduce_to_conductors(zinv_p, owner, nc);
}

/// Hierarchical path: H-matrix operator (dense near field + ACA far field)
/// with per-conductor GMRES solves under a two-level preconditioner:
/// restricted additive Schwarz over a cluster-tree cut plus a coarse
/// conductor-space Galerkin correction.
ComplexMatrix conductor_impedance_hmat(const std::vector<peec::Filament>& all,
                                       const std::vector<std::size_t>& owner,
                                       std::size_t nc,
                                       const SolveOptions& opt) {
  const std::size_t nf = all.size();
  const double omega = 2.0 * std::numbers::pi * opt.frequency;
  const HmatSolveOptions& ho = opt.hmat;

  hmat::HmatOptions hop;
  hop.leaf_size = ho.leaf_size;
  hop.eta = ho.eta;
  hop.aca_tol = ho.aca_tol;
  hop.max_rank = ho.max_rank;
  hmat::KernelMatrix kernel(all, opt.partial);
  hmat::ClusterTree tree(kernel.filaments(), hop.leaf_size);
  hmat::HMatrix h(kernel, tree, hop);

  std::vector<double> resist(nf);
  for (std::size_t i = 0; i < nf; ++i) resist[i] = all[i].resistance;

  // Z x = j*omega*(Lp x) + R .* x — the only complex structure is the
  // frequency rotation, so the real H-matrix serves both parts.
  auto apply_z = [&](const Complex* x, Complex* y) {
    h.matvec(x, y);
    for (std::size_t i = 0; i < nf; ++i)
      y[i] = Complex(0.0, omega) * y[i] + resist[i] * x[i];
  };

  // Restricted additive Schwarz preconditioner: exact dense Z over a cut
  // of the cluster tree, each block widened by an overlap margin,
  // LU-factored; the solve writes back only a block's interior (the cut
  // partition), so write ranges stay disjoint.  The cut stops at
  // `precond_block` filaments — decoupled from the H-matrix leaf size on
  // purpose: the preconditioner block size and overlap control the GMRES
  // convergence rate, while the tree leaf size controls compression.  The
  // cluster tree splits at coordinate medians, so a permuted index range
  // is spatially contiguous and the overlap margin picks up exactly the
  // nearest neighbouring filaments.
  const std::vector<std::size_t>& perm = tree.permutation();
  struct PcBlock {
    std::size_t lo, hi;  ///< extended (overlapped) permuted range
    std::size_t ib, ie;  ///< interior range: the cut partition
  };
  const std::size_t overlap = ho.precond_block / 4;
  std::vector<PcBlock> pc_blocks;
  {
    std::vector<std::size_t> walk{tree.root()};
    while (!walk.empty()) {
      const std::size_t ni = walk.back();
      walk.pop_back();
      const hmat::ClusterNode& node = tree.node(ni);
      if (node.leaf() || node.count() <= ho.precond_block) {
        PcBlock pb;
        pb.ib = node.begin;
        pb.ie = node.begin + node.count();
        pb.lo = pb.ib > overlap ? pb.ib - overlap : 0;
        pb.hi = std::min(nf, pb.ie + overlap);
        pc_blocks.push_back(pb);
        continue;
      }
      // Push child1 first so the cut comes out in ascending index order.
      walk.push_back(static_cast<std::size_t>(node.child1));
      walk.push_back(static_cast<std::size_t>(node.child0));
    }
  }
  std::vector<std::unique_ptr<LuDecomposition<Complex>>> block_lu(
      pc_blocks.size());
  try {
    rt::parallel_for(0, pc_blocks.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t li = lo; li < hi; ++li) {
        const PcBlock& pb = pc_blocks[li];
        const std::size_t m = pb.hi - pb.lo;
        ComplexMatrix zb(m, m);
        for (std::size_t i = 0; i < m; ++i) {
          const std::size_t oi = perm[pb.lo + i];
          for (std::size_t j = 0; j < m; ++j) {
            const std::size_t oj = perm[pb.lo + j];
            zb(i, j) = Complex(0.0, omega * kernel.entry(oi, oj));
          }
          zb(i, i) += resist[oi];
        }
        block_lu[li] =
            std::make_unique<LuDecomposition<Complex>>(std::move(zb));
      }
    });
  } catch (const diag::SingularSystem& e) {
    throw diag::SingularSystem(
        "solver", "hmat solver path (Schwarz preconditioner): " +
                      e.message(),
        e.column(), e.dimension(), e.condition_estimate());
  }
  // Coarse level: the Galerkin operator A_c = P^T Z P over the
  // per-conductor indicator space (P's column c is conductor c's 0/1
  // indicator).  The Schwarz blocks above capture intra-conductor skin
  // coupling but are blind to the long-range inductive coupling between
  // conductors — exactly the modes the indicator space spans.  A_c costs
  // one H-matrix apply per conductor and is a tiny nc x nc LU, so the
  // coarse correction adds far less per GMRES iteration than it saves.
  // Column c of A_c is written by exactly one task: deterministic.
  ComplexMatrix ac(nc, nc);
  rt::parallel_for(0, nc, [&](std::size_t lo, std::size_t hi) {
    std::vector<Complex> e(nf), col(nf);
    for (std::size_t c = lo; c < hi; ++c) {
      for (std::size_t i = 0; i < nf; ++i)
        e[i] = owner[i] == c ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
      apply_z(e.data(), col.data());
      for (std::size_t i = 0; i < nf; ++i) ac(owner[i], c) += col[i];
    }
  });
  std::unique_ptr<LuDecomposition<Complex>> coarse_lu;
  try {
    coarse_lu = std::make_unique<LuDecomposition<Complex>>(std::move(ac));
  } catch (const diag::SingularSystem& e) {
    throw diag::SingularSystem(
        "solver",
        "hmat solver path (coarse conductor-space preconditioner): " +
            e.message(),
        e.column(), e.dimension(), e.condition_estimate());
  }
  auto coarse_restrict = [&](const Complex* v, std::vector<Complex>& out) {
    out.assign(nc, Complex(0.0));
    for (std::size_t i = 0; i < nf; ++i) out[owner[i]] += v[i];
  };

  // Two-level additive preconditioner: restricted-Schwarz block solves
  // plus the coarse conductor-space correction.  Blocks read their
  // overlapped range but write only their interior, so the sweep writes
  // each entry of v exactly once.
  auto precondition = [&](Complex* v) {
    std::vector<Complex> qv;
    coarse_restrict(v, qv);
    const std::vector<Complex> coarse = coarse_lu->solve(qv);
    std::vector<Complex> buf;
    std::vector<std::vector<Complex>> sols(pc_blocks.size());
    for (std::size_t li = 0; li < pc_blocks.size(); ++li) {
      const PcBlock& pb = pc_blocks[li];
      buf.resize(pb.hi - pb.lo);
      for (std::size_t i = pb.lo; i < pb.hi; ++i) buf[i - pb.lo] = v[perm[i]];
      sols[li] = block_lu[li]->solve(buf);
    }
    for (std::size_t li = 0; li < pc_blocks.size(); ++li) {
      const PcBlock& pb = pc_blocks[li];
      for (std::size_t i = pb.ib; i < pb.ie; ++i)
        v[perm[i]] = sols[li][i - pb.lo];
    }
    for (std::size_t i = 0; i < nf; ++i) v[i] += coarse[owner[i]];
  };

  // One GMRES solve per conductor indicator column, fanned across the pool
  // (each task writes its own columns; a solve itself is serial, so the
  // result is bit-identical for any pool width).
  ComplexMatrix zinv_p(nf, nc);
  std::vector<hmat::GmresReport> reports(nc);
  std::vector<char> retried(nc, 0);
  rt::parallel_for(0, nc, [&](std::size_t lo, std::size_t hi) {
    std::vector<Complex> b(nf), r0(nf), dx(nf);
    for (std::size_t c = lo; c < hi; ++c) {
      for (std::size_t i = 0; i < nf; ++i)
        b[i] = owner[i] == c ? Complex(1.0, 0.0) : Complex(0.0, 0.0);

      // Coarse Galerkin initial guess x0 = P A_c^-1 P^T b: the exact
      // inter-conductor current split.  GMRES then solves
      // Z dx = b - Z x0 — only the residual intra-conductor
      // redistribution — with the tolerance rescaled so convergence still
      // means ||b - Z x|| <= tol * ||b||.  The guess residual costs one
      // H-matrix apply, same as a GMRES iteration.
      std::vector<Complex> qb;
      coarse_restrict(b.data(), qb);
      const std::vector<Complex> y0 = coarse_lu->solve(qb);
      std::vector<Complex> x0(nf);
      for (std::size_t i = 0; i < nf; ++i) x0[i] = y0[owner[i]];
      apply_z(x0.data(), r0.data());
      double bnorm2 = 0.0, rnorm2 = 0.0;
      for (std::size_t i = 0; i < nf; ++i) {
        r0[i] = b[i] - r0[i];
        bnorm2 += std::norm(b[i]);
        rnorm2 += std::norm(r0[i]);
      }
      const double bnorm = std::sqrt(bnorm2);
      const double rnorm = std::sqrt(rnorm2);
      const double rescale = rnorm > 0.0 ? bnorm / rnorm : 1.0;

      hmat::GmresReport rep;
      if (rnorm == 0.0 || rnorm <= ho.gmres_tol * bnorm) {
        rep.converged = true;
        rep.residual = bnorm > 0.0 ? rnorm / bnorm : 0.0;
        std::fill(dx.begin(), dx.end(), Complex(0.0));
      } else {
        hmat::GmresOptions gopt;
        gopt.tol = std::min(1.0, ho.gmres_tol * rescale);
        gopt.restart = ho.gmres_restart;
        gopt.max_iterations = ho.gmres_max_iterations;
        rep = hmat::gmres_solve(apply_z, nf, precondition, r0.data(),
                                dx.data(), gopt);
        if (!rep.converged) {
          // Escalation rung 1 (SOR-ladder shape): double the Krylov space
          // and the iteration budget, restart from scratch.
          gopt.restart = ho.gmres_restart * 2;
          gopt.max_iterations = ho.gmres_max_iterations * 2;
          const hmat::GmresReport rep2 = hmat::gmres_solve(
              apply_z, nf, precondition, r0.data(), dx.data(), gopt);
          retried[c] = 1;
          rep.iterations += rep2.iterations;
          rep.residual = rep2.residual;
          rep.converged = rep2.converged;
        }
        // Report residuals relative to ||b||, not the correction system.
        rep.residual = rep.residual / (rescale > 0.0 ? rescale : 1.0);
      }
      reports[c] = rep;
      for (std::size_t i = 0; i < nf; ++i)
        zinv_p(i, c) = y0[owner[i]] + dx[i];
    }
  });

  std::size_t iters = 0, retries = 0;
  double worst = 0.0;
  std::size_t bad = nc;  // first non-converged column, if any
  for (std::size_t c = 0; c < nc; ++c) {
    iters += reports[c].iterations;
    retries += retried[c] ? 1u : 0u;
    worst = std::max(worst, reports[c].residual);
    if (!reports[c].converged && bad == nc) bad = c;
  }
  if (retries > 0 && (bad == nc || !ho.escalate_on_nonconvergence))
    diag::emit_warning(diag::Category::kNumeric, "solver",
                       "hmat solver path: GMRES needed an escalated budget "
                       "(restart " + std::to_string(ho.gmres_restart * 2) +
                           ", max " +
                           std::to_string(ho.gmres_max_iterations * 2) +
                           ") for " + std::to_string(retries) + " of " +
                           std::to_string(nc) + " conductor columns");
  if (bad != nc) {
    if (!ho.escalate_on_nonconvergence)
      throw diag::NumericError(
          "solver",
          "hmat solver path: GMRES did not converge for conductor column " +
              std::to_string(bad) + " (" +
              std::to_string(reports[bad].iterations) + " iterations, " +
              "relative residual " + std::to_string(reports[bad].residual) +
              ", n=" + std::to_string(nf) + ")");
    // Final escalation rung: the dense oracle answers instead.
    std::size_t nonconverged = 0;
    for (std::size_t c = 0; c < nc; ++c)
      if (!reports[c].converged) ++nonconverged;
    diag::emit_warning(
        diag::Category::kNumeric, "solver",
        "hmat solver path: GMRES did not converge for " +
            std::to_string(nonconverged) +
            " conductor column(s) even after escalation; falling back to "
            "the dense solver path");
    hmat::record_hmat_solve(h.stats().stored_entries, h.stats().full_entries,
                            h.stats().rank_max, iters, 1, worst);
    return conductor_impedance_dense(all, owner, nc, opt);
  }
  hmat::record_hmat_solve(h.stats().stored_entries, h.stats().full_entries,
                          h.stats().rank_max, iters, 0, worst);
  return reduce_to_conductors(zinv_p, owner, nc);
}

/// Conductor-level complex impedance matrix at the solve frequency:
/// filaments of a conductor are strictly parallel, so
/// Z_cond = (P^T Z_fil^{-1} P)^{-1} exactly, for any terminal conditions.
/// Dispatches dense vs hierarchical per SolveOptions::solver; kAuto picks
/// the hierarchical path once the filament count clears the measured
/// crossover.
ComplexMatrix conductor_impedance(const std::vector<Conductor>& conductors,
                                  const SolveOptions& opt) {
  std::vector<peec::Filament> all;
  std::vector<std::size_t> owner;
  for (std::size_t c = 0; c < conductors.size(); ++c) {
    for (const peec::Filament& f : conductors[c].filaments) {
      all.push_back(f);
      owner.push_back(c);
    }
  }
  const std::size_t nc = conductors.size();
  const std::size_t nf = all.size();
  bool use_hmat =
      opt.solver == SolverKind::kHmat ||
      (opt.solver == SolverKind::kAuto && nf >= opt.hmat.auto_crossover);
  // Degradation ladder (docs/robustness.md "Resource governance"): the
  // path decision and its budget reservation happen here on the serial
  // spine, before any pool fan-out, so the outcome is identical at every
  // pool width.  A dense reservation the budget declines degrades to the
  // hierarchical path with a typed warning; if even that reservation is
  // refused, ResourceExhaustedError unwinds (exit code 7).
  std::optional<res::ScopedReservation> reservation;
  if (!use_hmat) {
    const std::size_t dense_bytes = estimate_dense_solve_bytes(nf, nc);
    reservation.emplace("solver-dense", dense_bytes,
                        res::OnExhausted::kDecline);
    if (!reservation->held()) {
      reservation.reset();
      res::Budget::global().record_degradation();
      diag::emit_warning(
          diag::Category::kResourceExhausted, "solver",
          "memory budget cannot fit the dense path for n=" +
              std::to_string(nf) + " filaments (estimate " +
              std::to_string(dense_bytes) +
              " bytes); degrading to the hierarchical (hmat) solver");
      use_hmat = true;
    }
  }
  if (use_hmat && !reservation)
    reservation.emplace("solver-hmat",
                        estimate_hmat_solve_bytes(nf, nc, opt.hmat));
  return use_hmat ? conductor_impedance_hmat(all, owner, nc, opt)
                  : conductor_impedance_dense(all, owner, nc, opt);
}

std::vector<Conductor> block_conductors(const geom::Block& block,
                                        const SolveOptions& opt) {
  std::vector<Conductor> conductors;
  const double rho = block.layer().rho;
  for (std::size_t i = 0; i < block.size(); ++i) {
    Conductor c;
    c.filaments = mesh_conductor(trace_bar(block, i), rho, opt);
    c.is_ground = block.trace(i).role == geom::TraceRole::kGround;
    c.block_trace = i;
    conductors.push_back(std::move(c));
  }
  auto add_plane = [&](int plane_layer) {
    const double prho = block.tech().layer(plane_layer).rho;
    for (const peec::Bar& strip : plane_strips(block, plane_layer, opt.plane)) {
      Conductor c;
      c.filaments = mesh_conductor(strip, prho, opt);
      c.is_ground = true;
      conductors.push_back(std::move(c));
    }
  };
  const geom::PlaneConfig pc = block.planes();
  if (pc == geom::PlaneConfig::kBelow || pc == geom::PlaneConfig::kBothSides)
    add_plane(block.plane_layer_below());
  if (pc == geom::PlaneConfig::kAbove || pc == geom::PlaneConfig::kBothSides)
    add_plane(block.plane_layer_above());
  return conductors;
}

}  // namespace

std::size_t estimate_dense_solve_bytes(std::size_t filaments,
                                       std::size_t conductors) {
  const std::size_t nf = filaments;
  const std::size_t nc = conductors;
  // Coexisting peaks: the real fill (lp, kept for the Z build), the
  // complex Z moved in place into its LU factors, and the multi-RHS
  // substitution blocks (zinv_p plus per-chunk rhs and solution).
  return std::max<std::size_t>(peec::estimate_fill_bytes(nf) +
                                   nf * nf * sizeof(Complex) +
                                   3 * nf * nc * sizeof(Complex),
                               1024);
}

std::size_t estimate_hmat_solve_bytes(std::size_t filaments,
                                      std::size_t conductors,
                                      const HmatSolveOptions& opt) {
  const std::size_t nf = filaments;
  std::size_t bytes = hmat::estimate_assembly_bytes(nf);
  // Schwarz preconditioner: every filament sits in one block of complex LU
  // factors, widened by a quarter-block overlap on both sides (~1.5x).
  bytes += static_cast<std::size_t>(1.5 * static_cast<double>(nf) *
                                    static_cast<double>(opt.precond_block)) *
           sizeof(Complex);
  // Krylov basis at the restart length, plus the solution columns.
  bytes += (opt.gmres_restart + 2) * nf * sizeof(Complex);
  bytes += nf * conductors * sizeof(Complex);
  return std::max<std::size_t>(bytes, 1024);
}

std::size_t estimate_extract_bytes(const geom::Block& block,
                                   const SolveOptions& opt) {
  const std::vector<Conductor> conductors = block_conductors(block, opt);
  std::size_t nf = 0;
  for (const Conductor& c : conductors) nf += c.filaments.size();
  const std::size_t nc = conductors.size();
  const bool use_hmat =
      opt.solver == SolverKind::kHmat ||
      (opt.solver == SolverKind::kAuto && nf >= opt.hmat.auto_crossover);
  return use_hmat ? estimate_hmat_solve_bytes(nf, nc, opt.hmat)
                  : estimate_dense_solve_bytes(nf, nc);
}

std::vector<peec::Bar> plane_strips(const geom::Block& block, int plane_layer,
                                    const PlaneOptions& opt) {
  if (opt.strips < 1)
    throw diag::UsageError("solver", "plane_strips: strip count must be >= 1, got " +
                                         std::to_string(opt.strips));
  const geom::Layer& player = block.tech().layer(plane_layer);
  const double h = block.tech().dielectric_gap(
      std::min(plane_layer, block.layer_index()),
      std::max(plane_layer, block.layer_index()));
  const double margin = std::max(opt.margin_factor * h, opt.min_margin);

  double x_lo = block.trace(0).x_left();
  double x_hi = block.trace(block.size() - 1).x_right();
  x_lo -= margin;
  x_hi += margin;

  const double pitch = (x_hi - x_lo) / opt.strips;
  std::vector<peec::Bar> strips;
  strips.reserve(static_cast<std::size_t>(opt.strips));
  for (int i = 0; i < opt.strips; ++i) {
    peec::Bar s;
    s.axis = peec::Axis::kY;
    s.a_min = 0.0;
    s.length = block.length();
    s.t_min = x_lo + i * pitch;
    s.t_width = pitch;
    s.z_min = player.z_bottom;
    s.z_thick = player.thickness;
    strips.push_back(s);
  }
  return strips;
}

PartialResult extract_partial(const geom::Block& block,
                              const SolveOptions& opt) {
  if (opt.frequency <= 0.0)
    throw diag::UsageError(
        "solver", "extract_partial: frequency must be positive, got " +
                      std::to_string(opt.frequency) + " Hz");
  // Partial-inductance extraction ignores planes by definition: the return
  // path is decided later by the circuit simulator (paper Section II.A).
  std::vector<Conductor> conductors;
  const double rho = block.layer().rho;
  for (std::size_t i = 0; i < block.size(); ++i) {
    Conductor c;
    c.filaments = mesh_conductor(trace_bar(block, i), rho, opt);
    c.block_trace = i;
    conductors.push_back(std::move(c));
  }
  const ComplexMatrix z = conductor_impedance(conductors, opt);
  const double omega = 2.0 * std::numbers::pi * opt.frequency;

  const std::size_t n = block.size();
  PartialResult res;
  res.inductance = RealMatrix(n, n);
  res.resistance.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.resistance[i] = z(i, i).real();
    for (std::size_t j = 0; j < n; ++j)
      res.inductance(i, j) = z(i, j).imag() / omega;
  }
  return res;
}

LoopResult extract_loop(const geom::Block& block, const SolveOptions& opt) {
  if (opt.frequency <= 0.0)
    throw diag::UsageError(
        "solver", "extract_loop: frequency must be positive, got " +
                      std::to_string(opt.frequency) + " Hz");
  const std::vector<Conductor> conductors = block_conductors(block, opt);

  std::vector<std::size_t> sig, gnd;
  for (std::size_t c = 0; c < conductors.size(); ++c)
    (conductors[c].is_ground ? gnd : sig).push_back(c);
  if (sig.empty())
    throw diag::GeometryError(
        "solver", "extract_loop: the block has no signal traces (all " +
                      std::to_string(conductors.size()) +
                      " conductors are grounds/planes)");
  if (gnd.empty())
    throw diag::GeometryError(
        "solver",
        "extract_loop: no return path — the block needs ground traces or a "
        "plane (use extract_partial for bare coplanar signals)");

  const ComplexMatrix z = conductor_impedance(conductors, opt);
  const std::size_t ns = sig.size();
  const std::size_t ng = gnd.size();

  ComplexMatrix zss(ns, ns), zsg(ns, ng), zgs(ng, ns), zgg(ng, ng);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) zss(i, j) = z(sig[i], sig[j]);
    for (std::size_t g = 0; g < ng; ++g) zsg(i, g) = z(sig[i], gnd[g]);
  }
  for (std::size_t g = 0; g < ng; ++g) {
    for (std::size_t j = 0; j < ns; ++j) zgs(g, j) = z(gnd[g], sig[j]);
    for (std::size_t h = 0; h < ng; ++h) zgg(g, h) = z(gnd[g], gnd[h]);
  }

  // All grounds join the signals' far-end sink node and share the common
  // return drop V_G; enforcing sum(I_G) = -sum(I_S) yields the bordered
  // Schur reduction below (see DESIGN.md).
  LuDecomposition<Complex> lug(zgg);
  const ComplexMatrix zgg_inv_zgs = lug.solve(zgs);
  std::vector<Complex> ones(ng, Complex(1.0, 0.0));
  const std::vector<Complex> zgg_inv_1 = lug.solve(ones);

  Complex denom = 0.0;
  for (std::size_t g = 0; g < ng; ++g) denom += zgg_inv_1[g];

  // Row vector r_j = sum_g (Zgg^-1 Zgs)(g, j) - 1.
  std::vector<Complex> r(ns);
  for (std::size_t j = 0; j < ns; ++j) {
    Complex acc = 0.0;
    for (std::size_t g = 0; g < ng; ++g) acc += zgg_inv_zgs(g, j);
    r[j] = acc - Complex(1.0, 0.0);
  }
  // Column vector c_i = (Zsg Zgg^-1 1)(i) - 1.
  std::vector<Complex> cvec(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    Complex acc = 0.0;
    for (std::size_t g = 0; g < ng; ++g) acc += zsg(i, g) * zgg_inv_1[g];
    cvec[i] = acc - Complex(1.0, 0.0);
  }

  // Zsg (Zgg^-1 Zgs) — Zgg^-1 Zgs came out of the blocked multi-RHS solve
  // above, and the matmul accumulates over g in the same ascending order
  // the explicit triple loop did.
  const ComplexMatrix schur = zsg * zgg_inv_zgs;
  ComplexMatrix zloop(ns, ns);
  for (std::size_t i = 0; i < ns; ++i)
    for (std::size_t j = 0; j < ns; ++j)
      zloop(i, j) = zss(i, j) - schur(i, j) + cvec[i] * r[j] / denom;

  const double omega = 2.0 * std::numbers::pi * opt.frequency;
  LoopResult res;
  res.inductance = RealMatrix(ns, ns);
  res.resistance = RealMatrix(ns, ns);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      res.inductance(i, j) = zloop(i, j).imag() / omega;
      res.resistance(i, j) = zloop(i, j).real();
    }
    res.signal_traces.push_back(conductors[sig[i]].block_trace);
  }
  return res;
}

}  // namespace rlcx::solver
