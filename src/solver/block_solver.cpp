#include "solver/block_solver.h"

#include "diag/error.h"

#include <algorithm>
#include <complex>
#include <cstdint>
#include <numbers>
#include <stdexcept>

#include "numeric/lu.h"
#include "peec/assembly.h"
#include "peec/mesh.h"
#include "rt/parallel.h"

namespace rlcx::solver {

namespace {

using Complex = std::complex<double>;

/// One extraction conductor: a set of parallel filaments sharing terminals.
struct Conductor {
  std::vector<peec::Filament> filaments;
  bool is_ground = false;
  std::size_t block_trace = SIZE_MAX;  ///< index into block (signals/grounds)
};

peec::Bar trace_bar(const geom::Block& block, std::size_t i) {
  const geom::Trace& t = block.trace(i);
  const geom::Layer& layer = block.layer();
  peec::Bar bar;
  bar.axis = peec::Axis::kY;
  bar.a_min = 0.0;
  bar.length = block.length();
  bar.t_min = t.x_left();
  bar.t_width = t.width;
  bar.z_min = layer.z_bottom;
  bar.z_thick = layer.thickness;
  return bar;
}

peec::MeshOptions mesh_for(const peec::Bar& bar, double rho,
                           const SolveOptions& opt) {
  if (!opt.auto_mesh) return opt.mesh;
  const double depth = peec::skin_depth(rho, opt.frequency);
  return peec::mesh_for_skin_depth(bar, depth, opt.max_filaments_per_dim);
}

std::vector<peec::Filament> mesh_conductor(const peec::Bar& envelope,
                                           double rho,
                                           const SolveOptions& opt) {
  const peec::MeshOptions mopt = mesh_for(envelope, rho, opt);
  std::vector<peec::Filament> out;
  for (const peec::Bar& b : peec::mesh_cross_section(envelope, mopt)) {
    out.push_back({b, 1.0, peec::bar_resistance(b, rho)});
  }
  return out;
}

/// Conductor-level complex impedance matrix at the solve frequency:
/// filaments of a conductor are strictly parallel, so
/// Z_cond = (P^T Z_fil^{-1} P)^{-1} exactly, for any terminal conditions.
ComplexMatrix conductor_impedance(const std::vector<Conductor>& conductors,
                                  const SolveOptions& opt) {
  std::vector<peec::Filament> all;
  std::vector<std::size_t> owner;
  for (std::size_t c = 0; c < conductors.size(); ++c) {
    for (const peec::Filament& f : conductors[c].filaments) {
      all.push_back(f);
      owner.push_back(c);
    }
  }
  const std::size_t nf = all.size();
  const std::size_t nc = conductors.size();

  const RealMatrix lp = peec::partial_inductance_matrix(all, opt.partial);
  const double omega = 2.0 * std::numbers::pi * opt.frequency;

  ComplexMatrix z(nf, nf);
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = 0; j < nf; ++j)
      z(i, j) = Complex(0.0, omega * lp(i, j));
    z(i, i) += all[i].resistance;
  }

  // Y = P^T Z^{-1} P where column c of P is the 0/1 indicator of conductor
  // c's filaments — so P never materialises beyond `owner`.  Z^{-1} P goes
  // through the blocked multi-RHS substitution (numeric/lu.h); column
  // blocks are independent (the substitution never mixes RHS columns), so
  // they fan out across the pool with each task writing its own columns.
  LuDecomposition<Complex> lu(std::move(z));
  ComplexMatrix zinv_p(nf, nc);
  rt::parallel_for(0, nc, [&](std::size_t lo, std::size_t hi) {
    ComplexMatrix rhs(nf, hi - lo);
    for (std::size_t i = 0; i < nf; ++i)
      if (owner[i] >= lo && owner[i] < hi) rhs(i, owner[i] - lo) = 1.0;
    const ComplexMatrix x = lu.solve(rhs);
    for (std::size_t i = 0; i < nf; ++i)
      for (std::size_t b = lo; b < hi; ++b) zinv_p(i, b) = x(i, b - lo);
  });
  // P^T gather: row a of Y accumulates the zinv_p rows of conductor a's
  // filaments, in ascending filament order (the same order the dense
  // triple loop this replaces summed its nonzero terms in).
  ComplexMatrix y(nc, nc);
  for (std::size_t i = 0; i < nf; ++i) {
    const std::size_t a = owner[i];
    for (std::size_t b = 0; b < nc; ++b) y(a, b) += zinv_p(i, b);
  }
  return inverse(y);
}

std::vector<Conductor> block_conductors(const geom::Block& block,
                                        const SolveOptions& opt) {
  std::vector<Conductor> conductors;
  const double rho = block.layer().rho;
  for (std::size_t i = 0; i < block.size(); ++i) {
    Conductor c;
    c.filaments = mesh_conductor(trace_bar(block, i), rho, opt);
    c.is_ground = block.trace(i).role == geom::TraceRole::kGround;
    c.block_trace = i;
    conductors.push_back(std::move(c));
  }
  auto add_plane = [&](int plane_layer) {
    const double prho = block.tech().layer(plane_layer).rho;
    for (const peec::Bar& strip : plane_strips(block, plane_layer, opt.plane)) {
      Conductor c;
      c.filaments = mesh_conductor(strip, prho, opt);
      c.is_ground = true;
      conductors.push_back(std::move(c));
    }
  };
  const geom::PlaneConfig pc = block.planes();
  if (pc == geom::PlaneConfig::kBelow || pc == geom::PlaneConfig::kBothSides)
    add_plane(block.plane_layer_below());
  if (pc == geom::PlaneConfig::kAbove || pc == geom::PlaneConfig::kBothSides)
    add_plane(block.plane_layer_above());
  return conductors;
}

}  // namespace

std::vector<peec::Bar> plane_strips(const geom::Block& block, int plane_layer,
                                    const PlaneOptions& opt) {
  if (opt.strips < 1)
    throw diag::UsageError("solver", "plane_strips: strip count must be >= 1, got " +
                                         std::to_string(opt.strips));
  const geom::Layer& player = block.tech().layer(plane_layer);
  const double h = block.tech().dielectric_gap(
      std::min(plane_layer, block.layer_index()),
      std::max(plane_layer, block.layer_index()));
  const double margin = std::max(opt.margin_factor * h, opt.min_margin);

  double x_lo = block.trace(0).x_left();
  double x_hi = block.trace(block.size() - 1).x_right();
  x_lo -= margin;
  x_hi += margin;

  const double pitch = (x_hi - x_lo) / opt.strips;
  std::vector<peec::Bar> strips;
  strips.reserve(static_cast<std::size_t>(opt.strips));
  for (int i = 0; i < opt.strips; ++i) {
    peec::Bar s;
    s.axis = peec::Axis::kY;
    s.a_min = 0.0;
    s.length = block.length();
    s.t_min = x_lo + i * pitch;
    s.t_width = pitch;
    s.z_min = player.z_bottom;
    s.z_thick = player.thickness;
    strips.push_back(s);
  }
  return strips;
}

PartialResult extract_partial(const geom::Block& block,
                              const SolveOptions& opt) {
  if (opt.frequency <= 0.0)
    throw diag::UsageError(
        "solver", "extract_partial: frequency must be positive, got " +
                      std::to_string(opt.frequency) + " Hz");
  // Partial-inductance extraction ignores planes by definition: the return
  // path is decided later by the circuit simulator (paper Section II.A).
  std::vector<Conductor> conductors;
  const double rho = block.layer().rho;
  for (std::size_t i = 0; i < block.size(); ++i) {
    Conductor c;
    c.filaments = mesh_conductor(trace_bar(block, i), rho, opt);
    c.block_trace = i;
    conductors.push_back(std::move(c));
  }
  const ComplexMatrix z = conductor_impedance(conductors, opt);
  const double omega = 2.0 * std::numbers::pi * opt.frequency;

  const std::size_t n = block.size();
  PartialResult res;
  res.inductance = RealMatrix(n, n);
  res.resistance.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.resistance[i] = z(i, i).real();
    for (std::size_t j = 0; j < n; ++j)
      res.inductance(i, j) = z(i, j).imag() / omega;
  }
  return res;
}

LoopResult extract_loop(const geom::Block& block, const SolveOptions& opt) {
  if (opt.frequency <= 0.0)
    throw diag::UsageError(
        "solver", "extract_loop: frequency must be positive, got " +
                      std::to_string(opt.frequency) + " Hz");
  const std::vector<Conductor> conductors = block_conductors(block, opt);

  std::vector<std::size_t> sig, gnd;
  for (std::size_t c = 0; c < conductors.size(); ++c)
    (conductors[c].is_ground ? gnd : sig).push_back(c);
  if (sig.empty())
    throw diag::GeometryError(
        "solver", "extract_loop: the block has no signal traces (all " +
                      std::to_string(conductors.size()) +
                      " conductors are grounds/planes)");
  if (gnd.empty())
    throw diag::GeometryError(
        "solver",
        "extract_loop: no return path — the block needs ground traces or a "
        "plane (use extract_partial for bare coplanar signals)");

  const ComplexMatrix z = conductor_impedance(conductors, opt);
  const std::size_t ns = sig.size();
  const std::size_t ng = gnd.size();

  ComplexMatrix zss(ns, ns), zsg(ns, ng), zgs(ng, ns), zgg(ng, ng);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) zss(i, j) = z(sig[i], sig[j]);
    for (std::size_t g = 0; g < ng; ++g) zsg(i, g) = z(sig[i], gnd[g]);
  }
  for (std::size_t g = 0; g < ng; ++g) {
    for (std::size_t j = 0; j < ns; ++j) zgs(g, j) = z(gnd[g], sig[j]);
    for (std::size_t h = 0; h < ng; ++h) zgg(g, h) = z(gnd[g], gnd[h]);
  }

  // All grounds join the signals' far-end sink node and share the common
  // return drop V_G; enforcing sum(I_G) = -sum(I_S) yields the bordered
  // Schur reduction below (see DESIGN.md).
  LuDecomposition<Complex> lug(zgg);
  const ComplexMatrix zgg_inv_zgs = lug.solve(zgs);
  std::vector<Complex> ones(ng, Complex(1.0, 0.0));
  const std::vector<Complex> zgg_inv_1 = lug.solve(ones);

  Complex denom = 0.0;
  for (std::size_t g = 0; g < ng; ++g) denom += zgg_inv_1[g];

  // Row vector r_j = sum_g (Zgg^-1 Zgs)(g, j) - 1.
  std::vector<Complex> r(ns);
  for (std::size_t j = 0; j < ns; ++j) {
    Complex acc = 0.0;
    for (std::size_t g = 0; g < ng; ++g) acc += zgg_inv_zgs(g, j);
    r[j] = acc - Complex(1.0, 0.0);
  }
  // Column vector c_i = (Zsg Zgg^-1 1)(i) - 1.
  std::vector<Complex> cvec(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    Complex acc = 0.0;
    for (std::size_t g = 0; g < ng; ++g) acc += zsg(i, g) * zgg_inv_1[g];
    cvec[i] = acc - Complex(1.0, 0.0);
  }

  // Zsg (Zgg^-1 Zgs) — Zgg^-1 Zgs came out of the blocked multi-RHS solve
  // above, and the matmul accumulates over g in the same ascending order
  // the explicit triple loop did.
  const ComplexMatrix schur = zsg * zgg_inv_zgs;
  ComplexMatrix zloop(ns, ns);
  for (std::size_t i = 0; i < ns; ++i)
    for (std::size_t j = 0; j < ns; ++j)
      zloop(i, j) = zss(i, j) - schur(i, j) + cvec[i] * r[j] / denom;

  const double omega = 2.0 * std::numbers::pi * opt.frequency;
  LoopResult res;
  res.inductance = RealMatrix(ns, ns);
  res.resistance = RealMatrix(ns, ns);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      res.inductance(i, j) = zloop(i, j).imag() / omega;
      res.resistance(i, j) = zloop(i, j).real();
    }
    res.signal_traces.push_back(conductors[sig[i]].block_trace);
  }
  return res;
}

}  // namespace rlcx::solver
