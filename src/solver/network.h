// General PEEC network: conductor segments between circuit nodes, solved
// with complex MNA at a given frequency.
//
// This is what the Table I experiment needs — the "full structure" loop
// inductance of a branching interconnect tree, where segments meet at
// junction nodes, ground shields run alongside each signal segment, and far
// ends are shorted.  Every segment is meshed into parallel filaments; all
// partial mutual inductances (including between collinear, staggered and
// perpendicular segments) come from the exact kernels in rlcx_peec.
#pragma once

#include <complex>
#include <utility>
#include <vector>

#include "numeric/matrix.h"
#include "peec/assembly.h"
#include "peec/mesh.h"
#include "solver/options.h"

namespace rlcx::solver {

class Network {
 public:
  /// Create a new node and return its id.
  int add_node();
  int node_count() const { return node_count_; }

  /// Add a conductor segment between two nodes.  Positive branch current
  /// flows `from` -> `to`; `from_is_min` says whether the `from` node sits
  /// at the bar's a_min end (flip it for segments laid out against their
  /// axis direction).  The segment is meshed into parallel filaments.
  void add_segment(int from, int to, const peec::Bar& bar, double rho,
                   const peec::MeshOptions& mesh, bool from_is_min = true);

  /// Short two nodes together (zero-impedance tie, implemented by merging).
  void tie(int a, int b);

  std::size_t segment_count() const { return segments_.size(); }
  std::size_t filament_count() const;

  /// Multi-port impedance matrix at the given frequency.  Port k is the
  /// node pair (positive, negative); Z(k,m) = V_port_k per unit current
  /// injected into port m.
  ComplexMatrix port_impedance(
      const std::vector<std::pair<int, int>>& ports, double frequency,
      const peec::PartialOptions& popt = {}) const;

  /// Loop inductance [H] and resistance [ohm] of a single port.
  struct LoopZ {
    double inductance;
    double resistance;
  };
  LoopZ loop_impedance(int positive, int negative, double frequency,
                       const peec::PartialOptions& popt = {}) const;

 private:
  struct Segment {
    int from;
    int to;
    std::vector<peec::Filament> filaments;  // signs already oriented
  };

  int canonical(int node) const;

  int node_count_ = 0;
  std::vector<int> merged_into_;  // union-find style parent per node
  std::vector<Segment> segments_;
};

}  // namespace rlcx::solver
