// The paper runs its field solver at the "significant frequency",
// f_s = 0.32 / t_r, where t_r is the minimum rise/fall time [1].
#pragma once

namespace rlcx::solver {

/// Significant frequency [Hz] for a given minimum rise/fall time [s].
double significant_frequency(double rise_time);

/// Inverse: the rise time whose significant frequency is f.
double rise_time_for_frequency(double frequency);

}  // namespace rlcx::solver
