// The paper runs its field solver at the "significant frequency",
// f_s = 0.32 / t_r, where t_r is the minimum rise/fall time [1].
//
// Frequency sweeps (skin/proximity R(f), L(f) curves, multi-corner
// characterisation) are embarrassingly parallel across points; the sweep_*
// entry points fan the per-frequency solves out on the rlcx::rt pool and
// return results in input order, each bit-identical to a serial extract_*
// call at that frequency.
#pragma once

#include <vector>

#include "solver/block_solver.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::solver {

/// Significant frequency [Hz] for a given minimum rise/fall time [s].
double significant_frequency(double rise_time);

/// Inverse: the rise time whose significant frequency is f.
double rise_time_for_frequency(double frequency);

/// Loop extraction of `block` at every frequency in `frequencies`
/// (result[i] corresponds to frequencies[i]); `base` supplies every other
/// solve option.  Points run concurrently on `pool` (nullptr = the
/// process-global pool).
std::vector<LoopResult> sweep_loop(const geom::Block& block,
                                   const SolveOptions& base,
                                   const std::vector<double>& frequencies,
                                   rt::Pool* pool = nullptr);

/// Partial-inductance flavour of the same sweep.
std::vector<PartialResult> sweep_partial(
    const geom::Block& block, const SolveOptions& base,
    const std::vector<double>& frequencies, rt::Pool* pool = nullptr);

}  // namespace rlcx::solver
