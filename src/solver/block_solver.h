// Field-solver substitute for coplanar blocks (the Raphael RI3 role).
//
// Two extraction modes, matching the paper's two table flavours:
//  * extract_partial — PEEC partial inductances (no return designated; the
//    circuit simulator picks the return path at simulation time).  Used for
//    bare coplanar structures.
//  * extract_loop — loop inductances with the dedicated ground traces and/or
//    the local ground plane(s) merged into the far-end sink node (the
//    paper's "Extension of Foundations").  Used for microstrip/stripline.
#pragma once

#include <vector>

#include "geom/block.h"
#include "numeric/matrix.h"
#include "solver/options.h"

namespace rlcx::solver {

/// Effective (frequency-dependent) partial impedance of every trace.
struct PartialResult {
  RealMatrix inductance;           ///< n x n partial L [H] at the frequency
  std::vector<double> resistance;  ///< effective AC series R per trace [ohm]
};

/// Loop impedance of the signal traces with grounds/planes as return.
struct LoopResult {
  RealMatrix inductance;  ///< ns x ns loop L [H]
  RealMatrix resistance;  ///< ns x ns loop R [ohm] (diagonal-dominant)
  std::vector<std::size_t> signal_traces;  ///< block indices, in matrix order
};

PartialResult extract_partial(const geom::Block& block,
                              const SolveOptions& opt);

/// Requires at least one ground trace or plane in the block.
LoopResult extract_loop(const geom::Block& block, const SolveOptions& opt);

/// Ground-plane discretisation used by extract_loop, exposed for tests and
/// for the general network builder: strips covering the block extent plus a
/// margin, in the given layer.
std::vector<peec::Bar> plane_strips(const geom::Block& block, int plane_layer,
                                    const PlaneOptions& opt);

}  // namespace rlcx::solver
