// Field-solver substitute for coplanar blocks (the Raphael RI3 role).
//
// Two extraction modes, matching the paper's two table flavours:
//  * extract_partial — PEEC partial inductances (no return designated; the
//    circuit simulator picks the return path at simulation time).  Used for
//    bare coplanar structures.
//  * extract_loop — loop inductances with the dedicated ground traces and/or
//    the local ground plane(s) merged into the far-end sink node (the
//    paper's "Extension of Foundations").  Used for microstrip/stripline.
#pragma once

#include <vector>

#include "geom/block.h"
#include "numeric/matrix.h"
#include "solver/options.h"

namespace rlcx::solver {

/// Effective (frequency-dependent) partial impedance of every trace.
struct PartialResult {
  RealMatrix inductance;           ///< n x n partial L [H] at the frequency
  std::vector<double> resistance;  ///< effective AC series R per trace [ohm]
};

/// Loop impedance of the signal traces with grounds/planes as return.
struct LoopResult {
  RealMatrix inductance;  ///< ns x ns loop L [H]
  RealMatrix resistance;  ///< ns x ns loop R [ohm] (diagonal-dominant)
  std::vector<std::size_t> signal_traces;  ///< block indices, in matrix order
};

PartialResult extract_partial(const geom::Block& block,
                              const SolveOptions& opt);

/// Requires at least one ground trace or plane in the block.
LoopResult extract_loop(const geom::Block& block, const SolveOptions& opt);

/// Ground-plane discretisation used by extract_loop, exposed for tests and
/// for the general network builder: strips covering the block extent plus a
/// margin, in the given layer.
std::vector<peec::Bar> plane_strips(const geom::Block& block, int plane_layer,
                                    const PlaneOptions& opt);

/// Analytic resident-byte estimates for the two impedance-solver paths
/// over `filaments` unknowns and `conductors` terminals: the dense path
/// prices the real fill + complex LU + multi-RHS blocks, the hmat path the
/// compressed operator (hmat::estimate_assembly_bytes) + Schwarz blocks +
/// Krylov basis.  These drive the memory budget's degradation ladder in
/// conductor_impedance and serve's cost-based admission
/// (docs/robustness.md "Resource governance").
std::size_t estimate_dense_solve_bytes(std::size_t filaments,
                                       std::size_t conductors);
std::size_t estimate_hmat_solve_bytes(std::size_t filaments,
                                      std::size_t conductors,
                                      const HmatSolveOptions& opt);

/// Cost of extracting `block` without solving anything: meshes the
/// conductors exactly as extraction would (cheap — no field solves),
/// counts filaments, and returns the estimate of the path the dense/hmat
/// dispatch would pick.  Plane strips are included when the block
/// configures planes, so this bounds both extract_partial and
/// extract_loop.
std::size_t estimate_extract_bytes(const geom::Block& block,
                                   const SolveOptions& opt);

}  // namespace rlcx::solver
