// SPICE deck export: the interoperability path a production flow needs —
// extract with rlcx, hand the netlist to HSPICE/ngspice, exactly as the
// paper's flow handed Raphael output to HSPICE.
#pragma once

#include <iosfwd>
#include <string>

#include "ckt/netlist.h"

namespace rlcx::ckt {

struct SpiceExportOptions {
  std::string title = "rlcx extracted netlist";
  /// Emit a .TRAN card with this stop time / step (0 = no analysis card).
  double tran_stop = 0.0;
  double tran_step = 0.0;
};

/// Write a flat SPICE deck: R/C/L elements, K coupling cards (coefficient
/// form), V sources as PWL, node names preserved where set.
void write_spice(std::ostream& os, const Netlist& netlist,
                 const SpiceExportOptions& options = {});

/// Convenience: deck as a string.
std::string to_spice(const Netlist& netlist,
                     const SpiceExportOptions& options = {});

}  // namespace rlcx::ckt
