#include "ckt/netlist.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "diag/error.h"

namespace rlcx::ckt {

namespace {

/// Shared formatting for element-value rejections: name the element kind and
/// the offending value so the error is actionable without a debugger.
[[noreturn]] void reject_value(const char* kind, const char* unit, double v) {
  std::ostringstream msg;
  msg << kind << " value must be positive and finite, got " << v << " "
      << unit;
  throw diag::GeometryError("netlist", msg.str());
}

}  // namespace

NodeId Netlist::add_node() {
  return add_node("n" + std::to_string(next_node_));
}

NodeId Netlist::add_node(const std::string& name) {
  names_.push_back(name);
  return next_node_++;
}

NodeId Netlist::node(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<NodeId>(i);
  throw std::out_of_range("netlist: unknown node name " + name);
}

const std::string& Netlist::node_name(NodeId n) const {
  check_node(n);
  return names_[static_cast<std::size_t>(n)];
}

void Netlist::check_node(NodeId n) const {
  if (n < 0 || n >= next_node_)
    throw std::out_of_range("netlist: bad node id");
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0.0) || !std::isfinite(ohms))
    reject_value("resistor", "ohm", ohms);
  if (a == b)
    throw diag::GeometryError("netlist", "resistor shorted to itself (node '" +
                                             node_name(a) + "')");
  resistors_.push_back({a, b, ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  if (!(farads > 0.0) || !std::isfinite(farads))
    reject_value("capacitor", "F", farads);
  if (a == b)
    throw diag::GeometryError(
        "netlist", "capacitor shorted to itself (node '" + node_name(a) + "')");
  capacitors_.push_back({a, b, farads});
}

std::size_t Netlist::add_inductor(NodeId a, NodeId b, double henries) {
  check_node(a);
  check_node(b);
  if (!(henries > 0.0) || !std::isfinite(henries))
    reject_value("inductor", "H", henries);
  if (a == b)
    throw diag::GeometryError(
        "netlist", "inductor shorted to itself (node '" + node_name(a) + "')");
  inductors_.push_back({a, b, henries});
  return inductors_.size() - 1;
}

void Netlist::add_mutual(std::size_t l1, std::size_t l2, double m) {
  if (l1 >= inductors_.size() || l2 >= inductors_.size())
    throw std::out_of_range("mutual: bad inductor index");
  if (l1 == l2)
    throw diag::GeometryError(
        "netlist", "mutual coupling of inductor " + std::to_string(l1) +
                       " with itself (self-inductance already covers it)");
  if (!std::isfinite(m))
    throw diag::GeometryError(
        "netlist", "mutual inductance must be finite, got " +
                       std::to_string(m) + " H (inductors " +
                       std::to_string(l1) + ", " + std::to_string(l2) + ")");
  const double lim =
      std::sqrt(inductors_[l1].henries * inductors_[l2].henries);
  if (std::abs(m) >= lim) {
    std::ostringstream msg;
    msg << "mutual between inductors " << l1 << " and " << l2
        << " implies |k| >= 1 (M = " << m << " H, sqrt(L1*L2) = " << lim
        << " H); the coupling coefficient of physical inductors is below 1";
    throw diag::GeometryError("netlist", msg.str());
  }
  mutuals_.push_back({l1, l2, m});
}

void Netlist::add_coupling(std::size_t l1, std::size_t l2, double k) {
  if (l1 >= inductors_.size() || l2 >= inductors_.size())
    throw std::out_of_range("coupling: bad inductor index");
  add_mutual(l1, l2,
             k * std::sqrt(inductors_[l1].henries * inductors_[l2].henries));
}

void Netlist::add_vsource(NodeId a, NodeId b, SourceWaveform w) {
  check_node(a);
  check_node(b);
  if (a == b)
    throw diag::GeometryError(
        "netlist", "vsource shorted to itself (node '" + node_name(a) + "')");
  vsources_.push_back({a, b, std::move(w)});
}

void Netlist::validate() const {
  // Dangling nodes: every declared non-ground node must touch an element.
  std::vector<bool> used(static_cast<std::size_t>(next_node_), false);
  auto touch = [&](NodeId n) { used[static_cast<std::size_t>(n)] = true; };
  for (const Resistor& r : resistors_) { touch(r.a); touch(r.b); }
  for (const Capacitor& c : capacitors_) { touch(c.a); touch(c.b); }
  for (const Inductor& l : inductors_) { touch(l.a); touch(l.b); }
  for (const VoltageSource& v : vsources_) { touch(v.a); touch(v.b); }
  for (NodeId n = 1; n < next_node_; ++n) {
    if (!used[static_cast<std::size_t>(n)])
      throw diag::GeometryError(
          "netlist", "dangling node '" + node_name(n) +
                         "' (id " + std::to_string(n) +
                         ") is attached to no element; remove it or connect "
                         "it before simulating");
  }

  // Cumulative mutual coupling: add_mutual checks each M alone, but repeated
  // couplings between the same pair add up in the inductance matrix.
  std::map<std::pair<std::size_t, std::size_t>, double> pair_m;
  for (const MutualInductance& m : mutuals_) {
    const auto key = std::minmax(m.l1, m.l2);
    pair_m[{key.first, key.second}] += m.henries;
  }
  for (const auto& [pair, m_total] : pair_m) {
    const double lim = std::sqrt(inductors_[pair.first].henries *
                                 inductors_[pair.second].henries);
    if (std::abs(m_total) >= lim) {
      std::ostringstream msg;
      msg << "cumulative mutual between inductors " << pair.first << " and "
          << pair.second << " implies |k| >= 1 (sum M = " << m_total
          << " H, sqrt(L1*L2) = " << lim
          << " H); the inductance matrix is not positive definite";
      throw diag::GeometryError("netlist", msg.str());
    }
  }
}

}  // namespace rlcx::ckt
