#include "ckt/netlist.h"

#include <cmath>
#include <stdexcept>

namespace rlcx::ckt {

NodeId Netlist::add_node() {
  return add_node("n" + std::to_string(next_node_));
}

NodeId Netlist::add_node(const std::string& name) {
  names_.push_back(name);
  return next_node_++;
}

NodeId Netlist::node(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<NodeId>(i);
  throw std::out_of_range("netlist: unknown node name " + name);
}

const std::string& Netlist::node_name(NodeId n) const {
  check_node(n);
  return names_[static_cast<std::size_t>(n)];
}

void Netlist::check_node(NodeId n) const {
  if (n < 0 || n >= next_node_)
    throw std::out_of_range("netlist: bad node id");
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  if (ohms <= 0.0) throw std::invalid_argument("resistor value");
  if (a == b) throw std::invalid_argument("resistor shorted to itself");
  resistors_.push_back({a, b, ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  if (farads <= 0.0) throw std::invalid_argument("capacitor value");
  if (a == b) throw std::invalid_argument("capacitor shorted to itself");
  capacitors_.push_back({a, b, farads});
}

std::size_t Netlist::add_inductor(NodeId a, NodeId b, double henries) {
  check_node(a);
  check_node(b);
  if (henries <= 0.0) throw std::invalid_argument("inductor value");
  if (a == b) throw std::invalid_argument("inductor shorted to itself");
  inductors_.push_back({a, b, henries});
  return inductors_.size() - 1;
}

void Netlist::add_mutual(std::size_t l1, std::size_t l2, double m) {
  if (l1 >= inductors_.size() || l2 >= inductors_.size())
    throw std::out_of_range("mutual: bad inductor index");
  if (l1 == l2) throw std::invalid_argument("mutual: same inductor");
  const double lim =
      std::sqrt(inductors_[l1].henries * inductors_[l2].henries);
  if (std::abs(m) >= lim)
    throw std::invalid_argument("mutual: |k| must be < 1");
  mutuals_.push_back({l1, l2, m});
}

void Netlist::add_coupling(std::size_t l1, std::size_t l2, double k) {
  if (l1 >= inductors_.size() || l2 >= inductors_.size())
    throw std::out_of_range("coupling: bad inductor index");
  add_mutual(l1, l2,
             k * std::sqrt(inductors_[l1].henries * inductors_[l2].henries));
}

void Netlist::add_vsource(NodeId a, NodeId b, SourceWaveform w) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("vsource shorted to itself");
  vsources_.push_back({a, b, std::move(w)});
}

}  // namespace rlcx::ckt
