// Moment analysis of linear RLC netlists: Elmore delay and the D2M
// two-moment delay metric.
//
// Moments are the Taylor coefficients of each node's voltage transfer
// H(s) = sum_k m_k s^k around s = 0, computed by the classic recursion
// x_0 = G^{-1} b,  x_{k+1} = -G^{-1} C x_k over the MNA matrices.  Elmore
// delay is -m_1; D2M = ln2 * m1^2 / sqrt(m2) is exact for a single pole
// and far tighter than Elmore for RC trees.  For ringing RLC nets moment
// metrics degrade — which is precisely why the paper runs full transient
// simulation on its extracted netlists; bench_moments quantifies that.
#pragma once

#include <vector>

#include "ckt/netlist.h"

namespace rlcx::ckt {

/// Transfer-function moments m_0..m_order of every node, with voltage
/// source `active_source` as the input (value 1, other sources 0).
/// Result: moments[k][node].
std::vector<std::vector<double>> transfer_moments(
    const Netlist& netlist, int order, std::size_t active_source = 0);

/// Elmore delay of a node: -m_1 (exact mean of the impulse response).
double elmore_delay(const Netlist& netlist, NodeId node,
                    std::size_t active_source = 0);

/// D2M two-moment 50% delay estimate: ln2 * m1^2 / sqrt(m2).
double d2m_delay(const Netlist& netlist, NodeId node,
                 std::size_t active_source = 0);

}  // namespace rlcx::ckt
