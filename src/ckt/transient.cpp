#include "ckt/transient.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "diag/error.h"
#include "numeric/lu.h"
#include "numeric/matrix.h"
#include "run/control.h"

namespace rlcx::ckt {

namespace {

/// Tiny conductance from every node to ground, so nodes that connect only
/// through capacitors (sink loads) keep the DC and MNA matrices regular.
constexpr double kGmin = 1e-12;

}  // namespace

TransientResult::TransientResult(double dt, std::size_t steps, int nodes)
    : dt_(dt), steps_(steps),
      samples_(static_cast<std::size_t>(nodes),
               std::vector<double>(steps, 0.0)) {}

Waveform TransientResult::waveform(NodeId n) const {
  return Waveform(dt_, samples_.at(static_cast<std::size_t>(n)));
}

double TransientResult::voltage(NodeId n, std::size_t step) const {
  return samples_.at(static_cast<std::size_t>(n)).at(step);
}

void TransientResult::set_voltage(NodeId n, std::size_t step, double v) {
  samples_.at(static_cast<std::size_t>(n)).at(step) = v;
}

namespace {

/// Divergence guard for one solved step: every node voltage must be finite
/// and inside the configured bound.  Throws a `numeric` error naming the
/// timestep and node, so a blown-up simulation is diagnosable instead of
/// producing a garbage waveform (or a silent wall of NaN).
void check_step(const Netlist& nl, const std::vector<double>& x,
                std::size_t step, double t, double limit) {
  const int nn = nl.node_count() - 1;
  for (int n = 1; n <= nn; ++n) {
    const double v = x[static_cast<std::size_t>(n - 1)];
    const bool finite = std::isfinite(v);
    if (finite && (limit <= 0.0 || std::abs(v) <= limit)) continue;
    std::ostringstream msg;
    msg << (finite ? "unbounded growth" : "non-finite voltage")
        << " at step " << step << " (t=" << t << " s): node '"
        << nl.node_name(n) << "' = " << v << " V";
    if (finite) msg << " (|v| > divergence_limit " << limit << " V)";
    msg << "; the system is unstable or badly conditioned "
           "(check mutual couplings and element values)";
    throw diag::NumericError("transient", msg.str());
  }
}

}  // namespace

TransientResult simulate(const Netlist& nl, const TransientOptions& opt) {
  if (opt.dt <= 0.0)
    throw diag::UsageError("transient", "dt must be positive, got " +
                                            std::to_string(opt.dt));
  if (opt.t_stop < opt.dt)
    throw diag::UsageError("transient", "t_stop must be >= dt");
  nl.validate();

  const int nn = nl.node_count() - 1;  // unknown node voltages (ground = 0)
  const std::size_t nv = nl.vsources().size();
  const std::size_t nlind = nl.inductors().size();
  const std::size_t dim = static_cast<std::size_t>(nn) + nv + nlind;
  if (dim == 0)
    throw diag::UsageError("transient", "empty netlist: nothing to simulate");

  const double dt = opt.dt;
  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(opt.t_stop / dt)) + 1;

  auto vrow = [&](NodeId n) { return static_cast<std::size_t>(n - 1); };
  const std::size_t vsrc0 = static_cast<std::size_t>(nn);
  const std::size_t ind0 = vsrc0 + nv;

  // Dense mutual-inductance matrix over the inductor branches.
  RealMatrix lmat(nlind, nlind);
  for (std::size_t j = 0; j < nlind; ++j)
    lmat(j, j) = nl.inductors()[j].henries;
  for (const MutualInductance& m : nl.mutuals()) {
    lmat(m.l1, m.l2) += m.henries;
    lmat(m.l2, m.l1) += m.henries;
  }

  // ---- Transient system matrix (constant: fixed dt, linear circuit) ----
  RealMatrix a(dim, dim);
  for (int n = 1; n <= nn; ++n) a(vrow(n), vrow(n)) += kGmin;

  auto stamp_conductance = [&](NodeId p, NodeId q, double g) {
    if (p != kGround) a(vrow(p), vrow(p)) += g;
    if (q != kGround) a(vrow(q), vrow(q)) += g;
    if (p != kGround && q != kGround) {
      a(vrow(p), vrow(q)) -= g;
      a(vrow(q), vrow(p)) -= g;
    }
  };

  for (const Resistor& r : nl.resistors())
    stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  for (const Capacitor& c : nl.capacitors())
    stamp_conductance(c.a, c.b, 2.0 * c.farads / dt);

  for (std::size_t k = 0; k < nv; ++k) {
    const VoltageSource& vs = nl.vsources()[k];
    const std::size_t row = vsrc0 + k;
    if (vs.a != kGround) {
      a(vrow(vs.a), row) += 1.0;
      a(row, vrow(vs.a)) += 1.0;
    }
    if (vs.b != kGround) {
      a(vrow(vs.b), row) -= 1.0;
      a(row, vrow(vs.b)) -= 1.0;
    }
  }

  for (std::size_t j = 0; j < nlind; ++j) {
    const Inductor& l = nl.inductors()[j];
    const std::size_t row = ind0 + j;
    if (l.a != kGround) {
      a(vrow(l.a), row) += 1.0;  // KCL: current leaves node a
      a(row, vrow(l.a)) += 1.0;  // branch voltage v_a - v_b
    }
    if (l.b != kGround) {
      a(vrow(l.b), row) -= 1.0;
      a(row, vrow(l.b)) -= 1.0;
    }
    for (std::size_t m = 0; m < nlind; ++m)
      a(row, ind0 + m) -= 2.0 * lmat(j, m) / dt;
  }

  LuDecomposition<double> lu(std::move(a));

  // ---- DC operating point at t = 0: caps open, inductors shorted ----
  std::vector<double> x0(dim, 0.0);
  {
    RealMatrix adc(dim, dim);
    for (int n = 1; n <= nn; ++n) adc(vrow(n), vrow(n)) += kGmin;
    auto stamp_dc = [&](NodeId p, NodeId q, double g) {
      if (p != kGround) adc(vrow(p), vrow(p)) += g;
      if (q != kGround) adc(vrow(q), vrow(q)) += g;
      if (p != kGround && q != kGround) {
        adc(vrow(p), vrow(q)) -= g;
        adc(vrow(q), vrow(p)) -= g;
      }
    };
    for (const Resistor& r : nl.resistors()) stamp_dc(r.a, r.b, 1.0 / r.ohms);
    std::vector<double> rhs(dim, 0.0);
    for (std::size_t k = 0; k < nv; ++k) {
      const VoltageSource& vs = nl.vsources()[k];
      const std::size_t row = vsrc0 + k;
      if (vs.a != kGround) {
        adc(vrow(vs.a), row) += 1.0;
        adc(row, vrow(vs.a)) += 1.0;
      }
      if (vs.b != kGround) {
        adc(vrow(vs.b), row) -= 1.0;
        adc(row, vrow(vs.b)) -= 1.0;
      }
      rhs[row] = vs.waveform.eval(0.0);
    }
    for (std::size_t j = 0; j < nlind; ++j) {
      const Inductor& l = nl.inductors()[j];
      const std::size_t row = ind0 + j;
      if (l.a != kGround) {
        adc(vrow(l.a), row) += 1.0;
        adc(row, vrow(l.a)) += 1.0;
      }
      if (l.b != kGround) {
        adc(vrow(l.b), row) -= 1.0;
        adc(row, vrow(l.b)) -= 1.0;
      }
      // Short at DC: v_a - v_b = 0 (row has only the voltage terms).
    }
    // Isolated "inductor row all zero" cannot happen: both ends grounded is
    // rejected by the netlist (self-loop).  But an inductor from ground to
    // ground-adjacent... keep the matrix regular with a tiny series term.
    for (std::size_t j = 0; j < nlind; ++j) adc(ind0 + j, ind0 + j) -= 1e-9;
    LuDecomposition<double> ludc(std::move(adc));
    x0 = ludc.solve(rhs);
    check_step(nl, x0, 0, 0.0, opt.divergence_limit);
  }

  // ---- March ----
  TransientResult result(dt, steps, nl.node_count());
  std::vector<double> x = x0;

  // Companion state.
  std::vector<double> cap_v(nl.capacitors().size(), 0.0);
  std::vector<double> cap_i(nl.capacitors().size(), 0.0);
  auto node_v = [&](const std::vector<double>& xs, NodeId n) {
    return n == kGround ? 0.0 : xs[vrow(n)];
  };
  for (std::size_t c = 0; c < nl.capacitors().size(); ++c) {
    const Capacitor& cap = nl.capacitors()[c];
    cap_v[c] = node_v(x0, cap.a) - node_v(x0, cap.b);
    cap_i[c] = 0.0;  // DC: no capacitor current
  }
  std::vector<double> ind_i(nlind, 0.0), ind_v(nlind, 0.0);
  for (std::size_t j = 0; j < nlind; ++j) {
    ind_i[j] = x0[ind0 + j];
    ind_v[j] = 0.0;  // DC: shorted
  }

  for (int n = 1; n <= nn; ++n) result.set_voltage(n, 0, node_v(x0, n));

  std::vector<double> rhs(dim, 0.0);
  for (std::size_t step = 1; step < steps; ++step) {
    // Step boundary: companion state and the result waveforms are
    // consistent here, so a cancelled march unwinds cleanly.
    run::checkpoint("transient");
    const double t = dt * static_cast<double>(step);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    for (std::size_t c = 0; c < nl.capacitors().size(); ++c) {
      const Capacitor& cap = nl.capacitors()[c];
      const double geq = 2.0 * cap.farads / dt;
      const double ieq = geq * cap_v[c] + cap_i[c];
      if (cap.a != kGround) rhs[vrow(cap.a)] += ieq;
      if (cap.b != kGround) rhs[vrow(cap.b)] -= ieq;
    }
    for (std::size_t k = 0; k < nv; ++k)
      rhs[vsrc0 + k] = nl.vsources()[k].waveform.eval(t);
    for (std::size_t j = 0; j < nlind; ++j) {
      double hist = -ind_v[j];
      for (std::size_t m = 0; m < nlind; ++m)
        hist -= 2.0 * lmat(j, m) / dt * ind_i[m];
      rhs[ind0 + j] = hist;
    }

    x = lu.solve(rhs);
    check_step(nl, x, step, t, opt.divergence_limit);

    for (std::size_t c = 0; c < nl.capacitors().size(); ++c) {
      const Capacitor& cap = nl.capacitors()[c];
      const double geq = 2.0 * cap.farads / dt;
      const double vnew = node_v(x, cap.a) - node_v(x, cap.b);
      const double ieq = geq * cap_v[c] + cap_i[c];
      cap_i[c] = geq * vnew - ieq;
      cap_v[c] = vnew;
    }
    for (std::size_t j = 0; j < nlind; ++j) {
      const Inductor& l = nl.inductors()[j];
      ind_i[j] = x[ind0 + j];
      ind_v[j] = node_v(x, l.a) - node_v(x, l.b);
    }

    for (int n = 1; n <= nn; ++n) result.set_voltage(n, step, node_v(x, n));
  }
  return result;
}

}  // namespace rlcx::ckt
