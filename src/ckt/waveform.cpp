#include "ckt/waveform.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace rlcx::ckt {

Waveform::Waveform(double dt, std::vector<double> samples)
    : dt_(dt), samples_(std::move(samples)) {
  if (dt_ <= 0.0) throw std::invalid_argument("waveform: dt");
  if (samples_.empty()) throw std::invalid_argument("waveform: empty");
}

double Waveform::value_at(double t) const {
  if (samples_.empty()) return 0.0;
  const double idx = t / dt_;
  if (idx <= 0.0) return samples_.front();
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double f = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - f) + samples_[lo + 1] * f;
}

std::optional<double> Waveform::first_rise_through(double level) const {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i - 1] < level && samples_[i] >= level) {
      const double f =
          (level - samples_[i - 1]) / (samples_[i] - samples_[i - 1]);
      return dt_ * (static_cast<double>(i - 1) + f);
    }
  }
  return std::nullopt;
}

double Waveform::max() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

double Waveform::min() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

double Waveform::overshoot() const {
  const double peak = max();
  return peak > final() ? peak - final() : 0.0;
}

double Waveform::undershoot() const {
  const double trough = min();
  return trough < 0.0 ? -trough : 0.0;
}

double delay_50(const Waveform& from, const Waveform& to, double swing) {
  if (swing <= 0.0) throw std::invalid_argument("delay_50: swing");
  const auto t0 = from.first_rise_through(0.5 * swing);
  const auto t1 = to.first_rise_through(0.5 * swing);
  if (!t0 || !t1)
    throw std::runtime_error("delay_50: waveform never crosses 50%");
  return *t1 - *t0;
}

double skew_50(const Waveform& from, const std::vector<Waveform>& sinks,
               double swing) {
  if (sinks.empty()) throw std::invalid_argument("skew_50: no sinks");
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const Waveform& s : sinks) {
    const double d = delay_50(from, s, swing);
    if (first) {
      lo = hi = d;
      first = false;
    } else {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  return hi - lo;
}

void write_csv(std::ostream& os,
               const std::vector<std::pair<std::string, Waveform>>& waves) {
  if (waves.empty()) throw std::invalid_argument("write_csv: no waveforms");
  const Waveform& first = waves.front().second;
  for (const auto& [name, w] : waves) {
    if (w.dt() != first.dt() || w.size() != first.size())
      throw std::invalid_argument("write_csv: mismatched waveforms");
  }
  os << "time";
  for (const auto& [name, w] : waves) os << "," << name;
  os << "\n";
  os.precision(9);
  for (std::size_t i = 0; i < first.size(); ++i) {
    os << first.time(i);
    for (const auto& [name, w] : waves) os << "," << w.sample(i);
    os << "\n";
  }
}

}  // namespace rlcx::ckt
