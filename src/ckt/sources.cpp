#include "ckt/sources.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcx::ckt {

SourceWaveform SourceWaveform::ramp(double level, double rise, double t0) {
  if (rise <= 0.0) throw std::invalid_argument("ramp: rise time");
  return pwl({{t0, 0.0}, {t0 + rise, level}});
}

SourceWaveform SourceWaveform::clock(double level, double period,
                                     double rise) {
  if (period <= 0.0) throw std::invalid_argument("clock: period");
  if (rise <= 0.0 || rise >= period / 2.0)
    throw std::invalid_argument("clock: rise time");
  SourceWaveform w = pwl({{0.0, 0.0},
                          {rise, level},
                          {period / 2.0, level},
                          {period / 2.0 + rise, 0.0},
                          {period, 0.0}});
  w.period_ = period;
  return w;
}

SourceWaveform SourceWaveform::pwl(
    std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("pwl: empty");
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].first < points[i - 1].first)
      throw std::invalid_argument("pwl: time must not decrease");
  SourceWaveform w;
  w.points_ = std::move(points);
  return w;
}

SourceWaveform SourceWaveform::dc(double level) {
  return pwl({{0.0, level}});
}

double SourceWaveform::eval(double t) const {
  if (points_.empty()) return 0.0;
  if (period_ > 0.0) t = std::fmod(t, period_);
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double v, const std::pair<double, double>& p) { return v < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.first == lo.first) return hi.second;
  const double f = (t - lo.first) / (hi.first - lo.first);
  return lo.second * (1.0 - f) + hi.second * f;
}

}  // namespace rlcx::ckt
