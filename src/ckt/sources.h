// Time-domain source waveforms for the transient simulator.
#pragma once

#include <vector>

namespace rlcx::ckt {

/// A piecewise-linear voltage-vs-time description.  Step, ramp and pulse
/// sources are factory shorthands for common PWL shapes.
class SourceWaveform {
 public:
  SourceWaveform() = default;

  /// 0 before t0, then a linear rise over `rise` to `level`.
  static SourceWaveform ramp(double level, double rise, double t0 = 0.0);

  /// Periodic trapezoid (a clock): period, high level, rise/fall time,
  /// 50 % duty, starting low at t = 0.
  static SourceWaveform clock(double level, double period, double rise);

  /// Arbitrary PWL; points must have non-decreasing time.
  static SourceWaveform pwl(std::vector<std::pair<double, double>> points);

  static SourceWaveform dc(double level);

  double eval(double t) const;

  /// Period for periodic sources (0 = aperiodic).
  double period() const { return period_; }

  /// The underlying PWL points (used by the SPICE exporter).
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;  // (t, v)
  double period_ = 0.0;
};

}  // namespace rlcx::ckt
