#include "ckt/spice_export.h"

#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace rlcx::ckt {

namespace {

// SPICE node token: ground is "0"; otherwise the netlist name with
// whitespace squashed (names default to n<k>, which is already clean).
std::string node_token(const Netlist& nl, NodeId n) {
  if (n == kGround) return "0";
  std::string s = nl.node_name(n);
  for (char& c : s)
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  return s;
}

}  // namespace

void write_spice(std::ostream& os, const Netlist& nl,
                 const SpiceExportOptions& opt) {
  os << "* " << opt.title << "\n";
  os.precision(9);

  std::size_t idx = 1;
  for (const Resistor& r : nl.resistors())
    os << "R" << idx++ << " " << node_token(nl, r.a) << " "
       << node_token(nl, r.b) << " " << r.ohms << "\n";

  idx = 1;
  for (const Capacitor& c : nl.capacitors())
    os << "C" << idx++ << " " << node_token(nl, c.a) << " "
       << node_token(nl, c.b) << " " << c.farads << "\n";

  idx = 1;
  for (const Inductor& l : nl.inductors())
    os << "L" << idx++ << " " << node_token(nl, l.a) << " "
       << node_token(nl, l.b) << " " << l.henries << "\n";

  idx = 1;
  for (const MutualInductance& m : nl.mutuals()) {
    const double k =
        m.henries / std::sqrt(nl.inductors()[m.l1].henries *
                              nl.inductors()[m.l2].henries);
    os << "K" << idx++ << " L" << (m.l1 + 1) << " L" << (m.l2 + 1) << " "
       << k << "\n";
  }

  idx = 1;
  for (const VoltageSource& v : nl.vsources()) {
    os << "V" << idx++ << " " << node_token(nl, v.a) << " "
       << node_token(nl, v.b) << " PWL(";
    bool first = true;
    for (const auto& [t, val] : v.waveform.points()) {
      if (!first) os << " ";
      first = false;
      os << t << " " << val;
    }
    os << ")";
    if (v.waveform.period() > 0.0)
      os << " $ periodic, T=" << v.waveform.period();
    os << "\n";
  }

  if (opt.tran_stop > 0.0 && opt.tran_step > 0.0)
    os << ".TRAN " << opt.tran_step << " " << opt.tran_stop << "\n";
  os << ".END\n";
}

std::string to_spice(const Netlist& nl, const SpiceExportOptions& opt) {
  std::ostringstream os;
  write_spice(os, nl, opt);
  return os.str();
}

}  // namespace rlcx::ckt
