// Simulated waveforms and the measurements the paper reports: 50 % delay,
// overshoot/undershoot, clock skew.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rlcx::ckt {

/// A uniformly-sampled signal from the transient simulator.
class Waveform {
 public:
  Waveform() = default;
  Waveform(double dt, std::vector<double> samples);

  double dt() const { return dt_; }
  std::size_t size() const { return samples_.size(); }
  double time(std::size_t i) const { return dt_ * static_cast<double>(i); }
  double sample(std::size_t i) const { return samples_.at(i); }
  const std::vector<double>& samples() const { return samples_; }

  /// Linear interpolation at time t (clamped to the simulated range).
  double value_at(double t) const;

  /// First time the waveform rises through `level` (linear interpolation);
  /// nullopt if it never does.
  std::optional<double> first_rise_through(double level) const;

  double max() const;
  double min() const;
  double final() const { return samples_.empty() ? 0.0 : samples_.back(); }

  /// Overshoot above the settled value (0 if none) — the paper's Figure 3
  /// phenomenon.
  double overshoot() const;
  /// Undershoot below 0 (positive magnitude, 0 if none).
  double undershoot() const;

 private:
  double dt_ = 0.0;
  std::vector<double> samples_;
};

/// 50 %-of-swing delay from a reference waveform (e.g. buffer output) to a
/// sink waveform, as in the paper's Figures 2-3 (28.01 ps vs 47.6 ps).
/// Throws if either waveform never crosses the threshold.
double delay_50(const Waveform& from, const Waveform& to, double swing);

/// Clock skew: max minus min 50 % arrival across sinks, measured from a
/// common reference waveform.
double skew_50(const Waveform& from, const std::vector<Waveform>& sinks,
               double swing);

/// Dump waveforms as CSV ("time,<name1>,<name2>,..."), one row per sample
/// of the first waveform; all waveforms must share dt and length.
void write_csv(std::ostream& os,
               const std::vector<std::pair<std::string, Waveform>>& waves);

}  // namespace rlcx::ckt
