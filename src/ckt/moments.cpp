#include "ckt/moments.h"

#include <cmath>
#include <stdexcept>

#include "numeric/lu.h"
#include "numeric/matrix.h"

namespace rlcx::ckt {

namespace {
constexpr double kGmin = 1e-12;
}

std::vector<std::vector<double>> transfer_moments(const Netlist& nl,
                                                  int order,
                                                  std::size_t active_source) {
  if (order < 0) throw std::invalid_argument("transfer_moments: order");
  if (active_source >= nl.vsources().size())
    throw std::out_of_range("transfer_moments: source index");

  const int nn = nl.node_count() - 1;
  const std::size_t nv = nl.vsources().size();
  const std::size_t nli = nl.inductors().size();
  const std::size_t dim = static_cast<std::size_t>(nn) + nv + nli;

  auto vrow = [](NodeId n) { return static_cast<std::size_t>(n - 1); };
  const std::size_t vsrc0 = static_cast<std::size_t>(nn);
  const std::size_t ind0 = vsrc0 + nv;

  // G: resistors + source/inductor incidence (inductors shorted at DC).
  RealMatrix g(dim, dim);
  for (int n = 1; n <= nn; ++n) g(vrow(n), vrow(n)) += kGmin;
  for (const Resistor& r : nl.resistors()) {
    const double y = 1.0 / r.ohms;
    if (r.a != kGround) g(vrow(r.a), vrow(r.a)) += y;
    if (r.b != kGround) g(vrow(r.b), vrow(r.b)) += y;
    if (r.a != kGround && r.b != kGround) {
      g(vrow(r.a), vrow(r.b)) -= y;
      g(vrow(r.b), vrow(r.a)) -= y;
    }
  }
  for (std::size_t k = 0; k < nv; ++k) {
    const VoltageSource& vs = nl.vsources()[k];
    const std::size_t row = vsrc0 + k;
    if (vs.a != kGround) {
      g(vrow(vs.a), row) += 1.0;
      g(row, vrow(vs.a)) += 1.0;
    }
    if (vs.b != kGround) {
      g(vrow(vs.b), row) -= 1.0;
      g(row, vrow(vs.b)) -= 1.0;
    }
  }
  for (std::size_t j = 0; j < nli; ++j) {
    const Inductor& l = nl.inductors()[j];
    const std::size_t row = ind0 + j;
    if (l.a != kGround) {
      g(vrow(l.a), row) += 1.0;
      g(row, vrow(l.a)) += 1.0;
    }
    if (l.b != kGround) {
      g(vrow(l.b), row) -= 1.0;
      g(row, vrow(l.b)) -= 1.0;
    }
  }

  // C: capacitors into node rows, -L into inductor branch rows.
  RealMatrix cm(dim, dim);
  for (const Capacitor& c : nl.capacitors()) {
    if (c.a != kGround) cm(vrow(c.a), vrow(c.a)) += c.farads;
    if (c.b != kGround) cm(vrow(c.b), vrow(c.b)) += c.farads;
    if (c.a != kGround && c.b != kGround) {
      cm(vrow(c.a), vrow(c.b)) -= c.farads;
      cm(vrow(c.b), vrow(c.a)) -= c.farads;
    }
  }
  RealMatrix lmat(nli, nli);
  for (std::size_t j = 0; j < nli; ++j)
    lmat(j, j) = nl.inductors()[j].henries;
  for (const MutualInductance& m : nl.mutuals()) {
    lmat(m.l1, m.l2) += m.henries;
    lmat(m.l2, m.l1) += m.henries;
  }
  for (std::size_t j = 0; j < nli; ++j)
    for (std::size_t m = 0; m < nli; ++m)
      cm(ind0 + j, ind0 + m) -= lmat(j, m);

  LuDecomposition<double> lu(std::move(g));

  std::vector<double> rhs(dim, 0.0);
  rhs[vsrc0 + active_source] = 1.0;
  std::vector<double> x = lu.solve(rhs);

  std::vector<std::vector<double>> moments;
  auto collect = [&](const std::vector<double>& xs) {
    std::vector<double> row(static_cast<std::size_t>(nl.node_count()), 0.0);
    for (int n = 1; n <= nn; ++n)
      row[static_cast<std::size_t>(n)] = xs[vrow(n)];
    return row;
  };
  moments.push_back(collect(x));
  for (int k = 1; k <= order; ++k) {
    const std::vector<double> cx = cm * x;
    std::vector<double> neg(dim);
    for (std::size_t i = 0; i < dim; ++i) neg[i] = -cx[i];
    x = lu.solve(neg);
    moments.push_back(collect(x));
  }
  return moments;
}

double elmore_delay(const Netlist& nl, NodeId node,
                    std::size_t active_source) {
  const auto m = transfer_moments(nl, 1, active_source);
  const double m0 = m[0][static_cast<std::size_t>(node)];
  if (std::abs(m0 - 1.0) > 1e-6)
    throw std::runtime_error(
        "elmore_delay: node is not DC-connected to the source (m0 != 1)");
  return -m[1][static_cast<std::size_t>(node)];
}

double d2m_delay(const Netlist& nl, NodeId node, std::size_t active_source) {
  const auto m = transfer_moments(nl, 2, active_source);
  const double m1 = m[1][static_cast<std::size_t>(node)];
  const double m2 = m[2][static_cast<std::size_t>(node)];
  if (m2 <= 0.0)
    throw std::runtime_error(
        "d2m_delay: m2 <= 0 (response too inductive for the metric)");
  return std::log(2.0) * m1 * m1 / std::sqrt(m2);
}

}  // namespace rlcx::ckt
