#include "ckt/ac.h"

#include <numbers>
#include <stdexcept>

#include "numeric/lu.h"
#include "numeric/matrix.h"

namespace rlcx::ckt {

namespace {

using Complex = std::complex<double>;

constexpr double kGmin = 1e-12;

/// Assemble and solve the complex MNA system for one excitation.
/// `vsource_amplitudes` has one entry per voltage source; `inject` adds a
/// 1 A current source between two nodes (pass {-1,-1} for none).
std::vector<Complex> solve_mna(const Netlist& nl, double frequency,
                               const std::vector<double>& vsource_amplitudes,
                               std::pair<NodeId, NodeId> inject) {
  if (frequency <= 0.0) throw std::invalid_argument("ac: frequency");
  const double omega = 2.0 * std::numbers::pi * frequency;

  const int nn = nl.node_count() - 1;
  const std::size_t nv = nl.vsources().size();
  const std::size_t nli = nl.inductors().size();
  const std::size_t dim = static_cast<std::size_t>(nn) + nv + nli;
  if (dim == 0) throw std::invalid_argument("ac: empty netlist");

  auto vrow = [](NodeId n) { return static_cast<std::size_t>(n - 1); };
  const std::size_t vsrc0 = static_cast<std::size_t>(nn);
  const std::size_t ind0 = vsrc0 + nv;

  ComplexMatrix a(dim, dim);
  for (int n = 1; n <= nn; ++n) a(vrow(n), vrow(n)) += kGmin;

  auto stamp_admittance = [&](NodeId p, NodeId q, Complex y) {
    if (p != kGround) a(vrow(p), vrow(p)) += y;
    if (q != kGround) a(vrow(q), vrow(q)) += y;
    if (p != kGround && q != kGround) {
      a(vrow(p), vrow(q)) -= y;
      a(vrow(q), vrow(p)) -= y;
    }
  };

  for (const Resistor& r : nl.resistors())
    stamp_admittance(r.a, r.b, Complex(1.0 / r.ohms, 0.0));
  for (const Capacitor& c : nl.capacitors())
    stamp_admittance(c.a, c.b, Complex(0.0, omega * c.farads));

  for (std::size_t k = 0; k < nv; ++k) {
    const VoltageSource& vs = nl.vsources()[k];
    const std::size_t row = vsrc0 + k;
    if (vs.a != kGround) {
      a(vrow(vs.a), row) += 1.0;
      a(row, vrow(vs.a)) += 1.0;
    }
    if (vs.b != kGround) {
      a(vrow(vs.b), row) -= 1.0;
      a(row, vrow(vs.b)) -= 1.0;
    }
  }

  // Inductor branches: v_a - v_b - jw sum_m L_km i_m = 0.
  RealMatrix lmat(nli, nli);
  for (std::size_t j = 0; j < nli; ++j)
    lmat(j, j) = nl.inductors()[j].henries;
  for (const MutualInductance& m : nl.mutuals()) {
    lmat(m.l1, m.l2) += m.henries;
    lmat(m.l2, m.l1) += m.henries;
  }
  for (std::size_t j = 0; j < nli; ++j) {
    const Inductor& l = nl.inductors()[j];
    const std::size_t row = ind0 + j;
    if (l.a != kGround) {
      a(vrow(l.a), row) += 1.0;
      a(row, vrow(l.a)) += 1.0;
    }
    if (l.b != kGround) {
      a(vrow(l.b), row) -= 1.0;
      a(row, vrow(l.b)) -= 1.0;
    }
    for (std::size_t m = 0; m < nli; ++m)
      a(row, ind0 + m) -= Complex(0.0, omega * lmat(j, m));
  }

  std::vector<Complex> rhs(dim, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < nv && k < vsource_amplitudes.size(); ++k)
    rhs[vsrc0 + k] = vsource_amplitudes[k];
  if (inject.first >= 0) {
    if (inject.first != kGround) rhs[vrow(inject.first)] += 1.0;
    if (inject.second != kGround) rhs[vrow(inject.second)] -= 1.0;
  }

  LuDecomposition<Complex> lu(std::move(a));
  const std::vector<Complex> x = lu.solve(rhs);

  std::vector<Complex> node_v(static_cast<std::size_t>(nl.node_count()),
                              Complex(0.0, 0.0));
  for (int n = 1; n <= nn; ++n)
    node_v[static_cast<std::size_t>(n)] = x[vrow(n)];
  return node_v;
}

}  // namespace

std::vector<Complex> ac_solve(const Netlist& nl, double frequency,
                              std::size_t active_source) {
  if (active_source >= nl.vsources().size())
    throw std::out_of_range("ac_solve: source index");
  std::vector<double> amps(nl.vsources().size(), 0.0);
  amps[active_source] = 1.0;
  return solve_mna(nl, frequency, amps, {-1, -1});
}

Complex ac_transfer(const Netlist& nl, double frequency, NodeId out,
                    std::size_t active_source) {
  const auto v = ac_solve(nl, frequency, active_source);
  return v.at(static_cast<std::size_t>(out));
}

Complex ac_input_impedance(const Netlist& nl, double frequency,
                           NodeId positive, NodeId negative) {
  const std::vector<double> amps(nl.vsources().size(), 0.0);
  const auto v = solve_mna(nl, frequency, amps, {positive, negative});
  return v.at(static_cast<std::size_t>(positive)) -
         v.at(static_cast<std::size_t>(negative));
}

}  // namespace rlcx::ckt
