// Small-signal AC analysis: complex MNA at a single frequency.
//
// Complements the transient engine: frequency responses, driving-point
// impedances (what the clock buffer sees looking into the tree), and an
// independent cross-check of the trapezoidal integration.
#pragma once

#include <complex>
#include <vector>

#include "ckt/netlist.h"

namespace rlcx::ckt {

/// Phasor node voltages with voltage source `active_source` driving at
/// 1 V amplitude and every other source set to 0 (i.e. shorted).
/// Result is indexed by NodeId; entry 0 (ground) is 0.
std::vector<std::complex<double>> ac_solve(const Netlist& netlist,
                                           double frequency,
                                           std::size_t active_source = 0);

/// Voltage transfer H(jw) = V(out)/V(in) with the given source active.
std::complex<double> ac_transfer(const Netlist& netlist, double frequency,
                                 NodeId out, std::size_t active_source = 0);

/// Driving-point impedance between two nodes: inject 1 A, all voltage
/// sources shorted (their internal impedance is zero), read the phasor
/// voltage across the port.
std::complex<double> ac_input_impedance(const Netlist& netlist,
                                        double frequency, NodeId positive,
                                        NodeId negative = kGround);

}  // namespace rlcx::ckt
