// Transient simulation of linear RLC netlists: MNA with trapezoidal
// integration, the same numerical core SPICE applies to this circuit class.
//
// The system matrix is constant for a fixed timestep, so it is factored
// once and every step is a single back-substitution — simulating the
// paper's clocktrees (hundreds of nodes, thousands of steps) takes
// milliseconds.
#pragma once

#include <vector>

#include "ckt/netlist.h"
#include "ckt/waveform.h"

namespace rlcx::ckt {

struct TransientOptions {
  double t_stop = 0.0;  ///< [s]
  double dt = 0.0;      ///< fixed timestep [s]

  /// Divergence guard: any node voltage that leaves [-limit, +limit] — or
  /// goes NaN/Inf — halts the march with a `numeric` error naming the step
  /// and node.  On-chip signals live within a few supply rails; 1 kV is far
  /// beyond any legitimate transient of this circuit class while still
  /// leaving room for ringing overshoot.  Set to 0 to disable the guard.
  double divergence_limit = 1e3;  ///< [V]
};

class TransientResult {
 public:
  TransientResult(double dt, std::size_t steps, int nodes);

  double dt() const { return dt_; }
  std::size_t steps() const { return steps_; }

  /// Voltage waveform of a node (node 0 returns the all-zero ground).
  Waveform waveform(NodeId n) const;
  double voltage(NodeId n, std::size_t step) const;

  void set_voltage(NodeId n, std::size_t step, double v);

 private:
  double dt_;
  std::size_t steps_;
  std::vector<std::vector<double>> samples_;  // [node][step]
};

/// Run a transient analysis.  The initial state is the DC operating point at
/// t = 0 (capacitors open, inductors shorted, sources at their t=0 value).
TransientResult simulate(const Netlist& netlist,
                         const TransientOptions& options);

}  // namespace rlcx::ckt
