// Linear circuit netlist: R, C, L (with mutual coupling), V sources.
//
// This is the subset of SPICE the paper's experiments exercise: passive RLC
// interconnect driven by buffers modeled as a ramp source behind a source
// resistance (Figure 1: "clock buffer driving strength has about 40 ohm as
// source resistance").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ckt/sources.h"

namespace rlcx::ckt {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a, b;
  double ohms;
};
struct Capacitor {
  NodeId a, b;
  double farads;
};
struct Inductor {
  NodeId a, b;
  double henries;
};
struct MutualInductance {
  std::size_t l1, l2;  ///< inductor indices
  double henries;      ///< mutual M (not the coupling coefficient)
};
struct VoltageSource {
  NodeId a, b;  ///< v(a) - v(b) = waveform(t)
  SourceWaveform waveform;
};

class Netlist {
 public:
  /// Node 0 is ground and always exists.
  NodeId add_node();
  NodeId add_node(const std::string& name);
  NodeId node(const std::string& name) const;  ///< throws if unknown
  int node_count() const { return next_node_; }
  const std::string& node_name(NodeId n) const;

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  /// Returns the inductor index for mutual coupling.
  std::size_t add_inductor(NodeId a, NodeId b, double henries);
  /// Couple two inductors with mutual inductance M [H]; |k| must be < 1.
  void add_mutual(std::size_t l1, std::size_t l2, double m);
  /// Couple via coupling coefficient k: M = k sqrt(L1 L2).
  void add_coupling(std::size_t l1, std::size_t l2, double k);
  void add_vsource(NodeId a, NodeId b, SourceWaveform w);

  /// Whole-netlist consistency check, run at API boundaries (the transient
  /// engine calls it before building the MNA system).  Rejects, with a
  /// categorized `geometry` error naming the offender:
  ///   - dangling nodes: declared but attached to no element (they would
  ///     float on the Gmin conductance and simulate as silent 0 V),
  ///   - cumulative mutual coupling at or beyond |k| = 1 for any inductor
  ///     pair (a non-physical, non-positive-definite inductance matrix —
  ///     add_mutual checks each coupling alone, this checks their sum).
  void validate() const;

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<MutualInductance>& mutuals() const { return mutuals_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }

 private:
  void check_node(NodeId n) const;

  int next_node_ = 1;  // 0 = ground
  std::vector<std::string> names_{"gnd"};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<MutualInductance> mutuals_;
  std::vector<VoltageSource> vsources_;
};

}  // namespace rlcx::ckt
