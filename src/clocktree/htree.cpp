#include "clocktree/htree.h"

#include <stdexcept>

#include "geom/builders.h"
#include "numeric/units.h"

namespace rlcx::clocktree {

using units::um;

std::size_t HTreeSpec::sink_count() const {
  // The root segment does not branch; every later level doubles the count.
  if (levels.empty()) return 0;
  return static_cast<std::size_t>(1) << (levels.size() - 1);
}

double HTreeSpec::root_to_leaf_length() const {
  double total = 0.0;
  for (const LevelSpec& l : levels) total += l.length;
  return total;
}

HTreeSpec example_cpw_tree() {
  HTreeSpec spec;
  spec.layer = 6;
  // Widths taper down the tree; shields at least as wide as the signal so
  // the linear-cascading precondition (Section IV) holds.
  spec.levels = {
      {um(3000), um(10), um(10), um(1), geom::PlaneConfig::kNone},
      {um(1500), um(6), um(6), um(1), geom::PlaneConfig::kNone},
      {um(800), um(4), um(4), um(1), geom::PlaneConfig::kNone},
  };
  spec.driver.vdd = 1.8;
  // The root buffer drives the whole subtree; its impedance must sit below
  // the tree's input impedance for clean incident-wave switching (see the
  // driver note in bench_fig1_delay.cpp).
  spec.driver.r_source = 20.0;
  spec.driver.t_rise = 150e-12;
  spec.sink_cap = 200e-15;
  spec.sink_cap_mismatch = 1.0;
  return spec;
}

HTreeSpec example_microstrip_tree() {
  HTreeSpec spec = example_cpw_tree();
  for (LevelSpec& l : spec.levels) l.planes = geom::PlaneConfig::kBelow;
  return spec;
}

HTreeSpec example_two_layer_tree() {
  HTreeSpec spec = example_cpw_tree();
  // Even levels on the default layer 6, odd levels one layer down —
  // matching the direction alternation of the physical H layout.
  for (std::size_t i = 0; i < spec.levels.size(); ++i)
    spec.levels[i].layer = (i % 2 == 0) ? 6 : 5;
  spec.via.resistance = 0.8;  // stacked via array under a wide clock wire
  return spec;
}

int HTreeSpec::level_layer(std::size_t level) const {
  if (level >= levels.size())
    throw std::out_of_range("level_layer: level");
  const int l = levels[level].layer;
  return l == 0 ? layer : l;
}

geom::Block level_block(const geom::Technology& tech, const HTreeSpec& spec,
                        std::size_t level) {
  if (level >= spec.levels.size())
    throw std::out_of_range("level_block: level");
  const LevelSpec& l = spec.levels[level];
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kGround, l.ground_width,
       -(0.5 * l.signal_width + l.spacing + 0.5 * l.ground_width), "gnd_l"},
      {geom::TraceRole::kSignal, l.signal_width, 0.0, "sig"},
      {geom::TraceRole::kGround, l.ground_width,
       0.5 * l.signal_width + l.spacing + 0.5 * l.ground_width, "gnd_r"},
  };
  return geom::Block(&tech, spec.level_layer(level), l.length,
                     std::move(traces), l.planes);
}

}  // namespace rlcx::clocktree
