#include "clocktree/skew.h"

#include <algorithm>
#include <stdexcept>

namespace rlcx::clocktree {

SkewResult analyze_skew(const geom::Technology& tech, const HTreeSpec& spec,
                        const core::InductanceLibrary& inductance,
                        const AnalysisOptions& options) {
  const TreeNetlist tree =
      build_tree_netlist(tech, spec, inductance, options.ladder);

  ckt::TransientOptions topt;
  topt.dt = options.dt > 0.0 ? options.dt : spec.driver.t_rise / 50.0;
  if (options.t_stop > 0.0) {
    topt.t_stop = options.t_stop;
  } else {
    // Heuristic horizon: rise time plus several times the total wire RC and
    // time of flight.
    topt.t_stop = spec.driver.t_rise * 10.0 + 2e-9;
  }

  const ckt::TransientResult res = ckt::simulate(tree.netlist, topt);
  const ckt::Waveform ref = res.waveform(tree.driver_out);

  SkewResult out;
  for (const ckt::NodeId sink : tree.sinks) {
    const ckt::Waveform w = res.waveform(sink);
    out.sink_delays.push_back(ckt::delay_50(ref, w, spec.driver.vdd));
    const auto arrival = w.first_rise_through(0.5 * spec.driver.vdd);
    if (!arrival)
      throw std::runtime_error("analyze_skew: sink never reaches 50%");
    out.sink_arrivals.push_back(*arrival);
    out.max_arrival = std::max(out.max_arrival, *arrival);
    out.max_overshoot = std::max(out.max_overshoot,
                                 w.max() - spec.driver.vdd);
    out.max_undershoot = std::max(out.max_undershoot, w.undershoot());
  }
  out.max_overshoot = std::max(out.max_overshoot, 0.0);
  const auto [lo, hi] =
      std::minmax_element(out.sink_delays.begin(), out.sink_delays.end());
  out.min_delay = *lo;
  out.max_delay = *hi;
  out.skew = *hi - *lo;
  return out;
}

RcVsRlc compare_rc_rlc(const geom::Technology& tech, const HTreeSpec& spec,
                       const core::InductanceLibrary& inductance,
                       AnalysisOptions options) {
  RcVsRlc out;
  options.ladder.include_inductance = true;
  out.rlc = analyze_skew(tech, spec, inductance, options);
  options.ladder.include_inductance = false;
  out.rc = analyze_skew(tech, spec, inductance, options);
  return out;
}

}  // namespace rlcx::clocktree
