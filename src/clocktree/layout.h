// Physical H-tree layout: places every segment of an HTreeSpec in the
// plane, alternating routing direction per level (the classic H pattern,
// adapted to the electrical model where each segment runs from its parent's
// tip and splits at its own tip).
//
// The layout serves three purposes: wirelength/congestion reporting, placing
// neighbours/aggressors relative to real tree geometry, and — most
// importantly — driving a *full-structure* PEEC extraction of the entire
// tree in one system, the ground truth against which the paper's
// cascaded-segment method is validated at tree scale (Section IV applied to
// Section V).
#pragma once

#include <vector>

#include "core/inductance_model.h"
#include "clocktree/htree.h"
#include "peec/bar.h"
#include "solver/options.h"

namespace rlcx::clocktree {

struct PlacedSegment {
  std::size_t level = 0;
  peec::Axis axis = peec::Axis::kY;  ///< routing direction of this segment
  double a_start = 0.0;  ///< start coordinate along the axis [m]
  double a_end = 0.0;    ///< end coordinate (may be < start) [m]
  double t_center = 0.0; ///< transverse position of the signal center [m]
  int parent = -1;       ///< index of the parent segment (-1 for root)
};

/// Lay out the tree starting at (0, 0) heading +y; children leave each tip
/// in the two perpendicular directions.
std::vector<PlacedSegment> htree_layout(const HTreeSpec& spec);

/// Total signal wirelength of the layout [m].
double total_wirelength(const std::vector<PlacedSegment>& layout);

/// Bounding box half-widths (x, y) of the signal route [m].
std::pair<double, double> bounding_box(
    const std::vector<PlacedSegment>& layout);

/// Full-structure loop inductance at the tree root: every segment of the
/// laid-out tree (signal + its two shields) enters one PEEC system, far
/// ends shorted — the whole-tree ground truth for linear cascading.
double full_tree_loop_inductance(const geom::Technology& tech,
                                 const HTreeSpec& spec,
                                 const solver::SolveOptions& options);

/// The cascaded estimate for the same tree: per-segment loop inductances
/// from the provider-style extraction, combined series/parallel.
double cascaded_tree_loop_inductance(const geom::Technology& tech,
                                     const HTreeSpec& spec,
                                     const solver::SolveOptions& options);

}  // namespace rlcx::clocktree
