#include "clocktree/tree_netlist.h"

#include <stdexcept>
#include <utility>

#include "core/batch_extractor.h"

namespace rlcx::clocktree {

namespace {

struct Builder {
  const geom::Technology& tech;
  const HTreeSpec& spec;
  const core::InductanceLibrary& inductance;
  const core::LadderOptions& ladder;
  TreeNetlist& out;

  // Per-level extracted RLC, shared across all branches of that level.
  std::vector<core::SegmentRlc> level_rlc;
  std::vector<geom::Block> level_blocks;

  void extract_levels() {
    TreeSegments segs = extract_tree_segments(tech, spec, inductance);
    level_blocks = std::move(segs.blocks);
    level_rlc = std::move(segs.rlc);
  }

  void grow(ckt::NodeId from, std::size_t level) {
    // A layer change from the parent costs a via (stacked array R).
    if (level > 0 &&
        spec.level_layer(level) != spec.level_layer(level - 1) &&
        spec.via.resistance > 0.0) {
      const ckt::NodeId landed = out.netlist.add_node();
      out.netlist.add_resistor(from, landed, spec.via.resistance);
      from = landed;
    }
    const std::vector<ckt::NodeId> outs = core::stamp_segment(
        out.netlist, level_blocks[level], level_rlc[level], {from}, ladder);
    const ckt::NodeId tip = outs[0];
    if (level + 1 < spec.levels.size()) {
      grow(tip, level + 1);
      grow(tip, level + 1);
    } else {
      out.sinks.push_back(tip);
    }
  }
};

}  // namespace

TreeSegments extract_tree_segments(const geom::Technology& tech,
                                   const HTreeSpec& spec,
                                   const core::InductanceLibrary& inductance,
                                   const core::ExtractOptions& options,
                                   rt::Pool* pool) {
  TreeSegments segs;
  segs.blocks.reserve(spec.levels.size());
  for (std::size_t lv = 0; lv < spec.levels.size(); ++lv)
    segs.blocks.push_back(level_block(tech, spec, lv));
  segs.rlc =
      core::extract_segments_batch(segs.blocks, inductance, options, pool);
  return segs;
}

TreeNetlist build_tree_netlist(const geom::Technology& tech,
                               const HTreeSpec& spec,
                               const core::InductanceLibrary& inductance,
                               const core::LadderOptions& ladder) {
  if (spec.levels.empty())
    throw std::invalid_argument("build_tree_netlist: no levels");

  TreeNetlist result;
  ckt::Netlist& nl = result.netlist;

  const ckt::NodeId vsrc = nl.add_node("clk_in");
  result.driver_out = nl.add_node("buf_out");
  nl.add_vsource(vsrc, ckt::kGround,
                 ckt::SourceWaveform::ramp(spec.driver.vdd,
                                           spec.driver.t_rise));
  nl.add_resistor(vsrc, result.driver_out, spec.driver.r_source);

  Builder b{tech, spec, inductance, ladder, result, {}, {}};
  b.extract_levels();
  b.grow(result.driver_out, 0);

  // Sink loads, with the linear mismatch gradient that creates skew.
  const std::size_t n = result.sinks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double grade =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    const double c = spec.sink_cap * (1.0 + spec.sink_cap_mismatch * grade);
    result.netlist.add_capacitor(result.sinks[i], ckt::kGround, c);
  }
  return result;
}

}  // namespace rlcx::clocktree
