#include "clocktree/layout.h"

#include <cmath>
#include <stdexcept>

#include "core/cascade.h"
#include "geom/builders.h"
#include "peec/mesh.h"
#include "solver/block_solver.h"
#include "solver/network.h"

namespace rlcx::clocktree {

namespace {

struct Cursor {
  double x = 0.0;
  double y = 0.0;
};

void place(const HTreeSpec& spec, std::size_t level, Cursor at, double dir,
           int parent, std::vector<PlacedSegment>& out) {
  if (level >= spec.levels.size()) return;
  const double len = spec.levels[level].length;
  PlacedSegment seg;
  seg.level = level;
  seg.parent = parent;
  // Levels alternate: even levels route along y, odd along x.
  const bool along_y = (level % 2 == 0);
  seg.axis = along_y ? peec::Axis::kY : peec::Axis::kX;
  if (along_y) {
    seg.t_center = at.x;
    seg.a_start = at.y;
    seg.a_end = at.y + dir * len;
    at.y = seg.a_end;
  } else {
    seg.t_center = at.y;
    seg.a_start = at.x;
    seg.a_end = at.x + dir * len;
    at.x = seg.a_end;
  }
  out.push_back(seg);
  const int me = static_cast<int>(out.size()) - 1;
  // Children leave the tip in both perpendicular directions.
  place(spec, level + 1, at, +1.0, me, out);
  place(spec, level + 1, at, -1.0, me, out);
}

}  // namespace

std::vector<PlacedSegment> htree_layout(const HTreeSpec& spec) {
  if (spec.levels.empty())
    throw std::invalid_argument("htree_layout: no levels");
  std::vector<PlacedSegment> out;
  place(spec, 0, {0.0, 0.0}, +1.0, -1, out);
  return out;
}

double total_wirelength(const std::vector<PlacedSegment>& layout) {
  double total = 0.0;
  for (const PlacedSegment& s : layout) total += std::abs(s.a_end - s.a_start);
  return total;
}

std::pair<double, double> bounding_box(
    const std::vector<PlacedSegment>& layout) {
  double x = 0.0, y = 0.0;
  for (const PlacedSegment& s : layout) {
    const double lo = std::min(s.a_start, s.a_end);
    const double hi = std::max(s.a_start, s.a_end);
    if (s.axis == peec::Axis::kY) {
      y = std::max({y, std::abs(lo), std::abs(hi)});
      x = std::max(x, std::abs(s.t_center));
    } else {
      x = std::max({x, std::abs(lo), std::abs(hi)});
      y = std::max(y, std::abs(s.t_center));
    }
  }
  return {x, y};
}

double full_tree_loop_inductance(const geom::Technology& tech,
                                 const HTreeSpec& spec,
                                 const solver::SolveOptions& options) {
  const std::vector<PlacedSegment> layout = htree_layout(spec);

  solver::Network net;
  // Node pair (signal, ground) per segment tip; root gets its own pair.
  const int root_s = net.add_node();
  const int root_g = net.add_node();
  std::vector<std::pair<int, int>> tip(layout.size());

  peec::MeshOptions mesh = options.mesh;
  if (options.auto_mesh) {
    mesh.nw = 2;
    mesh.nt = 2;
  }

  for (std::size_t i = 0; i < layout.size(); ++i) {
    const PlacedSegment& seg = layout[i];
    const LevelSpec& lv = spec.levels[seg.level];
    const geom::Layer& layer = tech.layer(spec.level_layer(seg.level));
    const double pitch =
        0.5 * lv.signal_width + lv.spacing + 0.5 * lv.ground_width;

    const int from_s = seg.parent < 0
                           ? root_s
                           : tip[static_cast<std::size_t>(seg.parent)].first;
    const int from_g = seg.parent < 0
                           ? root_g
                           : tip[static_cast<std::size_t>(seg.parent)].second;
    const bool leaf = seg.level + 1 == spec.levels.size();
    int to_s, to_g;
    if (leaf) {
      to_s = net.add_node();  // shared: far end shorted signal-to-ground
      to_g = to_s;
    } else {
      to_s = net.add_node();
      to_g = net.add_node();
    }
    tip[i] = {to_s, to_g};

    const double a_lo = std::min(seg.a_start, seg.a_end);
    const double len = std::abs(seg.a_end - seg.a_start);
    const bool from_is_min = seg.a_end > seg.a_start;
    auto bar = [&](double t_off, double width) {
      peec::Bar b;
      b.axis = seg.axis;
      b.a_min = a_lo;
      b.length = len;
      b.t_min = seg.t_center + t_off - 0.5 * width;
      b.t_width = width;
      b.z_min = layer.z_bottom;
      b.z_thick = layer.thickness;
      return b;
    };
    net.add_segment(from_s, to_s, bar(0.0, lv.signal_width), layer.rho,
                    mesh, from_is_min);
    net.add_segment(from_g, to_g, bar(-pitch, lv.ground_width), layer.rho,
                    mesh, from_is_min);
    net.add_segment(from_g, to_g, bar(pitch, lv.ground_width), layer.rho,
                    mesh, from_is_min);
  }

  return net.loop_impedance(root_s, root_g, options.frequency).inductance;
}

namespace {

core::CascadeNode cascade_node_for(const geom::Technology& tech,
                                   const HTreeSpec& spec, std::size_t level,
                                   const solver::SolveOptions& options) {
  const geom::Block blk = level_block(tech, spec, level);
  core::CascadeNode node;
  node.loop_l = solver::extract_loop(blk, options).inductance(0, 0);
  if (level + 1 < spec.levels.size()) {
    node.children.push_back(
        cascade_node_for(tech, spec, level + 1, options));
    node.children.push_back(node.children.back());
  }
  return node;
}

}  // namespace

double cascaded_tree_loop_inductance(const geom::Technology& tech,
                                     const HTreeSpec& spec,
                                     const solver::SolveOptions& options) {
  return core::cascade_tree(cascade_node_for(tech, spec, 0, options));
}

}  // namespace rlcx::clocktree
