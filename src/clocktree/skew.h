// Clock skew analysis: simulate the tree and measure per-sink 50% delays,
// with and without inductance (the paper's Section V experiment: ignoring L
// changes the skew picture by more than 10% and misses ringing entirely).
#pragma once

#include <vector>

#include "ckt/transient.h"
#include "clocktree/tree_netlist.h"

namespace rlcx::clocktree {

struct SkewResult {
  std::vector<double> sink_delays;  ///< buffer output -> sink, 50% [s]
  /// Absolute 50% arrival time per sink [s] — the clock latency metric;
  /// unlike the buffer-relative delay it stays meaningful when the buffer
  /// output itself rings around the threshold.
  std::vector<double> sink_arrivals;
  double skew = 0.0;                ///< max - min sink delay [s]
  double min_delay = 0.0;
  double max_delay = 0.0;
  double max_arrival = 0.0;         ///< worst-case clock latency [s]
  double max_overshoot = 0.0;       ///< worst overshoot across sinks [V]
  double max_undershoot = 0.0;      ///< worst undershoot across sinks [V]
};

struct AnalysisOptions {
  core::LadderOptions ladder;
  double t_stop = 0.0;  ///< 0 -> auto (a few flight+RC times)
  double dt = 0.0;      ///< 0 -> auto (rise time / 50)
};

SkewResult analyze_skew(const geom::Technology& tech, const HTreeSpec& spec,
                        const core::InductanceLibrary& inductance,
                        const AnalysisOptions& options);

/// Convenience: the same tree analyzed with the full RLC netlist and with
/// the RC-only netlist, for side-by-side comparison.
struct RcVsRlc {
  SkewResult rlc;
  SkewResult rc;
};

RcVsRlc compare_rc_rlc(const geom::Technology& tech, const HTreeSpec& spec,
                       const core::InductanceLibrary& inductance,
                       AnalysisOptions options);

}  // namespace rlcx::clocktree
