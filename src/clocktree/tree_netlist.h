// Whole-tree RLC netlist formulation via cascaded segments (Section V).
//
// Every H-tree segment is extracted as its own block (inductance from the
// per-segment tables, mutual couplings only within a segment — the
// experimentally-validated linear cascading of Section IV) and stamped as a
// pi-ladder; segments chain at junction nodes; the driver is a ramp source
// behind its output resistance; each leaf carries a sink capacitance.
#pragma once

#include <vector>

#include "ckt/netlist.h"
#include "clocktree/htree.h"
#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"

namespace rlcx::rt {
class Pool;
}

namespace rlcx::clocktree {

struct TreeNetlist {
  ckt::Netlist netlist;
  ckt::NodeId driver_out = 0;         ///< buffer output (after r_source)
  std::vector<ckt::NodeId> sinks;     ///< leaf nodes, left to right
};

/// Per-level geometry and extracted RLC for one tree (index = level; all
/// branches of a level share the same segment, Section V's symmetry).
struct TreeSegments {
  std::vector<geom::Block> blocks;
  std::vector<core::SegmentRlc> rlc;
};

/// Extracts every level's segment in one parallel sweep over the rt pool
/// (levels are independent blocks; results are bit-identical to extracting
/// each level serially).  The library must hold a provider for every
/// (layer, plane-config) the levels use — checked before any work runs.
TreeSegments extract_tree_segments(const geom::Technology& tech,
                                   const HTreeSpec& spec,
                                   const core::InductanceLibrary& inductance,
                                   const core::ExtractOptions& options = {},
                                   rt::Pool* pool = nullptr);

/// Build the full netlist.  The library must hold a provider for every
/// (layer, plane-config) the tree's levels use.
TreeNetlist build_tree_netlist(const geom::Technology& tech,
                               const HTreeSpec& spec,
                               const core::InductanceLibrary& inductance,
                               const core::LadderOptions& ladder);

}  // namespace rlcx::clocktree
