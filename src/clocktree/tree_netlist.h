// Whole-tree RLC netlist formulation via cascaded segments (Section V).
//
// Every H-tree segment is extracted as its own block (inductance from the
// per-segment tables, mutual couplings only within a segment — the
// experimentally-validated linear cascading of Section IV) and stamped as a
// pi-ladder; segments chain at junction nodes; the driver is a ramp source
// behind its output resistance; each leaf carries a sink capacitance.
#pragma once

#include <vector>

#include "ckt/netlist.h"
#include "clocktree/htree.h"
#include "core/inductance_model.h"
#include "core/netlist_builder.h"

namespace rlcx::clocktree {

struct TreeNetlist {
  ckt::Netlist netlist;
  ckt::NodeId driver_out = 0;         ///< buffer output (after r_source)
  std::vector<ckt::NodeId> sinks;     ///< leaf nodes, left to right
};

/// Build the full netlist.  The library must hold a provider for every
/// (layer, plane-config) the tree's levels use.
TreeNetlist build_tree_netlist(const geom::Technology& tech,
                               const HTreeSpec& spec,
                               const core::InductanceLibrary& inductance,
                               const core::LadderOptions& ladder);

}  // namespace rlcx::clocktree
