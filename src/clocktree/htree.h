// H-tree clock distribution description (paper Figure 7).
//
// The tree is a binary H-tree: a driver at the root, a shielded segment per
// level, a 2-way split at each junction, and a buffer input capacitance at
// every leaf.  Each level chooses its own wire geometry and shielding
// configuration (coplanar waveguide, Figure 8, or microstrip over a local
// ground plane, Figure 9).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/block.h"

namespace rlcx::clocktree {

struct LevelSpec {
  double length = 0.0;        ///< segment length at this level [m]
  double signal_width = 0.0;  ///< [m]
  double ground_width = 0.0;  ///< shield width [m]
  double spacing = 0.0;       ///< signal-to-shield spacing [m]
  geom::PlaneConfig planes = geom::PlaneConfig::kNone;
  /// Routing layer of this level (0 = the tree's default layer).  Real
  /// H-trees alternate layers as they alternate direction; a layer change
  /// between parent and child inserts a via.
  int layer = 0;
};

/// Via between routing layers (stacked via array for wide clock wires).
struct ViaSpec {
  double resistance = 0.5;  ///< effective R of the via array [ohm]
};

struct DriverSpec {
  double vdd = 1.8;          ///< swing [V]
  double r_source = 40.0;    ///< buffer output resistance [ohm] (Figure 1)
  double t_rise = 100e-12;   ///< input ramp rise time [s]
};

struct HTreeSpec {
  int layer = 6;                    ///< default clock routing layer
  std::vector<LevelSpec> levels;    ///< root segment first
  DriverSpec driver;
  ViaSpec via;                      ///< used where levels change layers
  double sink_cap = 50e-15;         ///< leaf buffer input capacitance [F]
  /// Fractional extra load on the last sink, graded linearly across sinks —
  /// the load imbalance that turns delay error into visible skew.
  double sink_cap_mismatch = 0.0;

  std::size_t sink_count() const;
  /// Wire length from root to any leaf (H-trees are path-balanced).
  double root_to_leaf_length() const;
  /// Effective routing layer of a level (resolves the 0 default).
  int level_layer(std::size_t level) const;
};

/// The paper's two reference configurations with sensible defaults:
/// a 3-level coplanar-waveguide tree and a 3-level microstrip tree.
HTreeSpec example_cpw_tree();
HTreeSpec example_microstrip_tree();

/// A realistic variant routing alternate levels on layers 6 and 5 (matching
/// the direction alternation), with vias at every layer change.
HTreeSpec example_two_layer_tree();

/// The block describing one segment at a level.
geom::Block level_block(const geom::Technology& tech, const HTreeSpec& spec,
                        std::size_t level);

}  // namespace rlcx::clocktree
