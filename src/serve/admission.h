// Admission control for the daemon's request path.
//
// The pool can absorb any number of queued solves, but unbounded queueing
// turns overload into unbounded latency for everyone.  The daemon instead
// bounds both the number of requests *executing* (max_active — each one
// fans its solves onto the shared rt pool) and the number *waiting for a
// slot* (max_queued).  A request arriving beyond both bounds is rejected
// immediately with the typed `overloaded` fault (CLI exit code 6), which
// the protocol reports as a status-6 error frame: the client learns in
// microseconds that it should back off, instead of timing out minutes
// later.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "run/control.h"

namespace rlcx::serve {

class AdmissionQueue {
 public:
  /// Throws a `usage` fault unless max_active >= 1 and max_queued >= 0.
  AdmissionQueue(int max_active, int max_queued);

  enum class Admission {
    kAdmitted,    ///< a slot is held; the caller must leave() when done
    kOverloaded,  ///< both bounds full — reject with exit code 6
    kCancelled,   ///< shutdown requested while waiting for a slot
  };

  /// Claims an execution slot, waiting in the bounded queue when all
  /// slots are busy.  Returns kOverloaded without blocking when the queue
  /// is full, kCancelled when `shutdown` is requested while waiting.
  Admission enter(const run::CancelToken& shutdown);

  /// Releases the slot claimed by a successful enter().
  void leave() noexcept;

  struct Stats {
    int active = 0;
    int queued = 0;
    std::size_t admitted = 0;
    std::size_t rejected = 0;
  };
  Stats stats() const;

  int max_active() const noexcept { return max_active_; }
  int max_queued() const noexcept { return max_queued_; }

 private:
  const int max_active_;
  const int max_queued_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  int active_ = 0;
  int queued_ = 0;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace rlcx::serve
