// Admission control for the daemon's request path.
//
// The pool can absorb any number of queued solves, but unbounded queueing
// turns overload into unbounded latency for everyone.  The daemon instead
// bounds both the number of requests *executing* (max_active — each one
// fans its solves onto the shared rt pool) and the number *waiting for a
// slot* (max_queued).  A request arriving beyond both bounds is rejected
// immediately with the typed `overloaded` fault (CLI exit code 6), which
// the protocol reports as a status-6 error frame: the client learns in
// microseconds that it should back off, instead of timing out minutes
// later.
//
// Admission is also *cost-based*: the caller passes the request's
// estimated resident bytes (cli::estimate_request_bytes), and a request
// that could not fit the process memory budget even running alone is
// refused up front with the `resource-exhausted` fault (exit code 7)
// instead of being admitted only to fail mid-solve.  Unlike overload,
// refusal is permanent for that request: retrying the same request
// against the same budget fails the same way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "run/control.h"

namespace rlcx::serve {

class AdmissionQueue {
 public:
  /// Throws a `usage` fault unless max_active >= 1 and max_queued >= 0.
  AdmissionQueue(int max_active, int max_queued);

  enum class Admission {
    kAdmitted,    ///< a slot is held; the caller must leave() when done
    kOverloaded,  ///< both bounds full — reject with exit code 6
    kCancelled,   ///< shutdown requested while waiting for a slot
    kRefused,     ///< cost exceeds the memory budget — exit code 7,
                  ///< not retryable against the same budget
  };

  /// Claims an execution slot, waiting in the bounded queue when all
  /// slots are busy.  Returns kOverloaded without blocking when the queue
  /// is full, kCancelled when `shutdown` is requested while waiting.
  /// A non-zero `cost_bytes` (the request's estimated resident footprint)
  /// is checked against the process memory budget first: an estimate the
  /// budget can never satisfy returns kRefused without claiming anything
  /// (res::admission_exhausted — also the `alloc_fail` injection site).
  Admission enter(const run::CancelToken& shutdown,
                  std::size_t cost_bytes = 0);

  /// Releases the slot claimed by a successful enter().
  void leave() noexcept;

  struct Stats {
    int active = 0;
    int queued = 0;
    std::size_t admitted = 0;
    std::size_t rejected = 0;  ///< overloaded (queue full, status 6)
    std::size_t refused = 0;   ///< over-budget cost (status 7)
  };
  Stats stats() const;

  int max_active() const noexcept { return max_active_; }
  int max_queued() const noexcept { return max_queued_; }

 private:
  const int max_active_;
  const int max_queued_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  int active_ = 0;
  int queued_ = 0;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t refused_ = 0;
};

}  // namespace rlcx::serve
