// rlcx::serve — the daemon's wire protocol.
//
// This header implements the framing that docs/serve-protocol.md
// specifies; the document is normative and the constants below are quoted
// there byte for byte (test_serve cross-checks them against the doc
// text).  The protocol is a length-prefixed frame stream over a byte
// transport — a Unix domain socket in daemon mode, stdin/stdout in
// --stdio mode, an in-memory buffer in tests:
//
//   frame  = header payload
//   header = magic0 magic1 version kind length
//            byte 0: 0x52 ('R')
//            byte 1: 0x58 ('X')
//            byte 2: 0x01 (protocol version)
//            byte 3: frame kind (0x01 request, 0x02 response, 0x03 error)
//            bytes 4..7: u32 little-endian payload length
//   payload length <= 1048576 bytes (1 MiB)
//
// A request payload is the command's argument vector, tokens separated by
// single LF bytes (no trailing LF) — exactly what cli::run() takes, so a
// request is a remote CLI invocation.  Response and error payloads share
// one schema:
//
//   status <code> <label> LF
//   out <n> LF
//   err <m> LF
//   LF
//   <n bytes of stdout> <m bytes of stderr>
//
// where <code> is the CLI exit code the same invocation would have
// returned (docs/robustness.md: 0..6) and <label> its stable name
// (status_label()).  kResponse frames carry the result of an executed
// command; kError frames report a request that never executed (malformed
// payload, disallowed command, admission rejection).  Framing violations
// that lose stream sync (bad magic, unknown version, oversize length,
// truncation) throw a typed diag::IoError and the connection must close;
// everything after a well-formed header is recoverable and the
// connection survives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "diag/error.h"

namespace rlcx::serve {

/// Thrown by a ByteStream read when the peer has been silent past the
/// configured idle deadline (set_read_timeout_ms) — the typed face of a
/// slow-loris client.  An `io` fault like any transport failure, but
/// distinguishable so the server can count idle disconnects separately
/// from resets.
class IdleTimeout : public diag::IoError {
 public:
  IdleTimeout(std::string stage, std::string message)
      : diag::IoError(std::move(stage), std::move(message)) {}
};

inline constexpr unsigned char kMagic0 = 0x52;  // 'R'
inline constexpr unsigned char kMagic1 = 0x58;  // 'X'
inline constexpr unsigned char kProtocolVersion = 0x01;
inline constexpr std::size_t kHeaderBytes = 8;
inline constexpr std::uint32_t kMaxPayloadBytes = 1048576;

enum class FrameKind : unsigned char {
  kRequest = 0x01,
  kResponse = 0x02,
  kError = 0x03,
};

struct Frame {
  FrameKind kind = FrameKind::kRequest;
  std::string payload;
};

/// Minimal byte transport the framing runs over.  Implementations must be
/// usable from one thread at a time (the daemon dedicates a thread per
/// connection).
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads up to `n` bytes into `buf`; returns the count read, 0 on end
  /// of stream.  Throws diag::IoError on transport failure.
  virtual std::size_t read_some(char* buf, std::size_t n) = 0;

  /// Writes all `n` bytes or throws diag::IoError.
  virtual void write_all(const char* buf, std::size_t n) = 0;

  enum class PollResult { kReady, kTimeout, kClosed };

  /// Waits up to `timeout_ms` for read_some() to have bytes (or EOF)
  /// available, so a server loop can interleave shutdown checks with
  /// blocking reads.  The in-memory default is always-ready.
  virtual PollResult poll_readable(int timeout_ms) {
    (void)timeout_ms;
    return PollResult::kReady;
  }

  /// Arms an idle deadline on reads: a read_some() that sees no bytes for
  /// `ms` milliseconds throws IdleTimeout instead of blocking forever —
  /// how the server bounds a client that sends a header and then dribbles
  /// (or abandons) the payload.  0 disarms.  The in-memory default
  /// ignores it (memory streams cannot stall).
  virtual void set_read_timeout_ms(int ms) { (void)ms; }
};

/// ByteStream over a pair of file descriptors (a connected socket uses
/// the same fd for both; --stdio mode uses 0/1).  Does not own the fds.
///
/// Writes are SIGPIPE-proof: socket fds are written with send(2) +
/// MSG_NOSIGNAL, so a peer that closed mid-reply surfaces as a typed
/// diag::IoError (EPIPE) on the connection thread instead of a
/// process-killing signal.  Non-socket fds (--stdio, pipes in tests) fall
/// back to write(2) transparently.
class FdStream : public ByteStream {
 public:
  FdStream(int fd_in, int fd_out) : fd_in_(fd_in), fd_out_(fd_out) {}

  std::size_t read_some(char* buf, std::size_t n) override;
  void write_all(const char* buf, std::size_t n) override;
  PollResult poll_readable(int timeout_ms) override;
  void set_read_timeout_ms(int ms) override { read_timeout_ms_ = ms; }

 private:
  int fd_in_;
  int fd_out_;
  int read_timeout_ms_ = 0;
  bool out_is_socket_ = true;  ///< cleared on the first ENOTSOCK
};

/// In-memory ByteStream for protocol tests: reads consume `input`,
/// writes append to `output`.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input = "")
      : input_(std::move(input)) {}

  std::size_t read_some(char* buf, std::size_t n) override;
  void write_all(const char* buf, std::size_t n) override;

  const std::string& output() const { return output_; }

 private:
  std::string input_;
  std::size_t pos_ = 0;
  std::string output_;
};

/// The 8-byte header for a frame of `payload_bytes` (which must be
/// <= kMaxPayloadBytes; throws diag::UsageError otherwise).
std::string encode_header(FrameKind kind, std::uint32_t payload_bytes);

/// Header + payload as one contiguous buffer.
std::string encode_frame(FrameKind kind, std::string_view payload);

/// Reads one frame.  Returns false on a clean end of stream (no header
/// byte read); throws diag::IoError on a truncated frame, bad magic,
/// unsupported version, unknown kind or oversize length — after which the
/// stream has lost sync and the connection must close.
bool read_frame(ByteStream& stream, Frame* out);

void write_frame(ByteStream& stream, FrameKind kind,
                 std::string_view payload);

/// One response (or error) payload, parsed.
struct Response {
  int status = 0;     ///< CLI exit code, 0..7 (docs/robustness.md)
  std::string label;  ///< stable name for status (status_label())
  std::string out;    ///< the command's stdout bytes
  std::string err;    ///< the command's stderr bytes
};

/// The stable label for a CLI exit code: 0 "ok", 1 "internal", 2 "usage",
/// 3 "invalid-input", 4 "numeric", 5 "cancelled", 6 "overloaded",
/// 7 "resource-exhausted"; anything else "unknown".
const char* status_label(int exit_code);

std::string encode_response(const Response& response);

/// Parses a response/error payload; throws diag::IoError when it does not
/// match the documented schema (the status code is authoritative; the
/// label is carried verbatim).
Response parse_response(std::string_view payload);

/// Request payload <-> argument vector (LF-separated, no trailing LF).
/// An empty vector encodes to an empty payload and vice versa.
std::string join_request(const std::vector<std::string>& argv);
std::vector<std::string> split_request(std::string_view payload);

}  // namespace rlcx::serve
