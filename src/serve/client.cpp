#include "serve/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "diag/error.h"

namespace rlcx::serve {

namespace {

/// connect(2) bounded by `timeout_ms`: non-blocking connect, poll for
/// writability, then read the pending error with SO_ERROR.  Returns 0 or
/// the errno the connect resolved to.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                         int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return errno;
  int result = 0;
  if (::connect(fd, addr, len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      result = errno;
    } else {
      pollfd p{};
      p.fd = fd;
      p.events = POLLOUT;
      const int r = ::poll(&p, 1, timeout_ms);
      if (r == 0) {
        result = ETIMEDOUT;
      } else if (r < 0) {
        result = errno;
      } else {
        int soerr = 0;
        socklen_t slen = sizeof soerr;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) < 0)
          result = errno;
        else
          result = soerr;
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the frame I/O
  return result;
}

}  // namespace

Client::Client(const std::string& socket_path, const ClientOptions& options)
    : stream_(-1, -1) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw diag::UsageError(
        "serve", "--socket path must be 1.." +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes, got " + std::to_string(socket_path.size()));
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw diag::IoError("serve", std::string("socket: ") +
                                     std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int cerr =
      options.connect_timeout_ms > 0
          ? connect_with_timeout(fd_,
                                 reinterpret_cast<const sockaddr*>(&addr),
                                 sizeof(addr), options.connect_timeout_ms)
          : (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) < 0
                 ? errno
                 : 0);
  if (cerr != 0) {
    ::close(fd_);
    fd_ = -1;
    throw diag::IoError("serve",
                        "connect " + socket_path + ": " +
                            std::strerror(cerr) +
                            " (is the daemon running? start it with "
                            "`rlcx serve --table-cache DIR --socket " +
                            socket_path + "`)");
  }
  if (options.io_timeout_ms > 0) {
    // Bound each socket read and write so a wedged daemon surfaces as a
    // typed IoError (EAGAIN from the timed-out syscall) the retry loop in
    // query_main can act on, instead of hanging the client forever.
    timeval tv{};
    tv.tv_sec = options.io_timeout_ms / 1000;
    tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  stream_ = FdStream(fd_, fd_);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::request(const std::vector<std::string>& argv) {
  write_frame(stream_, FrameKind::kRequest, join_request(argv));
  Frame frame;
  if (!read_frame(stream_, &frame))
    throw diag::IoError("serve",
                        "connection closed before a reply arrived");
  if (frame.kind == FrameKind::kRequest)
    throw diag::IoError("serve", "peer sent a request frame as a reply");
  last_kind_ = frame.kind;
  return parse_response(frame.payload);
}

bool retry_safe(const std::string& command) {
  return command == "extract" || command == "delay" || command == "ping" ||
         command == "stats" || command == "health" || command == "help";
}

int query_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err) {
  try {
    // argv is ["query", resilience flags..., "--socket", PATH, CMD,
    // flags...]: everything after the socket is forwarded verbatim as the
    // request.
    const char* const usage =
        "usage: rlcx query [--retries N] [--backoff-ms MS] "
        "[--connect-timeout-s S] [--timeout-s S] --socket PATH CMD "
        "[flags...] (e.g. rlcx query --socket /tmp/rlcx.sock extract "
        "--structure cpw --length-um 6000)";
    if (argv.empty() || argv[0] != "query")
      throw diag::UsageError("serve", usage);
    int retries = 0;
    double backoff_ms = 100.0;
    ClientOptions options;
    std::size_t i = 1;
    const auto flag_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argv.size())
        throw diag::UsageError("serve", std::string(flag) +
                                            " requires a value (" + usage +
                                            ")");
      return argv[++i];
    };
    const auto parse_num = [&](const char* flag,
                               const std::string& text) -> double {
      try {
        std::size_t pos = 0;
        const double v = std::stod(text, &pos);
        if (pos != text.size() || v < 0) throw std::invalid_argument(text);
        return v;
      } catch (const std::exception&) {
        throw diag::UsageError("serve", std::string(flag) +
                                            ": expected a non-negative "
                                            "number, got '" +
                                            text + "'");
      }
    };
    std::string socket_path;
    for (; i < argv.size(); ++i) {
      const std::string& a = argv[i];
      if (a == "--retries")
        retries = static_cast<int>(parse_num("--retries",
                                             flag_value("--retries")));
      else if (a == "--backoff-ms")
        backoff_ms = parse_num("--backoff-ms", flag_value("--backoff-ms"));
      else if (a == "--connect-timeout-s")
        options.connect_timeout_ms = static_cast<int>(
            parse_num("--connect-timeout-s",
                      flag_value("--connect-timeout-s")) *
            1000.0);
      else if (a == "--timeout-s")
        options.io_timeout_ms = static_cast<int>(
            parse_num("--timeout-s", flag_value("--timeout-s")) * 1000.0);
      else if (a == "--socket") {
        socket_path = flag_value("--socket");
        ++i;
        break;
      } else {
        throw diag::UsageError("serve", "unknown flag before --socket: " +
                                            a + " (" + usage + ")");
      }
    }
    if (socket_path.empty() || i >= argv.size())
      throw diag::UsageError("serve", usage);
    const std::vector<std::string> request(argv.begin() +
                                               static_cast<long>(i),
                                           argv.end());
    // Only idempotent commands may retry: replaying a `shutdown` (or any
    // future mutating command) after an ambiguous failure could act
    // twice.  Transport faults on non-retry-safe commands surface
    // immediately.
    const int budget = retry_safe(request[0]) ? retries : 0;
    std::mt19937 rng(static_cast<std::uint32_t>(
        ::getpid() ^
        std::chrono::steady_clock::now().time_since_epoch().count()));
    for (int attempt = 0;; ++attempt) {
      std::string reason;
      try {
        Client client(socket_path, options);
        const Response resp = client.request(request);
        // Status 6 (`overloaded`) is the daemon's explicit "back off and
        // retry" — the one *executed-request* status worth the backoff
        // loop.  Everything else is final — deliberately including
        // status 7 (`resource-exhausted`): the refusal is about the
        // request's size versus the daemon's memory budget, neither of
        // which a retry changes, so retrying would only burn admission
        // bandwidth (docs/serve-protocol.md "retry semantics").
        if (resp.status != 6 || attempt >= budget) {
          out << resp.out;
          err << resp.err;
          return resp.status;
        }
        reason = "daemon overloaded";
      } catch (const diag::IoError& e) {
        if (attempt >= budget) throw;
        reason = e.message();
      }
      // Exponential backoff with +/-50% jitter so a herd of retrying
      // clients does not re-converge on the daemon in lockstep.
      const double base = backoff_ms * static_cast<double>(1 << attempt);
      std::uniform_real_distribution<double> jitter(0.5, 1.5);
      const double sleep_ms = base * jitter(rng);
      err << "query: attempt " << (attempt + 1) << "/" << (budget + 1)
          << " failed (" << reason << "); retrying in "
          << static_cast<int>(sleep_ms) << " ms\n";
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    if (dynamic_cast<const diag::Fault*>(&e) != nullptr)
      return diag::exit_code(
          diag::category_of(e, diag::Category::kUsage));
    if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
      return 2;
    return 1;
  }
}

}  // namespace rlcx::serve
