#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "diag/error.h"

namespace rlcx::serve {

Client::Client(const std::string& socket_path) : stream_(-1, -1) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw diag::UsageError(
        "serve", "--socket path must be 1.." +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes, got " + std::to_string(socket_path.size()));
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw diag::IoError("serve", std::string("socket: ") +
                                     std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    throw diag::IoError("serve",
                        "connect " + socket_path + ": " +
                            std::strerror(e) +
                            " (is the daemon running? start it with "
                            "`rlcx serve --table-cache DIR --socket " +
                            socket_path + "`)");
  }
  stream_ = FdStream(fd_, fd_);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::request(const std::vector<std::string>& argv) {
  write_frame(stream_, FrameKind::kRequest, join_request(argv));
  Frame frame;
  if (!read_frame(stream_, &frame))
    throw diag::IoError("serve",
                        "connection closed before a reply arrived");
  if (frame.kind == FrameKind::kRequest)
    throw diag::IoError("serve", "peer sent a request frame as a reply");
  last_kind_ = frame.kind;
  return parse_response(frame.payload);
}

int query_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err) {
  try {
    // argv is ["query", "--socket", PATH, CMD, flags...]: everything
    // after the socket is forwarded verbatim as the request.
    if (argv.size() < 4 || argv[0] != "query" || argv[1] != "--socket")
      throw diag::UsageError(
          "serve",
          "usage: rlcx query --socket PATH CMD [flags...] (e.g. rlcx "
          "query --socket /tmp/rlcx.sock extract --structure cpw "
          "--length-um 6000)");
    const std::string socket_path = argv[2];
    const std::vector<std::string> request(argv.begin() + 3, argv.end());
    Client client(socket_path);
    const Response resp = client.request(request);
    out << resp.out;
    err << resp.err;
    return resp.status;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    if (dynamic_cast<const diag::Fault*>(&e) != nullptr)
      return diag::exit_code(
          diag::category_of(e, diag::Category::kUsage));
    if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
      return 2;
    return 1;
  }
}

}  // namespace rlcx::serve
