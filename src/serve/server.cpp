#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "cli/cli.h"
#include "diag/error.h"
#include "hmat/stats.h"
#include "peec/kernel_batch.h"
#include "res/budget.h"
#include "run/fault_injection.h"
#include "run/signal.h"

namespace rlcx::serve {

namespace {

/// Commands a daemon executes through cli::run().  Everything that
/// manages a process or a cache directory (serve, query, batch, tables,
/// cache) stays off the wire: the daemon owns its cache, and nesting
/// servers or hour-long campaigns inside a request slot would wedge the
/// admission queue.
bool wire_allowed(const std::string& command) {
  return command == "extract" || command == "delay" || command == "help";
}

/// Blocks until `fd` is readable or shutdown is requested (polling the
/// token, which has no wakeup primitive).  False on shutdown or hangup.
bool wait_readable(int fd, const run::CancelToken& shutdown) {
  while (!shutdown.requested()) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw diag::IoError("serve", std::string("poll: ") +
                                       std::strerror(errno));
    }
    if (r > 0) {
      if ((p.revents & POLLIN) != 0) return true;
      if ((p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) return false;
    }
  }
  return false;
}

/// An execution slot as RAII, so a slot can never leak past a response.
class SlotGuard {
 public:
  explicit SlotGuard(AdmissionQueue& q) : q_(q) {}
  ~SlotGuard() { q_.leave(); }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  AdmissionQueue& q_;
};

/// Journal ids must be whitespace-free single tokens; requests arrive
/// from the network.
std::string sanitize_command(const std::string& command) {
  std::string s;
  for (const char c : command) {
    if (s.size() >= 24) break;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-';
    s += ok ? c : '_';
  }
  return s.empty() ? "none" : s;
}

}  // namespace

Server::Server(ServeConfig config, std::ostream& diag)
    : config_(std::move(config)),
      diag_(diag),
      warm_(config_.cache_dir, config_.max_tables, config_.max_table_bytes,
            config_.strict ? core::CacheRecoveryPolicy::kStrict
                           : core::CacheRecoveryPolicy::kRecover),
      admission_(config_.max_active, config_.queue_depth) {
  if (config_.log_path.empty())
    config_.log_path = config_.cache_dir + "/serve.journal";
  journal_ = std::make_unique<run::BatchJournal>(config_.log_path);
}

Server::~Server() {
  shutdown_.request();
  std::lock_guard<std::mutex> lock(threads_m_);
  for (std::thread& t : connections_)
    if (t.joinable()) t.join();
}

/// Joins connection threads that have announced completion, so a
/// long-lived daemon's thread vector (and fd pressure from lingering
/// thread handles) stays bounded by the number of *live* connections
/// rather than growing with every connection ever accepted.  Caller holds
/// threads_m_; the joins are near-instant (the thread already pushed its
/// id as its last act before returning).
void Server::reap_finished_locked() {
  if (finished_.empty()) return;
  for (const std::thread::id id : finished_) {
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      if (connections_[i].get_id() != id) continue;
      connections_[i].join();
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
      break;
    }
  }
  finished_.clear();
}

int Server::run_socket() {
  const std::string& path = config_.socket_path;
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw diag::UsageError(
        "serve", "--socket path must be 1.." +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes, got " + std::to_string(path.size()));
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw diag::IoError("serve", std::string("socket: ") +
                                     std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale file from a dead daemon
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int e = errno;
    ::close(listen_fd);
    throw diag::IoError("serve", "bind " + path + ": " +
                                     std::strerror(e));
  }
  if (::listen(listen_fd, 128) < 0) {
    const int e = errno;
    ::close(listen_fd);
    ::unlink(path.c_str());
    throw diag::IoError("serve", "listen " + path + ": " +
                                     std::strerror(e));
  }
  diag_ << "rlcx serve: listening on " << path << " (max-active "
        << config_.max_active << ", queue-depth " << config_.queue_depth
        << ", max-tables " << config_.max_tables << ", log "
        << config_.log_path << ")\n"
        << std::flush;

  int backoff_ms = 10;
  while (wait_readable(listen_fd, shutdown_)) {
    int fd;
    // Injection site `accept_emfile`: a scheduled EMFILE from accept(2),
    // the deterministic stand-in for a connection flood exhausting the fd
    // table.
    if (run::fault_injection_enabled() &&
        run::fault_point("accept_emfile")) {
      fd = -1;
      errno = EMFILE;
    } else {
      fd = ::accept(listen_fd, nullptr, nullptr);
    }
    if (fd < 0) {
      const int e = errno;
      if (e == EINTR) continue;
      // Transient resource exhaustion (our fd table, the system's, an
      // aborted handshake, kernel memory pressure) is survivable: back
      // off — connections drain and free fds — and try again.  A flood
      // must degrade into queueing, never into a dead daemon.
      if (e == EMFILE || e == ENFILE || e == ECONNABORTED || e == EAGAIN ||
          e == EWOULDBLOCK || e == ENOMEM || e == ENOBUFS) {
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        for (int slept = 0;
             slept < backoff_ms && !shutdown_.requested(); slept += 10)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        backoff_ms = std::min(backoff_ms * 2, 1000);
        {  // reaping finished threads is what releases their fds
          std::lock_guard<std::mutex> lock(threads_m_);
          reap_finished_locked();
        }
        continue;
      }
      break;  // listener genuinely broken; drain what we have
    }
    backoff_ms = 10;
    std::lock_guard<std::mutex> lock(threads_m_);
    reap_finished_locked();
    connections_.emplace_back([this, fd] {
      FdStream stream(fd, fd);
      try {
        handle_connection(stream);
      } catch (...) {
        // A connection must never take the daemon down.
      }
      ::close(fd);
      std::lock_guard<std::mutex> lock(threads_m_);
      finished_.push_back(std::this_thread::get_id());
    });
  }

  ::close(listen_fd);
  {
    std::lock_guard<std::mutex> lock(threads_m_);
    for (std::thread& t : connections_)
      if (t.joinable()) t.join();
    connections_.clear();
    finished_.clear();
  }
  ::unlink(path.c_str());
  diag_ << "rlcx serve: drained, "
        << served_.load(std::memory_order_relaxed)
        << " requests served\n";
  return 0;
}

int Server::run_stdio() {
  FdStream stream(STDIN_FILENO, STDOUT_FILENO);
  diag_ << "rlcx serve: speaking the wire protocol on stdio (log "
        << config_.log_path << ")\n"
        << std::flush;
  handle_connection(stream);
  diag_ << "rlcx serve: drained, "
        << served_.load(std::memory_order_relaxed)
        << " requests served\n";
  return 0;
}

void Server::handle_connection(ByteStream& stream) {
  // The idle read deadline (docs/serve-protocol.md "disconnect
  // semantics"): both between frames (accounted in the poll loop below)
  // and inside one (the stream-level timeout catches a client dribbling a
  // payload byte at a time).
  const int idle_budget_ms =
      config_.idle_timeout_s > 0.0
          ? static_cast<int>(config_.idle_timeout_s * 1000.0)
          : 0;
  if (idle_budget_ms > 0) stream.set_read_timeout_ms(idle_budget_ms);
  int idle_ms = 0;
  while (!shutdown_.requested()) {
    // Interleave shutdown checks with blocking reads, so an idle
    // connection cannot hold up the drain.
    const ByteStream::PollResult pr = stream.poll_readable(100);
    if (pr == ByteStream::PollResult::kClosed) return;
    if (pr == ByteStream::PollResult::kTimeout) {
      if (idle_budget_ms > 0 && (idle_ms += 100) >= idle_budget_ms) {
        // Slow loris: drop the connection with a typed goodbye so a
        // well-meaning-but-stalled client learns why, and count it.
        idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.status = 3;
        r.label = status_label(3);
        r.err = "[io] serve: connection idle past " +
                std::to_string(config_.idle_timeout_s) +
                " s, closing (send a request or reconnect)\n";
        try {
          write_frame(stream, FrameKind::kError, encode_response(r));
        } catch (...) {
          // Peer already gone.
        }
        return;
      }
      continue;
    }
    idle_ms = 0;
    Frame frame;
    try {
      if (!read_frame(stream, &frame)) return;  // clean EOF
    } catch (const IdleTimeout&) {
      // Stalled mid-frame: the header arrived, the payload never did.
      idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
      return;
    } catch (const diag::Fault& f) {
      // Framing violation: the byte stream has lost sync, so report and
      // close — docs/serve-protocol.md "fatal framing errors".
      Response r;
      r.status = diag::exit_code(f.category());
      r.label = status_label(r.status);
      r.err = diag::format_error(f.category(), f.stage(), f.message()) +
              "\n";
      try {
        write_frame(stream, FrameKind::kError, encode_response(r));
      } catch (...) {
        // Peer already gone.
      }
      return;
    }
    try {
      if (frame.kind != FrameKind::kRequest) {
        // Header was sound, so the stream is still in sync: reject the
        // frame and keep the connection ("survivable errors").
        Response r;
        r.status = 2;
        r.label = status_label(2);
        r.err = "[usage] serve: expected a request frame (kind 0x01)\n";
        write_frame(stream, FrameKind::kError, encode_response(r));
        continue;
      }
      handle_request(stream, frame.payload);
    } catch (const diag::IoError&) {
      // The peer closed or reset mid-reply (EPIPE under MSG_NOSIGNAL, a
      // reset, a torn write).  Strictly this connection's problem: count
      // it and let the thread end — the request itself already executed
      // and was journaled.
      peer_disconnects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Server::handle_request(ByteStream& stream,
                            const std::string& payload) {
  const std::vector<std::string> tokens = split_request(payload);
  const std::uint64_t seq =
      seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  FrameKind kind = FrameKind::kResponse;
  Response resp = execute(tokens, &kind);
  resp.label = status_label(resp.status);
  if (resp.status == 5) cancelled_.fetch_add(1, std::memory_order_relaxed);
  record_request(seq, tokens, resp.status);
  served_.fetch_add(1, std::memory_order_relaxed);
  const bool drain = !tokens.empty() && tokens[0] == "shutdown";
  write_frame(stream, kind, encode_response(resp));
  if (drain) shutdown_.request();
}

Response Server::execute(const std::vector<std::string>& tokens,
                         FrameKind* kind) {
  Response resp;
  if (tokens.empty()) {
    *kind = FrameKind::kError;
    resp.status = 2;
    resp.err = "[usage] serve: empty request payload\n";
    return resp;
  }
  const std::string& cmd = tokens[0];
  if (cmd == "ping") {
    resp.out = "pong\n";
    return resp;
  }
  if (cmd == "stats") {
    resp.out = stats_text();
    return resp;
  }
  if (cmd == "health") {
    // Liveness probe: answered inline (no admission slot), so a daemon
    // saturated with work still reports itself alive — the stats snapshot
    // tells the prober *how* alive.
    resp.out = health_text();
    return resp;
  }
  if (cmd == "shutdown") {
    resp.out = "draining\n";
    return resp;
  }
  if (!wire_allowed(cmd)) {
    *kind = FrameKind::kError;
    resp.status = 2;
    resp.err = "[usage] serve: command not allowed over the wire: " +
               cmd + " (allowed: ping, stats, health, shutdown, extract, "
                     "delay, help)\n";
    return resp;
  }
  // The memory budget is daemon-wide operator policy; a client must not
  // resize it per request.
  for (const std::string& t : tokens) {
    if (t == "--mem-budget") {
      *kind = FrameKind::kError;
      resp.status = 2;
      resp.err = "[usage] serve: --mem-budget is daemon-wide; set it when "
                 "starting rlcx serve, not per request\n";
      return resp;
    }
  }
  // Cost-based admission: estimate the request's resident footprint and
  // let the queue refuse what the budget can never satisfy (status 7).
  const std::size_t cost = cli::estimate_request_bytes(tokens);
  switch (admission_.enter(shutdown_, cost)) {
    case AdmissionQueue::Admission::kRefused: {
      *kind = FrameKind::kError;
      const diag::ResourceExhaustedError e(
          "serve",
          "request estimate " + std::to_string(cost) +
              " bytes exceeds the memory budget (" +
              std::to_string(res::Budget::global().limit()) +
              " bytes); refusing at admission — shrink the request or "
              "restart the daemon with a larger --mem-budget (retrying "
              "unchanged will not help)");
      resp.status = diag::exit_code(e.category());
      resp.err = std::string(e.what()) + "\n";
      return resp;
    }
    case AdmissionQueue::Admission::kOverloaded: {
      *kind = FrameKind::kError;
      const diag::OverloadedError e(
          "serve", "admission queue full (" +
                       std::to_string(admission_.max_active()) +
                       " active, " +
                       std::to_string(admission_.max_queued()) +
                       " queued); back off and retry");
      resp.status = diag::exit_code(e.category());
      resp.err = std::string(e.what()) + "\n";
      return resp;
    }
    case AdmissionQueue::Admission::kCancelled: {
      *kind = FrameKind::kError;
      resp.status = 5;
      resp.err = "[cancelled] serve: daemon draining, request not "
                 "started\n";
      return resp;
    }
    case AdmissionQueue::Admission::kAdmitted:
      break;
  }
  const SlotGuard slot(admission_);
  // The ambient control every checkpoint under this request observes:
  // the daemon's shutdown token (so draining cancels in-flight work) plus
  // the per-request deadline.  cli::run() chains onto it — a request's
  // own --deadline-s can only tighten the bound.
  run::RunControl rc;
  rc.token = shutdown_;
  if (config_.request_deadline_s > 0.0)
    rc.deadline = run::Deadline::after(config_.request_deadline_s);
  const run::ScopedRunControl control(rc);
  std::ostringstream out, err;
  try {
    resp.status = cli::run(tokens, out, err, &warm_);
  } catch (const std::bad_alloc&) {
    // cli::run() contains bad_alloc itself (exit code 7); this guard
    // covers the residue outside it — stream buffer growth, the response
    // copy.  An allocation failure costs one request, never the daemon.
    res::Budget::global().record_contained_bad_alloc();
    *kind = FrameKind::kError;
    resp.status = 7;
    resp.out.clear();
    resp.err = "error: [resource-exhausted] serve: allocation failed "
               "(std::bad_alloc) while executing the request; the daemon "
               "remains healthy — shrink the request\n";
    return resp;
  }
  resp.out = out.str();
  resp.err = err.str();
  return resp;
}

std::string Server::stats_text() {
  const WarmTableStore::Stats ws = warm_.stats();
  const AdmissionQueue::Stats as = admission_.stats();
  const core::CacheStats cs = warm_.cache().stats();
  std::ostringstream os;
  const res::Stats rs = res::Budget::global().stats();
  os << "rlcx serve stats\n"
     << "requests: " << served_.load(std::memory_order_relaxed)
     << " served, " << as.rejected << " overloaded, " << as.refused
     << " refused over budget, "
     << cancelled_.load(std::memory_order_relaxed) << " cancelled\n"
     << "warm store: " << ws.hits << " hits, " << ws.misses
     << " misses, " << ws.evictions << " evictions, " << ws.resident
     << " resident (max " << warm_.max_tables() << "), "
     << ws.resident_bytes << " resident bytes";
  if (warm_.max_bytes() > 0) os << " (byte cap " << warm_.max_bytes() << ")";
  os << "\n";
  for (const WarmTableStore::EntryInfo& e : warm_.entries())
    os << "warm entry " << e.id << ": " << e.bytes << " bytes\n";
  os << "memory budget: " << rs.limit_bytes << " limit, " << rs.in_use()
     << " in use, " << rs.peak_bytes << " peak, " << rs.degradations
     << " degradations, " << rs.refusals << " refusals, "
     << rs.contained_bad_allocs << " contained bad_allocs\n"
     << "admission: " << as.active << " active, " << as.queued
     << " queued (max-active " << admission_.max_active()
     << ", queue-depth " << admission_.max_queued() << ")\n"
     << "table cache " << warm_.cache().directory() << ": " << cs.hits
     << " hits, " << cs.misses << " misses, " << cs.bytes_read
     << " bytes read, " << cs.bytes_written << " bytes written, "
     << cs.write_retries << " write retries, " << cs.stores_dropped
     << " stores dropped\n"
     << "resilience: "
     << peer_disconnects_.load(std::memory_order_relaxed)
     << " peer disconnects, "
     << idle_disconnects_.load(std::memory_order_relaxed)
     << " idle disconnects, "
     << accept_retries_.load(std::memory_order_relaxed)
     << " accept retries, " << cs.quarantined_at_startup
     << " quarantined at startup, " << cs.tmp_swept
     << " staging files swept, " << cs.fsyncs << " fsyncs\n";
  const hmat::SolveStats hs = hmat::solve_stats_total();
  os << "impedance solver: " << hs.dense_solves << " dense, "
     << hs.hmat_solves << " hierarchical ("
     << hs.gmres_iterations << " GMRES iterations, "
     << hs.gmres_fallbacks << " dense fallbacks, rank max "
     << hs.aca_rank_max << ", "
     << static_cast<int>(100.0 * hs.compression() + 0.5)
     << "% entries stored)\n";
  const peec::BatchStats bs = peec::batch_stats_total();
  os << "batch engine: " << bs.volume_terms + bs.filament_terms
     << " kernel terms (" << bs.volume_terms << " volume, "
     << bs.filament_terms << " filament) in " << bs.batch_runs
     << " batches, "
     << static_cast<std::uint64_t>(bs.terms_per_second() + 0.5)
     << " terms/s, simd " << peec::batch_simd_name() << "\n";
  return os.str();
}

std::string Server::health_text() {
  const AdmissionQueue::Stats as = admission_.stats();
  const hmat::SolveStats hs2 = hmat::solve_stats_total();
  const res::Stats rs = res::Budget::global().stats();
  const WarmTableStore::Stats ws = warm_.stats();
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  std::ostringstream os;
  os << "healthy\n"
     << "uptime-s " << uptime << "\n"
     << "served " << served_.load(std::memory_order_relaxed) << "\n"
     << "active " << as.active << "\n"
     << "queued " << as.queued << "\n"
     << "peer-disconnects "
     << peer_disconnects_.load(std::memory_order_relaxed) << "\n"
     << "idle-disconnects "
     << idle_disconnects_.load(std::memory_order_relaxed) << "\n"
     << "accept-retries "
     << accept_retries_.load(std::memory_order_relaxed) << "\n"
     << "dense-solves " << hs2.dense_solves << "\n"
     << "hmat-solves " << hs2.hmat_solves << "\n"
     << "gmres-fallbacks " << hs2.gmres_fallbacks << "\n"
     << "mem-limit-bytes " << rs.limit_bytes << "\n"
     << "mem-peak-bytes " << rs.peak_bytes << "\n"
     << "mem-degradations " << rs.degradations << "\n"
     << "mem-refusals " << rs.refusals << "\n"
     << "contained-bad-allocs " << rs.contained_bad_allocs << "\n"
     << "warm-bytes " << ws.resident_bytes << "\n";
  return os.str();
}

void Server::record_request(std::uint64_t seq,
                            const std::vector<std::string>& tokens,
                            int status) {
  const std::string command =
      tokens.empty() ? std::string("none") : sanitize_command(tokens[0]);
  try {
    journal_->record("r" + std::to_string(seq) + "-" + command + "-x" +
                     std::to_string(status));
  } catch (...) {
    // Logging must never fail a request (disk full on the log volume).
  }
}

int serve_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err) {
  try {
    const cli::Args args = cli::parse_args(argv);
    ServeConfig cfg;
    cfg.cache_dir = args.get("table-cache", "");
    if (cfg.cache_dir.empty())
      throw diag::UsageError("serve", "serve requires --table-cache DIR");
    cfg.socket_path = args.get("socket", "");
    cfg.stdio = args.has("stdio");
    if (cfg.stdio == !cfg.socket_path.empty())
      throw diag::UsageError(
          "serve", "serve requires exactly one of --socket PATH or "
                   "--stdio");
    cfg.max_tables =
        static_cast<std::size_t>(args.get_num("max-tables", 16));
    const double table_mib = args.get_num("max-table-mib", 0.0);
    if (table_mib < 0.0)
      throw diag::UsageError("serve",
                             "--max-table-mib must be >= 0 MiB");
    cfg.max_table_bytes =
        static_cast<std::size_t>(table_mib * 1024.0 * 1024.0);
    if (args.has("mem-budget")) {
      const double budget_mib = args.get_num("mem-budget", 0.0);
      if (budget_mib < 0.0)
        throw diag::UsageError("serve", "--mem-budget must be >= 0 MiB");
      res::Budget::global().set_limit(
          static_cast<std::uint64_t>(budget_mib * 1024.0 * 1024.0));
    }
    cfg.max_active = static_cast<int>(args.get_num("max-active", 4));
    cfg.queue_depth = static_cast<int>(args.get_num("queue-depth", 64));
    cfg.request_deadline_s = args.get_num("request-deadline-s", 0.0);
    cfg.idle_timeout_s = args.get_num("idle-timeout-s", 0.0);
    cfg.log_path = args.get("log", "");
    cfg.strict = args.has("strict");

    // In stdio mode stdout carries frames, so lifecycle lines go to err.
    Server server(cfg, cfg.stdio ? err : out);
    // A client that closes mid-reply must cost one connection, not the
    // process: EPIPE over SIGPIPE everywhere in the daemon (FdStream's
    // MSG_NOSIGNAL covers sockets; this covers the rest).
    const run::ScopedSigpipeIgnore no_sigpipe;
    const run::ScopedSigintCancel on_sigint(server.shutdown_token());
    const run::ScopedSigtermCancel on_sigterm(server.shutdown_token());
    return cfg.stdio ? server.run_stdio() : server.run_socket();
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    if (dynamic_cast<const diag::Fault*>(&e) != nullptr)
      return diag::exit_code(
          diag::category_of(e, diag::Category::kUsage));
    if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
      return 2;
    return 1;
  }
}

}  // namespace rlcx::serve
