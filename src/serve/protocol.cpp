#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "diag/error.h"
#include "run/fault_injection.h"

namespace rlcx::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw diag::IoError("serve", std::string(what) + ": " +
                                   std::strerror(errno));
}

/// Fills `buf` with exactly `n` bytes; false on clean EOF before the
/// first byte, IoError on EOF mid-read (a truncated frame).
bool read_exact(ByteStream& stream, char* buf, std::size_t n,
                const char* what) {
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = stream.read_some(buf + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw diag::IoError("serve",
                          std::string("truncated ") + what + ": got " +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " bytes before EOF");
    }
    got += r;
  }
  return true;
}

}  // namespace

std::size_t FdStream::read_some(char* buf, std::size_t n) {
  // The idle deadline: wait for bytes (or EOF) before committing to a
  // blocking read, so a peer that stalls mid-frame cannot pin this thread
  // forever — the slow-loris defense (docs/serve-protocol.md).
  if (read_timeout_ms_ > 0) {
    const PollResult pr = poll_readable(read_timeout_ms_);
    if (pr == PollResult::kTimeout)
      throw IdleTimeout("serve",
                        "peer idle past the " +
                            std::to_string(read_timeout_ms_) +
                            " ms read deadline, closing connection");
    // kClosed still reads: read() reports the EOF/reset authoritatively.
  }
  while (true) {
    const ssize_t r = ::read(fd_in_, buf, n);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

void FdStream::write_all(const char* buf, std::size_t n) {
  const bool inject = run::fault_injection_enabled();
  // Injection site `io_short_write`: the wire write stops partway — the
  // peer sees a torn frame, this side a typed `io` fault (or, as a crash
  // action, death with half a frame sent).
  std::size_t limit = n;
  bool torn = false;
  if (inject && n > 1 && run::fault_point("io_short_write")) {
    limit = n / 2;
    torn = true;
  }
  std::size_t done = 0;
  while (done < limit) {
    // send(2) + MSG_NOSIGNAL on sockets: a peer that closed mid-reply
    // yields EPIPE (a typed IoError below) instead of SIGPIPE killing the
    // process.  Non-socket fds (--stdio, test pipes) report ENOTSOCK once
    // and fall back to write(2) for the connection's lifetime.
    ssize_t w;
    if (out_is_socket_) {
      w = ::send(fd_out_, buf + done, limit - done, MSG_NOSIGNAL);
      if (w < 0 && errno == ENOTSOCK) {
        out_is_socket_ = false;
        continue;
      }
    } else {
      w = ::write(fd_out_, buf + done, limit - done);
    }
    if (w >= 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("write");
  }
  if (torn)
    throw diag::IoError("serve",
                        "short write (injected): sent " +
                            std::to_string(limit) + " of " +
                            std::to_string(n) + " bytes");
}

ByteStream::PollResult FdStream::poll_readable(int timeout_ms) {
  pollfd p{};
  p.fd = fd_in_;
  p.events = POLLIN;
  while (true) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (r == 0) return PollResult::kTimeout;
    if ((p.revents & POLLIN) != 0) return PollResult::kReady;
    return PollResult::kClosed;  // POLLHUP / POLLERR / POLLNVAL
  }
}

std::size_t MemoryStream::read_some(char* buf, std::size_t n) {
  const std::size_t avail = input_.size() - pos_;
  const std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, input_.data() + pos_, take);
  pos_ += take;
  return take;
}

void MemoryStream::write_all(const char* buf, std::size_t n) {
  output_.append(buf, n);
}

std::string encode_header(FrameKind kind, std::uint32_t payload_bytes) {
  if (payload_bytes > kMaxPayloadBytes)
    throw diag::UsageError(
        "serve", "frame payload of " + std::to_string(payload_bytes) +
                     " bytes exceeds the protocol maximum of " +
                     std::to_string(kMaxPayloadBytes));
  std::string h(kHeaderBytes, '\0');
  h[0] = static_cast<char>(kMagic0);
  h[1] = static_cast<char>(kMagic1);
  h[2] = static_cast<char>(kProtocolVersion);
  h[3] = static_cast<char>(kind);
  h[4] = static_cast<char>(payload_bytes & 0xff);
  h[5] = static_cast<char>((payload_bytes >> 8) & 0xff);
  h[6] = static_cast<char>((payload_bytes >> 16) & 0xff);
  h[7] = static_cast<char>((payload_bytes >> 24) & 0xff);
  return h;
}

std::string encode_frame(FrameKind kind, std::string_view payload) {
  std::string f =
      encode_header(kind, static_cast<std::uint32_t>(payload.size()));
  f.append(payload.data(), payload.size());
  return f;
}

bool read_frame(ByteStream& stream, Frame* out) {
  char header[kHeaderBytes];
  if (!read_exact(stream, header, kHeaderBytes, "frame header"))
    return false;
  const auto u8 = [&](std::size_t i) {
    return static_cast<unsigned char>(header[i]);
  };
  if (u8(0) != kMagic0 || u8(1) != kMagic1)
    throw diag::IoError("serve",
                        "bad frame magic (expected 0x52 0x58 'RX'): "
                        "stream out of sync, closing connection");
  if (u8(2) != kProtocolVersion)
    throw diag::IoError("serve",
                        "unsupported protocol version " +
                            std::to_string(u8(2)) + " (this build speaks " +
                            std::to_string(kProtocolVersion) + ")");
  if (u8(3) != static_cast<unsigned char>(FrameKind::kRequest) &&
      u8(3) != static_cast<unsigned char>(FrameKind::kResponse) &&
      u8(3) != static_cast<unsigned char>(FrameKind::kError))
    throw diag::IoError("serve", "unknown frame kind " +
                                     std::to_string(u8(3)));
  const std::uint32_t length =
      static_cast<std::uint32_t>(u8(4)) |
      (static_cast<std::uint32_t>(u8(5)) << 8) |
      (static_cast<std::uint32_t>(u8(6)) << 16) |
      (static_cast<std::uint32_t>(u8(7)) << 24);
  if (length > kMaxPayloadBytes)
    throw diag::IoError(
        "serve", "frame payload of " + std::to_string(length) +
                     " bytes exceeds the protocol maximum of " +
                     std::to_string(kMaxPayloadBytes));
  out->kind = static_cast<FrameKind>(u8(3));
  out->payload.resize(length);
  if (length > 0 &&
      !read_exact(stream, out->payload.data(), length, "frame payload"))
    throw diag::IoError("serve", "truncated frame payload: EOF after "
                                 "header promised " +
                                     std::to_string(length) + " bytes");
  return true;
}

void write_frame(ByteStream& stream, FrameKind kind,
                 std::string_view payload) {
  // Injection site `sock_reset_midframe` sits on the exact boundary
  // between a delivered header and its payload: when it fires the peer
  // has a header promising bytes that never arrive (as a crash action the
  // process dies right there).  Only taken when injection is armed — the
  // production path writes one contiguous buffer.
  if (run::fault_injection_enabled()) {
    const std::string header =
        encode_header(kind, static_cast<std::uint32_t>(payload.size()));
    stream.write_all(header.data(), header.size());
    if (run::fault_point("sock_reset_midframe"))
      throw diag::IoError("serve",
                          "connection reset mid-frame (injected): header "
                          "sent, payload dropped");
    stream.write_all(payload.data(), payload.size());
    return;
  }
  const std::string f = encode_frame(kind, payload);
  stream.write_all(f.data(), f.size());
}

const char* status_label(int exit_code) {
  switch (exit_code) {
    case 0: return "ok";
    case 1: return "internal";
    case 2: return "usage";
    case 3: return "invalid-input";
    case 4: return "numeric";
    case 5: return "cancelled";
    case 6: return "overloaded";
    case 7: return "resource-exhausted";
    default: return "unknown";
  }
}

std::string encode_response(const Response& response) {
  std::string p = "status " + std::to_string(response.status) + " " +
                  (response.label.empty() ? status_label(response.status)
                                          : response.label) +
                  "\nout " + std::to_string(response.out.size()) +
                  "\nerr " + std::to_string(response.err.size()) + "\n\n";
  p += response.out;
  p += response.err;
  return p;
}

namespace {

/// Consumes "<keyword> " from the head of `rest`, then a decimal integer
/// up to `stop`, advancing `rest` past `stop`.
std::size_t parse_sized_field(std::string_view& rest, const char* keyword,
                              char stop) {
  const std::string prefix = std::string(keyword) + " ";
  if (rest.substr(0, prefix.size()) != prefix)
    throw diag::IoError("serve",
                        std::string("malformed response payload: expected "
                                    "\"") +
                            keyword + " \"");
  rest.remove_prefix(prefix.size());
  const std::size_t end = rest.find(stop);
  if (end == std::string_view::npos)
    throw diag::IoError("serve", std::string("malformed response payload: "
                                             "unterminated ") +
                                     keyword + " field");
  std::size_t value = 0;
  const std::string_view digits = rest.substr(0, end);
  if (digits.empty())
    throw diag::IoError("serve", std::string("malformed response payload: "
                                             "empty ") +
                                     keyword + " field");
  for (const char c : digits) {
    if (c < '0' || c > '9')
      throw diag::IoError("serve",
                          std::string("malformed response payload: "
                                      "non-numeric ") +
                              keyword + " field");
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  rest.remove_prefix(end + 1);
  return value;
}

}  // namespace

Response parse_response(std::string_view payload) {
  std::string_view rest = payload;
  Response r;
  r.status = static_cast<int>(parse_sized_field(rest, "status", ' '));
  const std::size_t label_end = rest.find('\n');
  if (label_end == std::string_view::npos)
    throw diag::IoError("serve", "malformed response payload: "
                                 "unterminated status label");
  r.label = std::string(rest.substr(0, label_end));
  rest.remove_prefix(label_end + 1);
  const std::size_t out_bytes = parse_sized_field(rest, "out", '\n');
  const std::size_t err_bytes = parse_sized_field(rest, "err", '\n');
  if (rest.empty() || rest.front() != '\n')
    throw diag::IoError("serve", "malformed response payload: missing "
                                 "blank line after header");
  rest.remove_prefix(1);
  if (rest.size() != out_bytes + err_bytes)
    throw diag::IoError(
        "serve", "malformed response payload: header promised " +
                     std::to_string(out_bytes + err_bytes) +
                     " body bytes, got " + std::to_string(rest.size()));
  r.out = std::string(rest.substr(0, out_bytes));
  r.err = std::string(rest.substr(out_bytes));
  return r;
}

std::string join_request(const std::vector<std::string>& argv) {
  std::string p;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i > 0) p += '\n';
    p += argv[i];
  }
  return p;
}

std::vector<std::string> split_request(std::string_view payload) {
  std::vector<std::string> tokens;
  if (payload.empty()) return tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t lf = payload.find('\n', start);
    if (lf == std::string_view::npos) {
      tokens.emplace_back(payload.substr(start));
      return tokens;
    }
    tokens.emplace_back(payload.substr(start, lf - start));
    start = lf + 1;
  }
}

}  // namespace rlcx::serve
