// Client side of the daemon protocol: connect, send one framed request,
// parse the framed reply.  Backs `rlcx query` and the bench_serve load
// generator.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace rlcx::serve {

/// One connection to a running daemon.  Not thread-safe; open one Client
/// per concurrent requester (the daemon dedicates a thread to each
/// connection anyway).
class Client {
 public:
  /// Connects to the daemon's Unix socket; throws diag::IoError when the
  /// socket is absent or refuses.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `argv` as one request frame and blocks for the reply.  Returns
  /// the parsed response — for error frames too; last_kind() tells which
  /// (kError = the request never executed: framing violation, disallowed
  /// command, admission rejection).  Throws diag::IoError when the
  /// connection drops or the reply is malformed.
  Response request(const std::vector<std::string>& argv);

  FrameKind last_kind() const noexcept { return last_kind_; }

 private:
  int fd_ = -1;
  FdStream stream_;
  FrameKind last_kind_ = FrameKind::kResponse;
};

/// `rlcx query --socket PATH CMD [flags...]`: one request, response
/// streams replayed onto out/err, the response status as the exit code —
/// so `rlcx query --socket S extract ...` is script-compatible with
/// `rlcx extract ...`.
int query_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err);

}  // namespace rlcx::serve
