// Client side of the daemon protocol: connect, send one framed request,
// parse the framed reply.  Backs `rlcx query` and the bench_serve load
// generator.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace rlcx::serve {

/// Connection-level resilience knobs for Client.  Zeros mean "block
/// forever" — the original behaviour, still right for tests driving a
/// daemon they own.
struct ClientOptions {
  int connect_timeout_ms = 0;  ///< bound connect(2) (0 = blocking)
  int io_timeout_ms = 0;       ///< bound each read/write (0 = blocking)
};

/// One connection to a running daemon.  Not thread-safe; open one Client
/// per concurrent requester (the daemon dedicates a thread to each
/// connection anyway).
class Client {
 public:
  /// Connects to the daemon's Unix socket; throws diag::IoError when the
  /// socket is absent, refuses, or (with a connect timeout armed) does
  /// not accept in time.
  explicit Client(const std::string& socket_path,
                  const ClientOptions& options = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `argv` as one request frame and blocks for the reply.  Returns
  /// the parsed response — for error frames too; last_kind() tells which
  /// (kError = the request never executed: framing violation, disallowed
  /// command, admission rejection).  Throws diag::IoError when the
  /// connection drops, the reply is malformed, or an armed io timeout
  /// expires.
  Response request(const std::vector<std::string>& argv);

  FrameKind last_kind() const noexcept { return last_kind_; }

 private:
  int fd_ = -1;
  FdStream stream_;
  FrameKind last_kind_ = FrameKind::kResponse;
};

/// True when retrying `command` after a transport failure cannot change
/// daemon state beyond what the first attempt may already have done:
/// extract/delay/ping/stats/health/help are pure reads (or idempotent
/// cache fills).  `shutdown` is excluded — a retried shutdown could drain
/// a daemon that already restarted.
bool retry_safe(const std::string& command);

/// `rlcx query [--retries N] [--backoff-ms MS] [--connect-timeout-s S]
/// [--timeout-s S] --socket PATH CMD [flags...]`: one request, response
/// streams replayed onto out/err, the response status as the exit code —
/// so `rlcx query --socket S extract ...` is script-compatible with
/// `rlcx extract ...`.  With --retries, transport failures (and
/// `overloaded` status-6 rejections) on retry-safe commands are retried
/// with exponential backoff plus jitter; non-idempotent commands are
/// never retried.
int query_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err);

}  // namespace rlcx::serve
