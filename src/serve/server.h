// The `rlcx serve` daemon: a long-lived extraction service.
//
// One process opens the table cache once, keeps deserialised tables hot
// in a WarmTableStore, and answers framed requests (serve/protocol.h,
// normative spec in docs/serve-protocol.md) over a Unix domain socket —
// or over stdin/stdout in --stdio mode, which lets tests and tooling
// drive the full protocol without a socket.
//
// Threading model: the accept loop hands each connection a dedicated
// protocol thread; requests execute on that thread under an ambient
// run::ScopedRunControl (the server's shutdown token + the per-request
// deadline), and the extraction inside fans its field solves onto the
// shared rt pool.  Admission control (serve/admission.h) bounds how many
// requests execute or wait; beyond that clients get an immediate typed
// `overloaded` rejection (exit code 6).  Admission is also cost-based:
// a request whose estimated footprint (cli::estimate_request_bytes)
// exceeds the process memory budget gets a typed `resource-exhausted`
// refusal (exit code 7) before any slot is granted, and a std::bad_alloc
// escaping a request is contained as a status-7 response — never a dead
// daemon (docs/robustness.md "Resource governance").
//
// Lifecycle: SIGINT/SIGTERM (or a `shutdown` request) request the
// shutdown token; the accept loop stops, in-flight requests unwind at
// their next checkpoint (status-5 responses), connections drain, the
// socket file is removed.  Every answered request is appended to a
// run::BatchJournal repurposed as a request log, so an operator can
// replay what a daemon did.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "run/control.h"
#include "run/journal.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/table_store.h"

namespace rlcx::serve {

struct ServeConfig {
  std::string cache_dir;    ///< --table-cache (required)
  std::string socket_path;  ///< --socket; empty with stdio=true
  bool stdio = false;       ///< --stdio: speak the protocol on stdin/stdout
  std::size_t max_tables = 16;     ///< --max-tables: warm-store LRU bound
  std::size_t max_table_bytes = 0; ///< --max-table-mib: warm-store byte
                                   ///< bound (0 = count-bounded only)
  int max_active = 4;              ///< --max-active: executing requests
  int queue_depth = 64;            ///< --queue-depth: waiting requests
  double request_deadline_s = 0.0; ///< --request-deadline-s (0 = none)
  double idle_timeout_s = 0.0;     ///< --idle-timeout-s: drop connections
                                   ///< silent this long (0 = never; the
                                   ///< slow-loris defense)
  std::string log_path;     ///< --log (default <cache_dir>/serve.journal)
  bool strict = false;      ///< --strict: kStrict cache recovery
};

class Server {
 public:
  /// Opens the cache and the request log; throws typed faults on invalid
  /// configuration.  `diag` receives the daemon's own lifecycle lines
  /// (listening/drained) — stdout in socket mode, stderr in stdio mode
  /// (where stdout carries frames).
  Server(ServeConfig config, std::ostream& diag);
  ~Server();

  /// Binds the Unix socket (removing a stale file first), then accepts
  /// until shutdown.  Returns 0 after a graceful drain.
  int run_socket();

  /// Speaks the protocol on stdin/stdout: one connection, then exit.
  int run_stdio();

  /// Full protocol loop over one established transport (used directly by
  /// tests; run_socket()/run_stdio() call it per connection).
  void handle_connection(ByteStream& stream);

  /// The shutdown token: requesting it drains the daemon.  serve_main
  /// points SIGINT/SIGTERM at it.
  const run::CancelToken& shutdown_token() const noexcept {
    return shutdown_;
  }

  /// The admission queue (stats; tests occupy slots deterministically).
  AdmissionQueue& admission() noexcept { return admission_; }

 private:
  void handle_request(ByteStream& stream, const std::string& payload);
  Response execute(const std::vector<std::string>& tokens,
                   FrameKind* kind);
  std::string stats_text();
  std::string health_text();
  void record_request(std::uint64_t seq,
                      const std::vector<std::string>& tokens, int status);
  void reap_finished_locked();

  ServeConfig config_;
  std::ostream& diag_;
  WarmTableStore warm_;
  AdmissionQueue admission_;
  run::CancelToken shutdown_;
  std::unique_ptr<run::BatchJournal> journal_;
  std::mutex threads_m_;
  std::vector<std::thread> connections_;
  std::vector<std::thread::id> finished_;  ///< connection threads done and
                                           ///< ready to be reaped/joined
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> cancelled_{0};
  std::atomic<std::size_t> peer_disconnects_{0};  ///< closed/reset mid-reply
  std::atomic<std::size_t> idle_disconnects_{0};  ///< dropped by the idle
                                                  ///< read deadline
  std::atomic<std::size_t> accept_retries_{0};    ///< transient accept()
                                                  ///< failures backed off
};

/// `rlcx serve ...`: parses flags (argv starts with "serve"), runs the
/// daemon, maps faults to the documented exit codes.
int serve_main(const std::vector<std::string>& argv, std::ostream& out,
               std::ostream& err);

}  // namespace rlcx::serve
