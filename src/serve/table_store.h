// The daemon's warm table store: the reason `rlcx serve` exists.
//
// A one-shot CLI invocation pays a fixed tax before its first lookup —
// open the table cache, read the entry bundle, deserialise three NdTables
// — every single time, even when the tables were characterised long ago.
// The daemon pays it once: this store keeps deserialised
// TableInductanceModels resident in memory, keyed by the same
// content-address the on-disk cache uses (TableCache::key_text) plus the
// extrapolation policy (a model member), bounded by an LRU over
// --max-tables entries.
//
// It plugs into the one-shot code path as a cli::ProviderSource, so a
// daemon response is produced by exactly the code that produces the CLI's
// — warm and cold results are bit-identical by construction, which
// test_serve asserts.
//
// Residency is bounded two ways: by entry count (--max-tables) and,
// when --max-table-mib is set, by total resident bytes
// (InductanceTables::resident_bytes per entry).  Either bound evicts from
// the LRU tail; the byte bound always keeps at least one entry, so a
// single model larger than the cap still serves (it just evicts everything
// else).  Resident bytes are charged to the process memory budget
// (res::Budget) so the daemon's `stats`/`health` reports and the budget's
// in-use figure include warm tables.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cli/cli.h"
#include "core/table_cache.h"

namespace rlcx::serve {

class WarmTableStore : public cli::ProviderSource {
 public:
  /// Opens the on-disk cache at `cache_dir` once for the store's
  /// lifetime; at most `max_tables` (>= 1, else a `usage` fault) models
  /// stay resident, holding at most `max_bytes` total (0 = no byte bound).
  WarmTableStore(const std::string& cache_dir, std::size_t max_tables,
                 std::size_t max_bytes = 0,
                 core::CacheRecoveryPolicy policy =
                     core::CacheRecoveryPolicy::kRecover);
  ~WarmTableStore() override;

  /// The ProviderSource hook cli::run() calls for extract/delay.  A warm
  /// hit returns the resident model and writes
  ///   "table store: warm hit, key <id>"
  /// to `out`; a miss builds through the on-disk cache (zero field solves
  /// when the entry exists), inserts the model (evicting the least
  /// recently used beyond the bound) and writes
  ///   "table store: warm miss, key <id>, <n> field solves".
  /// Misses build outside the store lock, so concurrent requests for
  /// *different* tables characterise in parallel; a lost race to insert
  /// the same key keeps the first model.
  std::shared_ptr<const core::InductanceProvider> provider(
      const cli::ProviderRequest& request, std::ostream& out) override;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t resident = 0;
    std::size_t resident_bytes = 0;  ///< sum of per-entry table bytes
  };
  Stats stats() const;

  /// One resident model, MRU first: its short cache id and its
  /// approximate table bytes (the eviction currency).
  struct EntryInfo {
    std::string id;
    std::size_t bytes = 0;
  };
  std::vector<EntryInfo> entries() const;

  std::size_t max_tables() const noexcept { return max_tables_; }
  std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// The underlying on-disk cache (for the daemon's stats report).
  const core::TableCache& cache() const noexcept { return cache_; }

 private:
  struct Entry {
    std::string key;
    std::string id;           ///< short cache id (stats display)
    std::size_t bytes = 0;    ///< resident_bytes() of the model's tables
    std::shared_ptr<const core::TableInductanceModel> model;
  };

  /// Drops LRU-tail entries until both bounds hold (caller holds m_).
  void evict_over_bounds_locked();

  const std::size_t max_tables_;
  const std::size_t max_bytes_;
  core::TableCache cache_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t resident_bytes_ = 0;
};

}  // namespace rlcx::serve
