// The daemon's warm table store: the reason `rlcx serve` exists.
//
// A one-shot CLI invocation pays a fixed tax before its first lookup —
// open the table cache, read the entry bundle, deserialise three NdTables
// — every single time, even when the tables were characterised long ago.
// The daemon pays it once: this store keeps deserialised
// TableInductanceModels resident in memory, keyed by the same
// content-address the on-disk cache uses (TableCache::key_text) plus the
// extrapolation policy (a model member), bounded by an LRU over
// --max-tables entries.
//
// It plugs into the one-shot code path as a cli::ProviderSource, so a
// daemon response is produced by exactly the code that produces the CLI's
// — warm and cold results are bit-identical by construction, which
// test_serve asserts.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cli/cli.h"
#include "core/table_cache.h"

namespace rlcx::serve {

class WarmTableStore : public cli::ProviderSource {
 public:
  /// Opens the on-disk cache at `cache_dir` once for the store's
  /// lifetime; at most `max_tables` (>= 1, else a `usage` fault) models
  /// stay resident.
  WarmTableStore(const std::string& cache_dir, std::size_t max_tables,
                 core::CacheRecoveryPolicy policy =
                     core::CacheRecoveryPolicy::kRecover);

  /// The ProviderSource hook cli::run() calls for extract/delay.  A warm
  /// hit returns the resident model and writes
  ///   "table store: warm hit, key <id>"
  /// to `out`; a miss builds through the on-disk cache (zero field solves
  /// when the entry exists), inserts the model (evicting the least
  /// recently used beyond the bound) and writes
  ///   "table store: warm miss, key <id>, <n> field solves".
  /// Misses build outside the store lock, so concurrent requests for
  /// *different* tables characterise in parallel; a lost race to insert
  /// the same key keeps the first model.
  std::shared_ptr<const core::InductanceProvider> provider(
      const cli::ProviderRequest& request, std::ostream& out) override;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t resident = 0;
  };
  Stats stats() const;

  std::size_t max_tables() const noexcept { return max_tables_; }

  /// The underlying on-disk cache (for the daemon's stats report).
  const core::TableCache& cache() const noexcept { return cache_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const core::TableInductanceModel> model;
  };

  const std::size_t max_tables_;
  core::TableCache cache_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace rlcx::serve
