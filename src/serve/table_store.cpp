#include "serve/table_store.h"

#include <ostream>
#include <utility>

#include "diag/error.h"

namespace rlcx::serve {

namespace {

/// The resident key: the cache's content address plus the extrapolation
/// policy, which is baked into the model object.
std::string store_key(const std::string& key_text,
                      core::ExtrapolationPolicy policy) {
  return key_text + "\n@extrapolation=" + core::to_string(policy);
}

}  // namespace

WarmTableStore::WarmTableStore(const std::string& cache_dir,
                               std::size_t max_tables,
                               core::CacheRecoveryPolicy policy)
    : max_tables_(max_tables), cache_(cache_dir, policy) {
  if (max_tables < 1)
    throw diag::UsageError("serve", "--max-tables must be >= 1");
}

std::shared_ptr<const core::InductanceProvider> WarmTableStore::provider(
    const cli::ProviderRequest& request, std::ostream& out) {
  const std::string key_text = core::TableCache::key_text(
      *request.tech, request.layer, request.planes, request.grid,
      request.options);
  const std::string id = core::TableCache::key_id(key_text);
  const std::string key = store_key(key_text, request.extrapolation);

  {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      out << "table store: warm hit, key " << id << "\n";
      return it->second->model;
    }
  }

  // Miss: characterise (or load) through the on-disk cache outside the
  // lock — a second request for a different table must not serialise
  // behind this build.
  core::BuildStats bstats;
  core::InductanceTables tables = core::build_tables_cached(
      *request.tech, request.layer, request.planes, request.grid,
      request.options, cache_, /*threads=*/0, &bstats);
  auto model =
      std::make_shared<core::TableInductanceModel>(std::move(tables));
  model->set_extrapolation_policy(request.extrapolation);

  std::lock_guard<std::mutex> lock(m_);
  ++misses_;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a build race for the same key: keep the resident model so
    // every holder shares one instance.
    lru_.splice(lru_.begin(), lru_, it->second);
    out << "table store: warm miss, key " << id << ", "
        << bstats.solves << " field solves\n";
    return it->second->model;
  }
  lru_.push_front(Entry{key, model});
  index_[key] = lru_.begin();
  while (lru_.size() > max_tables_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  out << "table store: warm miss, key " << id << ", " << bstats.solves
      << " field solves\n";
  return model;
}

WarmTableStore::Stats WarmTableStore::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = lru_.size();
  return s;
}

}  // namespace rlcx::serve
