#include "serve/table_store.h"

#include <ostream>
#include <utility>

#include "diag/error.h"
#include "res/budget.h"

namespace rlcx::serve {

namespace {

/// The resident key: the cache's content address plus the extrapolation
/// policy, which is baked into the model object.
std::string store_key(const std::string& key_text,
                      core::ExtrapolationPolicy policy) {
  return key_text + "\n@extrapolation=" + core::to_string(policy);
}

}  // namespace

WarmTableStore::WarmTableStore(const std::string& cache_dir,
                               std::size_t max_tables,
                               std::size_t max_bytes,
                               core::CacheRecoveryPolicy policy)
    : max_tables_(max_tables), max_bytes_(max_bytes),
      cache_(cache_dir, policy) {
  if (max_tables < 1)
    throw diag::UsageError("serve", "--max-tables must be >= 1");
}

WarmTableStore::~WarmTableStore() {
  // Return the resident charge so a budget outliving the store (tests,
  // embedding processes) does not leak phantom usage.
  res::Budget::global().unaccount(resident_bytes_);
}

void WarmTableStore::evict_over_bounds_locked() {
  // The byte bound keeps >= 1 entry: one model larger than the cap must
  // still serve (evicting it would just rebuild it on the next request).
  while (lru_.size() > max_tables_ ||
         (max_bytes_ > 0 && resident_bytes_ > max_bytes_ &&
          lru_.size() > 1)) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    res::Budget::global().unaccount(victim.bytes);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const core::InductanceProvider> WarmTableStore::provider(
    const cli::ProviderRequest& request, std::ostream& out) {
  const std::string key_text = core::TableCache::key_text(
      *request.tech, request.layer, request.planes, request.grid,
      request.options);
  const std::string id = core::TableCache::key_id(key_text);
  const std::string key = store_key(key_text, request.extrapolation);

  {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      out << "table store: warm hit, key " << id << "\n";
      return it->second->model;
    }
  }

  // Miss: characterise (or load) through the on-disk cache outside the
  // lock — a second request for a different table must not serialise
  // behind this build.
  core::BuildStats bstats;
  core::InductanceTables tables = core::build_tables_cached(
      *request.tech, request.layer, request.planes, request.grid,
      request.options, cache_, /*threads=*/0, &bstats);
  auto model =
      std::make_shared<core::TableInductanceModel>(std::move(tables));
  model->set_extrapolation_policy(request.extrapolation);

  std::lock_guard<std::mutex> lock(m_);
  ++misses_;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a build race for the same key: keep the resident model so
    // every holder shares one instance.
    lru_.splice(lru_.begin(), lru_, it->second);
    out << "table store: warm miss, key " << id << ", "
        << bstats.solves << " field solves\n";
    return it->second->model;
  }
  const std::size_t bytes = model->tables().resident_bytes();
  lru_.push_front(Entry{key, id, bytes, model});
  index_[key] = lru_.begin();
  resident_bytes_ += bytes;
  res::Budget::global().account(bytes);
  evict_over_bounds_locked();
  out << "table store: warm miss, key " << id << ", " << bstats.solves
      << " field solves\n";
  return model;
}

WarmTableStore::Stats WarmTableStore::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = lru_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

std::vector<WarmTableStore::EntryInfo> WarmTableStore::entries() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(EntryInfo{e.id, e.bytes});
  return out;
}

}  // namespace rlcx::serve
