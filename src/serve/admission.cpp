#include "serve/admission.h"

#include <chrono>
#include <string>

#include "diag/error.h"
#include "res/budget.h"

namespace rlcx::serve {

AdmissionQueue::AdmissionQueue(int max_active, int max_queued)
    : max_active_(max_active), max_queued_(max_queued) {
  if (max_active < 1)
    throw diag::UsageError(
        "serve", "--max-active must be >= 1, got " +
                     std::to_string(max_active));
  if (max_queued < 0)
    throw diag::UsageError(
        "serve", "--queue-depth must be >= 0, got " +
                     std::to_string(max_queued));
}

AdmissionQueue::Admission AdmissionQueue::enter(
    const run::CancelToken& shutdown, std::size_t cost_bytes) {
  // Cost gate before the slot machinery: a request that cannot fit the
  // memory budget even with the daemon otherwise idle is refused without
  // occupying a slot or queue position.
  if (cost_bytes > 0 && res::admission_exhausted(cost_bytes)) {
    std::lock_guard<std::mutex> refusal_lock(m_);
    ++refused_;
    return Admission::kRefused;
  }
  std::unique_lock<std::mutex> lock(m_);
  if (active_ < max_active_) {
    ++active_;
    ++admitted_;
    return Admission::kAdmitted;
  }
  if (queued_ >= max_queued_) {
    ++rejected_;
    return Admission::kOverloaded;
  }
  ++queued_;
  // The CancelToken is a plain flag with no condition variable, so the
  // wait polls it on a short period; shutdown latency for queued
  // requests is bounded by this interval.
  while (true) {
    cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
      return active_ < max_active_ || shutdown.requested();
    });
    if (shutdown.requested()) {
      --queued_;
      return Admission::kCancelled;
    }
    if (active_ < max_active_) {
      --queued_;
      ++active_;
      ++admitted_;
      return Admission::kAdmitted;
    }
  }
}

void AdmissionQueue::leave() noexcept {
  {
    std::lock_guard<std::mutex> lock(m_);
    --active_;
  }
  cv_.notify_one();
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.active = active_;
  s.queued = queued_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.refused = refused_;
  return s;
}

}  // namespace rlcx::serve
