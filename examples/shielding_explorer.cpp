// Shielding explorer: how shield width and spacing shape the loop
// inductance, and why the paper's "at least equal width" rule makes
// segments linearly cascadable (Section IV).
#include <cstdio>

#include "core/cascade.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/mesh.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"
#include "solver/network.h"

using namespace rlcx;
using units::um;

namespace {

// Both extraction paths below must mesh conductors identically, or the
// full-vs-cascade comparison picks up discretisation mismatch instead of
// physics.
peec::MeshOptions common_mesh() {
  peec::MeshOptions m;
  m.nw = 4;
  m.nt = 2;
  return m;
}

// Loop inductance of a 3-wire segment (w_sig signal, w_gnd shields).
double segment_loop_l(const geom::Technology& tech, double len, double w_sig,
                      double w_gnd, double spacing, double freq) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech, 6, len, w_sig, w_gnd, spacing);
  solver::SolveOptions opt;
  opt.frequency = freq;
  opt.auto_mesh = false;
  opt.mesh = common_mesh();
  return solver::extract_loop(blk, opt).inductance(0, 0);
}

// Full two-segment structure solved as one system (ground truth for the
// cascading comparison).
double two_segment_full(const geom::Technology& tech, double len1,
                        double len2, double w_sig, double w_gnd,
                        double spacing, double freq) {
  solver::Network net;
  const int in = net.add_node();
  const int gnd_in = net.add_node();
  const int mid_s = net.add_node();
  const int mid_g = net.add_node();
  const int far = net.add_node();

  const geom::Layer& layer = tech.layer(6);
  const peec::MeshOptions mesh = common_mesh();
  const double pitch = 0.5 * w_sig + spacing + 0.5 * w_gnd;

  auto add3 = [&](int ns_a, int ng_a, int ns_b, int ng_b, double y0,
                  double len) {
    auto bar = [&](double xc, double w) {
      peec::Bar b;
      b.a_min = y0;
      b.length = len;
      b.t_min = xc - 0.5 * w;
      b.t_width = w;
      b.z_min = layer.z_bottom;
      b.z_thick = layer.thickness;
      return b;
    };
    net.add_segment(ns_a, ns_b, bar(0.0, w_sig), layer.rho, mesh);
    net.add_segment(ng_a, ng_b, bar(-pitch, w_gnd), layer.rho, mesh);
    net.add_segment(ng_a, ng_b, bar(pitch, w_gnd), layer.rho, mesh);
  };
  add3(in, gnd_in, mid_s, mid_g, 0.0, len1);
  add3(mid_s, mid_g, far, far, len1, len2);  // far ends shorted
  return net.loop_impedance(in, gnd_in, freq).inductance;
}

}  // namespace

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  const double freq = solver::significant_frequency(100e-12);
  const double w_sig = um(4), len = um(1000);

  std::printf("== loop inductance vs shield geometry (1000 um, 4 um signal) "
              "==\n\n");
  std::printf("%-14s %-14s %s\n", "shield w (um)", "spacing (um)",
              "loop L (nH)");
  for (double wg : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (double s : {0.5, 1.0, 2.0}) {
      const double l =
          segment_loop_l(tech, len, w_sig, um(wg), um(s), freq);
      std::printf("%-14.1f %-14.1f %.4f\n", wg, s, units::to_nh(l));
    }
  }

  std::printf("\n== linear cascading error vs shield width (Section IV) "
              "==\n\n");
  std::printf("%-14s %-12s %-12s %-9s %s\n", "shield w (um)", "full nH",
              "cascade nH", "err %", "precondition");
  for (double wg : {1.0, 2.0, 4.0, 8.0}) {
    const double l1 =
        segment_loop_l(tech, um(600), w_sig, um(wg), um(1), freq);
    const double l2 =
        segment_loop_l(tech, um(400), w_sig, um(wg), um(1), freq);
    const double cascade = core::series_inductance({l1, l2});
    const double full =
        two_segment_full(tech, um(600), um(400), w_sig, um(wg), um(1), freq);
    const bool ok = core::cascade_precondition(w_sig, um(wg), um(wg));
    std::printf("%-14.1f %-12.4f %-12.4f %-9.2f %s\n", wg,
                units::to_nh(full), units::to_nh(cascade),
                100.0 * (cascade - full) / full, ok ? "met" : "NOT met");
  }
  std::printf("\nWider shields confine the return current, so independently "
              "extracted\nsegments combine almost exactly — the paper's "
              "\"at least equal width\" rule.\n");
  return 0;
}
