// Clocktree width optimization under the RLC model.
//
// The paper's point is that RC-only models mislead clocktree design; this
// example makes that concrete: sweep the trunk width of an H-tree and pick
// the width that minimises the worst sink delay.  The RC model always says
// "wider is better" (less resistance); the RLC model knows wider trunks
// also mean more capacitance into an inductive line and a weaker
// wave-launch, so its optimum is finite — and the two models disagree.
#include <cstdio>
#include <vector>

#include "clocktree/skew.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  clocktree::HTreeSpec spec = clocktree::example_cpw_tree();
  spec.levels.resize(2);  // keep the sweep quick: 2 levels, 2 sinks

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(spec.driver.t_rise);
  core::InductanceLibrary lib;
  lib.add(spec.layer, geom::PlaneConfig::kNone,
          std::make_shared<core::DirectInductanceModel>(
              &tech, spec.layer, geom::PlaneConfig::kNone, sopt));

  clocktree::AnalysisOptions aopt;
  aopt.ladder.sections = 4;

  // Optimise worst-case clock *latency* (absolute 50% arrival at the worst
  // sink): unlike the buffer-relative delay, it stays well-defined even
  // when the buffer output rings around the threshold.
  std::printf("== trunk width sweep: worst sink arrival under RLC vs RC "
              "==\n\n");
  std::printf("%14s %18s %18s %12s\n", "trunk w (um)", "RLC arrival (ps)",
              "RC arrival (ps)", "RLC skew ps");

  const std::vector<double> widths{4.0, 6.0, 8.0, 12.0, 16.0, 24.0};
  double best_rlc = 1e9, best_rlc_w = 0.0;
  double best_rc = 1e9, best_rc_w = 0.0;
  for (double w : widths) {
    spec.levels[0].signal_width = um(w);
    spec.levels[0].ground_width = um(w);  // keep the Section IV guard rule
    const clocktree::RcVsRlc cmp =
        clocktree::compare_rc_rlc(tech, spec, lib, aopt);
    std::printf("%14.1f %18.2f %18.2f %12.2f\n", w,
                units::to_ps(cmp.rlc.max_arrival),
                units::to_ps(cmp.rc.max_arrival),
                units::to_ps(cmp.rlc.skew));
    if (cmp.rlc.max_arrival < best_rlc) {
      best_rlc = cmp.rlc.max_arrival;
      best_rlc_w = w;
    }
    if (cmp.rc.max_arrival < best_rc) {
      best_rc = cmp.rc.max_arrival;
      best_rc_w = w;
    }
  }

  std::printf("\noptimum trunk width:  RLC model -> %.1f um (%.2f ps "
              "arrival);  RC model -> %.1f um (%.2f ps arrival)\n",
              best_rlc_w, units::to_ps(best_rlc), best_rc_w,
              units::to_ps(best_rc));
  if (best_rlc_w != best_rc_w) {
    std::printf("the models disagree: sizing a clocktree with an RC-only "
                "extractor picks the\nwrong width — the paper's case for "
                "RLC extraction in the clock flow.\n");
  } else {
    std::printf("the models happen to agree here; rerun with faster edges "
                "(--trise) to see\nthem diverge.\n");
  }
  return 0;
}
