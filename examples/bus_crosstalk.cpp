// Bus crosstalk: switching-pattern-dependent delay in a shielded bus
// (the paper's Figure 4 structure with several live signals).
//
// The victim's delay depends on what its neighbours do: switching in the
// same direction the return currents cancel (higher effective inductance,
// capacitive coupling relaxed); switching opposite, the coupling caps
// double-charge and the mutual inductance aids the return.  An RC-only
// model sees only the capacitive half of this story.
#include <cstdio>

#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

namespace {

enum class Pattern { kQuiet, kSame, kOpposite };

const char* name(Pattern p) {
  switch (p) {
    case Pattern::kQuiet: return "neighbours quiet";
    case Pattern::kSame: return "neighbours same direction";
    case Pattern::kOpposite: return "neighbours opposite";
  }
  return "?";
}

double victim_delay(const geom::Technology& tech, const geom::Block& bus,
                    const core::SegmentRlc& seg, Pattern pattern,
                    bool with_l) {
  const double vdd = 1.8, tr = 100e-12;
  ckt::Netlist nl;

  // Three signal traces: aggressor, victim (middle), aggressor.
  std::vector<ckt::NodeId> ins;
  std::vector<ckt::NodeId> srcs;
  for (int k = 0; k < 3; ++k) {
    const ckt::NodeId src = nl.add_node();
    const ckt::NodeId in = nl.add_node();
    nl.add_resistor(src, in, 40.0);
    srcs.push_back(src);
    ins.push_back(in);
  }
  // Victim rises 0 -> vdd.
  nl.add_vsource(srcs[1], ckt::kGround, ckt::SourceWaveform::ramp(vdd, tr));
  // Aggressors per pattern (opposite = start high, fall to 0).
  for (int k : {0, 2}) {
    switch (pattern) {
      case Pattern::kQuiet:
        nl.add_vsource(srcs[static_cast<std::size_t>(k)], ckt::kGround,
                       ckt::SourceWaveform::dc(0.0));
        break;
      case Pattern::kSame:
        nl.add_vsource(srcs[static_cast<std::size_t>(k)], ckt::kGround,
                       ckt::SourceWaveform::ramp(vdd, tr));
        break;
      case Pattern::kOpposite:
        nl.add_vsource(srcs[static_cast<std::size_t>(k)], ckt::kGround,
                       ckt::SourceWaveform::pwl({{0.0, vdd}, {tr, 0.0}}));
        break;
    }
  }

  core::LadderOptions lopt;
  lopt.sections = 6;
  lopt.include_inductance = with_l;
  const auto outs = core::stamp_segment(nl, bus, seg, ins, lopt);
  for (const ckt::NodeId out : outs)
    nl.add_capacitor(out, ckt::kGround, 100e-15);

  ckt::TransientOptions topt;
  topt.t_stop = 2.5e-9;
  topt.dt = 0.5e-12;
  const auto res = ckt::simulate(nl, topt);
  const auto t50 = res.waveform(outs[1]).first_rise_through(0.5 * vdd);
  (void)tech;
  return t50 ? units::to_ps(*t50) : -1.0;
}

}  // namespace

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  // Figure 4: outer grounds shield a 3-signal bus.
  const geom::Block bus = geom::bus_block(
      tech, 6, um(3000), {um(6), um(3), um(3), um(3), um(6)},
      {um(1), um(1), um(1), um(1)});

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(bus, lmodel);

  std::printf("== Figure 4 bus: victim 50%% arrival vs neighbour switching "
              "pattern ==\n\n");
  std::printf("3 mm bus, 3 um signals at 1 um spacing between 6 um "
              "shields\n\n");
  std::printf("%-30s %14s %14s %10s\n", "pattern", "RLC (ps)", "RC (ps)",
              "spread");
  for (Pattern p :
       {Pattern::kQuiet, Pattern::kSame, Pattern::kOpposite}) {
    const double rlc = victim_delay(tech, bus, seg, p, true);
    const double rc = victim_delay(tech, bus, seg, p, false);
    std::printf("%-30s %14.2f %14.2f %9.1f%%\n", name(p), rlc, rc,
                100.0 * (rlc - rc) / rc);
  }
  std::printf("\nthe pattern dependence is the inductive+capacitive "
              "crosstalk the paper's\ntable-based RLC netlists capture; an "
              "RC extraction sees only the capacitive\npart and badly "
              "misjudges the pattern spread (and the absolute delays).\n");
  return 0;
}
