// Clocktree skew analysis: build a 3-level H-tree, extract every segment
// through the inductance library, formulate the cascaded RLC netlist and
// compare the skew with and without inductance (paper Section V).
#include <cstdio>

#include "clocktree/skew.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;

namespace {

void report(const char* title, const clocktree::SkewResult& r) {
  std::printf("%s\n", title);
  std::printf("  sink delays (ps):");
  for (double d : r.sink_delays) std::printf(" %.1f", units::to_ps(d));
  std::printf("\n  skew = %.2f ps  (min %.1f, max %.1f)\n",
              units::to_ps(r.skew), units::to_ps(r.min_delay),
              units::to_ps(r.max_delay));
  std::printf("  worst overshoot %.1f mV, worst undershoot %.1f mV\n",
              1e3 * r.max_overshoot, 1e3 * r.max_undershoot);
}

}  // namespace

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  const clocktree::HTreeSpec spec = clocktree::example_cpw_tree();

  std::printf("== H-tree: %zu levels, %zu sinks, root-to-leaf %.0f um ==\n",
              spec.levels.size(), spec.sink_count(),
              units::to_um(spec.root_to_leaf_length()));

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(spec.driver.t_rise);

  core::InductanceLibrary lib;
  lib.add(spec.layer, geom::PlaneConfig::kNone,
          std::make_shared<core::DirectInductanceModel>(
              &tech, spec.layer, geom::PlaneConfig::kNone, sopt));

  clocktree::AnalysisOptions aopt;
  aopt.ladder.sections = 4;

  const clocktree::RcVsRlc cmp =
      clocktree::compare_rc_rlc(tech, spec, lib, aopt);
  report("RLC netlist (paper's method):", cmp.rlc);
  report("RC-only netlist (inductance ignored):", cmp.rc);

  const double skew_err =
      100.0 * (cmp.rlc.skew - cmp.rc.skew) /
      (cmp.rlc.skew != 0.0 ? cmp.rlc.skew : 1.0);
  std::printf("\nskew difference from ignoring L: %.1f %%\n", skew_err);
  std::printf("max-delay difference: %.1f %%\n",
              100.0 * (cmp.rlc.max_delay - cmp.rc.max_delay) /
                  cmp.rlc.max_delay);
  return 0;
}
