// Quickstart: extract RLC for the paper's Figure 1 clock net and show what
// inductance does to the delay.
//
// The structure: a 6000 um coplanar waveguide on the 2-um-thick clock
// layer — 10 um signal, 5 um grounds, 1 um spacing — driven by a buffer
// with 40 ohm output resistance.
#include <cstdio>

#include "cap/extractor.h"
#include "core/inductance_model.h"
#include "core/netlist_builder.h"
#include "core/rlc_extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block net =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));

  // The paper extracts at the significant frequency 0.32 / t_rise.
  const double t_rise = 200e-12;
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(t_rise);

  std::printf("== rlcx quickstart: Figure 1 coplanar clock net ==\n");
  std::printf("significant frequency: %.2f GHz\n",
              units::to_ghz(sopt.frequency));

  // --- Extraction ---
  const core::DirectInductanceModel lmodel(&tech, 6,
                                           geom::PlaneConfig::kNone, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(net, lmodel);

  std::printf("\nsignal trace:  R = %.2f ohm,  Lp(self) = %.3f nH\n",
              seg.resistance[1], units::to_nh(seg.inductance(1, 1)));
  std::printf("shield trace:  R = %.2f ohm,  Lp(self) = %.3f nH\n",
              seg.resistance[0], units::to_nh(seg.inductance(0, 0)));
  std::printf("sig-shield mutual Lp = %.3f nH\n",
              units::to_nh(seg.inductance(0, 1)));
  std::printf("signal capacitance = %.3f pF total\n",
              units::to_pf(seg.cap_ground[1] + seg.cap_coupling[0] +
                           seg.cap_coupling[1]));
  const solver::LoopResult loop = solver::extract_loop(net, sopt);
  std::printf("loop inductance (shields as return) = %.3f nH\n",
              units::to_nh(loop.inductance(0, 0)));

  // --- Simulation: RC-only vs full RLC ---
  auto run = [&](bool with_l) {
    ckt::Netlist nl;
    const ckt::NodeId vin = nl.add_node("vin");
    const ckt::NodeId buf = nl.add_node("buf_out");
    nl.add_vsource(vin, ckt::kGround, ckt::SourceWaveform::ramp(1.8, t_rise));
    // Strong clock driver; see bench_fig1_delay.cpp for why 25 ohm rather
    // than the paper's nominal 40 (our extracted C puts Z0 near 27 ohm).
    nl.add_resistor(vin, buf, 25.0);
    core::LadderOptions lopt;
    lopt.sections = 8;
    lopt.include_inductance = with_l;
    const auto outs = core::stamp_segment(nl, net, seg, {buf}, lopt);
    nl.add_capacitor(outs[0], ckt::kGround, 50e-15);  // sink buffer input

    ckt::TransientOptions topt;
    topt.t_stop = 1.5e-9;
    topt.dt = 1e-12;
    const ckt::TransientResult res = ckt::simulate(nl, topt);
    struct Out {
      double delay, overshoot;
    };
    const ckt::Waveform wbuf = res.waveform(buf);
    const ckt::Waveform wsink = res.waveform(outs[0]);
    return Out{ckt::delay_50(wbuf, wsink, 1.8), wsink.max() - 1.8};
  };

  const auto rc = run(false);
  const auto rlc = run(true);
  std::printf("\nbuffer-to-sink 50%% delay, RC netlist : %6.2f ps\n",
              units::to_ps(rc.delay));
  std::printf("buffer-to-sink 50%% delay, RLC netlist: %6.2f ps\n",
              units::to_ps(rlc.delay));
  std::printf("RLC overshoot above Vdd: %.2f mV\n",
              1e3 * (rlc.overshoot > 0 ? rlc.overshoot : 0.0));
  std::printf("\n(paper, different process/solver: 28.01 ps vs 47.6 ps —\n"
              " the point is the RLC delay is much larger and rings)\n");
  return 0;
}
