// Table workflow: pre-characterise inductance tables with the field solver,
// persist them, reload, and compare spline lookups against direct solves —
// the complete Section III flow — then the persistent-cache version that
// makes the expensive step a one-time cost across processes.
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/table_cache.h"
#include "numeric/units.h"
#include "solver/frequency.h"

using namespace rlcx;
using units::um;

int main() {
  const geom::Technology tech = geom::Technology::generic_025um();

  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);

  // A compact grid keeps this example fast; production tables just use a
  // denser TableGrid.
  core::TableGrid grid;
  grid.widths = geomspace(um(2), um(16), 4);
  grid.spacings = geomspace(um(0.5), um(8), 4);
  grid.lengths = geomspace(um(250), um(4000), 4);

  std::printf("building coplanar (partial-L) tables: %zux%zux%zu grid...\n",
              grid.widths.size(), grid.spacings.size(), grid.lengths.size());
  const core::InductanceTables tables = core::build_tables(
      tech, 6, geom::PlaneConfig::kNone, grid, sopt);

  // Persist and reload (round-trip through a stream; a file works the same
  // via save_file/load_file).
  std::stringstream buf;
  tables.self.save(buf);
  tables.mutual.save(buf);
  core::InductanceTables reloaded = tables;
  reloaded.self = core::NdTable::load(buf);
  reloaded.mutual = core::NdTable::load(buf);
  const core::TableInductanceModel model(reloaded);
  std::printf("tables saved and reloaded (%zu + %zu entries)\n",
              tables.self.values().size(), tables.mutual.values().size());

  // Off-grid queries vs direct field solves.
  const core::DirectInductanceModel direct(
      &tech, 6, geom::PlaneConfig::kNone, sopt);
  struct Q {
    double w1, w2, s, l;
  };
  const Q queries[] = {
      {um(3), um(3), um(1), um(1000)},
      {um(10), um(5), um(1), um(3000)},
      {um(6), um(12), um(3), um(500)},
  };
  std::printf("\n%-34s %12s %12s %8s\n", "query (w1,w2,s,l um)",
              "table nH", "solver nH", "err %");
  for (const Q& q : queries) {
    const double mt = model.mutual(q.w1, q.w2, q.s, q.l);
    const double md = direct.mutual(q.w1, q.w2, q.s, q.l);
    std::printf("M  (%4.1f,%4.1f,%4.1f,%6.0f)        %12.4f %12.4f %7.2f\n",
                units::to_um(q.w1), units::to_um(q.w2), units::to_um(q.s),
                units::to_um(q.l), units::to_nh(mt), units::to_nh(md),
                100.0 * (mt - md) / md);
    const double st = model.self(q.w1, q.l);
    const double sd = direct.self(q.w1, q.l);
    std::printf("L  (%4.1f,          %6.0f)        %12.4f %12.4f %7.2f\n",
                units::to_um(q.w1), units::to_um(q.l), units::to_nh(st),
                units::to_nh(sd), 100.0 * (st - sd) / sd);
  }
  std::printf("\nSection III claim: reduction to 1-/2-trace subproblems "
              "loses no accuracy;\nresidual error is spline interpolation "
              "only.\n");

  // The cache-first flow: identical inputs hit the on-disk entry and skip
  // every field solve (docs/table-format.md documents the key recipe).
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "rlcx_example_cache")
          .string();
  core::TableCache cache(cache_dir);
  cache.purge();
  core::build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, sopt,
                            cache);
  core::reset_table_build_solve_count();
  core::build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, sopt,
                            cache);
  std::printf("\ntable cache %s: %zu hit(s), %zu miss(es), warm rebuild "
              "ran %zu solves\n",
              cache_dir.c_str(), cache.stats().hits, cache.stats().misses,
              core::table_build_solve_count());
  return 0;
}
