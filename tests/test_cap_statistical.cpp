// Tests for the statistical-RC process variation model.
#include <gtest/gtest.h>

#include "cap/models.h"
#include "cap/statistical.h"
#include "numeric/units.h"

namespace rlcx::cap {
namespace {

using units::um;

constexpr double kW = 4e-6, kT = 2e-6, kH = 1e-6, kS = 2e-6;
constexpr double kRho = 2e-8, kEpsR = 3.9;

TEST(StatisticalRc, NominalMatchesDirectModels) {
  const RcPoint p = evaluate_rc(kW, kT, kH, kS, kRho, kEpsR, {});
  EXPECT_NEAR(p.r_pul, resistance_pul(kW, kT, kRho), 1e-9);
  const double c = sakurai_total_cul(kW, kT, kH, kEpsR) +
                   2.0 * sakurai_coupling_cul(kW, kT, kH, kS, kEpsR);
  EXPECT_NEAR(p.c_pul, c, 1e-20);
}

TEST(StatisticalRc, WidthBiasTradesRForC) {
  GeometrySample wide;
  wide.w_scale = 1.2;
  const RcPoint nom = evaluate_rc(kW, kT, kH, kS, kRho, kEpsR, {});
  const RcPoint p = evaluate_rc(kW, kT, kH, kS, kRho, kEpsR, wide);
  EXPECT_LT(p.r_pul, nom.r_pul);  // wider -> less resistance
  EXPECT_GT(p.c_pul, nom.c_pul);  // wider + closer neighbour -> more cap
}

TEST(StatisticalRc, WidthBiasClosingGapThrows) {
  GeometrySample g;
  g.w_scale = 1.0 + kS / kW + 0.1;  // eats the whole spacing
  EXPECT_THROW(evaluate_rc(kW, kT, kH, kS, kRho, kEpsR, g),
               std::invalid_argument);
}

TEST(StatisticalRc, CornersBracketNominal) {
  ProcessVariation pv;
  const RcCorners c = rc_corners(kW, kT, kH, kS, kRho, kEpsR, pv);
  const double rc_nom = c.nominal.r_pul * c.nominal.c_pul;
  EXPECT_GT(c.worst.r_pul * c.worst.c_pul, rc_nom);
  EXPECT_LT(c.best.r_pul * c.best.c_pul, rc_nom);
}

TEST(StatisticalRc, CornersScaleWithSigma) {
  ProcessVariation tight;
  tight.sigma_w = tight.sigma_t = tight.sigma_h = 0.02;
  ProcessVariation loose;
  loose.sigma_w = loose.sigma_t = loose.sigma_h = 0.08;
  const RcCorners ct = rc_corners(kW, kT, kH, kS, kRho, kEpsR, tight);
  const RcCorners cl = rc_corners(kW, kT, kH, kS, kRho, kEpsR, loose);
  const double spread_t =
      ct.worst.r_pul * ct.worst.c_pul - ct.best.r_pul * ct.best.c_pul;
  const double spread_l =
      cl.worst.r_pul * cl.worst.c_pul - cl.best.r_pul * cl.best.c_pul;
  EXPECT_GT(spread_l, spread_t);
}

TEST(StatisticalRc, MonteCarloReproducible) {
  ProcessVariation pv;
  const RcDistribution a = monte_carlo_rc(kW, kT, kH, kS, kRho, kEpsR, pv,
                                          500, 99);
  const RcDistribution b = monte_carlo_rc(kW, kT, kH, kS, kRho, kEpsR, pv,
                                          500, 99);
  EXPECT_DOUBLE_EQ(a.r.mean(), b.r.mean());
  EXPECT_DOUBLE_EQ(a.c.stddev(), b.c.stddev());
}

TEST(StatisticalRc, ResistanceSpreadTracksSigmas) {
  // R = rho/(w t): independent 5% sigmas on w and t give ~7% relative sigma
  // on R, i.e. a 3-sigma relative spread around 21%.
  ProcessVariation pv;
  const RcDistribution d =
      monte_carlo_rc(kW, kT, kH, kS, kRho, kEpsR, pv, 4000, 7);
  EXPECT_GT(d.r.rel_spread3(), 0.12);
  EXPECT_LT(d.r.rel_spread3(), 0.35);
  EXPECT_NEAR(d.r.mean(), resistance_pul(kW, kT, kRho),
              0.02 * resistance_pul(kW, kT, kRho));
}

TEST(StatisticalRc, MetricHookRuns) {
  ProcessVariation pv;
  const RunningStats s = monte_carlo_metric(
      pv, 200, [](const GeometrySample& g) { return g.w_scale; }, 3);
  EXPECT_EQ(s.count(), 200u);
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

TEST(StatisticalRc, ArgumentValidation) {
  ProcessVariation pv;
  EXPECT_THROW(monte_carlo_rc(kW, kT, kH, kS, kRho, kEpsR, pv, 0),
               std::invalid_argument);
  EXPECT_THROW(monte_carlo_metric(pv, 10, nullptr), std::invalid_argument);
  EXPECT_THROW(monte_carlo_metric(pv, 0, [](const GeometrySample&) {
                 return 0.0;
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::cap
