// Tests for rlcx::run — cooperative cancellation/deadlines, the ambient
// run-control scope, the deterministic fault injector, the batch journal
// and the SIGINT bridge.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/control.h"
#include "run/fault_injection.h"
#include "run/journal.h"
#include "run/signal.h"

namespace rlcx::run {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---------------------------------------------------------------- control

TEST(CancelToken, CopiesShareOneFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(a.requested());
  b.request();
  EXPECT_TRUE(a.requested());
  EXPECT_TRUE(b.requested());
  b.request();  // idempotent
  EXPECT_TRUE(a.requested());
}

TEST(Deadline, DefaultIsInactiveAndNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e30);
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Deadline, FutureDeadlineReportsRemaining) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3500.0);
}

TEST(Checkpoint, NoOpWithoutInstalledControl) {
  EXPECT_FALSE(control_active());
  EXPECT_FALSE(stop_requested());
  EXPECT_NO_THROW(checkpoint("test"));
}

TEST(Checkpoint, ThrowsTypedCancelledErrorAfterRequest) {
  RunControl rc;
  ScopedRunControl scope(rc);
  EXPECT_TRUE(control_active());
  EXPECT_NO_THROW(checkpoint("test"));
  rc.token.request();
  EXPECT_TRUE(stop_requested());
  try {
    checkpoint("stage-x");
    FAIL() << "checkpoint did not throw";
  } catch (const diag::CancelledError& e) {
    EXPECT_EQ(e.category(), diag::Category::kCancelled);
    EXPECT_EQ(e.stage(), "stage-x");
  }
}

TEST(Checkpoint, ThrowsDeadlineExceededWhenPastDeadline) {
  RunControl rc;
  rc.deadline = Deadline::after(0.0);
  ScopedRunControl scope(rc);
  EXPECT_TRUE(stop_requested());
  EXPECT_THROW(checkpoint("test"), diag::DeadlineExceeded);
}

TEST(Checkpoint, CancellationObservableFromOtherThreads) {
  RunControl rc;
  ScopedRunControl scope(rc);
  rc.token.request();
  bool threw = false;
  std::thread t([&] {
    try {
      checkpoint("worker");
    } catch (const diag::CancelledError&) {
      threw = true;
    }
  });
  t.join();
  EXPECT_TRUE(threw);
}

TEST(ScopedRunControl, ScopesNestInnermostWins) {
  RunControl outer;
  outer.token.request();  // outer is cancelled...
  ScopedRunControl outer_scope(outer);
  {
    RunControl inner;  // ...but the innermost (clean) control wins
    ScopedRunControl inner_scope(inner);
    EXPECT_NO_THROW(checkpoint("inner"));
  }
  // Outer restored on inner destruction.
  EXPECT_THROW(checkpoint("outer"), diag::CancelledError);
}

// --------------------------------------------------------- fault injector

struct InjectorReset {
  ~InjectorReset() { FaultInjector::global().clear(); }
};

TEST(FaultInjector, DisabledByDefaultAndCostsNothing) {
  InjectorReset reset;
  FaultInjector::global().clear();
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().calls("cache_write"), 0u);
}

TEST(FaultInjector, ExactEntryFiresOnlyAtTheNthCall) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:3");
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));  // the 3rd call
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().calls("cache_write"), 4u);
  EXPECT_EQ(FaultInjector::global().triggered("cache_write"), 1u);
}

TEST(FaultInjector, PersistentEntryFiresFromTheNthCallOn) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:2+");
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().triggered("cache_write"), 2u);
}

TEST(FaultInjector, SitesAreIndependentAndUnscheduledSitesDoNotCount) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:1,sor_diverge:2");
  EXPECT_FALSE(fault_point("sor_diverge"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("sor_diverge"));
  EXPECT_FALSE(fault_point("cache_read"));  // not scheduled
  EXPECT_EQ(FaultInjector::global().calls("cache_read"), 0u);
}

TEST(FaultInjector, BadGrammarIsAUsageError) {
  InjectorReset reset;
  FaultInjector& fi = FaultInjector::global();
  fi.clear();
  EXPECT_THROW(fi.set_schedule("cache_write"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:0"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:abc"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule(":3"), diag::UsageError);
  // set_schedule is parse-then-commit: a rejected schedule arms nothing.
  EXPECT_FALSE(fault_injection_enabled());
  // Whitespace and stray commas are tolerated.
  EXPECT_NO_THROW(fi.set_schedule(" cache_write:1 , ,sor_diverge:2 "));
  EXPECT_TRUE(fault_injection_enabled());
}

TEST(FaultInjector, CancelSiteRequestsCancellationAtTheNthCheckpoint) {
  InjectorReset reset;
  RunControl rc;
  ScopedRunControl scope(rc);
  FaultInjector::global().set_schedule("cancel:3");
  EXPECT_NO_THROW(checkpoint("test"));
  EXPECT_NO_THROW(checkpoint("test"));
  EXPECT_THROW(checkpoint("test"), diag::CancelledError);
  EXPECT_TRUE(rc.token.requested());
}

// ---------------------------------------------------------------- journal

TEST(BatchJournal, FreshFileRoundTrips) {
  const ScratchDir dir("rlcx_journal");
  const std::string path = dir.path + "/batch.journal";
  BatchJournal j(path);
  EXPECT_EQ(j.size(), 0u);
  j.record("00000000000000aa");
  j.record("00000000000000bb");
  j.record("00000000000000aa");  // idempotent
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.contains("00000000000000aa"));
  EXPECT_FALSE(j.contains("00000000000000cc"));

  // A second instance (a resumed process) sees exactly the same ids.
  BatchJournal reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_TRUE(reopened.contains("00000000000000bb"));
  EXPECT_EQ(BatchJournal::load(path), j.completed());
}

TEST(BatchJournal, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(BatchJournal::load("/nonexistent/rlcx.journal").empty());
}

TEST(BatchJournal, TornTailIsDroppedNotTrusted) {
  const ScratchDir dir("rlcx_journal_torn");
  const std::string path = dir.path + "/batch.journal";
  {
    BatchJournal j(path);
    j.record("00000000000000aa");
  }
  // Simulate a kill mid-append: a record without its terminating newline.
  {
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "done 00000000000000bb";
  }
  BatchJournal j(path);
  EXPECT_TRUE(j.contains("00000000000000aa"));
  EXPECT_FALSE(j.contains("00000000000000bb"));  // torn: will be re-done
  EXPECT_EQ(j.size(), 1u);
}

TEST(BatchJournal, ForeignFileIsNotClobbered) {
  const ScratchDir dir("rlcx_journal_foreign");
  const std::string path = dir.path + "/notes.txt";
  fs::create_directories(dir.path);
  {
    std::ofstream os(path);
    os << "these are not the droids\n";
  }
  EXPECT_THROW(BatchJournal j(path), diag::IoError);
  // The original content survives the rejection.
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "these are not the droids");
}

TEST(BatchJournal, RejectsMalformedIds) {
  const ScratchDir dir("rlcx_journal_ids");
  BatchJournal j(dir.path + "/batch.journal");
  EXPECT_THROW(j.record(""), diag::UsageError);
  EXPECT_THROW(j.record("has space"), diag::UsageError);
  EXPECT_THROW(j.record("has\nnewline"), diag::UsageError);
}

// ----------------------------------------------------------------- SIGINT

TEST(ScopedSigintCancel, SigintRequestsCancellation) {
  RunControl rc;
  ScopedRunControl scope(rc);
  {
    ScopedSigintCancel sigint(rc.token);
    std::raise(SIGINT);
    EXPECT_TRUE(rc.token.requested());
    EXPECT_THROW(checkpoint("post-sigint"), diag::CancelledError);
  }
}

TEST(ScopedSigintCancel, ScopesNestAndRestore) {
  CancelToken outer_token;
  ScopedSigintCancel outer(outer_token);
  {
    CancelToken inner_token;
    ScopedSigintCancel inner(inner_token);
    std::raise(SIGINT);
    EXPECT_TRUE(inner_token.requested());
    EXPECT_FALSE(outer_token.requested());
  }
  std::raise(SIGINT);
  EXPECT_TRUE(outer_token.requested());
}

}  // namespace
}  // namespace rlcx::run
