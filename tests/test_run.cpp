// Tests for rlcx::run — cooperative cancellation/deadlines, the ambient
// run-control scope, the deterministic fault injector, the batch journal
// and the SIGINT bridge.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "diag/error.h"
#include "diag/warnings.h"
#include "run/control.h"
#include "run/fault_injection.h"
#include "run/journal.h"
#include "run/signal.h"

namespace rlcx::run {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// Collects warning messages emitted while alive (instead of stderr).
struct WarningCapture {
  std::vector<std::string> captured;
  diag::ScopedWarningHandler handler;
  WarningCapture()
      : handler([this](const diag::Warning& w) {
          captured.push_back(w.message);
        }) {}
  const std::vector<std::string>& messages() const { return captured; }
};

// ---------------------------------------------------------------- control

TEST(CancelToken, CopiesShareOneFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(a.requested());
  b.request();
  EXPECT_TRUE(a.requested());
  EXPECT_TRUE(b.requested());
  b.request();  // idempotent
  EXPECT_TRUE(a.requested());
}

TEST(Deadline, DefaultIsInactiveAndNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e30);
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Deadline, FutureDeadlineReportsRemaining) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3500.0);
}

TEST(Checkpoint, NoOpWithoutInstalledControl) {
  EXPECT_FALSE(control_active());
  EXPECT_FALSE(stop_requested());
  EXPECT_NO_THROW(checkpoint("test"));
}

TEST(Checkpoint, ThrowsTypedCancelledErrorAfterRequest) {
  RunControl rc;
  ScopedRunControl scope(rc);
  EXPECT_TRUE(control_active());
  EXPECT_NO_THROW(checkpoint("test"));
  rc.token.request();
  EXPECT_TRUE(stop_requested());
  try {
    checkpoint("stage-x");
    FAIL() << "checkpoint did not throw";
  } catch (const diag::CancelledError& e) {
    EXPECT_EQ(e.category(), diag::Category::kCancelled);
    EXPECT_EQ(e.stage(), "stage-x");
  }
}

TEST(Checkpoint, ThrowsDeadlineExceededWhenPastDeadline) {
  RunControl rc;
  rc.deadline = Deadline::after(0.0);
  ScopedRunControl scope(rc);
  EXPECT_TRUE(stop_requested());
  EXPECT_THROW(checkpoint("test"), diag::DeadlineExceeded);
}

TEST(Checkpoint, CancellationObservableFromOtherThreads) {
  RunControl rc;
  ScopedRunControl scope(rc);
  rc.token.request();
  bool threw = false;
  std::thread t([&] {
    try {
      checkpoint("worker");
    } catch (const diag::CancelledError&) {
      threw = true;
    }
  });
  t.join();
  EXPECT_TRUE(threw);
}

TEST(ScopedRunControl, ScopesNestInnermostWins) {
  RunControl outer;
  outer.token.request();  // outer is cancelled...
  ScopedRunControl outer_scope(outer);
  {
    RunControl inner;  // ...but the innermost (clean) control wins
    ScopedRunControl inner_scope(inner);
    EXPECT_NO_THROW(checkpoint("inner"));
  }
  // Outer restored on inner destruction.
  EXPECT_THROW(checkpoint("outer"), diag::CancelledError);
}

// --------------------------------------------------------- fault injector

struct InjectorReset {
  ~InjectorReset() { FaultInjector::global().clear(); }
};

TEST(FaultInjector, DisabledByDefaultAndCostsNothing) {
  InjectorReset reset;
  FaultInjector::global().clear();
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().calls("cache_write"), 0u);
}

TEST(FaultInjector, ExactEntryFiresOnlyAtTheNthCall) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:3");
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));  // the 3rd call
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().calls("cache_write"), 4u);
  EXPECT_EQ(FaultInjector::global().triggered("cache_write"), 1u);
}

TEST(FaultInjector, PersistentEntryFiresFromTheNthCallOn) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:2+");
  EXPECT_FALSE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_EQ(FaultInjector::global().triggered("cache_write"), 2u);
}

TEST(FaultInjector, SitesAreIndependentAndUnscheduledSitesDoNotCount) {
  InjectorReset reset;
  FaultInjector::global().set_schedule("cache_write:1,sor_diverge:2");
  EXPECT_FALSE(fault_point("sor_diverge"));
  EXPECT_TRUE(fault_point("cache_write"));
  EXPECT_TRUE(fault_point("sor_diverge"));
  EXPECT_FALSE(fault_point("cache_read"));  // not scheduled
  EXPECT_EQ(FaultInjector::global().calls("cache_read"), 0u);
}

TEST(FaultInjector, BadGrammarIsAUsageError) {
  InjectorReset reset;
  FaultInjector& fi = FaultInjector::global();
  fi.clear();
  EXPECT_THROW(fi.set_schedule("cache_write"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:0"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:abc"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule(":3"), diag::UsageError);
  // set_schedule is parse-then-commit: a rejected schedule arms nothing.
  EXPECT_FALSE(fault_injection_enabled());
  // Whitespace and stray commas are tolerated.
  EXPECT_NO_THROW(fi.set_schedule(" cache_write:1 , ,sor_diverge:2 "));
  EXPECT_TRUE(fault_injection_enabled());
}

TEST(FaultInjector, CancelSiteRequestsCancellationAtTheNthCheckpoint) {
  InjectorReset reset;
  RunControl rc;
  ScopedRunControl scope(rc);
  FaultInjector::global().set_schedule("cancel:3");
  EXPECT_NO_THROW(checkpoint("test"));
  EXPECT_NO_THROW(checkpoint("test"));
  EXPECT_THROW(checkpoint("test"), diag::CancelledError);
  EXPECT_TRUE(rc.token.requested());
}

// ---------------------------------------------------------------- journal

TEST(BatchJournal, FreshFileRoundTrips) {
  const ScratchDir dir("rlcx_journal");
  const std::string path = dir.path + "/batch.journal";
  BatchJournal j(path);
  EXPECT_EQ(j.size(), 0u);
  j.record("00000000000000aa");
  j.record("00000000000000bb");
  j.record("00000000000000aa");  // idempotent
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.contains("00000000000000aa"));
  EXPECT_FALSE(j.contains("00000000000000cc"));

  // A second instance (a resumed process) sees exactly the same ids.
  BatchJournal reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_TRUE(reopened.contains("00000000000000bb"));
  EXPECT_EQ(BatchJournal::load(path), j.completed());
}

TEST(BatchJournal, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(BatchJournal::load("/nonexistent/rlcx.journal").empty());
}

TEST(BatchJournal, TornTailIsDroppedNotTrusted) {
  const ScratchDir dir("rlcx_journal_torn");
  const std::string path = dir.path + "/batch.journal";
  {
    BatchJournal j(path);
    j.record("00000000000000aa");
  }
  // Simulate a kill mid-append: a record without its terminating newline.
  {
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "done 00000000000000bb";
  }
  BatchJournal j(path);
  EXPECT_TRUE(j.contains("00000000000000aa"));
  EXPECT_FALSE(j.contains("00000000000000bb"));  // torn: will be re-done
  EXPECT_EQ(j.size(), 1u);
}

TEST(BatchJournal, ForeignFileIsNotClobbered) {
  const ScratchDir dir("rlcx_journal_foreign");
  const std::string path = dir.path + "/notes.txt";
  fs::create_directories(dir.path);
  {
    std::ofstream os(path);
    os << "these are not the droids\n";
  }
  EXPECT_THROW(BatchJournal j(path), diag::IoError);
  // The original content survives the rejection.
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "these are not the droids");
}

TEST(BatchJournal, RejectsMalformedIds) {
  const ScratchDir dir("rlcx_journal_ids");
  BatchJournal j(dir.path + "/batch.journal");
  EXPECT_THROW(j.record(""), diag::UsageError);
  EXPECT_THROW(j.record("has space"), diag::UsageError);
  EXPECT_THROW(j.record("has\nnewline"), diag::UsageError);
}

TEST(BatchJournal, TornTailIsRepairedByteExactOnOpen) {
  const ScratchDir dir("rlcx_journal_repair");
  const std::string path = dir.path + "/batch.journal";
  {
    BatchJournal j(path);
    j.record("00000000000000aa");
    j.record("00000000000000bb");
  }
  std::string clean;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    clean = ss.str();
  }
  {
    std::ofstream os(path, std::ios::app | std::ios::binary);
    os << "done 00000000000000cc";  // torn: no newline
  }
  WarningCapture warnings;
  BatchJournal j(path);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.tail_dropped_bytes(),
            std::string("done 00000000000000cc").size());
  // The repair truncates back to the clean prefix, byte for byte.
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(ss.str(), clean);
  ASSERT_FALSE(warnings.messages().empty());
  EXPECT_NE(warnings.messages()[0].find("torn trailing bytes"),
            std::string::npos);
}

TEST(BatchJournal, TornHeaderFromCrashedCreationRecoversEmpty) {
  const ScratchDir dir("rlcx_journal_torn_header");
  const std::string path = dir.path + "/batch.journal";
  fs::create_directories(dir.path);
  {
    std::ofstream os(path, std::ios::binary);
    os << "rlcx-jour";  // killed while writing the header line
  }
  WarningCapture warnings;
  BatchJournal j(path);
  EXPECT_EQ(j.size(), 0u);
  j.record("00000000000000aa");
  BatchJournal reopened(path);
  EXPECT_TRUE(reopened.contains("00000000000000aa"));
  ASSERT_FALSE(warnings.messages().empty());
  EXPECT_NE(warnings.messages()[0].find("header torn"), std::string::npos);
}

// The satellite fuzz: truncate a multi-record journal at *every* byte
// offset and assert open() recovers exactly the whole-record prefix —
// and repairs the file to exactly those bytes.
TEST(BatchJournal, FuzzTruncateAtEveryByteOffsetRecoversExactPrefix) {
  const ScratchDir dir("rlcx_journal_fuzz");
  const std::string path = dir.path + "/full.journal";
  const std::vector<std::string> ids = {
      "00000000000000aa", "00000000000000bb", "00000000000000cc"};
  {
    BatchJournal j(path);
    for (const std::string& id : ids) j.record(id);
  }
  std::string content;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    content = ss.str();
  }
  ASSERT_GT(content.size(), 40u);
  for (std::size_t cut = 0; cut <= content.size(); ++cut) {
    const std::string truncated = content.substr(0, cut);
    // Expected: ids whose full "done <id>\n" line lies within the cut,
    // and the clean prefix ends at the last newline within the cut.
    std::set<std::string> expect;
    std::size_t clean = 0;
    std::size_t pos = 0;
    bool header_complete = false;
    while (pos < truncated.size()) {
      const std::size_t nl = truncated.find('\n', pos);
      if (nl == std::string::npos) break;
      const std::string line = truncated.substr(pos, nl - pos);
      pos = nl + 1;
      clean = pos;
      if (!header_complete) {
        header_complete = true;
        continue;
      }
      expect.insert(line.substr(5));
    }
    const std::string victim = dir.path + "/cut." + std::to_string(cut);
    {
      std::ofstream os(victim, std::ios::binary | std::ios::trunc);
      os << truncated;
    }
    WarningCapture warnings;
    BatchJournal j(victim);
    EXPECT_EQ(j.completed(), expect) << "cut at byte " << cut;
    std::ifstream is(victim, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    if (header_complete) {
      // Byte-exact repair: exactly the whole-record prefix remains.
      EXPECT_EQ(ss.str(), truncated.substr(0, clean))
          << "cut at byte " << cut;
    } else {
      // Header never completed: recovered as a fresh (empty) journal.
      EXPECT_EQ(ss.str(), "rlcx-journal 1\n") << "cut at byte " << cut;
    }
  }
}

TEST(BatchJournal, FsyncDurabilityCountsFlushes) {
  const ScratchDir dir("rlcx_journal_fsync");
  const std::string path = dir.path + "/batch.journal";
  BatchJournal j(path, Durability::kFsync);
  EXPECT_EQ(j.durability(), Durability::kFsync);
  const std::uint64_t after_open = j.fsyncs();
  EXPECT_GE(after_open, 1u);  // the header flush
  j.record("00000000000000aa");
  j.record("00000000000000bb");
  j.record("00000000000000aa");  // idempotent: no write, no fsync
  EXPECT_EQ(j.fsyncs(), after_open + 2);
}

TEST(BatchJournal, InjectedEnospcFailsTheAppendTyped) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_journal_enospc");
  BatchJournal j(dir.path + "/batch.journal");
  FaultInjector::global().set_schedule("io_enospc:1");
  EXPECT_THROW(j.record("00000000000000aa"), diag::IoError);
  // The failed append is not remembered as complete.
  EXPECT_FALSE(j.contains("00000000000000aa"));
  FaultInjector::global().clear();
  j.record("00000000000000aa");
  EXPECT_TRUE(j.contains("00000000000000aa"));
}

TEST(BatchJournal, InjectedTearLeavesRepairablePrefix) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_journal_tear");
  const std::string path = dir.path + "/batch.journal";
  {
    BatchJournal j(path);
    j.record("00000000000000aa");
    FaultInjector::global().set_schedule("journal_tear:1");
    EXPECT_THROW(j.record("00000000000000bb"), diag::IoError);
    FaultInjector::global().clear();
  }
  // Half of "done ...bb\n" is on disk; reopening repairs to the prefix.
  WarningCapture warnings;
  BatchJournal j(path);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_TRUE(j.contains("00000000000000aa"));
  EXPECT_GT(j.tail_dropped_bytes(), 0u);
}

TEST(BatchJournal, InjectedFsyncFailureIsTyped) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_journal_fsync_fail");
  BatchJournal j(dir.path + "/batch.journal", Durability::kFsync);
  FaultInjector::global().set_schedule("journal_fsync:1");
  EXPECT_THROW(j.record("00000000000000aa"), diag::IoError);
}

// ---------------------------------------------------- crash-action grammar

TEST(FaultInjector, CrashGrammarParsesAndRejectsMalformedEntries) {
  InjectorReset reset;
  FaultInjector& fi = FaultInjector::global();
  fi.clear();
  // The crash action parses in both exact and persistent forms (firing is
  // exercised in test_crash_recovery, where dying is the point).
  EXPECT_NO_THROW(fi.set_schedule("journal_tear:2!"));
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_NO_THROW(fi.set_schedule("cache_staged:1+!"));
  EXPECT_THROW(fi.set_schedule("cache_write:!"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:1!!"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:1!+"), diag::UsageError);
  EXPECT_THROW(fi.set_schedule("cache_write:0!"), diag::UsageError);
  // Parse-then-commit: the rejected schedules left the last good one armed.
  EXPECT_TRUE(fault_injection_enabled());
  fi.clear();
  EXPECT_FALSE(fault_injection_enabled());
}

TEST(FaultInjector, CrashEntriesDoNotFireBeforeTheirCall) {
  InjectorReset reset;
  // A crash armed at call 3 must leave calls 1-2 untouched — if this
  // test survives these two calls, the boundary is exact (firing would
  // kill the whole test binary).
  FaultInjector::global().set_schedule("unit_test_site:3!");
  EXPECT_FALSE(fault_point("unit_test_site"));
  EXPECT_FALSE(fault_point("unit_test_site"));
  EXPECT_EQ(FaultInjector::global().calls("unit_test_site"), 2u);
  FaultInjector::global().clear();  // never reach call 3
}

// ----------------------------------------------------------------- SIGINT

TEST(ScopedSigintCancel, SigintRequestsCancellation) {
  RunControl rc;
  ScopedRunControl scope(rc);
  {
    ScopedSigintCancel sigint(rc.token);
    std::raise(SIGINT);
    EXPECT_TRUE(rc.token.requested());
    EXPECT_THROW(checkpoint("post-sigint"), diag::CancelledError);
  }
}

TEST(ScopedSigintCancel, ScopesNestAndRestore) {
  CancelToken outer_token;
  ScopedSigintCancel outer(outer_token);
  {
    CancelToken inner_token;
    ScopedSigintCancel inner(inner_token);
    std::raise(SIGINT);
    EXPECT_TRUE(inner_token.requested());
    EXPECT_FALSE(outer_token.requested());
  }
  std::raise(SIGINT);
  EXPECT_TRUE(outer_token.requested());
}

}  // namespace
}  // namespace rlcx::run
