// Tests for the SPICE deck exporter and the CSV waveform writer.
#include <gtest/gtest.h>

#include <sstream>

#include "ckt/spice_export.h"
#include "ckt/waveform.h"

namespace rlcx::ckt {
namespace {

Netlist sample_netlist() {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.8, 100e-12));
  nl.add_resistor(in, out, 42.0);
  const std::size_t l1 = nl.add_inductor(out, kGround, 1e-9);
  const NodeId aux = nl.add_node("aux");
  const std::size_t l2 = nl.add_inductor(aux, kGround, 4e-9);
  nl.add_resistor(in, aux, 10.0);
  nl.add_mutual(l1, l2, 1e-9);  // k = 0.5
  nl.add_capacitor(out, kGround, 50e-15);
  return nl;
}

TEST(SpiceExport, EmitsAllElementCards) {
  const std::string deck = to_spice(sample_netlist());
  EXPECT_NE(deck.find("R1 in out 42"), std::string::npos);
  EXPECT_NE(deck.find("R2 in aux 10"), std::string::npos);
  EXPECT_NE(deck.find("C1 out 0 5e-14"), std::string::npos);
  EXPECT_NE(deck.find("L1 out 0 1e-09"), std::string::npos);
  EXPECT_NE(deck.find("L2 aux 0 4e-09"), std::string::npos);
  EXPECT_NE(deck.find("K1 L1 L2 0.5"), std::string::npos);
  EXPECT_NE(deck.find("V1 in 0 PWL(0 0 1e-10 1.8)"), std::string::npos);
  EXPECT_NE(deck.find(".END"), std::string::npos);
}

TEST(SpiceExport, TranCardAndTitle) {
  SpiceExportOptions opt;
  opt.title = "figure one clock net";
  opt.tran_stop = 2e-9;
  opt.tran_step = 1e-12;
  const std::string deck = to_spice(sample_netlist(), opt);
  EXPECT_EQ(deck.rfind("* figure one clock net", 0), 0u);
  EXPECT_NE(deck.find(".TRAN 1e-12 2e-09"), std::string::npos);
}

TEST(SpiceExport, NoTranCardByDefault) {
  const std::string deck = to_spice(sample_netlist());
  EXPECT_EQ(deck.find(".TRAN"), std::string::npos);
}

TEST(SpiceExport, PeriodicSourceAnnotated) {
  Netlist nl;
  const NodeId in = nl.add_node("clk");
  nl.add_vsource(in, kGround, SourceWaveform::clock(1.0, 1e-9, 50e-12));
  nl.add_resistor(in, kGround, 50.0);
  const std::string deck = to_spice(nl);
  EXPECT_NE(deck.find("$ periodic, T=1e-09"), std::string::npos);
}

TEST(CsvWriter, RowsAndHeader) {
  Waveform a(1e-12, {0.0, 0.5, 1.0});
  Waveform b(1e-12, {1.0, 0.5, 0.0});
  std::ostringstream os;
  write_csv(os, {{"buf", a}, {"sink", b}});
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("time,buf,sink\n", 0), 0u);
  EXPECT_NE(csv.find("1e-12,0.5,0.5"), std::string::npos);
  // 3 data rows + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(CsvWriter, RejectsMismatchedWaveforms) {
  Waveform a(1e-12, {0.0, 0.5});
  Waveform b(2e-12, {0.0, 0.5});
  std::ostringstream os;
  EXPECT_THROW(write_csv(os, {}), std::invalid_argument);
  EXPECT_THROW(write_csv(os, {{"a", a}, {"b", b}}), std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::ckt
