// The rlcx::rt runtime: pool sizing, work distribution, determinism of the
// ordered reduction, and exception fidelity across the pool boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"
#include "rt/parallel.h"
#include "rt/pool.h"

namespace rlcx::rt {
namespace {

TEST(Pool, ExplicitSizeIsHonored) {
  Pool p(3);
  EXPECT_EQ(p.size(), 3);
}

TEST(Pool, NegativeSizeIsAUsageFault) {
  EXPECT_THROW(Pool(-1), diag::UsageError);
  try {
    Pool p(-7);
    FAIL() << "Pool(-7) did not throw";
  } catch (const diag::Fault& f) {
    EXPECT_EQ(f.category(), diag::Category::kUsage);
  }
}

TEST(Pool, ZeroUsesDefaultThreads) {
  Pool p(0);
  EXPECT_GE(p.size(), 1);
}

TEST(Pool, GlobalOverrideResizes) {
  Pool::set_global_threads(2);
  EXPECT_EQ(Pool::global().size(), 2);
  Pool::set_global_threads(3);
  EXPECT_EQ(Pool::global().size(), 3);
  EXPECT_THROW(Pool::set_global_threads(-1), diag::UsageError);
  Pool::set_global_threads(0);  // back to RLCX_THREADS/hardware
  EXPECT_EQ(Pool::global().size(), Pool::default_threads());
}

TEST(Pool, EnvVariableSizesDefault) {
  ::setenv("RLCX_THREADS", "5", 1);
  EXPECT_EQ(Pool::default_threads(), 5);
  ::unsetenv("RLCX_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(Pool::default_threads(),
            hw > 0 ? static_cast<int>(hw) : 1);
}

TEST(Pool, MalformedEnvWarnsAndFallsBack) {
  std::vector<diag::Warning> warnings;
  {
    const diag::ScopedWarningHandler handler(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    ::setenv("RLCX_THREADS", "lots", 1);
    const int n = Pool::default_threads();
    ::unsetenv("RLCX_THREADS");
    EXPECT_GE(n, 1);
  }
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].category, diag::Category::kUsage);
  EXPECT_EQ(warnings[0].stage, "rt");
  EXPECT_NE(warnings[0].message.find("lots"), std::string::npos);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  Pool pool(4);
  const std::size_t n = 103;
  std::vector<int> hits(n, 0);
  ParallelOptions opt;
  opt.grain = 1;
  opt.pool = &pool;
  parallel_for(0, n,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) ++hits[i];
               },
               opt);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyAndSubGrainRanges) {
  Pool pool(2);
  std::atomic<int> calls{0};
  ParallelOptions opt;
  opt.grain = 64;
  opt.pool = &pool;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; }, opt);
  EXPECT_EQ(calls.load(), 0);
  parallel_for(0, 7, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 7u);
  }, opt);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, BodyRunsInsideParallelRegion) {
  Pool pool(2);
  std::vector<int> in_region(8, 0);
  ParallelOptions opt;
  opt.grain = 1;
  opt.pool = &pool;
  parallel_for(0, in_region.size(),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   in_region[i] = in_parallel_region() ? 1 : 0;
               },
               opt);
  for (std::size_t i = 0; i < in_region.size(); ++i)
    EXPECT_EQ(in_region[i], 1) << i;
}

TEST(ParallelFor, SerialRegionForcesInlineExecution) {
  Pool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  SerialRegion serial;
  ParallelOptions opt;
  opt.grain = 1;
  opt.pool = &pool;
  parallel_for(0, 16,
               [&](std::size_t, std::size_t) {
                 EXPECT_EQ(std::this_thread::get_id(), caller);
               },
               opt);
}

TEST(ParallelFor, LowestChunkExceptionWins) {
  Pool pool(4);
  ParallelOptions opt;
  opt.grain = 1;
  opt.pool = &pool;
  // Several chunks throw; the deterministic winner is the one a serial run
  // would hit first (chunk 3), regardless of schedule.
  for (int repeat = 0; repeat < 5; ++repeat) {
    try {
      parallel_for(0, 64,
                   [&](std::size_t lo, std::size_t) {
                     if (lo >= 3 && lo % 2 == 1)
                       throw diag::NumericError(
                           "test", "chunk " + std::to_string(lo));
                   },
                   opt);
      FAIL() << "no exception propagated";
    } catch (const diag::NumericError& e) {
      EXPECT_EQ(e.message(), "chunk 3");
    }
  }
}

TEST(ParallelFor2d, TilesCoverTheFullGrid) {
  Pool pool(3);
  const std::size_t rows = 9, cols = 14;
  std::vector<int> hits(rows * cols, 0);
  ParallelOptions2d opt;
  opt.grain_rows = 2;
  opt.grain_cols = 5;
  opt.pool = &pool;
  parallel_for_2d(rows, cols,
                  [&](std::size_t r0, std::size_t r1, std::size_t c0,
                      std::size_t c1) {
                    EXPECT_LE(r1, rows);
                    EXPECT_LE(c1, cols);
                    for (std::size_t r = r0; r < r1; ++r)
                      for (std::size_t c = c0; c < c1; ++c)
                        ++hits[r * cols + c];
                  },
                  opt);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelReduce, OrderedFoldIsBitIdenticalAcrossPoolSizes) {
  // A sum whose value depends on FP association: any reordering of the
  // chunk fold would change the low bits.
  auto map = [](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      acc += 1.0 / (1.0 + static_cast<double>(i) * 1.000001);
    return acc;
  };
  auto combine = [](double a, double b) { return a + b; };
  Pool serial(1);
  Pool wide(7);
  const double s =
      parallel_reduce_ordered(0, 10007, 16, 0.0, map, combine, &serial);
  const double w =
      parallel_reduce_ordered(0, 10007, 16, 0.0, map, combine, &wide);
  EXPECT_EQ(s, w);  // exact: identical chunking, identical fold order
  EXPECT_GT(s, 0.0);
}

TEST(TaskGroup, RunsEverythingBeforeWaitReturns) {
  Pool pool(3);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) group.run([&done] { ++done; });
  group.wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(TaskGroup, FaultTypeSurvivesThePoolBoundary) {
  Pool pool(2);
  TaskGroup group(pool);
  group.run([] {
    throw diag::CacheError("table-cache", "torn entry deadbeef");
  });
  try {
    group.wait();
    FAIL() << "wait() did not rethrow";
  } catch (const diag::Fault& f) {
    // The concrete diag type — category, stage and message — crossed the
    // worker/waiter boundary intact.
    EXPECT_EQ(f.category(), diag::Category::kCache);
    EXPECT_EQ(f.stage(), "table-cache");
    EXPECT_NE(f.message().find("deadbeef"), std::string::npos);
  }
}

TEST(TaskGroup, NestedRunExecutesInline) {
  Pool pool(2);
  std::atomic<int> inner{0};
  TaskGroup group(pool);
  group.run([&] {
    TaskGroup nested(pool);
    for (int i = 0; i < 4; ++i) nested.run([&inner] { ++inner; });
    nested.wait();
    EXPECT_EQ(inner.load(), 4);  // ran inline, inside this task
  });
  group.wait();
  EXPECT_EQ(inner.load(), 4);
}

}  // namespace
}  // namespace rlcx::rt
