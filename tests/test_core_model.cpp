// Tests for table building, the lookup models and the provider registry.
#include <gtest/gtest.h>

#include "core/table_builder.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

solver::SolveOptions fast_opts() {
  solver::SolveOptions o;
  o.frequency = solver::significant_frequency(100e-12);
  o.max_filaments_per_dim = 2;
  o.plane.strips = 9;
  return o;
}

TableGrid tiny_grid() {
  TableGrid g;
  g.widths = {um(2), um(6), um(14)};
  g.spacings = {um(0.8), um(2.5), um(8)};
  g.lengths = {um(300), um(1000), um(3000)};
  return g;
}

const InductanceTables& cpw_tables() {
  static const InductanceTables t = build_tables(
      tech(), 6, PlaneConfig::kNone, tiny_grid(), fast_opts());
  return t;
}

TEST(TableBuilder, ShapesAndMetadata) {
  const InductanceTables& t = cpw_tables();
  EXPECT_EQ(t.layer, 6);
  EXPECT_EQ(t.planes, PlaneConfig::kNone);
  EXPECT_EQ(t.self.dims(), 2u);
  EXPECT_EQ(t.mutual.dims(), 4u);
  EXPECT_EQ(t.self.values().size(), 9u);
  EXPECT_EQ(t.mutual.values().size(), 81u);
  EXPECT_GT(t.frequency, 1e9);
}

TEST(TableBuilder, ValuesPhysical) {
  const InductanceTables& t = cpw_tables();
  for (double v : t.self.values()) EXPECT_GT(v, 0.0);
  for (double v : t.mutual.values()) EXPECT_GT(v, 0.0);
  // Self exceeds mutual at matching (w, l) for any spacing.
  EXPECT_GT(t.self.at({0, 0}), t.mutual.at({0, 0, 0, 0}));
}

TEST(TableBuilder, GridValidation) {
  TableGrid bad = tiny_grid();
  bad.widths = {um(2)};
  EXPECT_THROW(build_tables(tech(), 6, PlaneConfig::kNone, bad, fast_opts()),
               std::invalid_argument);
}

TEST(TableBuilder, DefaultClockGridSane) {
  const TableGrid g = default_clock_grid();
  EXPECT_GE(g.widths.size(), 3u);
  EXPECT_GE(g.spacings.size(), 3u);
  EXPECT_GE(g.lengths.size(), 3u);
  EXPECT_LT(g.widths.front(), g.widths.back());
}

TEST(TableModel, MatchesDirectOnGridPoints) {
  const TableInductanceModel model(cpw_tables());
  const DirectInductanceModel direct(&tech(), 6, PlaneConfig::kNone,
                                     fast_opts());
  // Exactly on grid nodes the spline reproduces the solve.
  const double self_t = model.self(um(6), um(1000));
  const double self_d = direct.self(um(6), um(1000));
  EXPECT_NEAR(self_t, self_d, 2e-3 * self_d);
  const double mut_t = model.mutual(um(6), um(14), um(2.5), um(1000));
  const double mut_d = direct.mutual(um(6), um(14), um(2.5), um(1000));
  EXPECT_NEAR(mut_t, mut_d, 2e-3 * mut_d);
}

TEST(TableModel, InterpolationAccuracyOffGrid) {
  const TableInductanceModel model(cpw_tables());
  const DirectInductanceModel direct(&tech(), 6, PlaneConfig::kNone,
                                     fast_opts());
  const double st = model.self(um(4), um(700));
  const double sd = direct.self(um(4), um(700));
  EXPECT_NEAR(st, sd, 0.05 * sd);  // sparse 3-point grid: a few %
  const double mt = model.mutual(um(4), um(9), um(1.5), um(700));
  const double md = direct.mutual(um(4), um(9), um(1.5), um(700));
  EXPECT_NEAR(mt, md, 0.08 * std::abs(md));
}

TEST(TableModel, MutualSymmetricInWidths) {
  const TableInductanceModel model(cpw_tables());
  EXPECT_DOUBLE_EQ(model.mutual(um(3), um(10), um(2), um(800)),
                   model.mutual(um(10), um(3), um(2), um(800)));
}

TEST(TableModel, RejectsWrongTableShapes) {
  InductanceTables bad = cpw_tables();
  bad.self = bad.mutual;  // 4-D where 2-D expected
  EXPECT_THROW(TableInductanceModel{bad}, std::invalid_argument);
}

TEST(TableKind, MappingFollowsPlanes) {
  EXPECT_EQ(table_kind_for(PlaneConfig::kNone), TableKind::kPartial);
  EXPECT_EQ(table_kind_for(PlaneConfig::kBelow), TableKind::kLoop);
  EXPECT_EQ(table_kind_for(PlaneConfig::kAbove), TableKind::kLoop);
  EXPECT_EQ(table_kind_for(PlaneConfig::kBothSides), TableKind::kLoop);
}

TEST(DirectModel, LoopModeBelowPartial) {
  solver::SolveOptions o = fast_opts();
  const DirectInductanceModel partial(&tech(), 6, PlaneConfig::kNone, o);
  const DirectInductanceModel loop(&tech(), 6, PlaneConfig::kBelow, o);
  // A plane return always cuts the inductance below the partial value.
  EXPECT_LT(loop.self(um(6), um(1000)), partial.self(um(6), um(1000)));
  EXPECT_THROW(DirectInductanceModel(nullptr, 6, PlaneConfig::kNone, o),
               std::invalid_argument);
}

TEST(Library, RegistryLookups) {
  InductanceLibrary lib;
  EXPECT_FALSE(lib.has(6, PlaneConfig::kNone));
  EXPECT_THROW(lib.provider(6, PlaneConfig::kNone), std::out_of_range);
  lib.add(6, PlaneConfig::kNone,
          std::make_shared<DirectInductanceModel>(&tech(), 6,
                                                  PlaneConfig::kNone,
                                                  fast_opts()));
  EXPECT_TRUE(lib.has(6, PlaneConfig::kNone));
  EXPECT_FALSE(lib.has(6, PlaneConfig::kBelow));
  EXPECT_GT(lib.provider(6, PlaneConfig::kNone).self(um(4), um(500)), 0.0);
  EXPECT_THROW(lib.add(6, PlaneConfig::kNone, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::core
