// Unit tests for the dense matrix and LU machinery.
#include <gtest/gtest.h>

#include <complex>

#include "numeric/lu.h"
#include "numeric/matrix.h"

namespace rlcx {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix<double> m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitThrows) {
  EXPECT_THROW((Matrix<double>{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply) {
  const auto id = Matrix<double>::identity(3);
  Matrix<double> a{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  const auto b = a * id;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
}

TEST(Matrix, Transpose) {
  Matrix<double> a{{1, 2, 3}, {4, 5, 6}};
  const auto t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> b{{4, 3}, {2, 1}};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  const auto d = a - b;
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  const auto sc = 2.0 * a;
  EXPECT_DOUBLE_EQ(sc(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix<double> a(2, 2), b(3, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatVec) {
  Matrix<double> a{{1, 2}, {3, 4}};
  const std::vector<double> y = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix<double> a{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}};
  const std::vector<double> b{5, -2, 9};
  LuDecomposition<double> lu(a);
  const auto x = lu.solve(b);
  // Verify A x = b.
  const auto r = a * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r[i], b[i], 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // a(0,0) = 0 forces a row swap.
  Matrix<double> a{{0, 1}, {1, 0}};
  LuDecomposition<double> lu(a);
  const auto x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  Matrix<double> a{{1, 2}, {2, 4}};
  EXPECT_THROW(LuDecomposition<double>{a}, std::runtime_error);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  Matrix<C> a{{C(1, 1), C(2, 0)}, {C(0, -1), C(1, 2)}};
  const std::vector<C> b{C(3, 1), C(0, 2)};
  LuDecomposition<C> lu(a);
  const auto x = lu.solve(b);
  const auto r = a * x;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(r[i].real(), b[i].real(), 1e-12);
    EXPECT_NEAR(r[i].imag(), b[i].imag(), 1e-12);
  }
}

TEST(Lu, InverseRoundTrip) {
  Matrix<double> a{{4, 2, 0.5}, {2, 5, 1}, {0.5, 1, 3}};
  const auto inv = inverse(a);
  const auto prod = a * inv;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Lu, MatrixRhs) {
  Matrix<double> a{{3, 1}, {1, 2}};
  Matrix<double> b{{1, 0}, {0, 1}};
  LuDecomposition<double> lu(a);
  const auto x = lu.solve(b);
  const auto prod = a * x;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

// Property sweep: random-ish SPD systems of growing size solve to high
// residual accuracy.
class LuSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizeSweep, ResidualSmall) {
  const std::size_t n = GetParam();
  Matrix<double> a(n, n);
  // Deterministic diagonally-dominant fill.
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = std::sin(static_cast<double>(i * 31 + j * 7 + 1));
      row += std::abs(a(i, j));
    }
    a(i, i) = row + 1.0;
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(static_cast<double>(i));
  LuDecomposition<double> lu(a);
  const auto x = lu.solve(b);
  const auto r = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep,
                         ::testing::Values<std::size_t>(1, 2, 5, 17, 64, 150));

}  // namespace
}  // namespace rlcx
