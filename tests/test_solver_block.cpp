// Tests for the block-level field solver: partial and loop extraction.
//
// These pin the two "Foundations" of the paper (Section II) numerically and
// check the loop reduction against hand-derivable symmetric cases.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/partial_inductance.h"
#include "diag/error.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

namespace rlcx::solver {
namespace {

using geom::Block;
using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

SolveOptions low_freq() {
  SolveOptions o;
  o.frequency = 1e6;  // skin depth >> conductor: uniform current
  return o;
}

TEST(Frequency, SignificantFrequencyDefinition) {
  EXPECT_NEAR(significant_frequency(100e-12), 3.2e9, 1e-3);
  EXPECT_NEAR(rise_time_for_frequency(3.2e9), 100e-12, 1e-18);
  EXPECT_THROW(significant_frequency(0.0), std::invalid_argument);
  EXPECT_THROW(rise_time_for_frequency(-1.0), std::invalid_argument);
}

TEST(ExtractPartial, SingleTraceMatchesDirectSelfPartial) {
  const Block blk = geom::single_trace(tech(), 6, um(1000), um(10));
  const PartialResult r = extract_partial(blk, low_freq());
  ASSERT_EQ(r.inductance.rows(), 1u);

  peec::Bar bar;
  bar.length = um(1000);
  bar.t_min = -um(5);
  bar.t_width = um(10);
  bar.z_min = tech().layer(6).z_bottom;
  bar.z_thick = tech().layer(6).thickness;
  const double direct = peec::self_partial(bar);
  EXPECT_NEAR(r.inductance(0, 0), direct, 1e-6 * direct);

  // DC resistance: rho l / (w t).
  const double rdc = tech().layer(6).rho * um(1000) / (um(10) * um(2));
  EXPECT_NEAR(r.resistance[0], rdc, 1e-6 * rdc);
}

TEST(ExtractPartial, Foundation1SelfIndependentOfNeighbours) {
  // Paper Foundation 1: self Lp of a trace depends only on its own geometry.
  const Block alone = geom::single_trace(tech(), 6, um(2000), um(4));
  const Block crowd = geom::uniform_array(tech(), 6, um(2000), 5, um(4),
                                          um(2));
  const PartialResult ra = extract_partial(alone, low_freq());
  const PartialResult rc = extract_partial(crowd, low_freq());
  const double self_alone = ra.inductance(0, 0);
  const double self_mid = rc.inductance(2, 2);  // middle of five
  EXPECT_NEAR(self_mid, self_alone, 1e-4 * self_alone);
}

TEST(ExtractPartial, Foundation2MutualIndependentOfOthers) {
  // Paper Foundation 2: mutual Lp of two traces depends only on the pair.
  const Block crowd = geom::uniform_array(tech(), 6, um(2000), 5, um(4),
                                          um(2));
  const Block pair = crowd.subproblem({0, 4});
  const PartialResult rc = extract_partial(crowd, low_freq());
  const PartialResult rp = extract_partial(pair, low_freq());
  EXPECT_NEAR(rc.inductance(0, 4), rp.inductance(0, 1),
              1e-4 * std::abs(rp.inductance(0, 1)));
}

TEST(ExtractPartial, MatrixSymmetricPositiveDiagonal) {
  const Block blk = geom::uniform_array(tech(), 6, um(1000), 4, um(2), um(2));
  const PartialResult r = extract_partial(blk, low_freq());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(r.inductance(i, i), 0.0);
    EXPECT_GT(r.resistance[i], 0.0);
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(r.inductance(i, j), r.inductance(j, i),
                  1e-9 * std::abs(r.inductance(i, i)));
  }
  // Mutual decays with separation.
  EXPECT_GT(r.inductance(0, 1), r.inductance(0, 2));
  EXPECT_GT(r.inductance(0, 2), r.inductance(0, 3));
}

TEST(ExtractLoop, SymmetricGsgMatchesHandReduction) {
  // For a symmetric G-S-G block at uniform current the return splits evenly:
  // Lloop = Ls - 2 Msg + (Lg + Mgg)/2,  Rloop = Rs + Rg/2.
  const Block blk = geom::coplanar_waveguide(tech(), 6, um(1000), um(10),
                                             um(5), um(1));
  const SolveOptions opt = low_freq();
  const PartialResult p = extract_partial(blk, opt);
  const LoopResult l = extract_loop(blk, opt);
  ASSERT_EQ(l.inductance.rows(), 1u);
  ASSERT_EQ(l.signal_traces.size(), 1u);
  EXPECT_EQ(l.signal_traces[0], 1u);  // middle trace is the signal

  // Block order: gnd(0), sig(1), gnd(2).
  const double ls = p.inductance(1, 1);
  const double lg = p.inductance(0, 0);
  const double msg = p.inductance(0, 1);
  const double mgg = p.inductance(0, 2);
  const double expected_l = ls - 2.0 * msg + 0.5 * (lg + mgg);
  EXPECT_NEAR(l.inductance(0, 0), expected_l, 1e-4 * expected_l);

  const double rs = p.resistance[1];
  const double rg = p.resistance[0];
  EXPECT_NEAR(l.resistance(0, 0), rs + 0.5 * rg, 1e-4 * (rs + 0.5 * rg));
}

TEST(ExtractLoop, LoopBelowPartialSelf) {
  // A nearby return always reduces inductance below the partial self value.
  const Block blk = geom::coplanar_waveguide(tech(), 6, um(6000), um(10),
                                             um(5), um(1));
  const SolveOptions opt = low_freq();
  const double lself = extract_partial(blk, opt).inductance(1, 1);
  const double lloop = extract_loop(blk, opt).inductance(0, 0);
  EXPECT_GT(lloop, 0.0);
  EXPECT_LT(lloop, lself);
}

TEST(ExtractLoop, PlaneReturnLowersInductanceFurther) {
  // At the significant frequency the return distribution minimises loop
  // impedance, so an extra parallel return (the plane) can only lower L.
  // (At DC the split minimises resistance instead and the claim can fail.)
  const Block cpw = geom::coplanar_waveguide(tech(), 6, um(2000), um(10),
                                             um(5), um(1));
  const Block ms = geom::microstrip(tech(), 6, um(2000), um(10), um(5),
                                    um(1));
  SolveOptions opt;
  opt.frequency = 3.2e9;
  const double l_cpw = extract_loop(cpw, opt).inductance(0, 0);
  const double l_ms = extract_loop(ms, opt).inductance(0, 0);
  EXPECT_LT(l_ms, l_cpw);
  EXPECT_GT(l_ms, 0.0);
}

TEST(ExtractLoop, ExtensionFoundationHoldsOverPlane) {
  // Paper Section II.B / Figure 5: with a plane below, the loop self
  // inductance of a trace in an array matches the single-trace subproblem,
  // and the mutual matches the two-trace subproblem.  This holds at the
  // significant frequency, where the plane return concentrates under the
  // trace (at DC it spreads resistively over the whole plane, which couples
  // the result to the plane extent).
  const Block arr = geom::uniform_array(tech(), 6, um(2000), 5, um(4), um(4),
                                        PlaneConfig::kBelow);
  SolveOptions opt;
  opt.frequency = 3.2e9;
  opt.plane.strips = 21;
  const LoopResult full = extract_loop(arr, opt);

  const LoopResult single = extract_loop(arr.subproblem({0}), opt);
  EXPECT_NEAR(full.inductance(0, 0), single.inductance(0, 0),
              0.05 * single.inductance(0, 0));

  const LoopResult pair = extract_loop(arr.subproblem({0, 4}), opt);
  EXPECT_NEAR(full.inductance(0, 4), pair.inductance(0, 1),
              0.08 * std::abs(pair.inductance(0, 1)));
}

TEST(ExtractLoop, SkinEffectRaisesRLowersL) {
  const Block blk = geom::coplanar_waveguide(tech(), 6, um(2000), um(10),
                                             um(10), um(1));
  SolveOptions lo = low_freq();
  SolveOptions hi;
  hi.frequency = 10e9;
  const LoopResult rlo = extract_loop(blk, lo);
  const LoopResult rhi = extract_loop(blk, hi);
  EXPECT_GT(rhi.resistance(0, 0), rlo.resistance(0, 0));
  EXPECT_LT(rhi.inductance(0, 0), rlo.inductance(0, 0));
}

TEST(ExtractLoop, ErrorsWithoutReturnPath) {
  const Block blk = geom::single_trace(tech(), 6, um(1000), um(10));
  EXPECT_THROW(extract_loop(blk, low_freq()), std::invalid_argument);
  SolveOptions bad;
  bad.frequency = 0.0;
  const Block gsg = geom::coplanar_waveguide(tech(), 6, um(1000), um(10),
                                             um(5), um(1));
  EXPECT_THROW(extract_loop(gsg, bad), std::invalid_argument);
  EXPECT_THROW(extract_partial(gsg, bad), std::invalid_argument);
}

TEST(PlaneStrips, CoverBlockWithMargin) {
  const Block ms = geom::microstrip(tech(), 6, um(2000), um(10), um(5),
                                    um(1));
  PlaneOptions popt;
  popt.strips = 11;
  const auto strips = plane_strips(ms, ms.plane_layer_below(), popt);
  ASSERT_EQ(strips.size(), 11u);
  const double block_lo = ms.trace(0).x_left();
  const double block_hi = ms.trace(2).x_right();
  EXPECT_LT(strips.front().t_min, block_lo);
  EXPECT_GT(strips.back().t_max(), block_hi);
  // Strips sit in the plane layer and tile contiguously.
  const geom::Layer& pl = tech().layer(4);
  for (std::size_t i = 0; i < strips.size(); ++i) {
    EXPECT_DOUBLE_EQ(strips[i].z_min, pl.z_bottom);
    EXPECT_DOUBLE_EQ(strips[i].z_thick, pl.thickness);
    if (i > 0) {
      EXPECT_NEAR(strips[i].t_min, strips[i - 1].t_max(), 1e-12);
    }
  }
}

TEST(PlaneStrips, RejectsBadCount) {
  const Block ms = geom::microstrip(tech(), 6, um(2000), um(10), um(5),
                                    um(1));
  PlaneOptions popt;
  popt.strips = 0;
  EXPECT_THROW(plane_strips(ms, ms.plane_layer_below(), popt),
               std::invalid_argument);
}

// Property sweep: the loop inductance of a coplanar waveguide decreases
// monotonically as the ground spacing shrinks (tighter return loop).
class SpacingSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpacingSweep, TighterReturnMeansLowerLoopL) {
  const double s_um = GetParam();
  const Block near = geom::coplanar_waveguide(tech(), 6, um(1000), um(4),
                                              um(4), um(s_um));
  const Block far = geom::coplanar_waveguide(tech(), 6, um(1000), um(4),
                                             um(4), um(s_um * 2.0));
  const SolveOptions opt = low_freq();
  EXPECT_LT(extract_loop(near, opt).inductance(0, 0),
            extract_loop(far, opt).inductance(0, 0));
}

INSTANTIATE_TEST_SUITE_P(Spacings, SpacingSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

// A loop extraction with nothing to close the loop is a structural
// problem, reported as a categorized `geometry` error that points at the
// fix — not a singular matrix deep inside the factorisation.
TEST(ExtractLoop, SingleTraceWithoutReturnPathIsAGeometryError) {
  const Block blk(&tech(), 6, um(1000),
                  {{geom::TraceRole::kSignal, um(10), 0.0, "sig"}},
                  PlaneConfig::kNone);
  try {
    extract_loop(blk, low_freq());
    FAIL() << "no return path must be rejected";
  } catch (const rlcx::diag::GeometryError& e) {
    EXPECT_NE(std::string(e.what()).find("no return path"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("extract_partial"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExtractLoop, AllGroundBlockIsAGeometryError) {
  const Block blk(&tech(), 6, um(1000),
                  {{geom::TraceRole::kGround, um(10), 0.0, "g1"},
                   {geom::TraceRole::kGround, um(10), um(20), "g2"}},
                  PlaneConfig::kNone);
  EXPECT_THROW(extract_loop(blk, low_freq()), rlcx::diag::GeometryError);
}

}  // namespace
}  // namespace rlcx::solver
