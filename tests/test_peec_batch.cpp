// Validation of the SIMD batch kernel engine (peec/kernel_batch.h).
//
// Three layers of checks, mirroring the engine's contracts:
//   * accuracy — engine values vs the scalar libm kernels
//     (hoer_love_mutual / filament_mutual / *_partial_chunked), which stay
//     in the tree precisely to serve as the independent oracle; agreement
//     is to the Hoer-Love cancellation-noise floor (~1e-8 relative),
//     including the v -> 0 and rho -> |v| boundary geometries where the
//     branch-free rewrite's guarded selects take over;
//   * bit-identity — RLCX_SIMD=scalar / avx2 / avx512 paths must produce
//     identical doubles (EXPECT_EQ, no tolerance), and results must be
//     independent of pool width and batch composition;
//   * guards — the engine rejects the same degenerate geometry with the
//     same diagnostics as the scalar kernels, at append time.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "diag/error.h"
#include "numeric/simd.h"
#include "numeric/units.h"
#include "numeric/vecmath.h"
#include "peec/assembly.h"
#include "peec/kernel_batch.h"
#include "peec/partial_inductance.h"
#include "rt/pool.h"

namespace rlcx::peec {
namespace {

using units::um;

Bar make_bar(double w, double t, double l, double x = 0.0, double z = 0.0,
             double y0 = 0.0, Axis axis = Axis::kY) {
  Bar b;
  b.axis = axis;
  b.a_min = y0;
  b.length = l;
  b.t_min = x;
  b.t_width = w;
  b.z_min = z;
  b.z_thick = t;
  return b;
}

double batch_self(const Bar& b, const PartialOptions& opt = {}) {
  BatchEvaluator ev;
  ev.add_self(chunk_lengthwise(b, opt.max_aspect), opt);
  double v = 0.0;
  ev.run(&v);
  return v;
}

double batch_pair(const Bar& b1, const Bar& b2,
                  const PartialOptions& opt = {}) {
  BatchEvaluator ev;
  ev.add_pair(b1, b2, chunk_lengthwise(b1, opt.max_aspect),
              chunk_lengthwise(b2, opt.max_aspect), opt);
  double v = 0.0;
  ev.run(&v);
  return v;
}

/// Forces a SIMD mode for the scope, restoring the environment policy.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(numeric::SimdMode m) { numeric::simd_force_mode(m); }
  ~ScopedSimdMode() {
    numeric::simd_force_mode(
        numeric::simd_mode_from_env(std::getenv("RLCX_SIMD")));
  }
};

// The kernel's cancellation-noise floor: vecmath and libm differ by ulps,
// which the 64-term bracket amplifies to ~1e-9..1e-8 per term
// (docs/performance.md); chunked geometries sum hundreds of such terms,
// so totals are pinned one decade looser.
constexpr double kOracleRelTol = 1e-7;

// ---------------------------------------------------------------------------
// vecmath building blocks vs libm.

TEST(Vecmath, LogMatchesLibmAcrossDecades) {
  for (double x = 1e-12; x < 1e12; x *= 1.7) {
    const double ref = std::log(x);
    EXPECT_NEAR(numeric::vecmath::log_bf(x), ref,
                1e-13 * std::max(1.0, std::abs(ref)))
        << "x=" << x;
  }
}

TEST(Vecmath, AtanMatchesLibmIncludingRangeReductionBoundaries) {
  // Sweep through both range-reduction thresholds (0.66 and tan(3pi/8)).
  for (double x = 1e-9; x < 1e9; x *= 1.4) {
    for (const double s : {x, -x}) {
      const double ref = std::atan(s);
      EXPECT_NEAR(numeric::vecmath::atan_bf(s), ref,
                  1e-13 * std::max(1.0, std::abs(ref)))
          << "x=" << s;
    }
  }
}

TEST(Vecmath, AsinhMatchesLibmIncludingHugeArguments) {
  for (double x = 1e-9; x < 1e10; x *= 1.9) {
    for (const double s : {x, -x}) {
      const double ref = std::asinh(s);
      EXPECT_NEAR(numeric::vecmath::asinh_bf(s), ref,
                  1e-13 * std::max(1.0, std::abs(ref)))
          << "x=" << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine vs the scalar oracle kernels, per geometry-class shape.

TEST(BatchEngine, SelfMatchesScalarOracle) {
  PartialOptions opt;
  // Short (single-chunk), long (multi-chunk), and squat cross-sections.
  const Bar shapes[] = {
      make_bar(um(1), um(0.5), um(50)),
      make_bar(um(1), um(0.5), um(6000)),  // forces the aspect chunking
      make_bar(um(20), um(2), um(100)),
      make_bar(um(0.5), um(4), um(800), um(3), um(1)),
  };
  for (const Bar& b : shapes) {
    const double oracle =
        self_partial_chunked(chunk_lengthwise(b, opt.max_aspect), opt);
    // Chunked selves sum collinear touching-chunk mutual terms whose
    // brackets cancel almost completely, so the noise floor of the total
    // is another decade up from the per-bracket floor.
    EXPECT_NEAR(batch_self(b, opt), oracle, 1e-6 * std::abs(oracle))
        << "w=" << b.t_width << " l=" << b.length;
  }
}

TEST(BatchEngine, NearPairMatchesScalarOracle) {
  PartialOptions opt;
  const Bar b1 = make_bar(um(2), um(0.5), um(400));
  // Close lateral neighbour: the Hoer-Love volume path.
  const Bar b2 = make_bar(um(2), um(0.5), um(400), um(3));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  const double oracle = mutual_partial_chunked(b1, b2, c1, c2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, FarPairMatchesScalarOracle) {
  PartialOptions opt;
  const Bar b1 = make_bar(um(2), um(0.5), um(400));
  // Far lateral neighbour: the filament fast path (r > 0).
  const Bar b2 = make_bar(um(2), um(0.5), um(400), um(100));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  const double oracle = mutual_partial_chunked(b1, b2, c1, c2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, CollinearFarPairMatchesScalarOracle) {
  PartialOptions opt;
  // Same track, large axial gap: the filament path with r == 0 (the
  // collinear closed form's select).
  const Bar b1 = make_bar(um(2), um(0.5), um(100));
  const Bar b2 = make_bar(um(2), um(0.5), um(100), 0.0, 0.0, um(300));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  const double oracle = mutual_partial_chunked(b1, b2, c1, c2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, LongChunkedPairMatchesScalarOracle) {
  PartialOptions opt;
  // Clock-wiring aspect: both bars decompose into many chunks, mixing
  // volume terms (nearby chunk pairs) and filament terms (distant ones)
  // inside a single slot.
  const Bar b1 = make_bar(um(1), um(0.5), um(6000));
  const Bar b2 = make_bar(um(1), um(0.5), um(6000), um(2.5));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  const double oracle = mutual_partial_chunked(b1, b2, c1, c2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, OrthogonalPairIsExactlyZero) {
  PartialOptions opt;
  const Bar b1 = make_bar(um(2), um(0.5), um(100));
  const Bar b2 = make_bar(um(2), um(0.5), um(100), um(50), um(5), 0.0,
                          Axis::kX);
  EXPECT_EQ(batch_pair(b1, b2, opt), 0.0);
}

// ---------------------------------------------------------------------------
// Boundary geometries: corners where the Hoer-Love bracket's log terms hit
// v -> 0 (a corner coordinate vanishes) and rho -> |v| (the transverse
// distance w2 vanishes).  The branch-free rewrite handles both with
// guarded selects and the |v| log-ratio identity; these pin it against the
// original kernel's explicit special cases.

TEST(BatchEngine, FaceTouchingPairMatchesOracle) {
  PartialOptions opt;
  // Bars sharing a full face: E = w, so the corner coordinate E - a == 0
  // exactly (the v -> 0 boundary of the x log term).
  const Bar b1 = make_bar(um(2), um(0.5), um(200));
  const Bar b2 = make_bar(um(2), um(0.5), um(200), um(2));
  const double oracle = mutual_partial(b1, b2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, EdgeTouchingPairMatchesOracle) {
  PartialOptions opt;
  // Bars sharing only an edge: E = w AND P = t, so corners exist with two
  // vanishing coordinates — the rho -> |v| boundary, where 1/sqrt(w2) in
  // the hoisted tables is Inf and the zero prefactor select must discard
  // it rather than poison the bracket.
  const Bar b1 = make_bar(um(2), um(0.5), um(200));
  const Bar b2 = make_bar(um(2), um(0.5), um(200), um(2), um(0.5));
  const double oracle = mutual_partial(b1, b2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, CollinearNearPairMatchesOracle) {
  PartialOptions opt;
  // Axially-in-line bars with a gap below the far threshold: the volume
  // kernel runs with E = P = 0, so *every* corner has at most one nonzero
  // transverse coordinate — the densest population of both boundary cases
  // a real mesh produces.
  const Bar b1 = make_bar(um(2), um(0.5), um(100));
  const Bar b2 = make_bar(um(2), um(0.5), um(100), 0.0, 0.0, um(101));
  const double oracle = mutual_partial(b1, b2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, NearVanishingCornerMatchesOracle) {
  PartialOptions opt;
  // An almost-touching face: the corner coordinate is ~1e-9 of the bar
  // width, approaching the v -> 0 limit from above.  The log-ratio
  // identity must stay stable here (|v| + rho adds positives only).
  const Bar b1 = make_bar(um(2), um(0.5), um(200));
  const Bar b2 = make_bar(um(2), um(0.5), um(200), um(2) * (1.0 + 1e-9));
  const double oracle = mutual_partial(b1, b2, opt);
  EXPECT_NEAR(batch_pair(b1, b2, opt), oracle,
              kOracleRelTol * std::abs(oracle));
}

TEST(BatchEngine, SelfHasAllBoundaryCorners) {
  PartialOptions opt;
  // The self class is the boundary stress case: E = P = l3 = 0 makes the
  // bracket's corner set include the origin itself (x = y = z = 0, where
  // every term's guard must fire).
  const Bar b = make_bar(um(3), um(1), um(90));
  const double oracle = self_partial(b, opt);
  EXPECT_NEAR(batch_self(b, opt), oracle, kOracleRelTol * std::abs(oracle));
}

// ---------------------------------------------------------------------------
// Bit-identity across SIMD modes and schedules.

// Dyadic coordinates (like test_peec_memo's meshes): every boundary is an
// exact binary fraction, so congruent pairs present bit-identical inputs
// and the memo's element-exactness contract applies.
std::vector<Filament> test_mesh(std::size_t nw) {
  std::vector<Filament> f;
  for (std::size_t i = 0; i < nw; ++i) {
    Filament fl;
    fl.bar = make_bar(1.0, 0.5, 512.0, 2.0 * static_cast<double>(i));
    fl.sign = (i % 3 == 0) ? -1.0 : 1.0;
    f.push_back(fl);
  }
  return f;
}

TEST(BatchEngine, SimdModesAreBitIdentical) {
  PartialOptions opt;
  opt.memo = false;  // direct path: every pair through the engine
  const std::vector<Filament> mesh = test_mesh(12);
  RealMatrix scalar_lp(0, 0);
  {
    ScopedSimdMode mode(numeric::SimdMode::kScalar);
    scalar_lp = partial_inductance_matrix(mesh, opt);
  }
  if (numeric::simd_avx2_supported()) {
    ScopedSimdMode mode(numeric::SimdMode::kAvx2);
    const RealMatrix lp = partial_inductance_matrix(mesh, opt);
    for (std::size_t i = 0; i < lp.rows(); ++i)
      for (std::size_t j = 0; j < lp.cols(); ++j)
        EXPECT_EQ(lp(i, j), scalar_lp(i, j)) << "avx2 " << i << "," << j;
  }
  if (numeric::simd_avx512_supported()) {
    ScopedSimdMode mode(numeric::SimdMode::kAvx512);
    const RealMatrix lp = partial_inductance_matrix(mesh, opt);
    for (std::size_t i = 0; i < lp.rows(); ++i)
      for (std::size_t j = 0; j < lp.cols(); ++j)
        EXPECT_EQ(lp(i, j), scalar_lp(i, j)) << "avx512 " << i << "," << j;
  }
}

TEST(BatchEngine, EnvScalarOverrideResolvesToScalar) {
  // RLCX_SIMD resolution is pure (exposed for exactly this test): "scalar"
  // always forces the baseline, typos fall back to auto rather than
  // silently changing numerics (all modes are bit-identical anyway).
  EXPECT_EQ(numeric::simd_mode_from_env("scalar"),
            numeric::SimdMode::kScalar);
  const numeric::SimdMode best = numeric::simd_mode_from_env(nullptr);
  EXPECT_EQ(numeric::simd_mode_from_env("auto"), best);
  EXPECT_EQ(numeric::simd_mode_from_env(""), best);
  EXPECT_EQ(numeric::simd_mode_from_env("bogus"), best);
  if (!numeric::simd_avx2_supported()) {
    EXPECT_EQ(numeric::simd_mode_from_env("avx2"),
              numeric::SimdMode::kScalar);
  }
}

TEST(BatchEngine, PoolWidthDoesNotChangeResults) {
  PartialOptions opt;
  const std::vector<Filament> mesh = test_mesh(20);
  const RealMatrix base = partial_inductance_matrix(mesh, opt);
  rt::Pool one(1), two(2), seven(7);
  for (rt::Pool* pool : {&one, &two, &seven}) {
    const RealMatrix lp = partial_inductance_matrix(mesh, opt, pool);
    for (std::size_t i = 0; i < lp.rows(); ++i)
      for (std::size_t j = 0; j < lp.cols(); ++j)
        EXPECT_EQ(lp(i, j), base(i, j));
  }
}

TEST(BatchEngine, BatchCompositionDoesNotChangeValues) {
  // The same pair evaluated alone and inside a larger batch must yield
  // the identical double (values are elementwise; the reduction order is
  // fixed per slot) — this is what makes the memo flush boundary and the
  // hmat row batching unobservable.
  PartialOptions opt;
  const Bar b1 = make_bar(um(1), um(0.5), um(300));
  const Bar b2 = make_bar(um(1), um(0.5), um(300), um(2));
  const Bar b3 = make_bar(um(1), um(0.5), um(300), um(40));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  const auto c3 = chunk_lengthwise(b3, opt.max_aspect);

  const double alone = batch_pair(b1, b2, opt);

  BatchEvaluator ev;
  ev.add_self(c1, opt);
  const std::size_t slot = ev.add_pair(b1, b2, c1, c2, opt);
  ev.add_pair(b1, b3, c1, c3, opt);
  ev.add_pair(b2, b3, c2, c3, opt);
  std::vector<double> vals(ev.slots());
  ev.run(vals.data());
  EXPECT_EQ(vals[slot], alone);

  // And clear() really resets: re-running the same appends reproduces the
  // same slots.
  ev.clear();
  EXPECT_EQ(ev.slots(), 0u);
  EXPECT_EQ(ev.volume_entries() + ev.filament_entries(), 0u);
  const std::size_t slot2 = ev.add_pair(b1, b2, c1, c2, opt);
  std::vector<double> vals2(ev.slots());
  ev.run(vals2.data());
  EXPECT_EQ(vals2[slot2], alone);
}

TEST(BatchEngine, StatsCountTermsAndRuns) {
  PartialOptions opt;
  const Bar b1 = make_bar(um(1), um(0.5), um(300));
  const Bar b2 = make_bar(um(1), um(0.5), um(300), um(2));
  const auto c1 = chunk_lengthwise(b1, opt.max_aspect);
  const auto c2 = chunk_lengthwise(b2, opt.max_aspect);
  BatchEvaluator ev;
  ev.add_pair(b1, b2, c1, c2, opt);
  const std::size_t terms = ev.volume_entries() + ev.filament_entries();
  EXPECT_GT(terms, 0u);
  const BatchStats before = batch_stats_total();
  double v = 0.0;
  ev.run(&v);
  const BatchStats after = batch_stats_total();
  EXPECT_EQ(after.batch_runs, before.batch_runs + 1);
  EXPECT_EQ((after.volume_terms + after.filament_terms) -
                (before.volume_terms + before.filament_terms),
            terms);
}

// ---------------------------------------------------------------------------
// Guards: same rejection, same diagnostics, at append time.

TEST(BatchEngine, DegenerateDimensionsThrowAtAppend) {
  PartialOptions opt;
  BatchEvaluator ev;
  const Bar good = make_bar(um(1), um(0.5), um(100));
  const Bar zero_width = make_bar(0.0, um(0.5), um(100), um(5));
  EXPECT_THROW(ev.add_pair(good, zero_width,
                           chunk_lengthwise(good, opt.max_aspect),
                           {zero_width}, opt),
               diag::GeometryError);
}

TEST(BatchEngine, OverlappingBarsThrowAtAppend) {
  PartialOptions opt;
  BatchEvaluator ev;
  const Bar b1 = make_bar(um(2), um(0.5), um(100));
  const Bar b2 = make_bar(um(2), um(0.5), um(100), um(1));  // overlaps b1
  EXPECT_THROW(ev.add_pair(b1, b2, chunk_lengthwise(b1, opt.max_aspect),
                           chunk_lengthwise(b2, opt.max_aspect), opt),
               diag::GeometryError);
}

TEST(BatchEngine, MemoizedFillStaysElementExactToDirectFill) {
  // The PR-4 contract, now carried end-to-end by the engine: the memoized
  // three-pass fill and the direct fill agree element-exactly.
  PartialOptions direct_opt;
  direct_opt.memo = false;
  PartialOptions memo_opt;
  memo_opt.memo = true;
  const std::vector<Filament> mesh = test_mesh(16);
  const RealMatrix direct = partial_inductance_matrix(mesh, direct_opt);
  const RealMatrix memo = partial_inductance_matrix(mesh, memo_opt);
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_EQ(memo(i, j), direct(i, j)) << i << "," << j;
}

}  // namespace
}  // namespace rlcx::peec
