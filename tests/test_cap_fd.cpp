// Validation of the 2-D finite-difference capacitance solver.
#include <gtest/gtest.h>

#include <cmath>

#include "cap/fd2d.h"
#include "cap/models.h"
#include "geom/builders.h"
#include "numeric/units.h"

namespace rlcx::cap {
namespace {

using units::um;

Fd2dOptions coarse() {
  Fd2dOptions o;
  o.cell = 0.5e-6;
  o.margin = 10e-6;
  return o;
}

TEST(Fd2d, ParallelPlateLimit) {
  // A very wide conductor close to the plane: C ~ eps w / h plus fringe.
  const double w = um(40), h = um(1), t = um(1);
  std::vector<FdConductor> cs{{0.0, w, h, h + t}};
  Fd2dOptions opt = coarse();
  opt.cell = 0.25e-6;
  const RealMatrix c = fd_capacitance_matrix(cs, 3.9, 0.0, opt);
  const double plate = parallel_plate_cul(w, h, 3.9);
  EXPECT_GT(c(0, 0), plate);         // fringe adds
  EXPECT_LT(c(0, 0), 1.35 * plate);  // but is modest for w/h = 40
}

TEST(Fd2d, MatrixSignsAndSymmetry) {
  std::vector<FdConductor> cs{
      {0.0, um(4), um(2), um(4)},
      {um(6), um(10), um(2), um(4)},
      {um(13), um(17), um(2), um(4)},
  };
  const RealMatrix c = fd_capacitance_matrix(cs, 3.9, 0.0, coarse());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(c(i, i), 0.0);
    double row = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_LT(c(i, j), 0.0);
      }
      EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
      row += c(i, j);
    }
    EXPECT_GT(row, 0.0);  // every conductor holds net cap to ground
  }
}

TEST(Fd2d, CouplingDecaysWithSpacing) {
  auto coupling = [&](double s_um) {
    std::vector<FdConductor> cs{
        {0.0, um(4), um(2), um(4)},
        {um(4) + um(s_um), um(8) + um(s_um), um(2), um(4)},
    };
    const RealMatrix c = fd_capacitance_matrix(cs, 3.9, 0.0, coarse());
    return -c(0, 1);
  };
  const double c1 = coupling(1.0);
  const double c2 = coupling(2.0);
  const double c4 = coupling(4.0);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c4);
  EXPECT_GT(c4, 0.0);
}

TEST(Fd2d, AgreesWithSakuraiWithinModelSpread) {
  // Single line over a plane: FD total vs the Sakurai closed form.  These
  // are independent models; 25% agreement is the expected band.
  const double w = um(4), t = um(2), h = um(2);
  std::vector<FdConductor> cs{{0.0, w, h, h + t}};
  const RealMatrix c = fd_capacitance_matrix(cs, 3.9, 0.0, coarse());
  const double sak = sakurai_total_cul(w, t, h, 3.9);
  EXPECT_NEAR(c(0, 0), sak, 0.25 * sak);
}

TEST(Fd2d, BlockWrapperMatchesManualSetup) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block blk =
      geom::coplanar_waveguide(tech, 6, um(100), um(4), um(4), um(1));
  const RealMatrix c = fd_block_capacitance(blk, coarse());
  ASSERT_EQ(c.rows(), 3u);
  EXPECT_GT(c(1, 1), 0.0);
  EXPECT_LT(c(0, 1), 0.0);
  // Symmetric structure: both couplings equal.
  EXPECT_NEAR(c(0, 1), c(1, 2), 0.03 * std::abs(c(0, 1)));
}

TEST(Fd2d, ExtractFdTrendsMatchClosedForms) {
  // Gaps must span several grid cells or the sidewall field is unresolved:
  // with 0.25 um cells, a 1.5 um gap has 6 cells across.
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block tight =
      geom::coplanar_waveguide(tech, 6, um(100), um(4), um(4), um(1.5));
  const geom::Block loose =
      geom::coplanar_waveguide(tech, 6, um(100), um(4), um(4), um(4));
  Fd2dOptions fine = coarse();
  fine.cell = 0.25e-6;
  const FdCapResult ct = extract_cap_fd(tight, fine);
  const FdCapResult cl = extract_cap_fd(loose, fine);
  ASSERT_EQ(ct.cc.size(), 2u);
  EXPECT_GT(ct.cc[0], cl.cc[0]);  // closer -> more coupling
  EXPECT_LT(ct.cg[1], cl.cg[1]);  // closer neighbours shield the plane
}

TEST(Fd2d, ErrorPaths) {
  EXPECT_THROW(fd_capacitance_matrix({}, 3.9, 0.0, coarse()),
               std::invalid_argument);
  std::vector<FdConductor> degenerate{{0.0, 0.0, um(1), um(2)}};
  EXPECT_THROW(fd_capacitance_matrix(degenerate, 3.9, 0.0, coarse()),
               std::invalid_argument);
  std::vector<FdConductor> overlap{{0.0, um(4), um(1), um(2)},
                                   {um(2), um(6), um(1), um(2)}};
  EXPECT_THROW(fd_capacitance_matrix(overlap, 3.9, 0.0, coarse()),
               std::invalid_argument);
  std::vector<FdConductor> ok{{0.0, um(4), um(1), um(2)}};
  Fd2dOptions bad = coarse();
  bad.cell = 0.0;
  EXPECT_THROW(fd_capacitance_matrix(ok, 3.9, 0.0, bad),
               std::invalid_argument);
  EXPECT_THROW(fd_capacitance_matrix(ok, 0.0, 0.0, coarse()),
               std::invalid_argument);
  // Plane above the conductors is rejected.
  EXPECT_THROW(fd_capacitance_matrix(ok, 3.9, um(5), coarse()),
               std::invalid_argument);
}

TEST(Fd2d, GridRefinementConverges) {
  const double w = um(4), t = um(2), h = um(2);
  std::vector<FdConductor> cs{{0.0, w, h, h + t}};
  Fd2dOptions o1 = coarse();
  o1.cell = 1.0e-6;
  Fd2dOptions o2 = coarse();
  o2.cell = 0.5e-6;
  Fd2dOptions o3 = coarse();
  o3.cell = 0.25e-6;
  const double c1 = fd_capacitance_matrix(cs, 3.9, 0.0, o1)(0, 0);
  const double c2 = fd_capacitance_matrix(cs, 3.9, 0.0, o2)(0, 0);
  const double c3 = fd_capacitance_matrix(cs, 3.9, 0.0, o3)(0, 0);
  EXPECT_LT(std::abs(c3 - c2), std::abs(c2 - c1) + 1e-18);
}

}  // namespace
}  // namespace rlcx::cap
